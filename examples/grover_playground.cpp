// Scenario: the quantum machinery itself, from first principles — for
// readers who want to see what the "quantum" in quantum CONGEST does.
//
// Demonstrates, with the exact state-vector simulator:
//   * Grover search dynamics and the sin²((2t+1)θ) law;
//   * the amplitude-level engine agreeing with the state vector;
//   * Dürr–Høyer maximum finding under a Lemma 3.1 call budget;
//   * how the framework converts oracle calls into CONGEST rounds.
#include <cmath>
#include <cstdio>

#include "quantum/framework.h"
#include "quantum/search.h"
#include "quantum/statevector.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::quantum;

  std::printf("Grover playground — the search engine behind Theorem 1.1\n\n");

  // 1. Textbook Grover on 6 qubits, one marked element.
  std::printf("-- Grover dynamics (64 states, 1 marked) --\n");
  TextTable t({"iterations", "P[success] simulated", "sin^2((2t+1)theta)"});
  for (std::uint64_t it : {0ull, 2ull, 4ull, 6ull, 8ull, 12ull}) {
    const auto sv = grover_run(6, [](std::uint64_t x) { return x == 42; },
                               it);
    t.add(it, sv.probability(42), grover_success_probability(64, 1, it));
  }
  std::printf("%s", t.render().c_str());
  std::printf("  optimal ~ pi/4*sqrt(64) = 6 iterations.\n\n");

  // 2. Amplitude-level engine: same physics without the exponential
  //    state vector (this is what lets the library search over n vertex
  //    sets while only tracking n amplitudes).
  std::printf("-- amplitude engine vs state vector (empirical) --\n");
  Rng rng(1);
  const std::vector<double> uniform(64, 1.0 / 64);
  int hits = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    hits += amplified_measure(uniform,
                              [](std::size_t x) { return x == 42; }, 6,
                              rng)
                .found;
  }
  std::printf("  6 iterations: empirical %.3f vs exact %.3f\n\n",
              double(hits) / trials, grover_success_probability(64, 1, 6));

  // 3. Maximum finding with a budget (the Lemma 3.1 primitive).
  std::printf("-- Durr-Hoyer maximum finding --\n");
  std::vector<std::int64_t> values(512);
  for (std::size_t i = 0; i < 512; ++i) {
    values[i] = static_cast<std::int64_t>((i * 37) % 200);
  }
  values[317] = 999;
  std::vector<double> w(512, 1.0);
  const std::uint64_t budget = lemma31_budget(1.0 / 512, 0.02);
  int found = 0;
  std::uint64_t calls = 0;
  for (int i = 0; i < 50; ++i) {
    const auto res = quantum_max_find(values, w, budget, rng);
    found += res.value == 999;
    calls += res.oracle_calls;
  }
  std::printf("  budget %llu oracle calls; found the planted max %d/50 "
              "times, avg %.0f calls (classical scan: 512)\n\n",
              (unsigned long long)budget, found, double(calls) / 50);

  // 4. Rounds: the framework's only job is call -> round conversion.
  OptimizationProblem p;
  p.values = values;
  p.weights = w;
  p.rho = 1.0 / 512;
  p.delta = 0.02;
  p.t0_rounds = 120;     // pretend Initialization measured 120 rounds
  p.t_setup_rounds = 35; // per-call Setup
  p.t_eval_rounds = 15;  // per-call Evaluation
  const auto res = framework_maximize(p, rng);
  std::printf("-- Lemma 3.1 accounting --\n");
  std::printf("  found f = %lld with %llu calls -> rounds = 120 + %llu * "
              "(35 + 15) = %llu\n",
              (long long)res.value, (unsigned long long)res.oracle_calls,
              (unsigned long long)res.oracle_calls,
              (unsigned long long)res.rounds);
  return 0;
}
