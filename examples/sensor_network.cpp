// Scenario: a wireless sensor grid where edge weights are link
// latencies (ms). Operations wants two numbers:
//   * the weighted diameter — the worst-case end-to-end latency, which
//     bounds any flooding/alarm propagation time;
//   * the weighted radius and its center — the best gateway placement.
//
// The example runs the quantum CONGEST algorithm against the classical
// alternatives and prints the round bill for each, on two topologies:
// a dense deployment (low unweighted diameter — quantum-friendly) and a
// long corridor deployment (high diameter — where the quantum bound
// degrades to the classical one, as Theorem 1.1's min{.., n} predicts).
#include <cstdio>

#include "core/baselines.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/table.h"

namespace {

using namespace qc;

void analyze(const char* name, const WeightedGraph& g, std::uint64_t seed) {
  const Dist d = unweighted_diameter(g);
  std::printf("== %s: %s, D = %llu\n", name, g.summary().c_str(),
              (unsigned long long)d);

  core::Theorem11Options opt;
  opt.seed = seed;
  opt.census = true;
  const auto diam = core::quantum_weighted_diameter(g, opt);
  const auto rad = core::quantum_weighted_radius(g, opt);

  TextTable t({"quantity", "estimate", "exact", "ratio",
               "charged rounds"});
  t.add("worst-case latency (diameter)", diam.estimate, diam.exact,
        diam.ratio, diam.rounds);
  t.add("gateway latency bound (radius)", rad.estimate, rad.exact,
        rad.ratio, rad.rounds);
  std::printf("%s", t.render().c_str());

  // What classical APSP-based monitoring would pay, and what the models
  // predict at scale.
  std::printf("  classical exact baseline (model): ~%.0f rounds; paper "
              "bound for this work: ~%.0f rounds\n",
              core::model::classical_weighted_rounds(g.node_count()),
              core::model::theorem11_rounds(g.node_count(), d));
  const double adv =
      double(g.node_count()) /
      (core::model::theorem11_rounds(g.node_count(), d) /
       core::model::polylog(g.node_count()));
  std::printf("  asymptotic advantage factor at this D regime: %.2fx %s\n\n",
              adv, d * d * d < g.node_count()
                       ? "(D = o(n^{1/3}): quantum wins at scale)"
                       : "(D too large: no quantum advantage)");
}

}  // namespace

int main() {
  using namespace qc;
  std::printf("Sensor-network latency analysis in quantum CONGEST\n\n");

  // Dense deployment: 8x8 grid with shortcut links (field repeaters).
  Rng rng(11);
  WeightedGraph dense = gen::grid(8, 8);
  for (int i = 0; i < 40; ++i) {
    const auto u = static_cast<NodeId>(rng.below(64));
    const auto v = static_cast<NodeId>(rng.below(64));
    if (u != v && !dense.has_edge(u, v)) dense.add_edge(u, v);
  }
  dense = gen::randomize_weights(dense, 25, rng);
  analyze("dense deployment (grid + repeaters)", dense, 5);

  // Corridor deployment: a long chain of small clusters (tunnel,
  // pipeline): D grows linearly with n.
  WeightedGraph corridor = gen::path_of_cliques(16, 4);
  corridor = gen::randomize_weights(corridor, 25, rng);
  analyze("corridor deployment (path of clusters)", corridor, 6);
  return 0;
}
