// Scenario: what "nodes exchange qubits" actually means — the model of
// Elkin–Klauck–Nanongkai–Pandurangan, run at qubit level on a small
// network.
//
// 1. A node creates entanglement locally and ships one half (the model
//    explicitly allows building shared entanglement this way).
// 2. The leader distributes its superposition to every node by CNOT
//    copies along a BFS tree in depth(tree) rounds — the exact step
//    Lemma 3.5's Setup uses to put the whole network "inside" the
//    search superposition.
// 3. Measurements anywhere collapse consistently everywhere.
#include <cstdio>

#include "congest/primitives.h"
#include "graph/generators.h"
#include "quantum/qnetwork.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  using namespace qc::quantum;

  std::printf("Qubit-level CONGEST demo\n\n");

  // --- 1. Remote entanglement over one edge ---
  {
    const auto g = gen::path(2);
    QuantumNetwork net(g, 2);
    net.h(0, 0);
    net.cnot(0, 0, 1);      // local Bell pair at node 0
    net.send_qubit(0, 1, 1);  // ship half to node 1 (1 qubit, 1 round)
    net.end_round();
    Rng rng(1);
    int agree = 0;
    // (Re-preparing each trial; measurement collapses the state.)
    for (int t = 0; t < 20; ++t) {
      QuantumNetwork fresh(g, 2);
      fresh.h(0, 0);
      fresh.cnot(0, 0, 1);
      fresh.send_qubit(0, 1, 1);
      fresh.end_round();
      agree += fresh.measure(0, 0, rng) == fresh.measure(1, 1, rng);
    }
    std::printf("1. Bell pair across an edge: measurements agreed %d/20 "
                "times (model: always)\n\n",
                agree);
  }

  // --- 2. CNOT-copy broadcast along a BFS tree ---
  {
    Rng rng(7);
    const auto g = gen::erdos_renyi_connected(10, 0.25, rng);
    const auto tree = congest::build_bfs_tree(g, 0);
    std::vector<NodeId> parent(g.node_count());
    std::vector<Dist> depth(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      parent[v] = tree.nodes[v].parent;
      depth[v] = tree.nodes[v].depth;
    }
    QuantumNetwork net(g, g.node_count());
    const auto rounds = cnot_broadcast(net, parent, depth);
    const std::uint64_t all = (std::uint64_t{1} << g.node_count()) - 1;
    std::printf("2. CNOT broadcast on a %u-node network: %llu rounds "
                "(= BFS depth). Global state: P(|0...0>) = %.3f, "
                "P(|1...1>) = %.3f — a %u-qubit GHZ share per node.\n\n",
                g.node_count(), (unsigned long long)rounds,
                net.state().probability(0), net.state().probability(all),
                g.node_count());

    // --- 3. Collapse propagates ---
    Rng mrng(3);
    const bool first = net.measure(0, 0, mrng);
    bool consistent = true;
    for (std::uint32_t v = 1; v < g.node_count(); ++v) {
      consistent &= net.measure(static_cast<NodeId>(v), v, mrng) == first;
    }
    std::printf("3. Leader measured %d; every other node then measured the "
                "same value: %s\n",
                first ? 1 : 0, consistent ? "yes" : "NO");
  }

  std::printf("\n(The large-scale engine in core/ replaces this exponential "
              "state vector with the amplitude-exact simulation of "
              "DESIGN.md S1 — same round counts, polynomial cost.)\n");
  return 0;
}
