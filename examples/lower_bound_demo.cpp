// Scenario: why no quantum CONGEST algorithm can (3/2-eps)-approximate
// the weighted diameter in o(n^{2/3}) rounds — the Section 4 reduction,
// end to end, on a concrete instance.
//
// Alice and Bob secretly hold x and y; they publish a network whose
// edge weights encode their inputs (Figure 2). Computing the diameter
// to within 3/2 reveals F(x,y) = AND of row-wise set intersections —
// and two-party communication lower bounds make that expensive.
#include <cstdio>

#include "graph/algorithms.h"
#include "lowerbound/approxdeg.h"
#include "lowerbound/boolfn.h"
#include "lowerbound/gadget.h"
#include "lowerbound/server.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  using namespace qc::lb;

  std::printf("Lower-bound reduction walkthrough (Theorem 4.2)\n\n");

  // 1. Alice and Bob's secret inputs.
  const auto params = GadgetParams::paper(4);  // h=4: n = 447
  Rng rng(42);
  const PairInput yes = input_all_hit(1ull << params.s, params.ell, rng);
  const PairInput no =
      input_one_row_miss(1ull << params.s, params.ell, 5, rng);
  std::printf("gadget: h=%u, s=%u, ell=%u -> n=%llu nodes, inputs of "
              "2^s*ell = %llu bits per player\n\n",
              params.h, params.s, params.ell,
              (unsigned long long)params.node_count(),
              (unsigned long long)((1ull << params.s) * params.ell));

  // 2. The published networks and their diameters.
  for (const auto* tag : {"YES", "NO"}) {
    const PairInput& in = tag[0] == 'Y' ? yes : no;
    const auto check = check_diameter_reduction(params, in);
    std::printf("%s instance: F(x,y) = %d, diameter(G') = %llu "
                "(YES ceiling %llu, NO floor %llu) -> a 3/2-approximation "
                "answers F correctly: %s\n",
                tag, check.f_value, (unsigned long long)check.measured,
                (unsigned long long)check.threshold_high,
                (unsigned long long)check.threshold_low,
                check.distinguishable ? "yes" : "NO");
  }

  // 3. Any T-round CONGEST algorithm on the gadget is a cheap Server
  //    protocol (Lemma 4.1): run a real execution and meter it.
  const Gadget g(params, yes, false);
  const auto rep = run_and_meter_bfs(g, 5, g.a(0));
  std::printf("\nLemma 4.1 metering of a real 5-round execution: %llu "
              "messages total, only %llu charged to Alice/Bob "
              "(bound 2h/round = %llu) — partition sound: %s\n",
              (unsigned long long)rep.total_messages,
              (unsigned long long)rep.charged_messages,
              (unsigned long long)rep.per_round_bound,
              rep.partition_sound ? "yes" : "NO");

  // 4. The communication price of F: its outer read-once formula has
  //    approximate degree Theta(sqrt k) (computed exactly by LP here),
  //    which lifts to a quantum communication bound, which divides back
  //    through Lemma 4.1 into rounds.
  std::printf("\napprox degree of the outer formula (exact LP): ");
  for (std::size_t k : {16u, 36u, 64u}) {
    std::printf("deg(AND_%zu)=%u ", k,
                approx_degree_symmetric(and_levels(k), 1.0 / 3));
  }
  const std::uint32_t bandwidth = 8 * clog2(params.node_count());
  std::printf("\nimplied round bound for this gadget: T >= sqrt(2^s*ell)/"
              "(h*B) = %.2f rounds; asymptotically Omega(n^{2/3}/log^2 n)"
              ".\n",
              theorem42_round_bound(params, bandwidth));
  std::printf("\nconclusion: weighted diameter at D = Theta(log n) needs "
              "Omega~(n^{2/3}) quantum rounds, while the unweighted case "
              "takes O~(sqrt(nD)) — weights make the problem strictly "
              "harder (Theorem 1.2).\n");
  return 0;
}
