// Quickstart: estimate the weighted diameter and radius of a network in
// the quantum CONGEST model.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks through the whole public API surface once: build a graph, run
// the Theorem 1.1 algorithm, inspect the answer, the approximation
// guarantee, and the CONGEST round ledger.
#include <cstdio>

#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

int main() {
  using namespace qc;

  // 1. A weighted network: 64 nodes, sparse random topology (so the
  //    unweighted diameter D is small — the regime where the quantum
  //    algorithm shines), integer edge weights in [1, 20].
  Rng rng(2024);
  WeightedGraph g = gen::erdos_renyi_connected(64, 0.1, rng);
  g = gen::randomize_weights(g, 20, rng);
  std::printf("network: %s, unweighted diameter D = %llu\n",
              g.summary().c_str(),
              (unsigned long long)unweighted_diameter(g));

  // 2. Run the quantum weighted-diameter algorithm (Theorem 1.1).
  core::Theorem11Options opt;
  opt.seed = 7;  // all randomness is seeded and reproducible
  opt.census = true;  // also compute the exact answer for comparison
  const auto diam = core::quantum_weighted_diameter(g, opt);

  std::printf("\nweighted diameter:\n");
  std::printf("  estimate        : %.1f\n", diam.estimate);
  std::printf("  exact (oracle)  : %llu\n", (unsigned long long)diam.exact);
  std::printf("  ratio           : %.4f  (guarantee: <= (1+eps)^2 = %.4f, "
              "eps = 1/ceil(log2 n) = %.3f)\n",
              diam.ratio, (1 + diam.epsilon) * (1 + diam.epsilon),
              diam.epsilon);
  std::printf("  within bound    : %s\n", diam.within_bound ? "yes" : "NO");

  // 3. The cost ledger: every number is simulated CONGEST rounds,
  //    charged per Lemma 3.1 with measured distributed subroutine costs.
  std::printf("\ncost (CONGEST rounds):\n");
  std::printf("  total charged   : %llu\n", (unsigned long long)diam.rounds);
  std::printf("  outer search    : %llu oracle calls x (T1=%llu + T2=%llu)\n",
              (unsigned long long)diam.outer_calls,
              (unsigned long long)diam.t1_outer,
              (unsigned long long)diam.t2_outer);
  std::printf("  inner (Lemma 3.5): T0=%llu, budget %llu calls x "
              "(setup=%llu + eval=%llu)\n",
              (unsigned long long)diam.measured.t0_rounds,
              (unsigned long long)diam.inner_budget_calls,
              (unsigned long long)diam.measured.t_setup_rounds,
              (unsigned long long)diam.measured.t_eval_rounds);
  std::printf("  distributed values matched bookkeeping: %s\n",
              diam.distributed_value_matches ? "yes" : "NO");

  // 4. Radius: same machinery, minimizing.
  const auto rad = core::quantum_weighted_radius(g, opt);
  std::printf("\nweighted radius:\n");
  std::printf("  estimate %.1f vs exact %llu (ratio %.4f)\n", rad.estimate,
              (unsigned long long)rad.exact, rad.ratio);
  return 0;
}
