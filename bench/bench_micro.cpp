// google-benchmark microbenchmarks of the library's hot paths: the
// CONGEST engine, the shortest-path reference algorithms, the quantum
// search engine, and gadget construction. Wall-clock here is simulator
// throughput, not the paper's round complexity (the round ledgers in
// the other bench binaries are the paper-facing numbers).
#include <benchmark/benchmark.h>

#include "congest/primitives.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lowerbound/gadget.h"
#include "paths/reference.h"
#include "quantum/search.h"
#include "quantum/statevector.h"

namespace {

using namespace qc;

void BM_EngineBfsTree(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  const auto g = gen::erdos_renyi_connected(n, 0.1, rng);
  for (auto _ : state) {
    auto res = congest::build_bfs_tree(g, 0);
    benchmark::DoNotOptimize(res.stats.rounds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineBfsTree)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineFlood(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto g = gen::grid(n / 8, 8);
  for (auto _ : state) {
    std::vector<std::vector<congest::FloodItem>> items(g.node_count());
    for (int i = 0; i < 16; ++i) {
      congest::FloodItem f;
      f.push(static_cast<std::uint64_t>(i), 16);
      items[0].push_back(std::move(f));
    }
    auto res = congest::flood_items(g, std::move(items));
    benchmark::DoNotOptimize(res.stats.rounds);
  }
}
BENCHMARK(BM_EngineFlood)->Arg(64)->Arg(256);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const auto g = gen::randomize_weights(
      gen::erdos_renyi_connected(n, 0.05, rng), 64, rng);
  for (auto _ : state) {
    auto d = dijkstra(g, 0);
    benchmark::DoNotOptimize(d.back());
  }
}
BENCHMARK(BM_Dijkstra)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SkeletonBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  const auto g = gen::randomize_weights(
      gen::erdos_renyi_connected(n, 0.1, rng), 16, rng);
  const auto params =
      paths::Params::make(n, std::max<Dist>(1, unweighted_diameter(g)));
  std::vector<NodeId> set;
  for (NodeId v = 0; v < n; v += n / 6) set.push_back(v);
  for (auto _ : state) {
    auto sk = paths::build_skeleton(g, params, set);
    benchmark::DoNotOptimize(sk.approx_eccentricity(0));
  }
}
BENCHMARK(BM_SkeletonBuild)->Arg(32)->Arg(64)->Arg(128);

void BM_GroverStateVector(benchmark::State& state) {
  const auto qubits = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto sv = quantum::grover_run(
        qubits, [](std::uint64_t x) { return x == 3; }, 8);
    benchmark::DoNotOptimize(sv.probability(3));
  }
}
BENCHMARK(BM_GroverStateVector)->Arg(8)->Arg(12)->Arg(16);

void BM_AmplitudeSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> w(n, 1.0);
  Rng rng(4);
  for (auto _ : state) {
    auto res = quantum::bbht_search(
        w, [](std::size_t x) { return x == 7; }, 100000, rng);
    benchmark::DoNotOptimize(res.found);
  }
}
BENCHMARK(BM_AmplitudeSearch)->Arg(1024)->Arg(65536);

void BM_Theorem11EndToEnd(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  const auto g = gen::randomize_weights(
      gen::erdos_renyi_connected(n, 0.15, rng), 8, rng);
  core::Theorem11Options opt;
  opt.seed = 7;
  for (auto _ : state) {
    auto res = core::quantum_weighted_diameter(g, opt);
    benchmark::DoNotOptimize(res.rounds);
  }
}
BENCHMARK(BM_Theorem11EndToEnd)->Arg(24)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_GadgetBuild(benchmark::State& state) {
  const auto h = static_cast<std::uint32_t>(state.range(0));
  const auto p = lb::GadgetParams::paper(h);
  Rng rng(6);
  const auto in = lb::random_input(1ull << p.s, p.ell, rng);
  for (auto _ : state) {
    lb::Gadget g(p, in, false);
    benchmark::DoNotOptimize(g.graph().edge_count());
  }
}
BENCHMARK(BM_GadgetBuild)->Arg(2)->Arg(4)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
