// Regenerates Table 2 of the paper: upper bounds on the pairwise
// distances in the contracted gadget G′, audited row by row against
// exact distances on concrete instances.
//
// The six (h, input) audits are independent — each builds its own
// gadget — so they run as one parallel_map over the work-stealing pool
// and print in deterministic spec order afterwards.
#include <cstdio>
#include <string>
#include <vector>

#include "lowerbound/table2.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace qc;
using namespace qc::lb;

struct AuditCase {
  std::uint32_t h;
  int kind;  // 0 = all rows hit, 1 = row 0 misses, 2 = random
};

struct AuditOutput {
  AuditCase spec;
  GadgetParams params;
  std::string rendered;
};

AuditOutput run_audit(const AuditCase& c, std::uint64_t seed) {
  const auto params = GadgetParams::paper(c.h);
  // The seed preserves the original per-h input streams: each case
  // derives its own generator instead of sharing one across the loop.
  Rng rng(seed);
  const auto input =
      c.kind == 0   ? input_all_hit(1ull << params.s, params.ell, rng)
      : c.kind == 1 ? input_one_row_miss(1ull << params.s, params.ell, 0, rng)
                    : random_input(1ull << params.s, params.ell, rng);
  TextTable t({"u", "v", "bound", "bound value", "measured max", "pairs",
               "ok"});
  for (const auto& row : audit_table2(params, input)) {
    t.add(row.u_class, row.v_class, row.bound_name, row.bound,
          row.measured_max, row.pairs, row.ok);
  }
  return AuditOutput{c, params, t.render()};
}

}  // namespace

int main() {
  std::printf("Table 2 reproduction — distances in the contracted gadget "
              "G'\n\n");
  std::vector<AuditCase> cases;
  for (std::uint32_t h : {2u, 4u}) {
    for (int kind = 0; kind < 3; ++kind) cases.push_back({h, kind});
  }

  runtime::ThreadPool pool;
  const auto outputs = runtime::parallel_map(
      pool, cases, [](const AuditCase& c, std::size_t i) {
        return run_audit(c, runtime::derive_seed(c.h, i));
      });

  for (const auto& out : outputs) {
    const char* label = out.spec.kind == 0   ? "F(x,y)=1 (all rows hit)"
                        : out.spec.kind == 1 ? "F(x,y)=0 (row 0 misses)"
                                             : "random";
    std::printf("== h=%u (s=%u, ell=%u, alpha=n^2, beta=2n^2), input: %s\n",
                out.spec.h, out.params.s, out.params.ell, label);
    std::printf("%s\n", out.rendered.c_str());
  }
  std::printf("note: the pair (a_i, b_i) is deliberately absent from Table "
              "2 — its distance encodes the input and is what Lemma 4.4 "
              "bounds.\n");
  return 0;
}
