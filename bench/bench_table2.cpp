// Regenerates Table 2 of the paper: upper bounds on the pairwise
// distances in the contracted gadget G′, audited row by row against
// exact distances on concrete instances.
#include <cstdio>

#include "lowerbound/table2.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::lb;

  std::printf("Table 2 reproduction — distances in the contracted gadget "
              "G'\n\n");
  for (std::uint32_t h : {2u, 4u}) {
    const auto params = GadgetParams::paper(h);
    Rng rng(h);
    for (int kind = 0; kind < 3; ++kind) {
      const auto input =
          kind == 0   ? input_all_hit(1ull << params.s, params.ell, rng)
          : kind == 1 ? input_one_row_miss(1ull << params.s, params.ell, 0,
                                           rng)
                      : random_input(1ull << params.s, params.ell, rng);
      const char* label = kind == 0   ? "F(x,y)=1 (all rows hit)"
                          : kind == 1 ? "F(x,y)=0 (row 0 misses)"
                                      : "random";
      std::printf("== h=%u (s=%u, ell=%u, alpha=n^2, beta=2n^2), input: %s\n",
                  h, params.s, params.ell, label);
      TextTable t({"u", "v", "bound", "bound value", "measured max",
                   "pairs", "ok"});
      for (const auto& row : audit_table2(params, input)) {
        t.add(row.u_class, row.v_class, row.bound_name, row.bound,
              row.measured_max, row.pairs, row.ok);
      }
      std::printf("%s\n", t.render().c_str());
    }
  }
  std::printf("note: the pair (a_i, b_i) is deliberately absent from Table "
              "2 — its distance encodes the input and is what Lemma 4.4 "
              "bounds.\n");
  return 0;
}
