// Regenerates Figure 2 / Lemma 4.4: the weighted diameter gadget. For
// sweeps of random and adversarial inputs, verifies the dichotomy
//   F(x,y)=1  =>  D <= max{2a,b}+n      (YES instances stay small)
//   F(x,y)=0  =>  D >= min{a+b,3a}      (NO instances jump to 3n^2)
// and that a (3/2-eps)-approximation separates the two cases.
#include <cstdio>

#include "lowerbound/boolfn.h"
#include "lowerbound/server.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::lb;

  std::printf("Figure 2 reproduction — diameter gadget gap (Lemma 4.4)\n\n");
  for (std::uint32_t h : {2u, 4u}) {
    const auto p = GadgetParams::paper(h);
    const bool full = h == 2;  // exact full-graph diameter for small h
    std::printf("== h=%u: n=%llu, alpha=n^2, beta=2n^2, measuring %s\n", h,
                (unsigned long long)p.node_count(),
                full ? "full gadget G" : "contracted G' (Lemma 4.3 window)");
    TextTable t({"input", "F(x,y)", "measured", "low thr", "high thr",
                 "gap ok", "separable"});
    Rng rng(h * 7 + 1);
    int checked = 0;
    int ok = 0;
    auto record = [&](const char* label, const PairInput& in) {
      const auto c = check_diameter_reduction(p, in, full);
      t.add(label, c.f_value, c.measured, c.threshold_low, c.threshold_high,
            c.gap_respected, c.distinguishable);
      ++checked;
      ok += c.gap_respected && c.distinguishable;
    };
    record("all rows hit", input_all_hit(1ull << p.s, p.ell, rng));
    record("row 0 misses", input_one_row_miss(1ull << p.s, p.ell, 0, rng));
    record("last row misses",
           input_one_row_miss(1ull << p.s, p.ell, (1ull << p.s) - 1, rng));
    for (int i = 0; i < 5; ++i) {
      record("random", random_input(1ull << p.s, p.ell, rng));
    }
    {
      PairInput zero = random_input(1ull << p.s, p.ell, rng);
      std::fill(zero.x.begin(), zero.x.end(), 0);
      record("x = 0 (F=0)", zero);
      PairInput one = zero;
      std::fill(one.x.begin(), one.x.end(), 1);
      std::fill(one.y.begin(), one.y.end(), 1);
      record("x = y = 1 (F=1)", one);
    }
    std::printf("%s  gap+separation held on %d/%d instances\n\n",
                t.render().c_str(), ok, checked);
  }
  return 0;
}
