// Regenerates the Theorem 1.2 / 4.2 / 4.8 lower-bound pipeline:
//
//  (a) Lemma 4.1 — meters real CONGEST executions on the gadget against
//      the Alice/Bob/server ownership schedule and checks the charged
//      communication stays within O(T·h·B);
//  (b) Lemma 4.6 — LP-exact approximate degree of the outer read-once
//      formulas, with the Θ(√k) fit the lower bound rests on;
//  (c) the implied Ω(n^{2/3}/log² n) round bound curve, printed against
//      this work's upper bound and the unweighted Õ(√(nD)) bound — the
//      paper's separation between weighted and unweighted.
#include <cmath>
#include <cstdio>

#include "core/baselines.h"
#include "lowerbound/approxdeg.h"
#include "lowerbound/boolfn.h"
#include "lowerbound/gadget.h"
#include "lowerbound/server.h"
#include "util/mathx.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::lb;

  std::printf("Lower bound pipeline (Theorems 1.2 / 4.2 / 4.8)\n\n");

  // (a) Simulation lemma metering.
  std::printf("-- (a) Lemma 4.1: CONGEST -> Server-model simulation "
              "metering --\n");
  TextTable sim({"h", "n", "root", "T", "total msgs", "charged msgs",
                 "max charged/round", "bound 2h", "tree-only", "sound",
                 "within O(T h B)"});
  Rng rng(17);
  for (std::uint32_t h : {4u, 6u}) {
    const auto p = GadgetParams::paper(h);
    const auto in = random_input(1ull << p.s, p.ell, rng);
    const Gadget g(p, in, false);
    for (const std::uint64_t t :
         {std::uint64_t{3}, (std::uint64_t{1} << (h - 1)) - 3}) {
      // Server-side root: the ownership boundary outruns the wave, so
      // (almost) nothing is charged. Alice-side root: information must
      // cross into the server region through the tree — the charged
      // traffic the lemma bounds by 2h per round.
      for (const bool alice_root : {false, true}) {
        const auto rep =
            run_and_meter_bfs(g, t, alice_root ? g.a(0) : g.root());
        sim.add(h, g.graph().node_count(), alice_root ? "a_0" : "t_root", t,
                rep.total_messages, rep.charged_messages,
                rep.max_charged_in_round, rep.per_round_bound,
                rep.charged_only_tree, rep.partition_sound,
                rep.within_bound);
      }
    }
  }
  std::printf("%s\n", sim.render().c_str());

  // (b) Approximate degree of the read-once outer functions.
  std::printf("-- (b) Lemma 4.6: deg_{1/3} of AND_k and OR_k via exact LP "
              "--\n");
  TextTable deg({"k", "deg(AND_k)", "deg(OR_k)", "sqrt(k)"});
  std::vector<double> ks, ds;
  for (std::size_t k : {4u, 9u, 16u, 25u, 36u, 49u, 64u, 81u, 100u}) {
    const auto deg_and = approx_degree_symmetric(and_levels(k), 1.0 / 3);
    const auto deg_or = approx_degree_symmetric(or_levels(k), 1.0 / 3);
    deg.add(k, deg_and, deg_or, std::sqrt(double(k)));
    ks.push_back(double(k));
    ds.push_back(double(deg_and));
  }
  const auto [e, c] = fit_power_law(ks, ds);
  std::printf("%s  fitted deg(AND_k) ~ %.3f * k^%.3f (Lemma 4.6: Theta("
              "sqrt k))\n\n",
              deg.render().c_str(), c, e);

  // Outer functions of Lemmas 4.7 / 4.10 at small sizes via the general
  // (non-symmetric) LP backend.
  std::printf("  composed outer functions (general LP backend):\n");
  TextTable comp({"f", "vars", "deg_{1/3}"});
  const std::vector<std::pair<unsigned, unsigned>> shapes{
      {2, 2}, {2, 3}, {3, 2}, {2, 4}};
  for (const auto& [m, q] : shapes) {
    const auto f = and_of_ors(m, q);
    const auto table = truth_table(*f, m * q);
    comp.add("AND_" + std::to_string(m) + " o OR_" + std::to_string(q),
             m * q, approx_degree(table, m * q, 1.0 / 3));
  }
  std::printf("%s\n", comp.render().c_str());

  // (c) The separation curves.
  std::printf("-- (c) round-bound curves at D = Theta(log n) --\n");
  TextTable curves({"n", "LB weighted n^2/3 (raw)",
                    "UB unweighted sqrt(nD) (raw)", "LB this work w/ polylog",
                    "UB this work (model)", "separation (raw LB > raw UB)"});
  for (std::uint64_t n : {1ull << 12, 1ull << 16, 1ull << 20, 1ull << 24,
                          1ull << 28}) {
    const auto d = static_cast<std::uint64_t>(std::log2(double(n)));
    const double lb_raw = std::pow(double(n), 2.0 / 3.0);
    const double ubu_raw = std::sqrt(double(n) * double(d));
    const double lb = core::model::theorem12_lower_bound(n);
    const double ub = core::model::theorem11_rounds(n, d);
    curves.add(n, lb_raw, ubu_raw, lb, ub, lb_raw > ubu_raw);
  }
  std::printf("%s", curves.render().c_str());
  std::printf("  LB sitting above the unweighted upper bound is the paper's "
              "separation: weighted diameter/radius is strictly harder in "
              "quantum CONGEST at small D.\n\n");

  // Gadget-implied concrete bounds (Theorem 4.2 instantiation).
  std::printf("-- Theorem 4.2 concrete gadget bounds --\n");
  TextTable thm({"h", "n", "2^s*ell", "T >= sqrt(2^s ell)/(h B)",
                 "n^{2/3}/log^2 n"});
  for (std::uint32_t h : {2u, 4u, 6u, 8u, 10u}) {
    const auto p = GadgetParams::paper(h);
    const auto n = p.node_count();
    const std::uint32_t bandwidth = 8 * clog2(n);
    thm.add(h, n, (1ull << p.s) * p.ell, theorem42_round_bound(p, bandwidth),
            core::model::theorem12_lower_bound(n));
  }
  std::printf("%s", thm.render().c_str());
  return 0;
}
