// Overhead benchmark of the fault-injection subsystem.
//
// The fault engine is supposed to be pay-for-what-you-use: an empty
// `Config::Faults` plan leaves the simulator on its arena fast path
// (the engine is not even constructed), while an active plan reroutes
// the serial merge through the per-message decision procedure. This
// bench measures both against the no-plan baseline on a min-id flood
// workload, asserts the empty-plan run is byte-identical to baseline
// (ledger, trace, outputs) and that a seeded plan yields the same
// `RunOutcome` at every worker count, then writes BENCH_faults.json.
//
// Usage: bench_faults [--smoke] [--n N] [--out FILE]
//   --smoke   tiny instance for ctest (correctness + JSON, no timing
//             claims)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "congest/faults.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "runtime/metrics.h"
#include "runtime/sweep.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace qc;
using namespace qc::congest;

class MinFloodProgram final : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    best_ = ctx.id();
    Message m;
    m.push(best_, 32);
    ctx.broadcast(m);
  }
  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    NodeId improved = best_;
    for (const Incoming& in : inbox) {
      improved = std::min(improved, static_cast<NodeId>(in.msg.field(0)));
    }
    if (improved < best_) {
      best_ = improved;
      Message m;
      m.push(best_, 32);
      ctx.broadcast(m);
      quiet_ = 0;
    } else {
      ++quiet_;
    }
  }
  bool done() const override { return quiet_ >= 1; }
  NodeId best() const { return best_; }

 private:
  NodeId best_ = 0;
  std::uint32_t quiet_ = 0;
};

struct Outcome {
  RunStats stats;
  RunOutcome outcome;
  std::vector<TraceEntry> trace;
  std::vector<NodeId> outputs;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome run_flood(const WeightedGraph& g, const FaultPlan& plan,
                  unsigned workers, bool trace) {
  Config cfg;
  cfg.record_trace = trace;
  cfg.workers = workers;
  cfg.faults = plan;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(std::make_unique<MinFloodProgram>());
  }
  Simulator sim(g, cfg);
  Outcome out;
  out.stats = sim.run(programs);
  out.outcome = sim.outcome();
  out.trace = sim.trace();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.outputs.push_back(
        static_cast<const MinFloodProgram&>(*programs[v]).best());
  }
  return out;
}

double time_runs(const WeightedGraph& g, const FaultPlan& plan, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) run_flood(g, plan, 1, /*trace=*/false);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

struct Row {
  std::string variant;
  double seconds;
  double overhead;  ///< seconds / baseline seconds
  bool identical;
};

std::string to_json(NodeId n, std::size_t m, const std::vector<Row>& rows,
                    const FaultCounters& counters, bool deterministic) {
  std::ostringstream os;
  os << "{\n  \"spec\": {\"n\": " << n << ", \"m\": " << m << "},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"variant\": \"" << r.variant
       << "\", \"seconds\": " << r.seconds
       << ", \"overhead_vs_baseline\": " << r.overhead
       << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"fault_counters\": {\"dropped\": " << counters.dropped
     << ", \"duplicated\": " << counters.duplicated
     << ", \"delayed\": " << counters.delayed
     << ", \"corrupted\": " << counters.corrupted << "},\n"
     << "  \"acceptance\": {\"empty_plan_byte_identical\": "
     << (rows.size() > 1 && rows[1].identical ? "true" : "false")
     << ", \"outcome_identical_at_all_worker_counts\": "
     << (deterministic ? "true" : "false") << "}\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  NodeId n = 4096;
  bool smoke = false;
  std::string out_path = "BENCH_faults.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      n = 128;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<NodeId>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  Rng rng(2022);
  auto g = gen::erdos_renyi_connected(n, 8.0 / double(n), rng);
  g.csr();
  g.slot_index();

  FaultPlan empty_plan;  // installed explicitly, still the fast path
  FaultPlan active_plan;
  active_plan.seed = 7;
  active_plan.probabilities.drop = 0.05;
  active_plan.probabilities.duplicate = 0.02;
  active_plan.probabilities.delay = 0.02;
  active_plan.probabilities.corrupt = 0.01;

  // Correctness gates first (traced, before any timing).
  const Outcome baseline = run_flood(g, FaultPlan{}, 1, /*trace=*/true);
  const bool empty_identical =
      run_flood(g, empty_plan, 1, /*trace=*/true) == baseline;
  const Outcome faulted = run_flood(g, active_plan, 1, /*trace=*/true);
  bool deterministic = faulted.outcome.faults.total() > 0;
  for (const unsigned w : {2u, 8u}) {
    deterministic &= run_flood(g, active_plan, w, /*trace=*/true) == faulted;
  }

  const int reps = smoke ? 2 : 10;
  const double t_base = time_runs(g, FaultPlan{}, reps);
  const double t_empty = time_runs(g, empty_plan, reps);
  const double t_active = time_runs(g, active_plan, reps);

  std::vector<Row> rows = {
      {"no plan (baseline)", t_base, 1.0, true},
      {"empty plan", t_empty, t_base > 0 ? t_empty / t_base : 0.0,
       empty_identical},
      {"active plan (10% fault mass)", t_active,
       t_base > 0 ? t_active / t_base : 0.0, deterministic},
  };

  TextTable table({"variant", "wall s", "overhead", "identical"});
  for (const Row& r : rows) {
    table.add(r.variant, r.seconds, r.overhead, r.identical);
  }
  std::printf("fault subsystem overhead: %s\n\n%s\n", g.summary().c_str(),
              table.render().c_str());
  std::printf("faults fired: drop=%llu dup=%llu delay=%llu corrupt=%llu\n",
              (unsigned long long)faulted.outcome.faults.dropped,
              (unsigned long long)faulted.outcome.faults.duplicated,
              (unsigned long long)faulted.outcome.faults.delayed,
              (unsigned long long)faulted.outcome.faults.corrupted);

  runtime::write_file(
      out_path, to_json(n, g.edge_count(), rows, faulted.outcome.faults,
                        deterministic));
  std::printf("wrote %s\n", out_path.c_str());

  if (!empty_identical || !deterministic) {
    std::fprintf(stderr, "FAIL: empty_identical=%d deterministic=%d\n",
                 empty_identical, deterministic);
    return 1;
  }
  return 0;
}
