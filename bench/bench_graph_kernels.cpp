// Wall-clock benchmark of the CSR shortest-path kernels against the
// seed implementations they replaced.
//
// The seed kernels (reproduced verbatim below) walk the per-node
// `vector<vector<HalfEdge>>` adjacency, allocate fresh dist/heap buffers
// for every source, and run strictly serially. The ported kernels run on
// the flat CSR view with a reusable DijkstraWorkspace (bucket queue for
// small weights, heap otherwise) and fan multi-source sweeps out over
// the work-stealing pool. This bench times both on the same graphs,
// asserts the outputs are byte-identical (including across worker
// counts), and writes BENCH_graph_kernels.json so the perf trajectory is
// tracked from PR 2 onward.
//
// Usage: bench_graph_kernels [--smoke] [--n N] [--out FILE]
//   --smoke   tiny instance for ctest (correctness + JSON, no timing
//             claims)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace qc;

// --- seed (pre-CSR) kernels, kept as the comparison baseline ----------

std::vector<Dist> seed_bfs(const WeightedGraph& g, NodeId s) {
  std::vector<Dist> dist(g.node_count(), kInfDist);
  std::queue<NodeId> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const HalfEdge& h : g.neighbors(u)) {
      if (dist[h.to] == kInfDist) {
        dist[h.to] = dist[u] + 1;
        q.push(h.to);
      }
    }
  }
  return dist;
}

std::vector<Dist> seed_dijkstra(const WeightedGraph& g, NodeId s) {
  std::vector<Dist> dist(g.node_count(), kInfDist);
  using Item = std::pair<Dist, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(0, s);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& h : g.neighbors(u)) {
      const Dist nd = dist_add(d, h.weight);
      if (nd < dist[h.to]) {
        dist[h.to] = nd;
        pq.emplace(nd, h.to);
      }
    }
  }
  return dist;
}

std::vector<Dist> seed_eccentricities(const WeightedGraph& g) {
  std::vector<Dist> ecc(g.node_count(), 0);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto dist = seed_dijkstra(g, s);
    ecc[s] = *std::max_element(dist.begin(), dist.end());
  }
  return ecc;
}

std::vector<std::vector<Dist>> seed_apsp(const WeightedGraph& g) {
  std::vector<std::vector<Dist>> rows;
  rows.reserve(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    rows.push_back(seed_dijkstra(g, s));
  }
  return rows;
}

Dist seed_unweighted_diameter(const WeightedGraph& g) {
  Dist d = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto dist = seed_bfs(g, s);
    d = std::max(d, *std::max_element(dist.begin(), dist.end()));
  }
  return d;
}

Dist seed_hop_diameter(const WeightedGraph& g) {
  Dist h = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    std::vector<Dist> dist(g.node_count(), kInfDist);
    std::vector<Dist> hops(g.node_count(), kInfDist);
    using Item = std::tuple<Dist, Dist, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[s] = 0;
    hops[s] = 0;
    pq.emplace(0, 0, s);
    while (!pq.empty()) {
      const auto [d, hp, u] = pq.top();
      pq.pop();
      if (d != dist[u] || hp != hops[u]) continue;
      for (const HalfEdge& e : g.neighbors(u)) {
        const Dist nd = dist_add(d, e.weight);
        const Dist nh = hp + 1;
        if (nd < dist[e.to] || (nd == dist[e.to] && nh < hops[e.to])) {
          dist[e.to] = nd;
          hops[e.to] = nh;
          pq.emplace(nd, nh, e.to);
        }
      }
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (hops[v] < kInfDist) h = std::max(h, hops[v]);
    }
  }
  return h;
}

// --- harness ----------------------------------------------------------

double time_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Row {
  std::string kernel;
  std::string variant;
  double seconds = 0;
  double speedup = 1.0;  ///< vs the kernel's seed serial variant
  bool identical = true; ///< output equals the seed output
};

std::string to_json(NodeId n, std::size_t m, Weight max_w, unsigned hw,
                    const std::vector<Row>& rows, double ecc_pool_speedup,
                    bool deterministic) {
  std::ostringstream os;
  os << "{\n  \"spec\": {\"n\": " << n << ", \"m\": " << m
     << ", \"max_weight\": " << max_w << ", \"hardware_workers\": " << hw
     << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"kernel\": \"" << r.kernel
       << "\", \"variant\": \"" << r.variant
       << "\", \"seconds\": " << r.seconds << ", \"speedup_vs_seed\": "
       << r.speedup << ", \"identical\": " << (r.identical ? "true" : "false")
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"acceptance\": {\"eccentricities_csr_pool_speedup\": "
     << ecc_pool_speedup << ", \"byte_identical_at_all_worker_counts\": "
     << (deterministic ? "true" : "false") << "}\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  NodeId n = 2048;
  bool smoke = false;
  std::string out_path = "BENCH_graph_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      n = 128;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<NodeId>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  // Random connected graph, avg degree ~8, weights small enough for the
  // bucket engine (the regime the Theorem 1.1 pipeline runs in; gadget
  // weights exercise the heap engine via the equivalence tests instead).
  const Weight max_w = 64;
  Rng rng(2022);
  auto g = gen::erdos_renyi_connected(n, 8.0 / double(n), rng);
  g = gen::randomize_weights(g, max_w, rng);
  const CsrGraph& csr = g.csr();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("graph kernels: %s, avg deg %.1f\n\n", g.summary().c_str(),
              2.0 * double(g.edge_count()) / double(n));

  std::vector<Row> rows;
  TextTable table({"kernel", "variant", "wall s", "speedup", "identical"});
  const auto push = [&](const std::string& kernel,
                        const std::string& variant, double secs,
                        double base_secs, bool identical) {
    const double speedup = secs > 0 ? base_secs / secs : 0.0;
    rows.push_back({kernel, variant, secs, speedup, identical});
    table.add(kernel, variant, secs, speedup, identical ? "yes" : "NO");
  };

  bool all_identical = true;
  double ecc_pool_speedup = 0;
  bool deterministic = true;

  // eccentricities — the acceptance kernel.
  {
    std::vector<Dist> golden;
    const double t_seed = time_of([&] { golden = seed_eccentricities(g); });
    push("eccentricities", "seed serial", t_seed, t_seed, true);

    std::vector<Dist> got;
    runtime::ThreadPool one(1);
    const double t_csr =
        time_of([&] { got = eccentricities(csr, &one); });
    all_identical &= got == golden;
    push("eccentricities", "csr serial", t_csr, t_seed, got == golden);

    for (const unsigned workers : {2u, hw}) {
      runtime::ThreadPool pool(workers);
      const double t_pool =
          time_of([&] { got = eccentricities(csr, &pool); });
      deterministic &= got == golden;
      all_identical &= got == golden;
      push("eccentricities", "csr+pool w=" + std::to_string(workers),
           t_pool, t_seed, got == golden);
      ecc_pool_speedup = std::max(
          ecc_pool_speedup, t_pool > 0 ? t_seed / t_pool : 0.0);
      if (workers == hw) break;  // avoid double-run when hw == 2
    }
  }

  // all-pairs distances.
  {
    std::vector<std::vector<Dist>> golden;
    const double t_seed = time_of([&] { golden = seed_apsp(g); });
    push("all_pairs_distances", "seed serial", t_seed, t_seed, true);
    std::vector<std::vector<Dist>> got;
    runtime::ThreadPool pool(hw);
    const double t_pool =
        time_of([&] { got = all_pairs_distances(csr, &pool); });
    all_identical &= got == golden;
    push("all_pairs_distances", "csr+pool w=" + std::to_string(hw), t_pool,
         t_seed, got == golden);
  }

  // unweighted diameter (BFS sweep).
  {
    Dist golden = 0;
    const double t_seed =
        time_of([&] { golden = seed_unweighted_diameter(g); });
    push("unweighted_diameter", "seed serial", t_seed, t_seed, true);
    Dist got = 0;
    runtime::ThreadPool pool(hw);
    const double t_pool =
        time_of([&] { got = unweighted_diameter(csr, &pool); });
    all_identical &= got == golden;
    push("unweighted_diameter", "csr+pool w=" + std::to_string(hw), t_pool,
         t_seed, got == golden);
  }

  // hop diameter (lexicographic Dijkstra sweep).
  {
    Dist golden = 0;
    const double t_seed = time_of([&] { golden = seed_hop_diameter(g); });
    push("hop_diameter", "seed serial", t_seed, t_seed, true);
    Dist got = 0;
    runtime::ThreadPool pool(hw);
    const double t_pool =
        time_of([&] { got = hop_diameter(csr, &pool); });
    all_identical &= got == golden;
    push("hop_diameter", "csr+pool w=" + std::to_string(hw), t_pool, t_seed,
         got == golden);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("eccentricities csr+pool speedup vs seed: %.2fx "
              "(acceptance target >= 3x on multi-core; byte-identical "
              "outputs %s)\n",
              ecc_pool_speedup, all_identical ? "hold" : "FAIL");

  runtime::write_file(
      out_path, to_json(n, g.edge_count(), max_w, hw, rows,
                        ecc_pool_speedup, deterministic && all_identical));
  std::printf("wrote %s\n", out_path.c_str());

  if (smoke) return all_identical ? 0 : 1;
  return all_identical ? 0 : 1;
}
