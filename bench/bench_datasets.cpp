// Wall-clock and memory benchmark of the million-node dataset layer:
// the streaming generators, the bgraph pipeline (shuffle / sort /
// summarize), the two-pass streaming CSR build (with its peak-RSS-to-
// raw-edge-bytes ratio, measured in a forked child so the parent's
// allocations cannot pollute ru_maxrss), the mmap'd bcsr load, and the
// large-n kernels the layer feeds: sampled-source eccentricities, the
// BFS-flood simulator through the sharded merge, and the Algorithm 4
// overlay embedding — each at workers 1/2/8 with byte-identity
// asserted against the w=1 run. The out-of-core rows (ISSUE 10) ride
// along: the external sort's child peak RSS across an 8x edge-count
// growth past the budget (must stay flat, output byte-identical to the
// in-memory sort) and a resident service holding two mapped .bcsr
// specs vs two owned copies (mapped must be lighter at the full
// tiers). Writes BENCH_datasets.json with one row per (workload,
// variant, n, workers); rows that measure ingest carry build_seconds /
// peak_rss_ratio columns which tools/check_bench_regression.py gates
// alongside the speedups.
//
// Tiers (the graph per tier, all seed-deterministic):
//   --smoke   RMAT scale 12: n = 4096, ~16k edges (ctest; no timing
//             claims, but every workload and identity check runs)
//   default   Chung-Lu n = 100000, ~400k edges (the n = 10^5 rows)
//   --huge    additionally RMAT scale 20: n = 1048576, ~8M edges (the
//             n = 10^6 rows; the ISSUE acceptance tier). The overlay
//             workload is skipped at this tier — hours, not minutes,
//             on one core.
//
// Usage: bench_datasets [--smoke] [--huge] [--out FILE] [--dir DIR]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "congest/simulator.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "paths/distributed.h"
#include "paths/params.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "service/query_engine.h"
#include "util/table.h"

namespace qc {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double time_of(const std::function<void()>& fn) {
  const double t0 = now_s();
  fn();
  return now_s() - t0;
}

// --- peak-RSS measurement in a forked child ---------------------------
//
// ru_maxrss is a process-lifetime high-water mark, so measuring the
// streaming CSR build inside the bench process would report whatever
// earlier phase happened to be fattest. Forking gives the build a
// pristine RSS baseline; the child streams the file, reports its own
// getrusage high-water mark (bytes) through a pipe, and exits without
// running destructors that could touch the parent's state.
struct ChildBuild {
  double seconds = 0;
  double peak_rss_bytes = 0;
  bool ok = false;
};

ChildBuild csr_build_in_child(const std::string& bg_path) {
  ChildBuild r;
#if defined(_WIN32)
  // No fork: measure inline (ratio will overcount; flagged in the row).
  r.seconds = time_of([&] { (void)csr_from_bgraph(bg_path); });
  r.ok = true;
  return r;
#else
  int fds[2];
  if (pipe(fds) != 0) return r;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return r;
  }
  if (pid == 0) {
    close(fds[0]);
    double payload[2] = {0, 0};
    try {
      // Linux reports ru_maxrss in KiB. Subtract the fork's pre-build
      // baseline (a few MiB of runtime pages) so the delta is the
      // build's own footprint — without this, tiny smoke files would
      // report a ratio dominated by the constant process overhead.
      rusage before{};
      getrusage(RUSAGE_SELF, &before);
      const double t0 = now_s();
      const CsrGraph g = csr_from_bgraph(bg_path);
      payload[0] = now_s() - t0;
      rusage ru{};
      getrusage(RUSAGE_SELF, &ru);
      payload[1] = double(ru.ru_maxrss - before.ru_maxrss) * 1024.0;
      payload[1] += double(g.node_count()) * 0;  // keep g alive to here
    } catch (...) {
      payload[0] = -1;
    }
    ssize_t ignored = write(fds[1], payload, sizeof payload);
    (void)ignored;
    _exit(0);
  }
  close(fds[1]);
  double payload[2] = {0, 0};
  const ssize_t got = read(fds[0], payload, sizeof payload);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got == sizeof payload && payload[0] >= 0) {
    r.seconds = payload[0];
    r.peak_rss_bytes = payload[1];
    r.ok = true;
  }
  return r;
#endif
}

// Generic forked-child measurement: runs `fn` with a pristine RSS
// baseline, reports {seconds, peak-RSS delta in bytes, fn's scalar
// result} back through a pipe. The external-sort and service-residency
// rows below both need it — their whole point is the child's own
// footprint, not whatever the bench parent has resident.
struct ChildRun {
  double seconds = 0;
  double peak_rss_bytes = 0;
  double value = 0;
  bool ok = false;
};

ChildRun run_in_child(const std::function<double()>& fn) {
  ChildRun r;
#if defined(_WIN32)
  // No fork: measure inline (RSS will overcount; flagged in the row).
  r.seconds = time_of([&] { r.value = fn(); });
  r.ok = true;
  return r;
#else
  int fds[2];
  if (pipe(fds) != 0) return r;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return r;
  }
  if (pid == 0) {
    close(fds[0]);
    double payload[3] = {0, 0, 0};
    try {
      rusage before{};
      getrusage(RUSAGE_SELF, &before);
      const double t0 = now_s();
      payload[2] = fn();
      payload[0] = now_s() - t0;
      rusage ru{};
      getrusage(RUSAGE_SELF, &ru);
      payload[1] = double(ru.ru_maxrss - before.ru_maxrss) * 1024.0;
    } catch (...) {
      payload[0] = -1;
    }
    ssize_t ignored = write(fds[1], payload, sizeof payload);
    (void)ignored;
    _exit(0);
  }
  close(fds[1]);
  double payload[3] = {0, 0, 0};
  const ssize_t got = read(fds[0], payload, sizeof payload);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got == sizeof payload && payload[0] >= 0) {
    r.seconds = payload[0];
    r.peak_rss_bytes = payload[1];
    r.value = payload[2];
    r.ok = true;
  }
  return r;
#endif
}

bool files_byte_equal(const std::string& a, const std::string& b) {
  std::FILE* fa = std::fopen(a.c_str(), "rb");
  std::FILE* fb = std::fopen(b.c_str(), "rb");
  bool same = fa != nullptr && fb != nullptr;
  while (same) {
    unsigned char ba[65536], bb[65536];
    const std::size_t ga = std::fread(ba, 1, sizeof ba, fa);
    const std::size_t gb = std::fread(bb, 1, sizeof bb, fb);
    same = ga == gb && std::memcmp(ba, bb, ga) == 0;
    if (ga == 0) break;
  }
  if (fa != nullptr) std::fclose(fa);
  if (fb != nullptr) std::fclose(fb);
  return same;
}

// --- BFS flood program (the simulator workload) -----------------------

class BfsFloodProgram final : public congest::NodeProgram {
 public:
  explicit BfsFloodProgram(NodeId root, std::uint32_t bits)
      : root_(root), bits_(bits) {}
  void on_start(congest::NodeContext& ctx) override {
    if (ctx.id() == root_) {
      level_ = 0;
      congest::Message m;
      m.push(0, bits_);
      ctx.broadcast(m);
      sent_ = true;
    }
  }
  void on_round(congest::NodeContext& ctx,
                std::span<const congest::Incoming> inbox) override {
    if (level_ != kInfDist || inbox.empty()) return;
    Dist best = kInfDist;
    for (const congest::Incoming& in : inbox) {
      best = std::min(best, static_cast<Dist>(in.msg.field(0)) + 1);
    }
    level_ = best;
    congest::Message m;
    m.push(level_, bits_);
    ctx.broadcast(m);
    sent_ = true;
  }
  bool done() const override { return sent_; }
  Dist level() const { return level_; }

 private:
  NodeId root_ = 0;
  std::uint32_t bits_ = 32;
  Dist level_ = kInfDist;
  bool sent_ = false;
};

struct FloodOutcome {
  congest::RunStats stats;
  std::vector<Dist> levels;
  friend bool operator==(const FloodOutcome&, const FloodOutcome&) = default;
};

FloodOutcome run_flood(const WeightedGraph& g, unsigned workers) {
  congest::Config cfg;
  cfg.workers = workers;
  cfg.execution.sharded_merge_min_messages = 0;  // the sharded-merge row
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  programs.reserve(g.node_count());
  const std::uint32_t bits = 32;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(std::make_unique<BfsFloodProgram>(0, bits));
  }
  congest::Simulator sim(g, cfg);
  FloodOutcome out;
  out.stats = sim.run(programs);
  out.levels.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.levels.push_back(
        static_cast<const BfsFloodProgram&>(*programs[v]).level());
  }
  return out;
}

// --- rows and JSON ----------------------------------------------------

struct Row {
  std::string workload;
  std::string variant;
  std::uint64_t n = 0;
  unsigned workers = 1;
  double seconds = 0;
  double speedup = 1.0;
  bool identical = true;
  double build_seconds = -1;   ///< < 0: column absent
  double peak_rss_ratio = -1;  ///< < 0: column absent
};

struct Spec {
  unsigned hardware_workers = 0;
  std::vector<unsigned> benched_workers;
  bool smoke = false;
  bool huge = false;
};

/// Acceptance verdicts for the out-of-core rows (ISSUE 10): the
/// external sort's child peak RSS must stay flat as the edge payload
/// grows 8x past the memory budget, and a service holding two mapped
/// specs of one bcsr must be resident-lighter than the same service
/// holding two owned copies (enforced only at tiers whose edge payload
/// dwarfs page-granularity noise; smoke passes vacuously).
struct OutOfCore {
  bool sort_rss_flat = true;
  bool mapped_residency_ok = true;
  double mapped_over_owned_rss = -1;  ///< < 0: not measured
};

std::string to_json(const Spec& spec, const std::vector<Row>& rows,
                    bool deterministic, bool rss_ok, double worst_ratio,
                    const OutOfCore& ooc) {
  std::ostringstream os;
  os << "{\n  \"spec\": {\"hardware_workers\": " << spec.hardware_workers
     << ", \"benched_workers\": [";
  for (std::size_t i = 0; i < spec.benched_workers.size(); ++i) {
    os << (i ? ", " : "") << spec.benched_workers[i];
  }
  os << "], \"smoke\": " << (spec.smoke ? "true" : "false")
     << ", \"huge\": " << (spec.huge ? "true" : "false")
     << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"workload\": \"" << r.workload << "\", \"variant\": \""
       << r.variant << "\", \"n\": " << r.n << ", \"workers\": " << r.workers
       << ", \"seconds\": " << r.seconds
       << ", \"speedup_vs_baseline\": " << r.speedup
       << ", \"identical\": " << (r.identical ? "true" : "false");
    if (r.build_seconds >= 0) os << ", \"build_seconds\": " << r.build_seconds;
    if (r.peak_rss_ratio >= 0) {
      os << ", \"peak_rss_ratio\": " << r.peak_rss_ratio;
    }
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"acceptance\": {"
     << "\"byte_identical_at_all_worker_counts\": "
     << (deterministic ? "true" : "false")
     << ", \"rss_ratio_ok\": " << (rss_ok ? "true" : "false")
     << ", \"worst_peak_rss_ratio\": " << worst_ratio
     << ", \"external_sort_rss_flat\": "
     << (ooc.sort_rss_flat ? "true" : "false")
     << ", \"mapped_residency_ok\": "
     << (ooc.mapped_residency_ok ? "true" : "false")
     << ", \"mapped_over_owned_rss\": " << ooc.mapped_over_owned_rss
     << "}\n}\n";
  return os.str();
}

struct Tier {
  std::string label;    ///< "rmat-s12", "chunglu-1e5", "rmat-s20"
  std::uint64_t n = 0;
  bool overlay = false; ///< run the alg4 overlay rows at this tier
};

}  // namespace
}  // namespace qc

int main(int argc, char** argv) {
  using namespace qc;
  bool smoke = false;
  bool huge = false;
  std::string out_path = "BENCH_datasets.json";
  std::string dir = "/tmp";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--huge") == 0) {
      huge = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<unsigned> benched_workers = {1, 2, 8};
  std::printf("dataset layer bench: %u hardware worker(s), scratch %s\n\n",
              hw, dir.c_str());

  std::vector<Row> rows;
  TextTable table({"workload", "variant", "n", "w", "wall s", "speedup",
                   "identical"});
  const auto push = [&](Row r) {
    table.add(r.workload, r.variant, r.n, r.workers, r.seconds, r.speedup,
              r.identical ? "yes" : "NO");
    rows.push_back(std::move(r));
  };

  bool all_identical = true;
  bool rss_ok = true;
  double worst_ratio = 0;
  OutOfCore ooc;

  // The smoke tier always runs, including in full runs: that way the
  // committed baseline carries the same (workload, variant, n) keys a
  // `--smoke` gate rerun produces, so tools/check_bench_regression.py
  // has rows to diff instead of degrading to an acceptance-only check.
  std::vector<Tier> tiers;
  tiers.push_back({"rmat-s12", 4096, true});
  if (!smoke) {
    tiers.push_back({"chunglu-1e5", 100000, true});
    if (huge) tiers.push_back({"rmat-s20", 1048576, false});
  }

  for (const Tier& tier : tiers) {
    const std::string bg = dir + "/qc_bench_" + tier.label + ".bg";
    const std::string bg_shuf = bg + ".shuf";
    const std::string bg_sorted = bg + ".sorted";
    const std::string bcsr = dir + "/qc_bench_" + tier.label + ".bcsr";

    // --- generate + pipeline rows -----------------------------------
    BGraphInfo info;
    double t_gen = 0;
    if (tier.label == "chunglu-1e5") {
      t_gen = time_of([&] {
        info = gen::chung_lu_bgraph(bg, 100000, 400000, 2.5, 100, 20260808);
      });
    } else if (tier.label == "rmat-s20") {
      t_gen = time_of([&] {
        info = gen::rmat_bgraph(bg, 20, 8000000, 100, 20260808);
      });
    } else {
      t_gen = time_of([&] {
        info = gen::rmat_bgraph(bg, 12, 16384, 100, 20260808);
      });
    }
    const std::uint64_t n = info.n;
    const double raw_edge_bytes = double(info.m) * kBGraphRecordBytes;
    std::printf("[%s] n=%llu m=%llu (%.1f MB raw edges)\n",
                tier.label.c_str(), (unsigned long long)n,
                (unsigned long long)info.m, raw_edge_bytes / 1048576.0);
    push({"dataset_pipeline", "generate " + tier.label, n, 1, t_gen, 1.0,
          true, -1, -1});

    const double t_shuf =
        time_of([&] { shuffle_bgraph(bg, bg_shuf, 4242); });
    push({"dataset_pipeline", "shuffle", n, 1, t_shuf, 1.0, true, -1, -1});

    // Sort the shuffled copy; identity = byte-equality with sorting the
    // pristine file (duplicate-freedom validated on the way).
    BGraphInfo sorted_info;
    const double t_sort = time_of(
        [&] { sorted_info = sort_bgraph(bg_shuf, bg_sorted); });
    const bool sort_same = sorted_info.m == info.m && sorted_info.sorted;
    all_identical &= sort_same;
    push({"dataset_pipeline", "sort", n, 1, t_sort, 1.0, sort_same, -1, -1});

    BGraphSummary summary;
    const double t_sum =
        time_of([&] { summary = summarize_bgraph(bg_sorted); });
    const bool sum_same =
        summary.info.m == info.m && summary.info.n == info.n;
    all_identical &= sum_same;
    push({"dataset_pipeline", "summarize", n, 1, t_sum, 1.0, sum_same, -1,
          -1});
    std::printf("[%s] max degree %llu, avg %.2f, isolated %llu\n",
                tier.label.c_str(), (unsigned long long)summary.max_degree,
                summary.avg_degree, (unsigned long long)summary.isolated);

    // --- streaming CSR build: child-process peak RSS ----------------
    // The < 3x bound is an asymptotic claim about the O(m) arrays; only
    // enforce it when the edge payload dwarfs page-granularity noise
    // (RSS deltas are page-rounded, so sub-MB files can't be judged).
    const ChildBuild cb = csr_build_in_child(bg_sorted);
    const double ratio =
        cb.ok && raw_edge_bytes > 0 ? cb.peak_rss_bytes / raw_edge_bytes : -1;
    const bool enforce_rss = raw_edge_bytes >= 4.0 * 1048576.0;
    const bool tier_rss_ok =
        cb.ok && (!enforce_rss || (ratio > 0 && ratio < 3.0));
    rss_ok &= tier_rss_ok;
    if (enforce_rss) worst_ratio = std::max(worst_ratio, ratio);
    Row build_row{"csr_build_stream", "two_pass", n, 1, cb.seconds, 1.0,
                  tier_rss_ok, cb.seconds, enforce_rss ? ratio : -1};
    push(build_row);
    std::printf(
        "[%s] stream CSR build %.2fs, child peak RSS %.1f MB "
        "(%.2fx raw edge bytes; target < 3x)\n",
        tier.label.c_str(), cb.seconds, cb.peak_rss_bytes / 1048576.0,
        ratio);

    // --- pack + mmap ------------------------------------------------
    CsrGraph owned = csr_from_bgraph(bg_sorted);
    const double t_pack = time_of([&] { write_csr(owned, bcsr); });
    push({"dataset_pipeline", "pack_csr", n, 1, t_pack, 1.0, true, -1, -1});

    CsrGraph mapped;
    const double t_map_validated =
        time_of([&] { mapped = map_csr(bcsr, /*validate_edges=*/true); });
    const double t_map_lazy =
        time_of([&] { mapped = map_csr(bcsr, /*validate_edges=*/false); });
    // Identity: the mapped view and the streamed build agree on a
    // Dijkstra row (cheap full-array proxy for the whole image).
    const bool map_same = dijkstra(mapped, 0) == dijkstra(owned, 0);
    all_identical &= map_same;
    push({"map_csr", "validated", n, 1, t_map_validated, 1.0, map_same, -1,
          -1});
    push({"map_csr", "lazy", n, 1, t_map_lazy,
          t_map_lazy > 0 ? t_map_validated / t_map_lazy : 0.0, map_same, -1,
          -1});

    // --- resident service memory: two mapped specs vs two owned ------
    // Each child brings up a QueryEngine with two graphs named over the
    // same dataset and answers one SSSP per graph. The owned child
    // loads two independent WeightedGraph copies from the bgraph; the
    // mapped child adds two .bcsr specs, which the engine keys to ONE
    // shared mapping. peak_rss_ratio records the child's footprint
    // over the raw edge bytes, so the committed baseline pins both
    // sides' growth.
    {
      const NodeId probe =
          static_cast<NodeId>(owned.node_count() > 1 ? owned.node_count() - 1
                                                     : 0);
      const auto serve_value = [probe](service::QueryEngine& engine) {
        service::Query q;
        q.type = "sssp";
        q.node = 0;
        q.target = probe;
        double sum = 0;
        for (const char* gname : {"a", "b"}) {
          q.graph = gname;
          const service::QueryResult r = engine.query(q);
          if (!r.ok) return -1.0;
          sum += r.value == kInfDist ? -1.0 : double(r.value);
        }
        return sum;
      };
      service::EngineOptions eopt;
      eopt.workers = 1;
      eopt.auto_dispatch = false;
      const ChildRun owned_run = run_in_child([&] {
        service::QueryEngine engine(eopt);
        WeightedGraph g = load_bgraph(bg_sorted);
        engine.add_graph("a", g);
        engine.add_graph("b", std::move(g));
        return serve_value(engine);
      });
      const ChildRun mapped_run = run_in_child([&] {
        service::QueryEngine engine(eopt);
        engine.add_graph_mapped("a", bcsr);
        engine.add_graph_mapped("b", bcsr);
        return serve_value(engine);
      });
      const bool answers_match = owned_run.ok && mapped_run.ok &&
                                 owned_run.value >= 0 &&
                                 owned_run.value == mapped_run.value;
      all_identical &= answers_match;
      push({"service_residency", "owned_x2", n, 1, owned_run.seconds, 1.0,
            answers_match, -1,
            raw_edge_bytes > 0 ? owned_run.peak_rss_bytes / raw_edge_bytes
                               : -1});
      push({"service_residency", "mapped_x2", n, 1, mapped_run.seconds, 1.0,
            answers_match, -1,
            raw_edge_bytes > 0 ? mapped_run.peak_rss_bytes / raw_edge_bytes
                               : -1});
      if (enforce_rss && owned_run.ok && mapped_run.ok &&
          owned_run.peak_rss_bytes > 0) {
        const double over = mapped_run.peak_rss_bytes /
                            owned_run.peak_rss_bytes;
        ooc.mapped_over_owned_rss =
            std::max(ooc.mapped_over_owned_rss, over);
        ooc.mapped_residency_ok &= over < 1.0;
      }
      std::printf(
          "[%s] service residency: owned x2 %.1f MB, mapped x2 %.1f MB\n",
          tier.label.c_str(), owned_run.peak_rss_bytes / 1048576.0,
          mapped_run.peak_rss_bytes / 1048576.0);
    }

    // --- sampled-source eccentricities at w = 1/2/8 -----------------
    {
      std::vector<NodeId> sources;
      const NodeId nn = owned.node_count();
      for (NodeId s = 0; s < nn; s += std::max<NodeId>(1, nn / 16)) {
        sources.push_back(s);
      }
      std::vector<Dist> golden;
      double t_base = 0;
      for (const unsigned w : benched_workers) {
        runtime::ThreadPool pool(w);
        std::vector<Dist> got;
        const double t = time_of(
            [&] { got = eccentricities(mapped, std::span(sources), &pool); });
        const bool same = w == 1 || got == golden;
        if (w == 1) {
          golden = std::move(got);
          t_base = t;
        }
        all_identical &= same;
        push({"ecc_sampled", "w=" + std::to_string(w), n, w, t,
              t > 0 ? t_base / t : 0.0, same, -1, -1});
      }
    }

    // --- BFS flood through the sharded merge at w = 1/2/8 -----------
    {
      const WeightedGraph g = load_bgraph(bg_sorted);
      FloodOutcome golden;
      double t_base = 0;
      for (const unsigned w : benched_workers) {
        FloodOutcome got;
        const double t = time_of([&] { got = run_flood(g, w); });
        const bool same = w == 1 || got == golden;
        if (w == 1) {
          golden = std::move(got);
          t_base = t;
        }
        all_identical &= same;
        push({"bfs_flood_sim", "sharded w=" + std::to_string(w), n, w, t,
              t > 0 ? t_base / t : 0.0, same, -1, -1});
      }

      // --- Algorithm 4 overlay (skipped at the 10^6 tier) -----------
      if (tier.overlay) {
        const NodeId nn = g.node_count();
        const std::size_t b = std::min<std::size_t>(8, nn);
        std::vector<NodeId> sources;
        for (std::size_t a = 0; a < b; ++a) {
          sources.push_back(static_cast<NodeId>(a * nn / b));
        }
        std::vector<std::vector<Dist>> approx_rows;
        approx_rows.reserve(b);
        for (const NodeId s : sources) approx_rows.push_back(dijkstra(g, s));
        const paths::Params params = paths::Params::make(nn, /*D=*/16);
        const auto run_overlay = [&](unsigned w) {
          congest::Config cfg;
          cfg.workers = w;
          return paths::distributed_embed_overlay(
              g, approx_rows,
              paths::RunRequest{}
                  .with_sources(sources)
                  .with_params(params)
                  .with_config(cfg));
        };
        paths::OverlayEmbedding golden_o;
        double t_base_o = 0;
        for (const unsigned w : benched_workers) {
          paths::OverlayEmbedding got;
          const double t = time_of([&] { got = run_overlay(w); });
          const bool same =
              w == 1 || (got.w1 == golden_o.w1 && got.w2 == golden_o.w2 &&
                         got.nearest_k == golden_o.nearest_k &&
                         got.max_w2 == golden_o.max_w2 &&
                         got.stats == golden_o.stats);
          if (w == 1) {
            golden_o = std::move(got);
            t_base_o = t;
          }
          all_identical &= same;
          push({"alg4_overlay", "w=" + std::to_string(w), n, w, t,
                t > 0 ? t_base_o / t : 0.0, same, -1, -1});
        }
      }
    }

    std::remove(bg.c_str());
    std::remove(bg_shuf.c_str());
    std::remove(bg_sorted.c_str());
    std::remove(bcsr.c_str());
  }

  // --- external sort: peak RSS flat as edges grow 8x past budget ------
  // Two road-like grids against one fixed 1 MiB budget (65536 records):
  // ~131k records (2x the budget) and ~1.08M records (16x — an 8x
  // growth). Each sort runs out of core in a forked child; its peak-RSS
  // delta must not track the input size (runs spill to disk; only one
  // budget's worth of records plus K merge buffers stay resident), and
  // its output must be byte-identical to the in-memory sort of the
  // same shuffled input. peak_rss_ratio here is the child's footprint
  // over the BUDGET (not raw edge bytes): the "budget + constant"
  // claim, pinned against the committed baseline.
  {
    const std::uint64_t budget = std::uint64_t{1} << 20;
    struct SortCase {
      const char* label;
      NodeId side;
    };
    const SortCase cases[] = {{"m=2x_budget", 210}, {"m=16x_budget", 600}};
    double case_rss[2] = {0, 0};
    bool cases_ok = true;
    std::size_t ci = 0;
    for (const SortCase& sc : cases) {
      const std::string raw =
          dir + "/qc_bench_extsort_" + std::to_string(sc.side) + ".bg";
      const std::string shuf = raw + ".shuf";
      const std::string mem = raw + ".mem";
      const std::string ext = raw + ".ext";
      const BGraphInfo ginfo =
          gen::grid_bgraph(raw, sc.side, sc.side, /*diagonal_p=*/1.0,
                           /*max_w=*/100, /*seed=*/20260808);
      shuffle_bgraph(raw, shuf, /*seed=*/777);
      sort_bgraph(shuf, mem);  // in-memory golden (default budget)
      const ChildRun cr = run_in_child([&] {
        sort_bgraph(shuf, ext, budget);
        return 0.0;
      });
      const bool same = cr.ok && files_byte_equal(mem, ext);
      all_identical &= same;
      cases_ok &= cr.ok;
      case_rss[ci++] = cr.peak_rss_bytes;
      push({"external_sort", sc.label, ginfo.n, 1, cr.seconds, 1.0, same,
            -1, cr.peak_rss_bytes / double(budget)});
      std::printf(
          "[extsort] %s: m=%llu (%.1f MB), child sort %.2fs, peak RSS "
          "%.1f MB (budget 1 MB)\n",
          sc.label, (unsigned long long)ginfo.m,
          double(ginfo.m) * kBGraphRecordBytes / 1048576.0, cr.seconds,
          cr.peak_rss_bytes / 1048576.0);
      std::remove(raw.c_str());
      std::remove(shuf.c_str());
      std::remove(mem.c_str());
      std::remove(ext.c_str());
    }
    // Flat = the 16x case costs at most the 2x case plus a slack that
    // covers the merge's K spill-read buffers and page rounding.
    ooc.sort_rss_flat =
        cases_ok && case_rss[1] <= case_rss[0] + 8.0 * 1048576.0;
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf("byte-identical at all worker counts: %s; worst peak-RSS "
              "ratio %.2fx (target < 3x): %s\n",
              all_identical ? "yes" : "NO", worst_ratio,
              rss_ok ? "ok" : "FAIL");
  std::printf("external sort RSS flat across 8x edge growth: %s; mapped "
              "residency vs owned: %s (%.2fx)\n",
              ooc.sort_rss_flat ? "yes" : "NO",
              ooc.mapped_residency_ok ? "ok" : "FAIL",
              ooc.mapped_over_owned_rss);

  Spec spec;
  spec.hardware_workers = hw;
  spec.benched_workers = benched_workers;
  spec.smoke = smoke;
  spec.huge = huge;
  runtime::write_file(
      out_path,
      to_json(spec, rows, all_identical, rss_ok, worst_ratio, ooc));
  std::printf("wrote %s\n", out_path.c_str());

  return (all_identical && rss_ok && ooc.sort_rss_flat &&
          ooc.mapped_residency_ok)
             ? 0
             : 1;
}
