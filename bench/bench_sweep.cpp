// Wall-clock benchmark of the sweep executor: the same 32-run grid
// executed by the serial reference loop and by the work-stealing pool at
// several worker counts. Also asserts the determinism contract on the
// way: every execution must produce byte-identical aggregated JSON.
//
// Round ledgers are unaffected by parallelism (each task is one
// single-threaded Simulator); the speedup here is experiment throughput,
// the quantity ROADMAP's "as fast as the hardware allows" refers to.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/baselines.h"
#include "graph/algorithms.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "util/table.h"

namespace {

using namespace qc;

runtime::SweepSpec make_spec(std::uint32_t seeds) {
  runtime::SweepSpec spec;
  spec.ns = {48, 64};
  spec.families = {"ER", "grid"};
  spec.seeds = seeds;  // 2 x 2 x seeds tasks
  spec.max_weight = 10;
  spec.base_seed = 2024;
  return spec;
}

runtime::TaskOutput run_cell(const runtime::SweepPoint&,
                             const WeightedGraph& g) {
  const auto classical = core::classical_unweighted_diameter(g);
  runtime::TaskOutput out;
  runtime::record_stats(out, classical.stats);
  out.metrics["diameter"] = double(classical.value);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seeds = std::uint32_t(argc > 1 ? std::atoi(argv[1]) : 8);
  const auto spec = make_spec(seeds);
  std::printf("sweep executor throughput: %zu tasks "
              "(classical APSP on ER/grid, n in {48,64})\n\n",
              spec.task_count());

  const auto serial = runtime::run_sweep_serial(spec, run_cell);
  const std::string golden = runtime::to_json(serial);

  TextTable t({"executor", "workers", "wall s", "speedup", "json identical"});
  t.add("serial loop", 1, serial.wall_seconds, 1.0, "-");

  bool all_identical = true;
  for (const unsigned workers : {2u, 4u, 8u}) {
    runtime::ThreadPool pool(workers);
    const auto parallel = runtime::run_sweep(spec, run_cell, pool);
    const bool identical = runtime::to_json(parallel) == golden;
    all_identical = all_identical && identical;
    t.add("work-stealing pool", workers, parallel.wall_seconds,
          parallel.wall_seconds > 0
              ? serial.wall_seconds / parallel.wall_seconds
              : 0.0,
          identical ? "yes" : "NO");
  }
  std::printf("%s", t.render().c_str());
  std::printf("\n(speedup tracks physical cores; determinism must hold at "
              "any worker count)\n");
  return all_identical ? 0 : 1;
}
