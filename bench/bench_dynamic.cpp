// Dynamic-update benchmark: delta-aware cache repair vs rebuild.
//
// The mutation API's reason to exist is that a small edge batch should
// not cost a from-scratch rebuild of the warm artifacts (CSR,
// eccentricity tables, toolkit d̃^ℓ rows). This bench pins that claim
// end to end through the service's "update" query type:
//
//  * correctness gates first — the same interleaved update/read script
//    must produce byte-identical response transcripts from the
//    incremental engine at workers 1/2/8 AND from the
//    rebuild-from-scratch engine (EngineOptions::incremental_updates =
//    false) at workers 1/2/8: six transcripts, one equivalence class;
//  * then timing — each workload replays rounds of 8-edge update
//    batches interleaved with reads (eccentricity / diameter sweeps,
//    toolkit-backed approx_distance, Theorem 1.1 estimates), and the
//    row reports seconds per variant plus the incremental-over-scratch
//    speedup;
//  * writes BENCH_dynamic.json; in full mode exits nonzero unless the
//    n = 65536 incremental/scratch speedup clears the 2x acceptance
//    floor (measured ratios are far higher — scratch re-pays every
//    warm table per batch where incremental repairs only the rows the
//    Lemma certificates actually invalidate).
//
// Instances are weighted grids (weights in [1, 64]) plus 64 extra
// edges, and each workload streams the update mix its warm artifact
// calls for (all ops validated against a local mirror, so every op is
// legal by construction):
//
//  * toolkit-bound workloads (mixed/approx): long-range chords in
//    [120, 128], ~80% chord reweights. Chord 0 is pinned at the
//    maximum weight 128 and never touched, so the stream cannot change
//    HopScale{ℓ, 1/ε, max weight} and the toolkit's rebind_params
//    fast path stays live. Global updates are fine here: the d̃^ℓ row
//    certificate is ℓ-local, so most rows survive anyway.
//  * the ecc workload: redundant diagonal "backup links" in
//    [129, 255] (never on any shortest path — a two-grid-edge
//    alternative costs <= 128), ~70% backup reweights plus occasional
//    consequential grid jitter. Eccentricity repair is per-source
//    global — an average sparse-graph edge is tight for ~n/2 sources —
//    so redundant-link maintenance is the regime where delta repair
//    wins, and the certificate proves each batch (mostly) irrelevant.
//
// Usage: bench_dynamic [--smoke] [--out FILE]
//   --smoke   tiny instance for ctest (correctness + JSON, no timing
//             claims)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "runtime/sweep.h"
#include "service/query_engine.h"
#include "service/wire.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace qc;
using service::EngineOptions;
using service::Query;
using service::QueryEngine;
using service::QueryResult;

using Clock = std::chrono::steady_clock;

constexpr unsigned kWorkerCounts[] = {1, 2, 8};

std::uint64_t edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (std::uint64_t(u) << 32) | v;
}

/// One benchmark instance: the graph plus the deterministic
/// update/read script every engine configuration replays verbatim.
/// `prelude` is the untimed warm-up pass (both variants start from the
/// same steady warm state); `script` is the timed interleave.
struct Workload {
  std::string name;
  NodeId n = 0;
  WeightedGraph graph{1};
  std::vector<Query> prelude;
  std::vector<Query> script;
  std::size_t rounds = 0;
  std::size_t updates = 0;  ///< update queries in `script`
  std::size_t reads = 0;    ///< read queries in `script`
};

/// side x side grid, weights in [1, 64], plus 64 extra edges.
///
/// Global style: the extras are uniform long-range chords in
/// [120, 128]; chords[0] is the pinned max-weight chord the stream
/// never touches (it holds HopScale's max-weight identity fixed so the
/// toolkit's rebind_params fast path stays live).
///
/// Backup style: the extras are diagonal "redundant links" in
/// [129, 255]. A diagonal (r,c)-(r+1,c±1) always has a two-grid-edge
/// alternative of cost <= 128 < 129, so no shortest path ever uses a
/// backup edge — mutating one is provably consequence-free, which is
/// exactly what the tight-edge certificate is for.
WeightedGraph make_instance(NodeId side,
                            std::vector<std::pair<NodeId, NodeId>>& chords,
                            bool backup_style) {
  Rng rng(0xd1a0ull + side);
  WeightedGraph g = gen::randomize_weights(gen::grid(side, side), 64, rng);
  const NodeId n = g.node_count();
  while (chords.size() < 64) {
    NodeId u, v;
    Weight w;
    if (backup_style) {
      const NodeId r = static_cast<NodeId>(rng.below(side - 1));
      const NodeId c = static_cast<NodeId>(rng.below(side));
      const std::int64_t nc = std::int64_t(c) + (rng.chance(0.5) ? 1 : -1);
      if (nc < 0 || nc >= side) continue;
      u = r * side + c;
      v = static_cast<NodeId>((r + 1) * side + nc);
      w = static_cast<Weight>(rng.between(129, 255));
    } else {
      u = static_cast<NodeId>(rng.below(n));
      v = static_cast<NodeId>(rng.below(n));
      w = chords.empty() ? 128 : static_cast<Weight>(rng.between(120, 127));
    }
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v, w);
    chords.emplace_back(u, v);
  }
  return g;
}

Query update_op(std::uint64_t id, const char* op, NodeId u, NodeId v,
                Weight w) {
  Query q;
  q.id = id;
  q.type = "update";
  q.op = op;
  q.node = u;
  q.target = v;
  q.weight = w;
  return q;
}

Query read_op(std::uint64_t id, const char* type, NodeId node = 0,
              NodeId target = 0, std::uint64_t seed = 1) {
  Query q;
  q.id = id;
  q.type = type;
  q.node = node;
  q.target = target;
  q.seed = seed;
  return q;
}

/// Builds the deterministic script: `rounds` rounds of 8 legal edge
/// mutations followed by the workload's read mix. Which reads run is
/// what differentiates the workloads — "ecc" exercises the
/// eccentricity-table delta repair, "approx" the toolkit row
/// invalidation, "mixed" both plus resident-toolkit Theorem 1.1
/// estimates.
///
/// `backup_updates` picks the mutation mix. The global mix (~80%
/// long-range chord reweights) is adversarial for eccentricity repair:
/// on a sparse graph an average edge is tight for ~n/2 sources (every
/// source's shortest-path tree uses n-1 of ~2n edges), so a
/// consequential random-edge update invalidates about half the table
/// and delta repair cannot beat one pooled rebuild. The ecc workload
/// therefore streams redundant-link maintenance — cost jitter on
/// backup edges no shortest path uses, plus occasional consequential
/// grid jitter — the regime where the certificate proves the batch
/// (mostly) irrelevant for 2·|endpoints| Dijkstras instead of
/// recomputing 4096 rows. The toolkit-bound workloads keep the global
/// mix precisely because the d̃^ℓ row certificate stays ℓ-local even
/// under global updates (perf.md "Dynamic updates" has the math).
void build_script(Workload& wl, std::vector<std::pair<NodeId, NodeId>> chords,
                  std::size_t rounds, bool ecc_reads, bool approx_reads,
                  bool t11_reads, bool backup_updates) {
  const NodeId n = wl.graph.node_count();
  const NodeId side = static_cast<NodeId>([&] {
    NodeId s = 1;
    while (s * s < n) ++s;
    return s;
  }());
  Rng rng(0x5c21ull * n + 7);

  // Mirror of the evolving edge set so generated ops are always legal.
  std::set<std::uint64_t> edges;
  for (const Edge& e : wl.graph.edges()) edges.insert(edge_key(e.u, e.v));
  std::vector<std::pair<NodeId, NodeId>> extras;  // stream-inserted chords

  // Fixed read pools: reusing the same sources/pairs across rounds is
  // the warm-cache regime the incremental claim is about.
  std::vector<NodeId> ecc_pool;
  for (std::size_t i = 0; i < 16; ++i) {
    ecc_pool.push_back(static_cast<NodeId>(rng.below(n)));
  }
  std::vector<std::pair<NodeId, NodeId>> approx_pool;
  for (std::size_t i = 0; i < 32; ++i) {
    approx_pool.emplace_back(static_cast<NodeId>(rng.below(n)),
                             static_cast<NodeId>(rng.below(n)));
  }

  std::uint64_t id = 0;

  // Untimed prelude: one pass over the read mix warms both variants to
  // the same steady state before the clock starts.
  if (ecc_reads) wl.prelude.push_back(read_op(++id, "diameter"));
  if (approx_reads) {
    for (const auto& [s, t] : approx_pool) {
      wl.prelude.push_back(read_op(++id, "approx_distance", s, t));
    }
  }
  if (t11_reads) {
    wl.prelude.push_back(read_op(++id, "t11_diameter", 0, 0, 1));
  }

  // Reweight one of the 64 pre-built extras (never index 0 — in global
  // style it is the pinned max-weight chord). Backup edges jitter in
  // [129, 255], staying strictly above any two-grid-edge alternative;
  // chords jitter in [120, 127], staying below the pin.
  const auto reweight_extra = [&](std::uint64_t qid) {
    const auto& [u, v] = chords[1 + rng.below(chords.size() - 1)];
    const Weight w = backup_updates
                         ? static_cast<Weight>(rng.between(129, 255))
                         : static_cast<Weight>(rng.between(120, 127));
    return update_op(qid, "reweight", u, v, w);
  };
  const auto reweight_grid = [&](std::uint64_t qid) {
    for (;;) {
      const NodeId u = static_cast<NodeId>(rng.below(n));
      const NodeId v = rng.chance(0.5) ? u + 1 : u + side;
      if (v < n && wl.graph.has_edge(u, v)) {
        return update_op(qid, "reweight", u, v,
                         static_cast<Weight>(rng.between(1, 64)));
      }
    }
  };
  // A fresh edge: a uniform long-range chord, or (backup mode) another
  // redundant diagonal.
  const auto insert_edge = [&](std::uint64_t qid) {
    for (;;) {
      NodeId u, v;
      Weight w;
      if (backup_updates) {
        const NodeId r = static_cast<NodeId>(rng.below(side - 1));
        const NodeId c = static_cast<NodeId>(rng.below(side));
        const std::int64_t nc = std::int64_t(c) + (rng.chance(0.5) ? 1 : -1);
        if (nc < 0 || nc >= side) continue;
        u = r * side + c;
        v = static_cast<NodeId>((r + 1) * side + nc);
        w = static_cast<Weight>(rng.between(129, 255));
      } else {
        u = static_cast<NodeId>(rng.below(n));
        v = static_cast<NodeId>(rng.below(n));
        w = static_cast<Weight>(rng.between(120, 127));
      }
      if (u == v || edges.count(edge_key(u, v))) continue;
      edges.insert(edge_key(u, v));
      extras.emplace_back(u, v);
      return update_op(qid, "insert", u, v, w);
    }
  };

  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t j = 0; j < 8; ++j) {
      const double roll = rng.uniform();
      ++id;
      // Global mix: 80% chord reweight / 10% grid reweight / 5% insert
      // / 5% remove. Backup mix: 70% backup reweight / 5% grid jitter
      // (the occasional consequential op) / 15% insert / 10% remove.
      const double p_extra = backup_updates ? 0.70 : 0.80;
      const double p_grid = backup_updates ? 0.05 : 0.10;
      const double p_ins = backup_updates ? 0.15 : 0.05;
      if (roll < p_extra) {
        wl.script.push_back(reweight_extra(id));
      } else if (roll < p_extra + p_grid) {
        wl.script.push_back(reweight_grid(id));
      } else if (roll < p_extra + p_grid + p_ins) {
        wl.script.push_back(insert_edge(id));
      } else if (!extras.empty()) {  // remove a stream-inserted edge
        const std::size_t k = rng.below(extras.size());
        const auto [u, v] = extras[k];
        extras.erase(extras.begin() + static_cast<std::ptrdiff_t>(k));
        edges.erase(edge_key(u, v));
        wl.script.push_back(update_op(id, "remove", u, v, 1));
      } else {
        wl.script.push_back(reweight_extra(id));
      }
      ++wl.updates;
    }
    if (ecc_reads) {
      for (const NodeId s : ecc_pool) {
        wl.script.push_back(read_op(++id, "eccentricity", s));
        ++wl.reads;
      }
      wl.script.push_back(read_op(++id, "diameter"));
      wl.script.push_back(read_op(++id, "radius"));
      wl.reads += 2;
    }
    if (approx_reads) {
      for (std::size_t i = 0; i < 16; ++i) {
        const auto& [s, t] = approx_pool[(round * 16 + i) % approx_pool.size()];
        wl.script.push_back(read_op(++id, "approx_distance", s, t));
        ++wl.reads;
      }
      const auto& [s, t] = approx_pool[round % approx_pool.size()];
      wl.script.push_back(read_op(++id, "sssp", s, t));
      ++wl.reads;
    }
    if (t11_reads) {
      wl.script.push_back(read_op(++id, "t11_diameter", 0, 0, round + 1));
      ++wl.reads;
    }
  }
  wl.rounds = rounds;
}

Workload make_workload(const std::string& name, NodeId side,
                       std::size_t rounds, bool ecc_reads, bool approx_reads,
                       bool t11_reads, bool backup_updates = false) {
  Workload wl;
  wl.name = name;
  std::vector<std::pair<NodeId, NodeId>> chords;
  wl.graph = make_instance(side, chords, backup_updates);
  wl.n = wl.graph.node_count();
  build_script(wl, std::move(chords), rounds, ecc_reads, approx_reads,
               t11_reads, backup_updates);
  return wl;
}

struct RunResult {
  std::string transcript;  ///< format_response of every reply, in order
  double seconds = 0;      ///< timed portion only (script, not prelude)
};

/// Replays the workload synchronously against one engine configuration
/// and returns the full response transcript plus the timed seconds.
RunResult run_config(const Workload& wl, bool incremental, unsigned workers) {
  EngineOptions opt;
  opt.workers = workers;
  opt.auto_dispatch = false;  // synchronous query() path; no dispatcher
  opt.incremental_updates = incremental;
  // Locality-friendly toolkit shape at large n: ε = 1 and r = n/4 keep
  // the first-level radius ℓ small so row refills stay bounded. Both
  // variants share the overrides, so the comparison is policy-only.
  opt.toolkit_eps_inv = 1;
  opt.toolkit_r_override = wl.n / 4;
  QueryEngine engine(opt);
  service::register_theorem11_handlers(engine);
  engine.add_graph("g0", wl.graph);

  RunResult out;
  for (const Query& q : wl.prelude) {
    out.transcript += service::format_response(engine.query(q));
    out.transcript += '\n';
  }
  // Consecutive updates go through submit + drain so the dispatcher
  // coalesces each round's batch into one GraphUpdate — one repair
  // pass per round, the shape the mutation API is designed around
  // (per-op synchronous apply would pay 8 repair passes). Reads stay
  // synchronous. Answers are identical either way (pinned by
  // tests/test_dynamic.cpp); responses keep script order.
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < wl.script.size();) {
    if (wl.script[i].type == "update") {
      std::vector<std::future<QueryResult>> futs;
      while (i < wl.script.size() && wl.script[i].type == "update") {
        futs.push_back(engine.submit(wl.script[i]));
        ++i;
      }
      while (engine.drain() > 0) {
      }
      for (auto& f : futs) {
        out.transcript += service::format_response(f.get());
        out.transcript += '\n';
      }
    } else {
      out.transcript += service::format_response(engine.query(wl.script[i]));
      out.transcript += '\n';
      ++i;
    }
  }
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

struct BenchRow {
  std::string workload;
  std::string variant;  // "incremental" | "scratch"
  NodeId n = 0;
  unsigned workers = 0;
  double seconds = 0;
  double speedup = 0;  ///< scratch seconds / incremental seconds (same w)
  bool identical = false;
};

std::string to_json(bool smoke, bool byte_identical, bool matches_scratch,
                    const std::vector<BenchRow>& rows, double speedup_65536,
                    bool speedup_ok) {
  std::ostringstream os;
  os << "{\n  \"spec\": {\"smoke\": " << (smoke ? "true" : "false")
     << ", \"hardware_workers\": " << std::thread::hardware_concurrency()
     << ", \"benched_workers\": [1, 2, 8], \"updates_per_round\": 8},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    // "speedup_vs_baseline" is incremental-over-scratch at the same
    // worker count (scratch rows carry 1.0) — named to match the
    // tools/check_bench_regression.py row schema.
    os << "    {\"workload\": \"" << r.workload << "\", \"variant\": \""
       << r.variant << "\", \"n\": " << r.n << ", \"workers\": " << r.workers
       << ", \"seconds\": " << r.seconds
       << ", \"speedup_vs_baseline\": " << r.speedup
       << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"acceptance\": {\"byte_identical_at_all_worker_counts\": "
     << (byte_identical ? "true" : "false")
     << ", \"identical_to_scratch\": " << (matches_scratch ? "true" : "false")
     << ", \"incremental_speedup_at_65536\": " << speedup_65536
     << ", \"incremental_speedup_ok\": " << (speedup_ok ? "true" : "false")
     << "}\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_dynamic.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  std::vector<Workload> workloads;
  if (smoke) {
    workloads.push_back(make_workload("mixed", 16, 2, true, true, true));
  } else {
    // Mixed stays small: one t11_diameter estimate costs minutes at
    // n >= 1024, and the Theorem 1.1 interleave is a coverage claim
    // (resident toolkit reuse across updates), not the speedup claim —
    // that is the n = 65536 approx workload's job.
    workloads.push_back(make_workload("mixed", 20, 4, true, true, true));
    workloads.push_back(
        make_workload("ecc", 64, 8, true, false, false, /*backup=*/true));
    workloads.push_back(make_workload("approx", 256, 10, false, true, false));
  }

  bool byte_identical = true;
  bool matches_scratch = true;
  double speedup_65536 = 0;
  std::vector<BenchRow> rows;

  for (const Workload& wl : workloads) {
    std::printf("workload %-7s n=%-6u  %zu rounds, %zu updates, %zu reads\n",
                wl.name.c_str(), wl.n, wl.rounds, wl.updates, wl.reads);
    std::vector<RunResult> inc, scr;
    for (const unsigned workers : kWorkerCounts) {
      inc.push_back(run_config(wl, /*incremental=*/true, workers));
      scr.push_back(run_config(wl, /*incremental=*/false, workers));
    }
    const std::string& ref = inc.front().transcript;
    for (std::size_t i = 0; i < inc.size(); ++i) {
      const bool inc_same = inc[i].transcript == ref;
      const bool scr_same = scr[i].transcript == ref;
      byte_identical &= inc_same && scr_same;
      matches_scratch &= scr_same;
      rows.push_back({wl.name, "incremental", wl.n, kWorkerCounts[i],
                      inc[i].seconds,
                      inc[i].seconds > 0 ? scr[i].seconds / inc[i].seconds : 0,
                      inc_same});
      rows.push_back({wl.name, "scratch", wl.n, kWorkerCounts[i],
                      scr[i].seconds, 1.0, scr_same});
    }
    if (wl.n == 65536) speedup_65536 = rows[rows.size() - 2].speedup;
  }

  TextTable table({"workload", "variant", "n", "workers", "seconds",
                   "speedup", "identical"});
  for (const BenchRow& r : rows) {
    table.add(r.workload, r.variant, r.n, r.workers, r.seconds, r.speedup,
              r.identical ? "yes" : "NO");
  }
  std::printf("\n%s\n", table.render().c_str());

  const bool speedup_ok = smoke || speedup_65536 >= 2.0;
  std::printf("byte-identical across workers 1/2/8: %s; incremental == "
              "scratch: %s",
              byte_identical ? "ok" : "FAIL",
              matches_scratch ? "ok" : "FAIL");
  if (!smoke) {
    std::printf("; n=65536 incremental speedup = %.1fx (floor 2x): %s",
                speedup_65536, speedup_ok ? "ok" : "FAIL");
  }
  std::printf("\n");

  runtime::write_file(out_path,
                      to_json(smoke, byte_identical, matches_scratch, rows,
                              speedup_65536, smoke ? true : speedup_ok));
  std::printf("wrote %s\n", out_path.c_str());

  if (!byte_identical || !matches_scratch) return 1;
  if (!smoke && !speedup_ok) return 2;
  return 0;
}
