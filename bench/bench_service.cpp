// Warm-vs-cold benchmark of the resident query service (src/service).
//
// The QueryEngine's reason to exist is amortization: resident CSR,
// eccentricity tables, and toolkit rows answer repeated queries at
// lookup cost, where the batch drivers re-paid construction per
// invocation. This bench pins that claim:
//
//  * correctness gates first — the concurrent engine must return
//    byte-identical results to a serial single-worker replay at 1/2/8
//    workers with 4 concurrent clients, at batch size 1 vs max, and
//    from per-query cold engines (the ISSUE's determinism acceptance
//    criteria, also pinned by tests/test_service.cpp);
//  * then timing — closed-loop clients (1, 4, 16) against one warm
//    resident engine vs per-query cold construction (fresh engine +
//    graph copy per query, the old drivers' shape), reporting
//    throughput and p50/p95 latency per configuration;
//  * writes BENCH_service.json; in full mode exits nonzero unless the
//    1-client warm/cold throughput ratio clears 2x (the acceptance
//    floor — measured ratios are far higher).
//
// Usage: bench_service [--smoke] [--n N] [--queries Q] [--out FILE]
//   --smoke   tiny instance for ctest (correctness + JSON, no timing
//             claims)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "runtime/sweep.h"
#include "service/query_engine.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace qc;
using service::EngineOptions;
using service::Query;
using service::QueryEngine;
using service::QueryResult;

using Clock = std::chrono::steady_clock;

/// Deterministic mixed workload over every built-in plus the unweighted
/// extension — a pure function of (count, n), so every engine shape
/// replays the identical stream.
std::vector<Query> make_queries(std::size_t count, NodeId n) {
  static const char* kTypes[] = {"diameter",
                                 "radius",
                                 "eccentricity",
                                 "sssp",
                                 "approx_distance",
                                 "unweighted_diameter"};
  std::vector<Query> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    q.id = i + 1;
    q.type = kTypes[i % (sizeof(kTypes) / sizeof(kTypes[0]))];
    q.node = static_cast<NodeId>((i * 13) % n);
    q.target = static_cast<NodeId>((i * 7 + 1) % n);
    qs.push_back(q);
  }
  return qs;
}

std::unique_ptr<QueryEngine> make_engine(const WeightedGraph& g,
                                         unsigned workers,
                                         bool auto_dispatch) {
  EngineOptions opt;
  opt.workers = workers;
  opt.auto_dispatch = auto_dispatch;
  auto engine = std::make_unique<QueryEngine>(opt);
  service::register_unweighted_handlers(*engine);
  engine->add_graph("g0", g);
  return engine;
}

std::map<std::uint64_t, QueryResult> reference_results(
    const WeightedGraph& g, const std::vector<Query>& qs) {
  const auto engine = make_engine(g, 1, /*auto_dispatch=*/false);
  std::map<std::uint64_t, QueryResult> out;
  for (const Query& q : qs) out[q.id] = engine->query(q);
  return out;
}

/// One cold answer, the old drivers' shape: fresh engine, fresh graph
/// copy (cold CSR/tables), one query, teardown.
QueryResult cold_query(const WeightedGraph& g, const Query& q,
                       unsigned workers) {
  const auto engine = make_engine(g, workers, /*auto_dispatch=*/false);
  return engine->query(q);
}

bool check_worker_and_client_invariance(
    const WeightedGraph& g, const std::vector<Query>& qs,
    const std::map<std::uint64_t, QueryResult>& ref) {
  bool ok = true;
  for (const unsigned workers : {1u, 2u, 8u}) {
    const auto engine = make_engine(g, workers, /*auto_dispatch=*/true);
    constexpr std::size_t kClients = 4;
    std::vector<std::vector<std::pair<std::uint64_t, QueryResult>>> got(
        kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < qs.size(); i += kClients) {
          got[c].emplace_back(qs[i].id, engine->submit(qs[i]).get());
        }
      });
    }
    for (auto& t : clients) t.join();
    for (const auto& per_client : got) {
      for (const auto& [id, r] : per_client) ok &= r == ref.at(id);
    }
  }
  return ok;
}

bool check_batch_invariance(const WeightedGraph& g,
                            const std::vector<Query>& qs,
                            const std::map<std::uint64_t, QueryResult>& ref) {
  bool ok = true;
  for (const std::size_t max_batch : {std::size_t{1}, qs.size()}) {
    EngineOptions opt;
    opt.workers = 2;
    opt.auto_dispatch = false;
    opt.max_batch = max_batch;
    QueryEngine engine(opt);
    service::register_unweighted_handlers(engine);
    engine.add_graph("g0", g);
    std::vector<std::pair<std::uint64_t, std::future<QueryResult>>> futs;
    for (const Query& q : qs) futs.emplace_back(q.id, engine.submit(q));
    while (engine.drain() > 0) {
    }
    for (auto& [id, fut] : futs) ok &= fut.get() == ref.at(id);
  }
  return ok;
}

struct TimedRow {
  std::string mode;
  std::size_t clients = 0;
  std::size_t queries = 0;
  double wall_s = 0;
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

TimedRow aggregate_row(std::string mode, std::size_t clients,
                       std::size_t queries, double wall,
                       std::vector<double> latencies) {
  const auto agg = runtime::Aggregate::of(std::move(latencies));
  TimedRow row;
  row.mode = std::move(mode);
  row.clients = clients;
  row.queries = queries;
  row.wall_s = wall;
  row.qps = wall > 0 ? double(queries) / wall : 0.0;
  row.p50_ms = agg.p50 * 1e3;
  row.p95_ms = agg.p95 * 1e3;
  return row;
}

/// Closed-loop clients against the shared warm engine: each submits its
/// slice one query at a time and waits for the answer.
TimedRow run_warm(QueryEngine& engine, const std::vector<Query>& qs,
                  std::size_t clients) {
  std::vector<std::vector<double>> lat(clients);
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < qs.size(); i += clients) {
        const auto q0 = Clock::now();
        engine.submit(qs[i]).get();
        lat[c].push_back(
            std::chrono::duration<double>(Clock::now() - q0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> merged;
  for (auto& per_client : lat) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  return aggregate_row("warm", clients, qs.size(), wall, std::move(merged));
}

/// The same closed loop, but every query pays full construction.
TimedRow run_cold(const WeightedGraph& g, const std::vector<Query>& qs,
                  std::size_t clients, unsigned workers) {
  std::vector<std::vector<double>> lat(clients);
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < qs.size(); i += clients) {
        const auto q0 = Clock::now();
        cold_query(g, qs[i], workers);
        lat[c].push_back(
            std::chrono::duration<double>(Clock::now() - q0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> merged;
  for (auto& per_client : lat) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  return aggregate_row("cold", clients, qs.size(), wall, std::move(merged));
}

std::string to_json(const WeightedGraph& g, std::size_t queries, bool smoke,
                    bool det_workers, bool det_batch, bool det_cold,
                    const std::vector<TimedRow>& rows, double speedup,
                    bool meets_2x) {
  std::ostringstream os;
  os << "{\n  \"spec\": {\"n\": " << g.node_count()
     << ", \"m\": " << g.edge_count() << ", \"queries\": " << queries
     << ", \"smoke\": " << (smoke ? "true" : "false") << "},\n"
     << "  \"determinism\": {\"workers_1_2_8_with_4_clients\": "
     << (det_workers ? "true" : "false")
     << ", \"batch_1_vs_max\": " << (det_batch ? "true" : "false")
     << ", \"cold_matches_warm\": " << (det_cold ? "true" : "false")
     << "},\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TimedRow& r = rows[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"clients\": " << r.clients
       << ", \"queries\": " << r.queries << ", \"wall_s\": " << r.wall_s
       << ", \"qps\": " << r.qps << ", \"p50_ms\": " << r.p50_ms
       << ", \"p95_ms\": " << r.p95_ms << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"acceptance\": {\"warm_over_cold_speedup_1client\": "
     << speedup << ", \"meets_2x\": " << (meets_2x ? "true" : "false")
     << "}\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  NodeId n = 512;
  std::size_t queries = 384;
  bool smoke = false;
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      n = 64;
      queries = 48;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<NodeId>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  Rng rng(2022);
  auto g = gen::randomize_weights(
      gen::erdos_renyi_connected(n, 8.0 / double(n), rng), 10, rng);

  const auto qs = make_queries(queries, n);
  // Cold mode rebuilds everything per query; cap its sample so the
  // bench stays minutes-free while qps stays per-mode honest.
  const std::size_t cold_count = std::min<std::size_t>(queries, 48);
  const std::vector<Query> cold_qs(qs.begin(), qs.begin() + cold_count);

  // --- correctness gates (always, before any timing) ---
  const auto ref = reference_results(g, qs);
  const bool det_workers = check_worker_and_client_invariance(g, qs, ref);
  const bool det_batch = check_batch_invariance(g, qs, ref);
  bool det_cold = true;
  for (const Query& q : cold_qs) {
    det_cold &= cold_query(g, q, 1) == ref.at(q.id);
  }
  const bool deterministic = det_workers && det_batch && det_cold;

  // --- timing: one warm resident engine vs per-query cold builds ---
  const auto warm_engine = make_engine(g, 0, /*auto_dispatch=*/true);
  warm_engine->warm_all();
  const std::vector<std::size_t> client_counts =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 4, 16};
  std::vector<TimedRow> rows;
  for (const std::size_t clients : client_counts) {
    rows.push_back(run_warm(*warm_engine, qs, clients));
  }
  for (const std::size_t clients : client_counts) {
    rows.push_back(run_cold(g, cold_qs, clients, 0));
  }

  const double warm_qps = rows.front().qps;
  const double cold_qps = rows[client_counts.size()].qps;
  const double speedup = cold_qps > 0 ? warm_qps / cold_qps : 0.0;
  const bool meets_2x = speedup >= 2.0;

  TextTable table({"mode", "clients", "queries", "wall s", "qps", "p50 ms",
                   "p95 ms"});
  for (const TimedRow& r : rows) {
    table.add(r.mode, r.clients, r.queries, r.wall_s, r.qps, r.p50_ms,
              r.p95_ms);
  }
  std::printf("service warm-vs-cold: %s, %zu queries\n\n%s\n",
              g.summary().c_str(), queries, table.render().c_str());
  std::printf("determinism: workers=%s batch=%s cold=%s; warm/cold speedup "
              "(1 client) = %.1fx\n",
              det_workers ? "ok" : "FAIL", det_batch ? "ok" : "FAIL",
              det_cold ? "ok" : "FAIL", speedup);

  runtime::write_file(out_path,
                      to_json(g, queries, smoke, det_workers, det_batch,
                              det_cold, rows, speedup, meets_2x));
  std::printf("wrote %s\n", out_path.c_str());

  if (!deterministic) return 1;
  if (!smoke && !meets_2x) return 2;
  return 0;
}
