// Regenerates Figure 1: the base lower-bound network G — a binary tree
// of height h stitched to m = 2s+ℓ disjoint paths, with Alice's and
// Bob's parts attached at the path endpoints. Prints the node/edge
// inventory per h, verifies that the unweighted diameter is Θ(h) =
// Θ(log n), and emits a DOT rendering of the smallest instance.
#include <cstdio>

#include "graph/algorithms.h"
#include "lowerbound/gadget.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::lb;

  std::printf("Figure 1 reproduction — the lower-bound network G\n\n");
  TextTable t({"h", "s", "ell", "paths m", "n (formula)", "n (built)",
               "edges", "unweighted D", "D/h", "connected"});
  Rng rng(1);
  for (std::uint32_t h : {2u, 4u, 6u}) {
    const auto p = GadgetParams::paper(h);
    const auto in = random_input(1ull << p.s, p.ell, rng);
    const Gadget g(p, in, false);
    const Dist d = unweighted_diameter(g.graph());
    t.add(h, p.s, p.ell, p.paths(), p.node_count(),
          g.graph().node_count(), g.graph().edge_count(), d,
          static_cast<double>(d) / h, g.graph().is_connected());
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("The D/h column staying O(1) while n grows as 2^{3h/2} is the "
              "paper's 'even when D = Theta(log n)' condition.\n\n");

  // Small DOT rendering (tree + paths only would be unreadable with the
  // cliques; we print the V_S part of the h=2 instance).
  const auto p = GadgetParams::paper(2);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  WeightedGraph vs_part(g.graph().node_count());
  for (const Edge& e : g.graph().edges()) {
    if (g.side(e.u) == Side::kServer && g.side(e.v) == Side::kServer) {
      vs_part.add_edge(e.u, e.v, e.weight);
    }
  }
  std::printf("DOT of V_S for h=2 (tree + %u paths):\n%s\n", p.paths(),
              to_dot(vs_part, "Fig1_VS").c_str());
  return 0;
}
