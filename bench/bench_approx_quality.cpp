// Ablation of the approximation machinery (Lemmas 3.2 / 3.3): the
// realized approximation ratio of d̃^ℓ and d̃_{G,w,S} across graph
// families, weight ranges, and the Eq. (1) parameter choices — showing
// the measured quality sits comfortably inside the proven (1+ε)² bound.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "paths/params.h"
#include "paths/reference.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::paths;

  std::printf("Approximation quality (Lemmas 3.2 / 3.3)\n\n");

  struct Family {
    const char* name;
    WeightedGraph g;
  };
  Rng rng(21);
  std::vector<Family> families;
  families.push_back({"ER (D~log n)", gen::randomize_weights(
                                          gen::erdos_renyi_connected(
                                              64, 0.12, rng),
                                          16, rng)});
  families.push_back(
      {"grid 8x8", gen::randomize_weights(gen::grid(8, 8), 16, rng)});
  families.push_back(
      {"path_of_cliques", gen::randomize_weights(
                              gen::path_of_cliques(12, 5), 16, rng)});
  families.push_back(
      {"star+chords", gen::randomize_weights(gen::star(64), 16, rng)});

  TextTable t({"family", "n", "D", "eps", "max ratio d~ vs d", "bound "
               "(1+eps)^2", "mean ratio", "pairs"});
  for (const auto& fam : families) {
    const auto& g = fam.g;
    const NodeId n = g.node_count();
    const Dist d = unweighted_diameter(g);
    const auto params = Params::make(n, std::max<Dist>(1, d));
    ToolkitCache cache(g, params);

    // Sample a few sets and measure the realized ratio of the final
    // approximate distances.
    Rng srng(7);
    double max_ratio = 0;
    double sum_ratio = 0;
    std::size_t pairs = 0;
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<NodeId> set;
      for (NodeId v = 0; v < n; ++v) {
        if (srng.chance(double(params.r) / n)) set.push_back(v);
      }
      if (set.empty()) set.push_back(srng.below(n));
      const auto sk = cache.skeleton(set);
      const double scale = double(sk.total_scale());
      for (std::uint32_t s = 0; s < sk.size(); ++s) {
        const auto exact = dijkstra(g, sk.members[s]);
        for (NodeId v = 0; v < n; ++v) {
          if (exact[v] == 0) continue;
          const double ratio =
              double(sk.approx_distance(s, v)) / (scale * double(exact[v]));
          max_ratio = std::max(max_ratio, ratio);
          sum_ratio += ratio;
          ++pairs;
        }
      }
    }
    const double eps = params.epsilon();
    t.add(fam.name, n, d, eps, max_ratio, (1 + eps) * (1 + eps),
          pairs ? sum_ratio / double(pairs) : 0.0, pairs);
  }
  std::printf("%s\n", t.render().c_str());

  // Epsilon sweep on one family: tightening eps tightens the realized
  // ratio (and raises the round cost via more scales / longer caps).
  std::printf("-- eps sweep (ER n=48): realized ratio and scale count "
              "--\n");
  TextTable e({"eps_inv", "max ratio", "bound", "weight scales",
               "rounded cap"});
  Rng rng2(31);
  const auto g = gen::randomize_weights(
      gen::erdos_renyi_connected(48, 0.15, rng2), 12, rng2);
  for (const std::uint32_t eps_inv : {1u, 2u, 4u, 8u, 16u}) {
    const HopScale hs{48, eps_inv, g.max_weight()};
    double max_ratio = 0;
    for (NodeId s = 0; s < 48; s += 11) {
      const auto approx = approx_bounded_hop_from(g, s, hs);
      const auto exact = dijkstra(g, s);
      for (NodeId v = 0; v < 48; ++v) {
        if (exact[v] == 0 || approx[v] >= kInfDist) continue;
        max_ratio = std::max(
            max_ratio, double(approx[v]) / (double(hs.sigma()) *
                                            double(exact[v])));
      }
    }
    e.add(eps_inv, max_ratio, 1.0 + 1.0 / eps_inv, hs.scale_count(),
          hs.rounded_cap());
  }
  std::printf("%s", e.render().c_str());
  return 0;
}
