// Ablation of the approximation machinery (Lemmas 3.2 / 3.3): the
// realized approximation ratio of d̃^ℓ and d̃_{G,w,S} across graph
// families, weight ranges, and the Eq. (1) parameter choices — showing
// the measured quality sits comfortably inside the proven (1+ε)² bound.
//
// Both sweeps (family table, ε ablation) run on the sweep executor:
// each cell builds its own graph and toolkit in parallel, and the
// printed numbers are the deterministic per-cell aggregates.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "paths/params.h"
#include "paths/reference.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "util/table.h"

namespace {

using namespace qc;
using namespace qc::paths;

/// Realized ratio of the skeleton's approximate distances vs exact
/// Dijkstra over a few sampled sets (the Lemma 3.3 machinery).
runtime::TaskOutput measure_family(const runtime::SweepPoint& p,
                                   const WeightedGraph& g) {
  const NodeId n = g.node_count();
  const Dist d = unweighted_diameter(g);
  const auto params = Params::make(n, std::max<Dist>(1, d));
  ToolkitCache cache(g, params);

  Rng srng(runtime::derive_seed(p.seed, 7));
  double max_ratio = 0;
  double sum_ratio = 0;
  std::size_t pairs = 0;
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<NodeId> set;
    for (NodeId v = 0; v < n; ++v) {
      if (srng.chance(double(params.r) / n)) set.push_back(v);
    }
    if (set.empty()) set.push_back(srng.below(n));
    const auto sk = cache.skeleton(set);
    const double scale = double(sk.total_scale());
    for (std::uint32_t s = 0; s < sk.size(); ++s) {
      const auto exact = dijkstra(g, sk.members[s]);
      for (NodeId v = 0; v < n; ++v) {
        if (exact[v] == 0) continue;
        const double ratio =
            double(sk.approx_distance(s, v)) / (scale * double(exact[v]));
        max_ratio = std::max(max_ratio, ratio);
        sum_ratio += ratio;
        ++pairs;
      }
    }
  }
  runtime::TaskOutput out;
  out.metrics["n"] = double(n);
  out.metrics["D"] = double(d);
  out.metrics["eps"] = params.epsilon();
  out.metrics["max_ratio"] = max_ratio;
  out.metrics["mean_ratio"] = pairs ? sum_ratio / double(pairs) : 0.0;
  out.metrics["pairs"] = double(pairs);
  return out;
}

/// ε ablation (Lemma 3.2 machinery): tightening ε tightens the realized
/// hop-bounded ratio and raises the cost via more scales/longer caps.
runtime::TaskOutput measure_eps(const runtime::SweepPoint& p,
                                const WeightedGraph& g) {
  const NodeId n = g.node_count();
  const HopScale hs{n, p.eps_inv, g.max_weight()};
  double max_ratio = 0;
  for (NodeId s = 0; s < n; s += 11) {
    const auto approx = approx_bounded_hop_from(g, s, hs);
    const auto exact = dijkstra(g, s);
    for (NodeId v = 0; v < n; ++v) {
      if (exact[v] == 0 || approx[v] >= kInfDist) continue;
      max_ratio = std::max(
          max_ratio, double(approx[v]) / (double(hs.sigma()) *
                                          double(exact[v])));
    }
  }
  runtime::TaskOutput out;
  out.metrics["max_ratio"] = max_ratio;
  out.metrics["weight_scales"] = double(hs.scale_count());
  out.metrics["rounded_cap"] = double(hs.rounded_cap());
  return out;
}

double cell_metric(const runtime::SweepCell& cell, const char* name) {
  const auto it = cell.metrics.find(name);
  return it == cell.metrics.end() ? 0.0 : it->second.mean;
}

}  // namespace

int main() {
  std::printf("Approximation quality (Lemmas 3.2 / 3.3)\n\n");
  runtime::ThreadPool pool;

  runtime::SweepSpec families;
  families.ns = {64};
  families.families = {"ER", "grid", "cliques", "star"};
  families.seeds = 2;
  families.max_weight = 16;
  families.base_seed = 21;
  const auto fam = runtime::run_sweep(families, measure_family, pool);

  TextTable t({"family", "n", "D", "eps", "max ratio d~ vs d", "bound "
               "(1+eps)^2", "mean ratio", "pairs"});
  for (const auto& cell : fam.cells) {
    const double eps = cell_metric(cell, "eps");
    t.add(cell.family, cell_metric(cell, "n"), cell_metric(cell, "D"), eps,
          cell.metrics.at("max_ratio").max, (1 + eps) * (1 + eps),
          cell_metric(cell, "mean_ratio"), cell_metric(cell, "pairs"));
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("-- eps sweep (ER n=48): realized ratio and scale count "
              "--\n");
  runtime::SweepSpec ablation;
  ablation.ns = {48};
  ablation.families = {"ER"};
  ablation.seeds = 1;
  ablation.eps_invs = {1, 2, 4, 8, 16};
  ablation.max_weight = 12;
  ablation.base_seed = 31;
  const auto eps_sweep = runtime::run_sweep(ablation, measure_eps, pool);

  TextTable e({"eps_inv", "max ratio", "bound", "weight scales",
               "rounded cap"});
  for (const auto& cell : eps_sweep.cells) {
    e.add(cell.eps_inv, cell_metric(cell, "max_ratio"),
          1.0 + 1.0 / cell.eps_inv, cell_metric(cell, "weight_scales"),
          cell_metric(cell, "rounded_cap"));
  }
  std::printf("%s", e.render().c_str());
  return fam.failures + eps_sweep.failures == 0 ? 0 : 1;
}
