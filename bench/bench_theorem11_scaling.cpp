// Regenerates the headline result (Theorem 1.1): measured round
// complexity of the quantum weighted diameter/radius algorithm versus
// n and D, against the paper's Õ(min{n^{9/10} D^{3/10}, n}) bound and
// the classical Θ̃(n) baseline.
//
// Series reported:
//  * low-D family (connected ER, D ≈ log n): the advantage regime
//    D = o(n^{1/3});
//  * high-D family (path of cliques, D ≈ n/c): the regime where the
//    min{..., n} cap bites and the advantage disappears;
//  * a log-log power-law fit of measured rounds vs n per family.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/baselines.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/mathx.h"
#include "util/table.h"

namespace {

using namespace qc;

struct Sample {
  NodeId n;
  Dist d;
  std::uint64_t rounds;
  double ratio;
  double model;
};

Sample run_one(const WeightedGraph& g, std::uint64_t seed_base) {
  Sample s;
  s.n = g.node_count();
  s.d = unweighted_diameter(g);
  s.rounds = 0;
  s.ratio = 0;
  const int reps = 3;  // average out the sampling/Grover randomness
  for (int rep = 0; rep < reps; ++rep) {
    core::Theorem11Options opt;
    opt.seed = seed_base + static_cast<std::uint64_t>(rep) * 101;
    opt.validate_distributed = rep == 0;  // validate once per point
    const auto res = core::quantum_weighted_diameter(g, opt);
    s.rounds += res.rounds;
    s.ratio = std::max(s.ratio, res.ratio);
  }
  s.rounds /= reps;
  s.model = core::model::theorem11_rounds(s.n, s.d);
  return s;
}

// The Õ(·) in Theorem 1.1 hides ~log⁴ n: ε⁻¹ = log n lengthens the
// per-scale caps, the scale count is another log, Algorithm 3's window
// stretch is a log, and the search budgets carry √log factors. At the
// small n a simulator can execute, those factors dominate the fit, so
// we report both the raw exponent and the exponent after dividing the
// measurement by log⁴ n.
double log4(double n) {
  const double l = std::log2(n);
  return l * l * l * l;
}

void run_family(const char* name,
                const std::vector<WeightedGraph>& graphs) {
  std::printf("-- family: %s --\n", name);
  TextTable t({"n", "D", "measured rounds (avg 3 seeds)",
               "model n^.9 D^.3 polylog", "classical model ~n log n",
               "rounds/log^4", "max approx ratio"});
  std::vector<double> ns, rounds, corrected;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto s = run_one(graphs[i], 1000 + i);
    const double corr = static_cast<double>(s.rounds) / log4(double(s.n));
    t.add(s.n, s.d, s.rounds, s.model,
          core::model::classical_weighted_rounds(s.n), corr, s.ratio);
    ns.push_back(static_cast<double>(s.n));
    rounds.push_back(static_cast<double>(s.rounds));
    corrected.push_back(corr);
  }
  std::printf("%s", t.render().c_str());
  if (ns.size() >= 2) {
    const auto [e_raw, c1] = fit_power_law(ns, rounds);
    const auto [e_cor, c2] = fit_power_law(ns, corrected);
    std::printf("  measured rounds ~ n^%.3f raw; ~ n^%.3f after removing "
                "log^4 n (paper bound exponent at fixed D: 0.9; at D~n: "
                "1.0)\n\n",
                e_raw, e_cor);
    (void)c1;
    (void)c2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = argc > 1 && std::strcmp(argv[1], "--large") == 0;
  std::printf("Theorem 1.1 scaling — measured CONGEST rounds of the quantum "
              "weighted diameter\n\n");

  std::vector<WeightedGraph> low_d;
  for (NodeId n : std::vector<NodeId>{32, 48, 64, 96, 128}) {
    Rng rng(n);
    auto g = gen::erdos_renyi_connected(
        n, 3.0 * std::log2(double(n)) / n, rng);
    low_d.push_back(gen::randomize_weights(g, 8, rng));
  }
  if (large) {
    Rng rng(192);
    auto g = gen::erdos_renyi_connected(192, 3.0 * std::log2(192.0) / 192,
                                        rng);
    low_d.push_back(gen::randomize_weights(g, 8, rng));
  }
  run_family("low diameter (ER, D ~ log n) — quantum advantage regime",
             low_d);

  std::vector<WeightedGraph> high_d;
  for (NodeId cliques : std::vector<NodeId>{8, 12, 16, 24, 32}) {
    Rng rng(cliques);
    auto g = gen::path_of_cliques(cliques, 4);
    high_d.push_back(gen::randomize_weights(g, 8, rng));
  }
  run_family("high diameter (path of cliques, D ~ n/4) — cap regime",
             high_d);

  std::printf("crossover check: the paper predicts advantage iff D = "
              "o(n^{1/3}).\n");
  TextTable x({"n", "D", "model rounds", "vs n", "advantage"});
  for (NodeId n : std::vector<NodeId>{1 << 10, 1 << 14, 1 << 18, 1 << 22}) {
    for (double dpow : {0.1, 0.25, 1.0 / 3, 0.5, 0.8}) {
      const auto d = static_cast<Dist>(std::pow(double(n), dpow));
      const double m = core::model::theorem11_rounds(n, d) /
                       core::model::polylog(n);
      x.add(n, d, m, m / double(n), m < double(n) * 0.9);
    }
  }
  std::printf("%s\n", x.render().c_str());
  return 0;
}
