// Regenerates the headline result (Theorem 1.1): measured round
// complexity of the quantum weighted diameter/radius algorithm versus
// n and D, against the paper's Õ(min{n^{9/10} D^{3/10}, n}) bound and
// the classical Θ̃(n) baseline — plus the oracle fast-path comparison
// (docs/perf.md): eager-serial vs lazy-serial vs lazy-pooled drivers on
// one large instance, asserting all modes and worker counts return a
// semantically identical `Theorem11Result`, and writing the measured
// wall times, speedups, and skeletons-built counts to a JSON report.
//
// Series reported:
//  * oracle mode comparison at one n (default 2048): end-to-end seconds,
//    speedup over the historical eager-serial driver, full skeletons
//    built (lazy modes: 1, the measured set; eager: one per non-empty
//    sampled set), worker-count invariance for the pooled modes;
//  * low-D family (connected ER, D ≈ log n): the advantage regime
//    D = o(n^{1/3});
//  * high-D family (path of cliques, D ≈ n/c): the regime where the
//    min{..., n} cap bites and the advantage disappears;
//  * a log-log power-law fit of measured rounds vs n per family.
//
// Usage: bench_theorem11_scaling [--smoke] [--large] [--n N] [--out FILE]
//   --smoke   tiny instance for ctest (correctness + JSON, no timing
//             claims); skips the scaling sweeps
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "runtime/metrics.h"
#include "runtime/sweep.h"
#include "util/mathx.h"
#include "util/table.h"

namespace {

using namespace qc;

// ---------------------------------------------------------------------
// Oracle mode comparison
// ---------------------------------------------------------------------

struct ModeRow {
  std::string name;
  double seconds = 0;
  double speedup = 1.0;  ///< eager-serial seconds / this mode's seconds
  std::uint64_t skeletons_built = 0;
  std::uint64_t value_evaluations = 0;
  std::uint64_t memo_hits = 0;
  bool equal = true;  ///< semantically_equal to the eager-serial run
};

core::Theorem11Result timed_run(const WeightedGraph& g,
                                const core::Theorem11Options& opt,
                                double& seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  auto res = core::quantum_weighted_diameter(g, opt);
  seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

std::string modes_json(NodeId n, std::size_t m,
                       const std::vector<ModeRow>& rows,
                       bool worker_invariant, std::uint64_t sets_nonempty) {
  bool all_equal = true;
  double lazy_pooled_speedup = 0;
  std::uint64_t lazy_skeletons = 0;
  for (const ModeRow& r : rows) {
    all_equal &= r.equal;
    if (r.name == "lazy-pooled") {
      lazy_pooled_speedup = r.speedup;
      lazy_skeletons = r.skeletons_built;
    }
  }
  std::ostringstream os;
  os << "{\n  \"spec\": {\"n\": " << n << ", \"m\": " << m
     << ", \"sets_nonempty\": " << sets_nonempty << "},\n"
     << "  \"modes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ModeRow& r = rows[i];
    os << "    {\"mode\": \"" << r.name
       << "\", \"seconds\": " << runtime::json_number(r.seconds)
       << ", \"speedup_vs_eager_serial\": " << runtime::json_number(r.speedup)
       << ", \"skeletons_built\": " << r.skeletons_built
       << ", \"value_evaluations\": " << r.value_evaluations
       << ", \"memo_hits\": " << r.memo_hits
       << ", \"semantically_equal\": " << (r.equal ? "true" : "false")
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"acceptance\": {\"all_modes_equal\": "
     << (all_equal ? "true" : "false")
     << ", \"worker_invariant_1_2_8\": "
     << (worker_invariant ? "true" : "false")
     << ", \"lazy_skeletons_built\": " << lazy_skeletons
     << ", \"lazy_builds_o_n_skeletons\": "
     << (lazy_skeletons * 8 < sets_nonempty ? "true" : "false")
     << ", \"lazy_pooled_speedup\": "
     << runtime::json_number(lazy_pooled_speedup)
     << ", \"speedup_at_least_3x\": "
     << (lazy_pooled_speedup >= 3.0 ? "true" : "false") << "}\n}\n";
  return os.str();
}

/// Runs all four oracle modes on one instance, checks invariance, and
/// writes the JSON report. Returns false if any equivalence check
/// failed (timing never fails the run; the numbers are in the JSON).
bool run_mode_comparison(NodeId n, const std::string& out_path) {
  Rng rng(n);
  // Sparse low-diameter ER with near-unit weights: the regime where the
  // oracle dominates end-to-end time (representative of large n, where
  // the O(n) skeleton builds swamp the O(D + r)-round measure phase).
  // The simulator's measure phase is identical in every mode, so a
  // denser/heavier instance would only dilute the oracle comparison.
  auto g = gen::erdos_renyi_connected(n, 1.2 * std::log2(double(n)) / n,
                                      rng);
  g = gen::randomize_weights(g, 2, rng);
  std::printf("-- oracle fast path: %s --\n", g.summary().c_str());

  core::Theorem11Options opt;
  opt.seed = 41;
  // Timing isolates the driver itself: the optional distributed
  // re-validation and the all-sets census re-run identical work in
  // every mode and are exercised by the scaling sweeps below.
  opt.validate_distributed = false;
  opt.census = false;
  // ε⁻¹ = 1 keeps the per-scale caps short, and r = 64 (only where the
  // instance is big enough) sizes the sampled sets so that one eager
  // skeleton build costs Θ(|S|²·n) — the regime Eq. (1) reaches at much
  // larger n than a single-machine simulator can hold. Both knobs apply
  // identically to every mode.
  opt.eps_inv = 1;
  if (n >= 512) opt.r_override = 64;

  const auto one = [&](core::OracleMode m, unsigned workers, double& secs) {
    core::Theorem11Options o = opt;
    o.oracle_mode = m;
    o.oracle_workers = workers;
    return timed_run(g, o, secs);
  };

  std::vector<ModeRow> rows;
  double eager_secs = 0;
  const auto eager = one(core::OracleMode::kEagerSerial, 0, eager_secs);
  rows.push_back({"eager-serial", eager_secs, 1.0,
                  eager.oracle.skeletons_built,
                  eager.oracle.value_evaluations, eager.oracle.memo_hits,
                  true});

  const struct {
    const char* name;
    core::OracleMode mode;
  } variants[] = {{"eager-pooled", core::OracleMode::kEagerPooled},
                  {"lazy-serial", core::OracleMode::kLazySerial},
                  {"lazy-pooled", core::OracleMode::kLazyPooled}};
  for (const auto& v : variants) {
    double secs = 0;
    const auto res = one(v.mode, 0, secs);
    rows.push_back({v.name, secs, secs > 0 ? eager_secs / secs : 0.0,
                    res.oracle.skeletons_built,
                    res.oracle.value_evaluations, res.oracle.memo_hits,
                    core::semantically_equal(eager, res)});
  }

  // Worker-count invariance of the lazy-pooled driver (eager-pooled's
  // equality is covered by the variants run above; re-running it per
  // worker count would double the bench's wall time for a check the
  // unit tests already make at small n).
  bool worker_invariant = true;
  for (const unsigned w : {1u, 2u, 8u}) {
    double secs = 0;
    worker_invariant &= core::semantically_equal(
        eager, one(core::OracleMode::kLazyPooled, w, secs));
  }

  TextTable t({"mode", "wall s", "speedup", "skeletons built",
               "value evals", "memo hits", "equal"});
  for (const ModeRow& r : rows) {
    t.add(r.name, r.seconds, r.speedup, r.skeletons_built,
          r.value_evaluations, r.memo_hits, r.equal);
  }
  std::printf("%s", t.render().c_str());
  std::printf("  non-empty sampled sets: %llu; lazy modes materialize one "
              "skeleton (the measured set); worker counts 1/2/8 "
              "invariant: %s\n\n",
              (unsigned long long)eager.oracle.sets_nonempty,
              worker_invariant ? "yes" : "NO");

  runtime::write_file(out_path,
                      modes_json(n, g.edge_count(), rows, worker_invariant,
                                 eager.oracle.sets_nonempty));
  std::printf("wrote %s\n\n", out_path.c_str());

  bool ok = worker_invariant;
  for (const ModeRow& r : rows) ok &= r.equal;
  return ok;
}

// ---------------------------------------------------------------------
// Round-complexity scaling (the headline sweeps)
// ---------------------------------------------------------------------

struct Sample {
  NodeId n;
  Dist d;
  std::uint64_t rounds;
  double ratio;
  double model;
};

Sample run_one(const WeightedGraph& g, std::uint64_t seed_base) {
  Sample s;
  s.n = g.node_count();
  s.d = unweighted_diameter(g);
  s.rounds = 0;
  s.ratio = 0;
  const int reps = 3;  // average out the sampling/Grover randomness
  for (int rep = 0; rep < reps; ++rep) {
    core::Theorem11Options opt;
    opt.seed = seed_base + static_cast<std::uint64_t>(rep) * 101;
    opt.validate_distributed = rep == 0;  // validate once per point
    opt.census = true;                    // the table reports the ratio
    const auto res = core::quantum_weighted_diameter(g, opt);
    s.rounds += res.rounds;
    s.ratio = std::max(s.ratio, res.ratio);
  }
  s.rounds /= reps;
  s.model = core::model::theorem11_rounds(s.n, s.d);
  return s;
}

// The Õ(·) in Theorem 1.1 hides ~log⁴ n: ε⁻¹ = log n lengthens the
// per-scale caps, the scale count is another log, Algorithm 3's window
// stretch is a log, and the search budgets carry √log factors. At the
// small n a simulator can execute, those factors dominate the fit, so
// we report both the raw exponent and the exponent after dividing the
// measurement by log⁴ n.
double log4(double n) {
  const double l = std::log2(n);
  return l * l * l * l;
}

void run_family(const char* name,
                const std::vector<WeightedGraph>& graphs) {
  std::printf("-- family: %s --\n", name);
  TextTable t({"n", "D", "measured rounds (avg 3 seeds)",
               "model n^.9 D^.3 polylog", "classical model ~n log n",
               "rounds/log^4", "max approx ratio"});
  std::vector<double> ns, rounds, corrected;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto s = run_one(graphs[i], 1000 + i);
    const double corr = static_cast<double>(s.rounds) / log4(double(s.n));
    t.add(s.n, s.d, s.rounds, s.model,
          core::model::classical_weighted_rounds(s.n), corr, s.ratio);
    ns.push_back(static_cast<double>(s.n));
    rounds.push_back(static_cast<double>(s.rounds));
    corrected.push_back(corr);
  }
  std::printf("%s", t.render().c_str());
  if (ns.size() >= 2) {
    const auto [e_raw, c1] = fit_power_law(ns, rounds);
    const auto [e_cor, c2] = fit_power_law(ns, corrected);
    std::printf("  measured rounds ~ n^%.3f raw; ~ n^%.3f after removing "
                "log^4 n (paper bound exponent at fixed D: 0.9; at D~n: "
                "1.0)\n\n",
                e_raw, e_cor);
    (void)c1;
    (void)c2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool large = false;
  bool smoke = false;
  NodeId mode_n = 2048;
  std::string out_path = "BENCH_theorem11.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) {
      large = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      mode_n = 64;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      mode_n = static_cast<NodeId>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  std::printf("Theorem 1.1 scaling — measured CONGEST rounds of the quantum "
              "weighted diameter\n\n");

  const bool modes_ok = run_mode_comparison(mode_n, out_path);
  if (smoke) {
    if (!modes_ok) {
      std::fprintf(stderr, "FAIL: oracle modes or worker counts gave "
                           "different results\n");
      return 1;
    }
    return 0;
  }

  std::vector<WeightedGraph> low_d;
  for (NodeId n : std::vector<NodeId>{32, 48, 64, 96, 128}) {
    Rng rng(n);
    auto g = gen::erdos_renyi_connected(
        n, 3.0 * std::log2(double(n)) / n, rng);
    low_d.push_back(gen::randomize_weights(g, 8, rng));
  }
  if (large) {
    Rng rng(192);
    auto g = gen::erdos_renyi_connected(192, 3.0 * std::log2(192.0) / 192,
                                        rng);
    low_d.push_back(gen::randomize_weights(g, 8, rng));
  }
  run_family("low diameter (ER, D ~ log n) — quantum advantage regime",
             low_d);

  std::vector<WeightedGraph> high_d;
  for (NodeId cliques : std::vector<NodeId>{8, 12, 16, 24, 32}) {
    Rng rng(cliques);
    auto g = gen::path_of_cliques(cliques, 4);
    high_d.push_back(gen::randomize_weights(g, 8, rng));
  }
  run_family("high diameter (path of cliques, D ~ n/4) — cap regime",
             high_d);

  std::printf("crossover check: the paper predicts advantage iff D = "
              "o(n^{1/3}).\n");
  TextTable x({"n", "D", "model rounds", "vs n", "advantage"});
  for (NodeId n : std::vector<NodeId>{1 << 10, 1 << 14, 1 << 18, 1 << 22}) {
    for (double dpow : {0.1, 0.25, 1.0 / 3, 0.5, 0.8}) {
      const auto d = static_cast<Dist>(std::pow(double(n), dpow));
      const double m = core::model::theorem11_rounds(n, d) /
                       core::model::polylog(n);
      x.add(n, d, m, m / double(n), m < double(n) * 0.9);
    }
  }
  std::printf("%s\n", x.render().c_str());
  return modes_ok ? 0 : 1;
}
