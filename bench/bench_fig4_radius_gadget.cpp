// Regenerates Figure 4 / Lemma 4.9: the radius gadget (the diameter
// gadget plus the hub a0 joined to every a_i with weight 2*alpha).
// Verifies the radius dichotomy
//   F'(x,y)=1  =>  R <= max{2a,b}+n
//   F'(x,y)=0  =>  R >= min{a+b,3a}
// and the structural claim that only the a_i can be centers: every
// other node's eccentricity is >= 3*alpha.
#include <algorithm>
#include <cstdio>

#include "graph/algorithms.h"
#include "lowerbound/boolfn.h"
#include "lowerbound/server.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::lb;

  std::printf("Figure 4 reproduction — radius gadget gap (Lemma 4.9)\n\n");
  for (std::uint32_t h : {2u, 4u}) {
    const auto p = GadgetParams::paper(h);
    const bool full = h == 2;
    std::printf("== h=%u: n=%llu (+1 hub)\n", h,
                (unsigned long long)p.node_count());
    TextTable t({"input", "F'(x,y)", "measured R", "low thr", "high thr",
                 "gap ok", "separable"});
    Rng rng(h * 11 + 5);
    auto record = [&](const char* label, const PairInput& in) {
      const auto c = check_radius_reduction(p, in, full);
      t.add(label, c.f_value, c.measured, c.threshold_low, c.threshold_high,
            c.gap_respected, c.distinguishable);
    };
    record("all rows hit (F'=1)", input_all_hit(1ull << p.s, p.ell, rng));
    {
      PairInput zero = random_input(1ull << p.s, p.ell, rng);
      std::fill(zero.y.begin(), zero.y.end(), 0);
      record("y = 0 (F'=0)", zero);
    }
    {
      // Single common 1 anywhere makes F' = 1.
      PairInput one = random_input(1ull << p.s, p.ell, rng);
      std::fill(one.x.begin(), one.x.end(), 0);
      std::fill(one.y.begin(), one.y.end(), 0);
      one.x[0] = one.y[0] = 1;
      record("single common 1 (F'=1)", one);
    }
    for (int i = 0; i < 4; ++i) {
      record("random", random_input(1ull << p.s, p.ell, rng));
    }
    std::printf("%s\n", t.render().c_str());
  }

  // Structural claim: eccentricity of every non-a_i node is >= 3*alpha.
  const auto p = GadgetParams::paper(2);
  Rng rng(99);
  const auto in = input_all_hit(1ull << p.s, p.ell, rng);
  const ContractedGadget g(p, in, true);
  const auto ecc = eccentricities(g.graph());
  Dist min_non_a = kInfDist;
  Dist min_a = kInfDist;
  for (NodeId v = 0; v < g.graph().node_count(); ++v) {
    bool is_a = false;
    for (std::uint64_t i = 0; i < (1ull << p.s); ++i) {
      if (g.a(i) == v) {
        is_a = true;
        break;
      }
    }
    (is_a ? min_a : min_non_a) = std::min(is_a ? min_a : min_non_a, ecc[v]);
  }
  std::printf("center structure (h=2, F'=1): min ecc over a_i = %llu, over "
              "all other nodes = %llu (>= 3*alpha = %llu: %s)\n",
              (unsigned long long)min_a, (unsigned long long)min_non_a,
              (unsigned long long)(3 * g.alpha()),
              min_non_a >= 3 * g.alpha() ? "yes" : "NO");
  return 0;
}
