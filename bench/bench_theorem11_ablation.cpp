// Ablations of Theorem 1.1's design choices (Eq. 1):
//
//  (a) the skeleton size r: the paper sets r = n^{2/5}·D^{-1/5} to
//      balance Initialization_i (ℓ = n/r·ε⁻¹ drives Algorithm 1's
//      schedule) against the two searches (outer √(n/r), inner √r).
//      Sweeping r around the optimum shows the measured charged rounds
//      are worst at the extremes;
//  (b) the approximation knob ε: tighter ε tightens the realized ratio
//      bound and inflates every schedule;
//  (c) nesting: the inner search's budget √r versus evaluating every
//      member classically (factor r) — the inner quantum speedup.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "quantum/search.h"
#include "util/table.h"

int main() {
  using namespace qc;
  std::printf("Theorem 1.1 design ablations\n\n");

  Rng rng(77);
  auto g = gen::erdos_renyi_connected(48, 3.0 * std::log2(48.0) / 48, rng);
  g = gen::randomize_weights(g, 8, rng);
  const Dist d = unweighted_diameter(g);
  std::printf("instance: %s, D = %llu\n\n", g.summary().c_str(),
              (unsigned long long)d);

  // (a) r sweep.
  std::printf("-- (a) skeleton size r (Eq. 1 optimum marked) --\n");
  core::Theorem11Options base;
  base.seed = 5;
  base.census = true;
  const auto eq1 = core::quantum_weighted_diameter(g, base);
  const std::uint64_t r_star = eq1.params.r;
  TextTable ra({"r", "ell", "T0 (init)", "T_setup+T_eval", "inner budget",
                "outer calls", "total rounds", "ratio", "Eq.(1)?"});
  for (const std::uint64_t r :
       std::vector<std::uint64_t>{1, r_star / 2, r_star, 2 * r_star,
                                  4 * r_star, 12 * r_star}) {
    if (r == 0) continue;
    core::Theorem11Options opt = base;
    opt.r_override = r;
    std::uint64_t rounds = 0;
    double ratio = 0;
    core::Theorem11Result res;
    for (std::uint64_t s = 0; s < 3; ++s) {  // average the randomness
      opt.seed = 5 + s * 31;
      res = core::quantum_weighted_diameter(g, opt);
      rounds += res.rounds;
      ratio = std::max(ratio, res.ratio);
    }
    ra.add(res.params.r, res.params.ell, res.measured.t0_rounds,
           res.measured.t_setup_rounds + res.measured.t_eval_rounds,
           res.inner_budget_calls, res.outer_calls, rounds / 3, ratio,
           res.params.r == r_star);
  }
  std::printf("%s", ra.render().c_str());
  std::printf("  small r: huge ell -> Initialization dominates; large r: "
              "big sets -> inner search and Algorithm 5 dominate.\n\n");

  // (b) eps sweep.
  std::printf("-- (b) epsilon sweep --\n");
  TextTable eb({"eps", "guarantee (1+eps)^2", "max ratio seen",
                "total rounds"});
  for (const std::uint32_t ei : {1u, 2u, 4u, 8u, 16u}) {
    core::Theorem11Options opt = base;
    opt.eps_inv = ei;
    const auto res = core::quantum_weighted_diameter(g, opt);
    eb.add(1.0 / ei, (1.0 + 1.0 / ei) * (1.0 + 1.0 / ei), res.ratio,
           res.rounds);
  }
  std::printf("%s\n", eb.render().c_str());

  // (c) inner nesting: quantum budget vs classical scan of the set.
  std::printf("-- (c) inner search: quantum budget sqrt(r) vs classical "
              "scan r --\n");
  TextTable ic({"set size r", "Lemma 3.1 budget", "classical scan",
                "speedup"});
  for (const std::size_t r : {16u, 64u, 256u, 1024u, 4096u}) {
    const auto budget = quantum::lemma31_budget(1.0 / double(r), 0.05);
    ic.add(r, budget, r, double(r) / double(budget));
  }
  std::printf("%s", ic.render().c_str());
  std::printf("  (the outer search enjoys the same sqrt over the n sets; "
              "multiplying both gives the paper's n^{9/10} vs the naive "
              "n.)\n");
  return 0;
}
