// Ablation of the distributed quantum optimization framework
// (Lemma 3.1), reproducing the paper's Section 1.1 design argument:
// naively Grover-searching the node with maximum eccentricity costs
// Θ̃(n) rounds (√n search iterations × √n-round eccentricity
// evaluation), while the paper's nested set-sampling structure reaches
// Õ(min{n^{9/10} D^{3/10}, n}).
//
// Also measures the search engine itself: Dürr–Høyer oracle calls
// against the Lemma 3.1 budget across marked-fraction ρ, and the
// empirical success probability against 1−δ.
#include <cmath>
#include <cstdio>

#include "core/baselines.h"
#include "quantum/framework.h"
#include "quantum/search.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::quantum;

  std::printf("Framework ablation (Lemma 3.1)\n\n");

  // (1) Oracle calls vs budget across rho.
  std::printf("-- Durr-Hoyer calls vs Lemma 3.1 budget (n = 4096, delta = "
              "0.05) --\n");
  TextTable t({"rho", "budget", "mean calls", "success rate", ">= 1-delta"});
  Rng rng(5);
  const std::size_t n = 4096;
  for (const double rho : {0.5, 0.1, 0.01, 0.002}) {
    const auto good = static_cast<std::size_t>(rho * n);
    std::vector<std::int64_t> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = i < good ? 100 : static_cast<std::int64_t>(i % 50);
    }
    std::vector<double> w(n, 1.0);
    const std::uint64_t budget = lemma31_budget(rho, 0.05);
    int hits = 0;
    std::uint64_t calls = 0;
    const int trials = 60;
    for (int i = 0; i < trials; ++i) {
      const auto res = quantum_max_find(values, w, budget, rng);
      hits += (res.value == 100);
      calls += res.oracle_calls;
    }
    const double rate = double(hits) / trials;
    t.add(rho, budget, double(calls) / trials, rate, rate >= 0.95 - 0.07);
  }
  std::printf("%s\n", t.render().c_str());

  // (2) Naive vs nested round costs (cost-model comparison, plus the
  // measured naive instantiation from the baselines module).
  std::printf("-- naive Grover-over-nodes vs this work (model rounds, "
              "polylog dropped) --\n");
  TextTable cmp({"n", "D", "naive sqrt(n)*sqrt(n)=n", "naive sqrt(n)*D",
                 "this work", "advantage vs best naive"});
  for (std::uint64_t nn : {1ull << 12, 1ull << 16, 1ull << 20}) {
    for (std::uint64_t d : {4ull, 64ull, 1024ull}) {
      const double naive_ecc = double(nn);  // sqrt(n) evals x sqrt(n) rounds
      const double naive_bfs = std::sqrt(double(nn)) * double(d);
      const double ours = core::model::theorem11_rounds(nn, d) /
                          core::model::polylog(nn);
      const double best_naive = std::min(naive_ecc, naive_bfs);
      cmp.add(nn, d, naive_ecc, naive_bfs, ours, best_naive / ours);
    }
  }
  std::printf("%s", cmp.render().c_str());
  std::printf("  note: naive sqrt(n)*D beats the paper's bound only when D "
              "is tiny AND weighted eccentricity could be BFS-evaluated — "
              "it cannot on weighted graphs (that is the paper's point; "
              "weighted eccentricity evaluation costs ~sqrt(n) rounds by "
              "[10]).\n\n");

  // (3) Success probability vs delta for fixed rho.
  std::printf("-- success probability vs delta (rho = 0.01) --\n");
  TextTable sp({"delta", "budget", "empirical success", "target 1-delta"});
  for (const double delta : {0.2, 0.1, 0.05, 0.01}) {
    const double rho = 0.01;
    const auto good = static_cast<std::size_t>(rho * n);
    std::vector<std::int64_t> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = i < good ? 100 : 0;
    }
    std::vector<double> w(n, 1.0);
    const std::uint64_t budget = lemma31_budget(rho, delta);
    int hits = 0;
    const int trials = 80;
    for (int i = 0; i < trials; ++i) {
      hits += quantum_max_find(values, w, budget, rng).value == 100;
    }
    sp.add(delta, budget, double(hits) / trials, 1 - delta);
  }
  std::printf("%s", sp.render().c_str());
  return 0;
}
