// Regenerates Figure 3: the contracted gadget G' — the weight-1 tree,
// paths and endpoint nodes collapse to a hub node t plus one router per
// path, leaving the a_i/b_i cliques. Verifies that contracting the full
// Figure-2 gadget (Lemma 4.3) yields exactly the directly-constructed
// G', and that the Lemma 4.3 sandwich D_{G'} <= D_G <= D_{G'}+n holds.
#include <cstdio>

#include "graph/algorithms.h"
#include "lowerbound/gadget.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace qc;
  using namespace qc::lb;

  std::printf("Figure 3 reproduction — contraction of the diameter "
              "gadget\n\n");
  TextTable t({"h", "n (full G)", "n (G')", "m (G')", "D_G", "D_G'",
               "sandwich ok", "match direct G'"});
  Rng rng(3);
  for (std::uint32_t h : {2u, 4u}) {
    const auto p = GadgetParams::paper(h);
    const auto in = random_input(1ull << p.s, p.ell, rng);
    const Gadget full(p, in, false);
    const ContractedGadget direct(p, in, false);
    const auto contracted = contract_unit_edges(full.graph());

    const Dist dg = h == 2 ? weighted_diameter(full.graph()) : 0;
    const Dist dc = weighted_diameter(direct.graph());
    const bool sandwich =
        h != 2 || (dc <= dg && dg <= dc + full.graph().node_count());
    const bool match =
        contracted.graph.node_count() == direct.graph().node_count() &&
        weighted_diameter(contracted.graph) == dc;
    t.add(h, full.graph().node_count(), direct.graph().node_count(),
          p.paths(), h == 2 ? std::to_string(dg) : std::string("(skipped)"),
          dc, sandwich, match);
  }
  std::printf("%s\n", t.render().c_str());

  // Structure printout for the smallest instance.
  const auto p = GadgetParams::paper(2);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const ContractedGadget direct(p, in, false);
  std::printf("G' structure at h=2: 1 hub t + %u routers + 2*%llu clique "
              "nodes, %zu edges\n",
              p.paths(), (unsigned long long)(1ull << p.s),
              direct.graph().edge_count());
  std::printf("DOT of G' (h=2):\n%s", to_dot(direct.graph(), "Fig3").c_str());
  return 0;
}
