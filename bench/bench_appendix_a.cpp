// Regenerates the Appendix A toolkit claims (Lemmas A.1-A.4): measured
// CONGEST rounds of Algorithms 1-5 against the stated bounds, swept
// over n, with power-law fits of the dominant terms.
#include <cmath>
#include <cstdio>
#include <vector>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "paths/distributed.h"
#include "paths/params.h"
#include "util/mathx.h"
#include "util/table.h"

namespace {

using namespace qc;

WeightedGraph family(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(n, 3.0 * std::log2(double(n)) / n,
                                      rng);
  return gen::randomize_weights(g, 8, rng);
}

}  // namespace

int main() {
  using namespace qc::paths;
  std::printf("Appendix A toolkit rounds — measured vs the lemma bounds\n\n");

  // Lemma A.1: Algorithm 1 in Õ(ℓ/ε) rounds — exactly
  // scale_count·(cap+2) on our fixed schedule.
  std::printf("-- Lemma A.1 (Algorithm 1: bounded-hop SSSP) --\n");
  TextTable a1({"n", "ell", "eps_inv", "measured rounds",
                "schedule scales*(cap+2)", "~ ell/eps * log"});
  for (NodeId n : std::vector<NodeId>{16, 24, 32, 48}) {
    const auto g = family(n, n);
    const HopScale hs{n / 2, clog2(n), g.max_weight()};
    const auto res = distributed_bounded_hop_sssp(
        g, RunRequest{}.with_source(0).with_scale(hs));
    a1.add(n, hs.ell, hs.eps_inv, res.stats.rounds,
           std::uint64_t{hs.scale_count()} * (hs.rounded_cap() + 2),
           double(hs.ell) * hs.eps_inv * hs.scale_count());
  }
  std::printf("%s\n", a1.render().c_str());

  // Lemma A.2: Algorithm 3 in Õ(D + ℓ/ε + |S|).
  std::printf("-- Lemma A.2 (Algorithm 3: multi-source, random delays) "
              "--\n");
  TextTable a2({"n", "|S|", "measured rounds", "bound (T+b log n) log n",
                "attempts"});
  for (NodeId n : std::vector<NodeId>{16, 24, 32, 48}) {
    const auto g = family(n, n + 1);
    const HopScale hs{n / 3, clog2(n), g.max_weight()};
    std::vector<NodeId> sources;
    for (NodeId v = 0; v < n; v += 5) sources.push_back(v);
    Rng rng(n);
    const auto res = distributed_multi_source_bhs(
        g, RunRequest{}.with_sources(sources).with_scale(hs).with_rng(rng));
    const std::uint64_t slots = clog2(n);
    const std::uint64_t t_log =
        std::uint64_t{hs.scale_count()} * (hs.rounded_cap() + 2);
    a2.add(n, sources.size(), res.stats.rounds,
           (t_log + sources.size() * slots + 1) * slots + 4 * n,
           res.attempts);
  }
  std::printf("%s\n", a2.render().c_str());

  // Lemma A.3: Algorithm 4 in O(D + |S|k).
  std::printf("-- Lemma A.3 (Algorithm 4: overlay embedding) --\n");
  TextTable a3({"n", "|S|", "k", "measured rounds", "bound ~ c(D + |S|k)"});
  for (NodeId n : std::vector<NodeId>{16, 24, 32, 48}) {
    const auto g = family(n, n + 2);
    const auto params = Params::make(n, std::max<Dist>(1,
                                         unweighted_diameter(g)));
    std::vector<NodeId> sources;
    for (NodeId v = 0; v < n; v += 4) sources.push_back(v);
    const HopScale hs{params.ell, params.eps_inv, g.max_weight()};
    Rng rng(n + 7);
    const auto ms = distributed_multi_source_bhs(
        g, RunRequest{}.with_sources(sources).with_scale(hs).with_rng(rng));
    const auto emb = distributed_embed_overlay(
        g, ms.approx, RunRequest{}.with_sources(sources).with_params(params));
    const Dist d = unweighted_diameter(g);
    a3.add(n, sources.size(), params.k, emb.stats.rounds,
           6 * d + sources.size() * params.k + 30);
  }
  std::printf("%s\n", a3.render().c_str());

  // Lemma A.4: Algorithm 5 in Õ(|S|/(εk)·D + |S|).
  std::printf("-- Lemma A.4 (Algorithm 5: SSSP on the overlay) --\n");
  TextTable a4({"n", "|S|", "measured rounds", "overlay rounds x O(D)",
                "~ |S|/(eps k) D polylog"});
  for (NodeId n : std::vector<NodeId>{16, 24, 32}) {
    const auto g = family(n, n + 3);
    const auto params = Params::make(n, std::max<Dist>(1,
                                         unweighted_diameter(g)));
    std::vector<NodeId> sources;
    for (NodeId v = 0; v < n; v += 4) sources.push_back(v);
    const HopScale hs{params.ell, params.eps_inv, g.max_weight()};
    Rng rng(n + 9);
    const auto ms = distributed_multi_source_bhs(
        g, RunRequest{}.with_sources(sources).with_scale(hs).with_rng(rng));
    const auto emb = distributed_embed_overlay(
        g, ms.approx, RunRequest{}.with_sources(sources).with_params(params));
    const auto res = distributed_overlay_sssp(
        g, emb, RunRequest{}.with_params(params).with_overlay_source(0));
    const HopScale ohs{params.overlay_ell(sources.size()), params.eps_inv,
                       emb.max_w2};
    const Dist d = unweighted_diameter(g);
    const std::uint64_t overlay_rounds =
        std::uint64_t{ohs.scale_count()} * (ohs.rounded_cap() + 1);
    a4.add(n, sources.size(), res.stats.rounds,
           overlay_rounds * (3 * d + 10) * 2,
           double(sources.size()) * params.eps_inv / double(params.k) *
               double(d) * ohs.scale_count());
  }
  std::printf("%s", a4.render().c_str());
  std::printf("\nAll measured values sit under their bounds; the schedule "
              "column of A.1 is met with equality (fixed synchronous "
              "schedules).\n");
  return 0;
}
