// Wall-clock benchmark of the CONGEST simulator fast path against the
// seed engine it replaced.
//
// The seed engine (reproduced verbatim below) allocated two heap vectors
// per message, located neighbour slots by O(degree) row scans (making a
// broadcast O(deg²)), swapped per-node inbox vectors and refilled the
// whole 2m-entry bandwidth ledger every round, and ran strictly
// serially. The fast path stores messages inline, routes through the
// precomputed EdgeSlotIndex, keeps mailboxes in a double-buffered arena,
// touches only the active node set per round, and optionally fans
// on_round out over the work-stealing pool. This bench times both on
// identical workloads (BFS flood, Algorithm 1 bounded-hop SSSP, and the
// Algorithm 4 overlay embedding), asserts the ledgers, traces and
// program outputs are byte-identical (including across worker counts,
// with the sharded mailbox merge forced on, and at both extremes of
// the pooled_round_min_work fallback knob), and writes
// BENCH_congest_sim.json with one row per (workload, variant, n,
// workers). The alg1 "fast pooled" row runs with the default
// pooled_round_min_work, which auto-serializes its tiny rounds; the
// "fast pooled always-pool" row forces the pool on every round and
// documents the fan-out tax the fallback removes.
//
// Usage: bench_congest_sim [--smoke] [--large] [--n N] [--out FILE]
//   --smoke   tiny instance for ctest (correctness + JSON, no timing
//             claims)
//   --large   additionally bench alg4_overlay on an n=65536 sparse ER
//             graph (p = 8/n) at w = 1/2/4/8 — the sharded-merge
//             scaling row; excluded from the ctest smoke entry
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "congest/simulator.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "paths/distributed.h"
#include "paths/params.h"
#include "runtime/sweep.h"
#include "util/rng.h"
#include "util/table.h"

// --- seed (pre-fast-path) engine, kept as the comparison baseline -----
// Verbatim from the pre-PR src/congest/{message,simulator}.{h,cpp},
// comments elided; only the namespace differs.

namespace seedsim {

using qc::HalfEdge;
using qc::ModelError;
using qc::NodeId;
using qc::Rng;
using qc::WeightedGraph;

class Message {
 public:
  Message() = default;
  Message& push(std::uint64_t value, std::uint32_t bits) {
    QC_REQUIRE(bits >= 1 && bits <= 64, "field width must be in [1, 64]");
    QC_REQUIRE(bits == 64 || value < (std::uint64_t{1} << bits),
               "field value does not fit in declared width");
    fields_.push_back(value);
    widths_.push_back(bits);
    bit_size_ += bits;
    return *this;
  }
  std::size_t field_count() const { return fields_.size(); }
  std::uint64_t field(std::size_t i) const {
    QC_REQUIRE(i < fields_.size(), "message field index out of range");
    return fields_[i];
  }
  std::uint32_t field_width(std::size_t i) const {
    QC_REQUIRE(i < widths_.size(), "message field index out of range");
    return widths_[i];
  }
  std::uint32_t bit_size() const { return bit_size_; }

 private:
  std::vector<std::uint64_t> fields_;
  std::vector<std::uint32_t> widths_;
  std::uint32_t bit_size_ = 0;
};

struct Incoming {
  NodeId from;
  Message msg;
};

struct Config {
  std::uint32_t bandwidth_bits = 0;
  std::uint64_t max_rounds = 50'000'000;
  std::uint64_t seed = 1;
  bool record_trace = false;
};

struct TraceEntry {
  std::uint64_t round;
  NodeId from;
  NodeId to;
  std::uint32_t bits;
};

struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

class Simulator;

class NodeContext {
 public:
  NodeId id() const { return id_; }
  NodeId n() const;
  std::span<const HalfEdge> neighbors() const;
  void send(NodeId to, Message m);
  void broadcast(const Message& m);
  Rng& rng();

 private:
  friend class Simulator;
  NodeContext(Simulator& sim, NodeId id) : sim_(&sim), id_(id) {}
  Simulator* sim_;
  NodeId id_;
};

class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  virtual void on_start(NodeContext& ctx) { (void)ctx; }
  virtual void on_round(NodeContext& ctx, std::span<const Incoming> inbox) = 0;
  virtual bool done() const = 0;
};

class Simulator {
 public:
  Simulator(const WeightedGraph& graph, Config config)
      : graph_(&graph),
        config_(config),
        bandwidth_(config.bandwidth_bits != 0
                       ? config.bandwidth_bits
                       : qc::congest::default_bandwidth(graph.node_count())) {
    QC_REQUIRE(graph.node_count() >= 1, "network needs at least one node");
    Rng master(config_.seed);
    node_rngs_.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      node_rngs_.push_back(master.fork());
    }
    sender_done_.assign(graph.node_count(), false);
    outgoing_.resize(graph.node_count());
    edge_bits_.resize(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      edge_bits_[v].assign(graph.degree(v), 0);
    }
  }

  RunStats run(std::span<const std::unique_ptr<NodeProgram>> programs) {
    const NodeId n = graph_->node_count();
    QC_REQUIRE(programs.size() == n, "need exactly one program per node");
    stats_ = RunStats{};
    round_ = 0;
    outgoing_count_ = 0;
    trace_.clear();
    for (auto& row : outgoing_) row.clear();
    std::vector<NodeContext> contexts;
    contexts.reserve(n);
    for (NodeId v = 0; v < n; ++v) contexts.push_back(NodeContext(*this, v));
    for (NodeId v = 0; v < n; ++v) {
      sender_done_[v] = false;
      programs[v]->on_start(contexts[v]);
    }
    std::vector<std::vector<Incoming>> inboxes(n);
    for (;;) {
      for (NodeId v = 0; v < n; ++v) {
        inboxes[v].clear();
        inboxes[v].swap(outgoing_[v]);
      }
      const bool had_messages = outgoing_count_ > 0;
      outgoing_count_ = 0;
      for (auto& bits : edge_bits_) {
        std::fill(bits.begin(), bits.end(), 0);
      }
      bool all_done = true;
      for (NodeId v = 0; v < n; ++v) {
        if (!programs[v]->done()) {
          all_done = false;
          break;
        }
      }
      if (all_done && !had_messages) break;
      for (NodeId v = 0; v < n; ++v) {
        sender_done_[v] = programs[v]->done() && inboxes[v].empty();
        if (sender_done_[v]) continue;
        programs[v]->on_round(contexts[v], inboxes[v]);
        sender_done_[v] = false;
      }
      ++round_;
      QC_REQUIRE(round_ <= config_.max_rounds, "exceeded max_rounds");
    }
    stats_.rounds = round_;
    return stats_;
  }

  const WeightedGraph& graph() const { return *graph_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  friend class NodeContext;

  void queue_message(NodeId from, NodeId to, Message m) {
    QC_CHECK(from < graph_->node_count(), "sender out of range");
    if (to >= graph_->node_count() || !graph_->has_edge(from, to)) {
      throw ModelError("node " + std::to_string(from) +
                       " tried to message non-neighbour " + std::to_string(to));
    }
    if (sender_done_[from]) {
      throw ModelError("node " + std::to_string(from) +
                       " sent a message after declaring done");
    }
    const auto adj = graph_->neighbors(from);
    std::size_t slot = adj.size();
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i].to == to) {
        slot = i;
        break;
      }
    }
    QC_CHECK(slot < adj.size(), "neighbour slot lookup failed");
    const std::uint32_t used = edge_bits_[from][slot] + m.bit_size();
    if (used > bandwidth_) {
      throw ModelError("bandwidth exceeded");
    }
    edge_bits_[from][slot] = used;
    stats_.messages += 1;
    stats_.bits += m.bit_size();
    if (config_.record_trace) {
      trace_.push_back(TraceEntry{round_, from, to, m.bit_size()});
    }
    outgoing_[to].push_back(Incoming{from, std::move(m)});
    ++outgoing_count_;
  }

  const WeightedGraph* graph_;
  Config config_;
  std::uint32_t bandwidth_;
  std::uint64_t round_ = 0;
  RunStats stats_;
  std::vector<Rng> node_rngs_;
  std::vector<bool> sender_done_;
  std::vector<std::vector<Incoming>> outgoing_;
  std::uint64_t outgoing_count_ = 0;
  std::vector<std::vector<std::uint32_t>> edge_bits_;
  std::vector<TraceEntry> trace_;
};

inline NodeId NodeContext::n() const { return sim_->graph().node_count(); }
inline std::span<const HalfEdge> NodeContext::neighbors() const {
  return sim_->graph().neighbors(id_);
}
inline void NodeContext::send(NodeId to, Message m) {
  sim_->queue_message(id_, to, std::move(m));
}
inline void NodeContext::broadcast(const Message& m) {
  for (const HalfEdge& h : neighbors()) {
    sim_->queue_message(id_, h.to, m);
  }
}
inline Rng& NodeContext::rng() { return sim_->node_rngs_[id_]; }

}  // namespace seedsim

namespace {

using namespace qc;

// --- engine-generic workload programs ---------------------------------
// The same program source runs on both engines via an Api tag, so the
// comparison isolates engine differences (both variants use the
// pre-fast-path program idiom: map-based per-neighbour state, broadcast
// by node id).

struct SeedApi {
  using Message = seedsim::Message;
  using Incoming = seedsim::Incoming;
  using NodeContext = seedsim::NodeContext;
  using NodeProgram = seedsim::NodeProgram;
};

struct FastApi {
  using Message = congest::Message;
  using Incoming = congest::Incoming;
  using NodeContext = congest::NodeContext;
  using NodeProgram = congest::NodeProgram;
};

/// BFS flood: the source announces 0; every node announces dist on first
/// arrival. Broadcast-heavy, few rounds — the workload the O(deg²)
/// broadcast scan hurt most.
template <typename Api>
class BfsFloodProgram final : public Api::NodeProgram {
 public:
  BfsFloodProgram(NodeId source, std::uint32_t dist_bits)
      : source_(source), dist_bits_(dist_bits) {}

  void on_start(typename Api::NodeContext& ctx) override {
    if (ctx.id() == source_) {
      dist_ = 0;
      announced_ = true;
      typename Api::Message m;
      m.push(0, dist_bits_);
      ctx.broadcast(m);
    }
  }

  void on_round(typename Api::NodeContext& ctx,
                std::span<const typename Api::Incoming> inbox) override {
    if (announced_) return;  // later arrivals can't improve a BFS level
    for (const auto& in : inbox) {
      dist_ = std::min(dist_, in.msg.field(0) + 1);
    }
    if (dist_ != kInfDist) {
      announced_ = true;
      typename Api::Message m;
      m.push(dist_, dist_bits_);
      ctx.broadcast(m);
    }
  }

  bool done() const override { return announced_; }

  Dist value() const { return dist_; }

 private:
  NodeId source_;
  std::uint32_t dist_bits_;
  Dist dist_ = kInfDist;
  bool announced_ = false;
};

/// Algorithm 1 (bounded-hop SSSP): one timed-release pass per weight
/// scale on a fixed schedule — long-running with a shrinking active
/// set, the workload the O(n)-per-round scans hurt most.
template <typename Api>
class HopSsspProgram final : public Api::NodeProgram {
 public:
  HopSsspProgram(NodeId source, const paths::HopScale& scale,
                 std::uint32_t dist_bits)
      : source_(source),
        scale_(scale),
        scales_(scale.scale_count()),
        cap_(scale.rounded_cap()),
        dist_bits_(dist_bits) {}

  void on_start(typename Api::NodeContext& ctx) override {
    for (const HalfEdge& h : ctx.neighbors()) {
      weights_[h.to] = h.weight;
    }
    reset_scale(ctx.id());
  }

  void on_round(typename Api::NodeContext& ctx,
                std::span<const typename Api::Incoming> inbox) override {
    for (const auto& in : inbox) {
      const std::uint64_t w =
          scale_.rounded_weight(weights_.at(in.from), scale_index_);
      best_ = std::min(best_, dist_add(in.msg.field(0), w));
    }
    if (!announced_ && best_ == offset_ && best_ <= cap_) {
      announced_ = true;
      typename Api::Message m;
      m.push(best_, dist_bits_);
      ctx.broadcast(m);
    }
    ++offset_;
    if (offset_ == cap_ + 2) {
      if (best_ <= cap_) {
        dtilde_ = std::min(dtilde_, best_ << scale_index_);
      }
      ++scale_index_;
      if (scale_index_ < scales_) reset_scale(ctx.id());
    }
  }

  bool done() const override { return scale_index_ >= scales_; }

  Dist value() const { return dtilde_; }

 private:
  void reset_scale(NodeId me) {
    best_ = (me == source_) ? 0 : kInfDist;
    offset_ = 0;
    announced_ = false;
  }

  NodeId source_;
  paths::HopScale scale_;
  std::uint32_t scales_;
  Dist cap_;
  std::uint32_t dist_bits_;
  std::map<NodeId, Weight> weights_;
  std::uint32_t scale_index_ = 0;
  Dist best_ = kInfDist;
  Dist offset_ = 0;
  bool announced_ = false;
  Dist dtilde_ = kInfDist;
};

// --- harness ----------------------------------------------------------

double time_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Process CPU time (user + system). For single-threaded variants this is
// the steal- and load-immune measure of "work done on one core", which
// is what the serial speedup claim is about; wall clock on a shared
// machine also charges whatever the neighbours are doing.
double cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

double cpu_time_of(const std::function<void()>& fn) {
  const double t0 = cpu_now();
  fn();
  return cpu_now() - t0;
}

// Best-of-k timing: runs the variants interleaved for `batches` rounds
// and keeps each variant's fastest batch. The minimum is the standard
// estimator for "true cost" on a machine with background load (noise is
// strictly additive), and interleaving keeps slow phases of the host
// from landing entirely on one variant. `use_cpu[i]` selects process CPU
// time instead of wall clock (single-threaded variants only — CPU time
// would hide the point of the pooled ones).
std::vector<double> best_of(int batches,
                            std::span<const std::function<void()>> variants,
                            std::span<const bool> use_cpu) {
  std::vector<double> best(variants.size(),
                           std::numeric_limits<double>::infinity());
  for (int b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const double t =
          use_cpu[i] ? cpu_time_of(variants[i]) : time_of(variants[i]);
      best[i] = std::min(best[i], t);
    }
  }
  return best;
}

struct Outcome {
  congest::RunStats stats;
  std::vector<congest::TraceEntry> trace;
  std::vector<Dist> values;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

template <typename Program, typename Make>
Outcome run_seed(const WeightedGraph& g, const Make& make, bool trace) {
  seedsim::Config cfg;
  cfg.record_trace = trace;
  std::vector<std::unique_ptr<seedsim::NodeProgram>> programs;
  programs.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) programs.push_back(make(v));
  seedsim::Simulator sim(g, cfg);
  const seedsim::RunStats s = sim.run(programs);
  Outcome out;
  out.stats = congest::RunStats{s.rounds, s.messages, s.bits};
  out.trace.reserve(sim.trace().size());
  for (const seedsim::TraceEntry& t : sim.trace()) {
    out.trace.push_back(congest::TraceEntry{t.round, t.from, t.to, t.bits});
  }
  out.values.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.values.push_back(static_cast<const Program&>(*programs[v]).value());
  }
  return out;
}

template <typename Program, typename Make>
Outcome run_fast(const WeightedGraph& g, const Make& make, bool trace,
                 unsigned workers,
                 std::size_t sharded_min =
                     congest::Config::Execution{}.sharded_merge_min_messages,
                 std::size_t min_work =
                     congest::Config::Execution{}.pooled_round_min_work) {
  congest::Config cfg;
  cfg.record_trace = trace;
  cfg.workers = workers;
  cfg.execution.sharded_merge_min_messages = sharded_min;
  cfg.execution.pooled_round_min_work = min_work;
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  programs.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) programs.push_back(make(v));
  congest::Simulator sim(g, cfg);
  Outcome out;
  out.stats = sim.run(programs);
  out.trace = sim.trace();
  out.values.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.values.push_back(static_cast<const Program&>(*programs[v]).value());
  }
  return out;
}

struct Row {
  std::string workload;
  std::string variant;
  NodeId n = 0;           ///< node count of the graph this row ran on
  unsigned workers = 1;   ///< Config::workers used (1 for the seed engine)
  double seconds = 0;
  double speedup = 1.0;   ///< vs the workload's baseline variant (same n)
  bool identical = true;  ///< outcome equals the baseline outcome
};

struct Spec {
  NodeId n = 0;        ///< base graph node count
  std::size_t m = 0;   ///< base graph edge count
  unsigned hardware_workers = 0;  ///< raw std::thread::hardware_concurrency()
  std::vector<unsigned> benched_workers;
  bool large = false;  ///< whether the n=65536 rows were benched
};

std::string to_json(const Spec& spec, const std::vector<Row>& rows,
                    double bfs_serial_speedup, double overlay_w8_speedup,
                    NodeId overlay_n, bool deterministic) {
  std::ostringstream os;
  os << "{\n  \"spec\": {\"n\": " << spec.n << ", \"m\": " << spec.m
     << ", \"hardware_workers\": " << spec.hardware_workers
     << ", \"benched_workers\": [";
  for (std::size_t i = 0; i < spec.benched_workers.size(); ++i) {
    os << (i ? ", " : "") << spec.benched_workers[i];
  }
  os << "], \"large\": " << (spec.large ? "true" : "false")
     << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"workload\": \"" << r.workload << "\", \"variant\": \""
       << r.variant << "\", \"n\": " << r.n << ", \"workers\": " << r.workers
       << ", \"seconds\": " << r.seconds
       << ", \"speedup_vs_baseline\": " << r.speedup << ", \"identical\": "
       << (r.identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"acceptance\": {\"bfs_fast_serial_speedup_vs_seed\": "
     << bfs_serial_speedup << ", \"alg4_overlay_w8_speedup_vs_w1\": "
     << overlay_w8_speedup << ", \"alg4_overlay_speedup_n\": " << overlay_n
     << ", \"byte_identical_at_all_worker_counts\": "
     << (deterministic ? "true" : "false") << "}\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  NodeId n = 2048;
  bool smoke = false;
  bool large = false;
  std::string out_path = "BENCH_congest_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      n = 128;
    } else if (std::strcmp(argv[i], "--large") == 0) {
      large = true;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<NodeId>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  // Random connected graph, avg degree ~8 — the Theorem 1.1 sweep regime.
  Rng rng(2022);
  auto g = gen::erdos_renyi_connected(n, 8.0 / double(n), rng);
  g = gen::randomize_weights(g, 64, rng);
  g.csr();  // warm the CSR/slot caches outside the timers (one-time cost)
  g.slot_index();
  // Report the machine as it is: hardware_concurrency() verbatim (0 =
  // unknown), not clamped to the worker counts we bench. The benched
  // counts live in spec.benched_workers — on a box with fewer cores
  // than 8 the w=8 rows still run (oversubscribed) and are still
  // byte-identical; they just can't show wall-clock scaling.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<unsigned> benched_workers = {1, 2, 4, 8};
  const int reps_bfs = smoke ? 2 : 8;
  const int reps_hop = smoke ? 1 : 2;
  const int batches = smoke ? 1 : 5;  // best-of-k, see best_of()

  std::printf(
      "congest simulator: %s, avg deg %.1f, B=%u bits, %u hardware "
      "worker(s)\n\n",
      g.summary().c_str(), 2.0 * double(g.edge_count()) / double(n),
      congest::default_bandwidth(n), hw);

  std::vector<Row> rows;
  TextTable table(
      {"workload", "variant", "n", "w", "wall s", "speedup", "identical"});
  const auto push = [&](const std::string& workload,
                        const std::string& variant, NodeId row_n,
                        unsigned workers, double secs, double base_secs,
                        bool identical) {
    const double speedup = secs > 0 ? base_secs / secs : 0.0;
    rows.push_back({workload, variant, row_n, workers, secs, speedup,
                    identical});
    table.add(workload, variant, row_n, workers, secs, speedup,
              identical ? "yes" : "NO");
  };

  bool all_identical = true;
  double bfs_serial_speedup = 0;

  // BFS flood.
  {
    const std::uint32_t dist_bits = bits_for(n + 1);
    const auto seed_make = [&](NodeId) {
      return std::make_unique<BfsFloodProgram<SeedApi>>(0, dist_bits);
    };
    const auto fast_make = [&](NodeId) {
      return std::make_unique<BfsFloodProgram<FastApi>>(0, dist_bits);
    };
    using SeedP = BfsFloodProgram<SeedApi>;
    using FastP = BfsFloodProgram<FastApi>;

    const Outcome golden = run_seed<SeedP>(g, seed_make, /*trace=*/true);
    for (const unsigned w : benched_workers) {
      // Force the sharded merge (min=0) so the identity check covers the
      // parallel scatter path even where n is below the default threshold.
      const Outcome got =
          run_fast<FastP>(g, fast_make, /*trace=*/true, w, /*sharded_min=*/0);
      all_identical &= got == golden;
    }

    const std::function<void()> variants[] = {
        [&] {
          for (int r = 0; r < reps_bfs; ++r) run_seed<SeedP>(g, seed_make, false);
        },
        [&] {
          for (int r = 0; r < reps_bfs; ++r) run_fast<FastP>(g, fast_make, false, 1);
        },
        [&] {
          for (int r = 0; r < reps_bfs; ++r) run_fast<FastP>(g, fast_make, false, 8);
        },
    };
    const bool use_cpu[] = {true, true, false};
    const std::vector<double> t = best_of(batches, variants, use_cpu);
    push("bfs_flood", "seed serial", n, 1, t[0], t[0], true);
    bfs_serial_speedup = t[1] > 0 ? t[0] / t[1] : 0.0;
    push("bfs_flood", "fast w=1", n, 1, t[1], t[0], all_identical);
    push("bfs_flood", "fast pooled", n, 8, t[2], t[0], all_identical);
  }

  // Algorithm 1: bounded-hop SSSP.
  {
    const paths::HopScale scale{/*ell=*/16, /*eps_inv=*/2, g.max_weight()};
    const std::uint32_t dist_bits = bits_for(scale.rounded_cap() + 2);
    const auto seed_make = [&](NodeId) {
      return std::make_unique<HopSsspProgram<SeedApi>>(0, scale, dist_bits);
    };
    const auto fast_make = [&](NodeId) {
      return std::make_unique<HopSsspProgram<FastApi>>(0, scale, dist_bits);
    };
    using SeedP = HopSsspProgram<SeedApi>;
    using FastP = HopSsspProgram<FastApi>;

    const Outcome golden = run_seed<SeedP>(g, seed_make, /*trace=*/true);
    for (const unsigned w : benched_workers) {
      const Outcome got =
          run_fast<FastP>(g, fast_make, /*trace=*/true, w, /*sharded_min=*/0);
      all_identical &= got == golden;
      // Both extremes of the auto-serial fallback knob must agree too:
      // the knob may only trade wall-clock, never bytes.
      const Outcome forced = run_fast<FastP>(
          g, fast_make, /*trace=*/true, w,
          congest::Config::Execution{}.sharded_merge_min_messages,
          /*min_work=*/0);
      all_identical &= forced == golden;
    }
    // Workload shape for the docs/perf.md serial-bound analysis: alg1
    // runs many rounds each carrying very few deliveries, so neither
    // the pooled round loop nor the sharded merge has work to spread.
    std::printf("alg1_hop_sssp shape: %llu rounds, %llu messages "
                "(%.1f deliveries/round)\n",
                static_cast<unsigned long long>(golden.stats.rounds),
                static_cast<unsigned long long>(golden.stats.messages),
                double(golden.stats.messages) /
                    double(std::max<std::uint64_t>(1, golden.stats.rounds)));

    const std::size_t def_sharded =
        congest::Config::Execution{}.sharded_merge_min_messages;
    const std::function<void()> variants[] = {
        [&] {
          for (int r = 0; r < reps_hop; ++r) run_seed<SeedP>(g, seed_make, false);
        },
        [&] {
          for (int r = 0; r < reps_hop; ++r) run_fast<FastP>(g, fast_make, false, 1);
        },
        [&] {
          for (int r = 0; r < reps_hop; ++r) run_fast<FastP>(g, fast_make, false, 8);
        },
        // Diagnostic: the pool forced on for every round (the pre-knob
        // behaviour). With ~112 deliveries/round the fan-out/join tax
        // dwarfs the work, which is exactly why pooled_round_min_work
        // exists — the default-knob "fast pooled" row above must not
        // regress below "fast w=1", while this row documents the cost
        // the fallback removes.
        [&] {
          for (int r = 0; r < reps_hop; ++r) {
            run_fast<FastP>(g, fast_make, false, 8, def_sharded,
                            /*min_work=*/0);
          }
        },
    };
    const bool use_cpu[] = {true, true, false, false};
    const std::vector<double> t = best_of(batches, variants, use_cpu);
    push("alg1_hop_sssp", "seed serial", n, 1, t[0], t[0], true);
    push("alg1_hop_sssp", "fast w=1", n, 1, t[1], t[0], all_identical);
    push("alg1_hop_sssp", "fast pooled", n, 8, t[2], t[0], all_identical);
    push("alg1_hop_sssp", "fast pooled always-pool", n, 8, t[3], t[0],
         all_identical);
  }

  // Algorithm 4: overlay embedding through the public API (fast engine
  // only — the seed engine predates it); worker counts must agree. This
  // is the sharded-merge scaling workload: every round moves dense
  // broadcast batches, so the merge dominates and per-worker rows show
  // whether the parallel scatter pays off. Returns the w=8 vs w=1
  // speedup for the acceptance record.
  const auto bench_overlay = [&](const WeightedGraph& gg) {
    const NodeId nn = gg.node_count();
    const std::size_t b = std::min<std::size_t>(8, nn);
    std::vector<NodeId> sources;
    for (std::size_t a = 0; a < b; ++a) {
      sources.push_back(static_cast<NodeId>(a * nn / b));
    }
    std::vector<std::vector<Dist>> approx_rows;
    approx_rows.reserve(b);
    for (const NodeId s : sources) approx_rows.push_back(dijkstra(gg, s));
    const paths::Params params = paths::Params::make(nn, /*D=*/16);

    const auto run_overlay = [&](unsigned w, std::size_t sharded_min) {
      congest::Config cfg;
      cfg.workers = w;
      cfg.execution.sharded_merge_min_messages = sharded_min;
      return paths::distributed_embed_overlay(
          gg, approx_rows,
          paths::RunRequest{}
              .with_sources(sources)
              .with_params(params)
              .with_config(cfg));
    };
    const auto same_embedding = [](const paths::OverlayEmbedding& a,
                                   const paths::OverlayEmbedding& b2) {
      return a.w1 == b2.w1 && a.w2 == b2.w2 && a.nearest_k == b2.nearest_k &&
             a.max_w2 == b2.max_w2 && a.stats == b2.stats;
    };
    const std::size_t def_min =
        congest::Config::Execution{}.sharded_merge_min_messages;

    paths::OverlayEmbedding golden;
    const double t_base =
        time_of([&] { golden = run_overlay(1, def_min); });
    push("alg4_overlay", "fast w=1", nn, 1, t_base, t_base, true);
    double w8_speedup = 0;
    for (const unsigned w : {2u, 4u, 8u}) {
      paths::OverlayEmbedding got;
      const double t_w = time_of([&] { got = run_overlay(w, def_min); });
      bool same = same_embedding(got, golden);
      if (nn < 4 * def_min) {
        // Small graphs sit below the sharding threshold in the timed run
        // above; re-run with the sharded merge forced on so the identity
        // flag covers the parallel scatter path too. Large graphs clear
        // the threshold naturally, so the timed run already did.
        same = same && same_embedding(run_overlay(w, 0), golden);
      }
      all_identical &= same;
      push("alg4_overlay", "fast w=" + std::to_string(w), nn, w, t_w, t_base,
           same);
      if (w == 8) w8_speedup = t_w > 0 ? t_base / t_w : 0.0;
    }
    return w8_speedup;
  };

  double overlay_w8_speedup = bench_overlay(g);
  NodeId overlay_n = n;
  if (large) {
    // The scaling row the acceptance targets: n=65536 sparse ER
    // (p = 8/n), alg4_overlay at w = 1/2/4/8. Separate RNG stream so
    // --large never perturbs the base-graph rows.
    Rng lrng(2023);
    const NodeId ln = 65536;
    auto lg = gen::erdos_renyi_connected(ln, 8.0 / double(ln), lrng);
    lg = gen::randomize_weights(lg, 64, lrng);
    lg.csr();
    lg.slot_index();
    std::printf("large graph: %s, avg deg %.1f\n", lg.summary().c_str(),
                2.0 * double(lg.edge_count()) / double(ln));
    overlay_w8_speedup = bench_overlay(lg);
    overlay_n = ln;
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("bfs fast-path speedup vs seed (one core): %.2fx "
              "(acceptance target >= 3x; byte-identical outcomes %s)\n",
              bfs_serial_speedup, all_identical ? "hold" : "FAIL");
  std::printf("alg4_overlay w=8 vs w=1 at n=%u: %.2fx (the >= 3x target "
              "presumes >= 8 hardware workers; this host reports %u)\n",
              static_cast<unsigned>(overlay_n), overlay_w8_speedup, hw);

  Spec spec;
  spec.n = n;
  spec.m = g.edge_count();
  spec.hardware_workers = hw;
  spec.benched_workers = benched_workers;
  spec.large = large;
  runtime::write_file(out_path, to_json(spec, rows, bfs_serial_speedup,
                                        overlay_w8_speedup, overlay_n,
                                        all_identical));
  std::printf("wrote %s\n", out_path.c_str());

  return all_identical ? 0 : 1;
}
