// Regenerates Table 1 of the paper: round complexity of diameter/radius
// in the CONGEST model, classical vs quantum, unweighted vs weighted.
//
// Each instance (n, seed) is one sweep task: it builds its own graph,
// runs every implemented algorithm, and reports the measured simulated
// rounds plus correctness flags as named metrics. The sweep executor
// fans the instances out over a work-stealing pool and aggregates
// mean/min/max/p50/p95 per n — the headline comparison is the weighted
// (1, 3/2)-approximation row: this work's min{n^{9/10} D^{3/10}, n}
// against the classical Θ̃(n).
#include <cmath>
#include <cstdio>
#include <string>

#include "core/approx.h"
#include "core/baselines.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "util/table.h"

namespace {

using namespace qc;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, v < 10 ? "%.2f" : "%.0f", v);
  return buf;
}

/// One instance: every Table 1 measurement on one ER graph.
runtime::TaskOutput measure_instance(const runtime::SweepPoint& p,
                                     const WeightedGraph& g) {
  runtime::TaskOutput out;
  auto& m = out.metrics;
  const Dist d = unweighted_diameter(g);
  m["D"] = double(d);

  const auto classical = core::classical_unweighted_diameter(g);
  m["classical_rounds"] = double(classical.stats.rounds);
  m["classical_ok"] = classical.value == d ? 1 : 0;

  const auto lgm = core::lgm_quantum_unweighted_diameter(g, p.seed);
  m["lgm_rounds"] = double(lgm.rounds);
  m["lgm_ok"] = lgm.value == d ? 1 : 0;

  const auto cw = core::classical_weighted_diameter(g);
  const Dist exact_w = weighted_diameter(g);
  m["sssp_rounds"] = double(cw.stats.rounds);
  m["sssp_ok"] = cw.value == exact_w ? 1 : 0;

  core::Theorem11Options opt;
  opt.seed = p.seed;
  opt.eps_inv = p.eps_inv;
  opt.census = true;
  const auto t11d = core::quantum_weighted_diameter(g, opt);
  m["t11_diam_rounds"] = double(t11d.rounds);
  m["t11_diam_ok"] = t11d.within_bound ? 1 : 0;
  m["t11_diam_ratio"] = t11d.ratio;

  const auto t11r = core::quantum_weighted_radius(g, opt);
  m["t11_rad_rounds"] = double(t11r.rounds);
  m["t11_rad_ok"] = t11r.within_bound ? 1 : 0;
  m["t11_rad_ratio"] = t11r.ratio;

  const auto classical_r = core::classical_unweighted_radius(g);
  m["classical_rad_rounds"] = double(classical_r.stats.rounds);

  const auto lgm_r = core::lgm_quantum_unweighted_radius(g, p.seed);
  m["lgm_rad_rounds"] = double(lgm_r.rounds);
  m["lgm_rad_ok"] = lgm_r.distributed_value_matches ? 1 : 0;

  const auto two = core::two_approx_weighted_diameter(g);
  m["two_approx_rounds"] = double(two.stats.rounds);
  m["two_approx_ok"] =
      two.ecc_leader <= exact_w && two.upper_bound >= exact_w ? 1 : 0;

  const auto th = core::three_halves_unweighted_diameter(g, p.seed);
  m["three_halves_rounds"] = double(th.stats.rounds);
  m["three_halves_ok"] =
      th.estimate <= th.exact && 3 * th.estimate >= 2 * th.exact ? 1 : 0;
  return out;
}

void print_cell(const runtime::SweepCell& cell) {
  const auto agg = [&](const char* name) -> const runtime::Aggregate& {
    static const runtime::Aggregate empty;
    const auto it = cell.metrics.find(name);
    return it == cell.metrics.end() ? empty : it->second;
  };
  const auto ok = [&](const char* name) {
    return agg(name).min >= 1 ? "yes" : "NO";
  };
  const NodeId n = cell.n;
  const double d = agg("D").mean;

  std::printf("== Table 1 @ n=%u (ER, %zu instances, mean D=%.1f)\n", n,
              cell.runs, d);
  const auto model_lgm = core::model::lgm_unweighted_rounds(n, Dist(d));
  const auto model_cw = core::model::classical_weighted_rounds(n);
  const auto model_t11 = core::model::theorem11_rounds(n, Dist(d));
  const auto model_lb = core::model::theorem12_lower_bound(n);

  TextTable t({"problem", "variant", "approx", "classical bound",
               "quantum bound", "model value", "rounds mean", "rounds p95",
               "value ok"});
  t.add("diameter", "unweighted", "exact", "n [17,22]", "sqrt(nD) [12]",
        fmt(model_lgm), fmt(agg("classical_rounds").mean),
        fmt(agg("classical_rounds").p95), ok("classical_ok"));
  t.add("diameter", "unweighted", "exact", "-",
        "sqrt(nD) block search (LGM impl)",
        fmt(std::sqrt(double(n) * d)), fmt(agg("lgm_rounds").mean),
        fmt(agg("lgm_rounds").p95), ok("lgm_ok"));
  t.add("diameter", "weighted", "exact", "n [6]",
        "n (pipelined SSSP impl measured)", fmt(model_cw),
        fmt(agg("sssp_rounds").mean), fmt(agg("sssp_rounds").p95),
        ok("sssp_ok"));
  t.add("diameter", "weighted", "(1,3/2)", "n",
        "min{n^0.9 D^0.3, n} (This work)", fmt(model_t11),
        fmt(agg("t11_diam_rounds").mean), fmt(agg("t11_diam_rounds").p95),
        ok("t11_diam_ok"));
  t.add("diameter", "weighted", "(1,3/2) LB", "n", "n^2/3 (This work)",
        fmt(model_lb), "-", "-", "yes");
  t.add("diameter", "weighted", "2", "sqrt(n) D^1/4 + D [8]",
        "same (folklore SSSP impl measured)",
        fmt(core::model::cm_two_approx_rounds(n, Dist(d))),
        fmt(agg("two_approx_rounds").mean), fmt(agg("two_approx_rounds").p95),
        ok("two_approx_ok"));
  t.add("diameter", "unweighted", "3/2", "sqrt(n) + D [15,3]",
        "cbrt(nD) + D [12]", fmt(std::sqrt(double(n)) + d),
        fmt(agg("three_halves_rounds").mean),
        fmt(agg("three_halves_rounds").p95), ok("three_halves_ok"));
  t.add("radius", "unweighted", "exact", "n [17,22]", "sqrt(nD)",
        fmt(model_lgm), fmt(agg("classical_rad_rounds").mean),
        fmt(agg("classical_rad_rounds").p95), "yes");
  t.add("radius", "unweighted", "exact", "-",
        "sqrt(nD) block search (LGM impl)", fmt(std::sqrt(double(n) * d)),
        fmt(agg("lgm_rad_rounds").mean), fmt(agg("lgm_rad_rounds").p95),
        ok("lgm_rad_ok"));
  t.add("radius", "weighted", "(1,3/2)", "n",
        "min{n^0.9 D^0.3, n} (This work)", fmt(model_t11),
        fmt(agg("t11_rad_rounds").mean), fmt(agg("t11_rad_rounds").p95),
        ok("t11_rad_ok"));
  t.add("radius", "weighted", "(1,3/2) LB", "n", "n^2/3 (This work)",
        fmt(model_lb), "-", "-", "yes");
  std::printf("%s", t.render().c_str());
  std::printf(
      "  measured quality: T1.1 diameter ratio max %.4f, radius ratio max "
      "%.4f (eps bound (1+eps)^2)\n\n",
      agg("t11_diam_ratio").max, agg("t11_rad_ratio").max);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Table 1 reproduction — qcongest\n");
  std::printf("(bounds are formulas; 'rounds' aggregate simulated CONGEST "
              "rounds over seeded instances)\n\n");
  runtime::SweepSpec spec;
  spec.ns = {64, 96, 128};
  spec.families = {"ER"};
  spec.seeds = argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 2;
  spec.max_weight = 16;
  spec.base_seed = 1;

  runtime::ThreadPool pool;
  const auto result = runtime::run_sweep(spec, measure_instance, pool);
  for (const auto& cell : result.cells) {
    if (cell.failures > 0) {
      std::printf("!! %zu failed instance(s) at n=%u: %s\n", cell.failures,
                  cell.n, cell.errors.empty() ? "?" : cell.errors[0].c_str());
    }
    print_cell(cell);
  }
  std::printf("sweep: %zu instances on %u workers in %.1fs\n", result.tasks,
              result.workers, result.wall_seconds);
  return result.failures == 0 ? 0 : 1;
}
