// Regenerates Table 1 of the paper: round complexity of diameter/radius
// in the CONGEST model, classical vs quantum, unweighted vs weighted.
//
// For every row we print the paper's bound formula, its numeric value
// at the benchmark instance (polylog factors set to log2 n), and — for
// the algorithms this library implements — the *measured* simulated
// rounds on a concrete network. The headline comparison is the
// weighted (1, 3/2)-approximation row: this work's
// min{n^{9/10} D^{3/10}, n} against the classical Θ̃(n).
#include <cmath>
#include <cstdio>
#include <string>

#include "core/approx.h"
#include "core/baselines.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/table.h"

namespace {

using namespace qc;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, v < 10 ? "%.2f" : "%.0f", v);
  return buf;
}

void table_for_instance(NodeId n, Weight max_w, std::uint64_t seed) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(n, 3.0 / n * std::log2(double(n)), rng);
  g = gen::randomize_weights(g, max_w, rng);
  const Dist d = unweighted_diameter(g);

  std::printf("== Table 1 @ instance: n=%u, D=%llu, W=%llu (ER, seed %llu)\n",
              n, (unsigned long long)d, (unsigned long long)g.max_weight(),
              (unsigned long long)seed);

  // Measured executions.
  const auto classical = core::classical_unweighted_diameter(g);
  const auto lgm = core::lgm_quantum_unweighted_diameter(g, seed);
  core::Theorem11Options opt;
  opt.seed = seed;
  const auto t11d = core::quantum_weighted_diameter(g, opt);
  const auto t11r = core::quantum_weighted_radius(g, opt);
  const auto classical_r = core::classical_unweighted_radius(g);
  const auto lgm_r = core::lgm_quantum_unweighted_radius(g, seed);

  TextTable t({"problem", "variant", "approx", "classical bound",
               "quantum bound", "model value", "measured rounds", "value ok"});

  auto model_cu = core::model::classical_unweighted_rounds(n);
  auto model_cw = core::model::classical_weighted_rounds(n);
  auto model_lgm = core::model::lgm_unweighted_rounds(n, d);
  auto model_t11 = core::model::theorem11_rounds(n, d);
  auto model_lb = core::model::theorem12_lower_bound(n);

  t.add("diameter", "unweighted", "exact", "n [17,22]", "sqrt(nD) [12]",
        fmt(model_lgm),
        std::to_string(classical.stats.rounds) + " (classical impl)",
        classical.value == d);
  t.add("diameter", "unweighted", "exact", "-",
        "sqrt(nD) block search (LGM impl)",
        fmt(std::sqrt(double(n) * double(d))), std::to_string(lgm.rounds),
        lgm.value == d);
  const auto cw = core::classical_weighted_diameter(g);
  t.add("diameter", "weighted", "exact", "n [6]",
        "n (pipelined SSSP impl measured)", fmt(model_cw),
        std::to_string(cw.stats.rounds), cw.value == weighted_diameter(g));
  t.add("diameter", "weighted", "(1,3/2)", "n",
        "min{n^0.9 D^0.3, n} (This work)", fmt(model_t11),
        std::to_string(t11d.rounds), t11d.within_bound);
  t.add("diameter", "weighted", "(1,3/2) LB", "n", "n^2/3 (This work)",
        fmt(model_lb), "-", true);
  const auto two = core::two_approx_weighted_diameter(g);
  const Dist exact_w = weighted_diameter(g);
  t.add("diameter", "weighted", "2", "sqrt(n) D^1/4 + D [8]",
        "same (folklore SSSP impl measured)",
        fmt(core::model::cm_two_approx_rounds(n, d)),
        std::to_string(two.stats.rounds),
        two.ecc_leader <= exact_w && two.upper_bound >= exact_w);
  const auto th = core::three_halves_unweighted_diameter(g, seed);
  t.add("diameter", "unweighted", "3/2", "sqrt(n) + D [15,3]",
        "cbrt(nD) + D [12]", fmt(std::sqrt(double(n)) + double(d)),
        std::to_string(th.stats.rounds),
        th.estimate <= th.exact && 3 * th.estimate >= 2 * th.exact);
  t.add("radius", "unweighted", "exact", "n [17,22]", "sqrt(nD)",
        fmt(model_lgm),
        std::to_string(classical_r.stats.rounds) + " (classical impl)",
        true);
  t.add("radius", "unweighted", "exact", "-",
        "sqrt(nD) block search (LGM impl)",
        fmt(std::sqrt(double(n) * double(d))), std::to_string(lgm_r.rounds),
        lgm_r.distributed_value_matches);
  t.add("radius", "weighted", "(1,3/2)", "n",
        "min{n^0.9 D^0.3, n} (This work)", fmt(model_t11),
        std::to_string(t11r.rounds), t11r.within_bound);
  t.add("radius", "weighted", "(1,3/2) LB", "n", "n^2/3 (This work)",
        fmt(model_lb), "-", true);
  (void)model_cu;

  std::printf("%s", t.render().c_str());
  std::printf(
      "  measured quality: T1.1 diameter ratio %.4f (<= (1+eps)^2 = %.4f), "
      "radius ratio %.4f\n",
      t11d.ratio, (1 + t11d.epsilon) * (1 + t11d.epsilon), t11r.ratio);
  std::printf(
      "  classical exact unweighted APSP measured %llu rounds (Theta(n): "
      "n=%u)\n\n",
      (unsigned long long)classical.stats.rounds, n);
}

}  // namespace

int main() {
  std::printf("Table 1 reproduction — qcongest\n");
  std::printf("(bounds are formulas; 'measured rounds' are simulated CONGEST "
              "rounds on this instance)\n\n");
  table_for_instance(64, 8, 1);
  table_for_instance(96, 12, 2);
  table_for_instance(128, 16, 3);
  return 0;
}
