#!/usr/bin/env python3
"""Unit tests for tools/check_bench_regression.py.

Registered with ctest (see tests/CMakeLists.txt) so the bench gate's
own gating logic is covered by tier-1: a checker that silently stopped
failing on identical:false would otherwise only be caught by a human
reading gate output. Drives the pure gate() function on in-memory
dicts plus main() end-to-end through temp files.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_spec = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(_HERE, "check_bench_regression.py"))
cbr = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cbr)


def doc(rows, acceptance=None, hardware_workers=1):
    """A minimal bench JSON document in the committed shape."""
    if acceptance is None:
        acceptance = {"byte_identical_at_all_worker_counts": True}
    return {
        "spec": {"hardware_workers": hardware_workers},
        "results": rows,
        "acceptance": acceptance,
    }


def row(workload="w", variant="v", n=100, workers=1, speedup=1.0,
        identical=True, seconds=0.5, **extra):
    r = {"workload": workload, "variant": variant, "n": n,
         "workers": workers, "seconds": seconds,
         "speedup_vs_baseline": speedup, "identical": identical}
    r.update(extra)
    return r


class GateIdentity(unittest.TestCase):
    def test_clean_run_passes(self):
        base = doc([row(speedup=2.0)])
        fresh = doc([row(speedup=2.0)])
        failures, warnings = cbr.gate(base, fresh)
        self.assertEqual(failures, [])
        self.assertEqual(warnings, [])

    def test_identical_false_is_fatal(self):
        base = doc([row()])
        fresh = doc([row(identical=False)])
        failures, _ = cbr.gate(base, fresh)
        self.assertEqual(len(failures), 1)
        self.assertIn("identical=false", failures[0])

    def test_identical_false_fatal_even_on_foreign_hardware(self):
        # Hardware mismatch skips perf gates, never identity gates.
        base = doc([row()], hardware_workers=64)
        fresh = doc([row(identical=False)], hardware_workers=1)
        failures, warnings = cbr.gate(base, fresh)
        self.assertTrue(any("identical=false" in f for f in failures))
        self.assertTrue(any("hardware differs" in w for w in warnings))

    def test_missing_acceptance_identity_key_is_fatal(self):
        fresh = doc([row()], acceptance={})
        failures, _ = cbr.gate(doc([]), fresh)
        self.assertTrue(any("byte_identical_at_all_worker_counts" in f
                            for f in failures))


class GateAcceptanceFlags(unittest.TestCase):
    def _acc(self, **flags):
        acc = {"byte_identical_at_all_worker_counts": True}
        acc.update(flags)
        return acc

    def assert_flag_fatal(self, name):
        fresh = doc([row()], acceptance=self._acc(**{name: False}))
        failures, _ = cbr.gate(doc([]), fresh)
        self.assertTrue(any(name in f for f in failures),
                        f"{name}=false must be fatal, got {failures}")
        ok = doc([row()], acceptance=self._acc(**{name: True}))
        failures, _ = cbr.gate(doc([]), ok)
        self.assertEqual(failures, [])

    def test_rss_ratio_ok_false_is_fatal(self):
        self.assert_flag_fatal("rss_ratio_ok")

    def test_external_sort_rss_flat_false_is_fatal(self):
        self.assert_flag_fatal("external_sort_rss_flat")

    def test_mapped_residency_ok_false_is_fatal(self):
        self.assert_flag_fatal("mapped_residency_ok")

    def test_identical_to_scratch_false_is_fatal(self):
        self.assert_flag_fatal("identical_to_scratch")

    def test_absent_flags_are_not_required(self):
        # A sim-layer file has none of the dataset/dynamic keys; that
        # must not fail — the checks are key-presence-conditional.
        fresh = doc([row()])
        failures, _ = cbr.gate(doc([]), fresh)
        self.assertEqual(failures, [])


class GatePerf(unittest.TestCase):
    def test_speedup_regression_is_fatal(self):
        base = doc([row(speedup=4.0)])
        fresh = doc([row(speedup=2.0)])
        failures, _ = cbr.gate(base, fresh)
        self.assertTrue(any("speedup regressed" in f for f in failures))

    def test_speedup_within_tolerance_passes(self):
        base = doc([row(speedup=4.0)])
        fresh = doc([row(speedup=3.6)])
        failures, _ = cbr.gate(base, fresh, tolerance=0.15)
        self.assertEqual(failures, [])

    def test_hardware_mismatch_skips_speedup_gate(self):
        base = doc([row(speedup=4.0)], hardware_workers=64)
        fresh = doc([row(speedup=1.0)], hardware_workers=1)
        failures, warnings = cbr.gate(base, fresh)
        self.assertEqual(failures, [])
        self.assertTrue(any("hardware differs" in w for w in warnings))

    def test_ingest_column_regressions_are_fatal(self):
        base = doc([row(build_seconds=1.0, peak_rss_ratio=2.0)])
        fresh = doc([row(build_seconds=1.5, peak_rss_ratio=2.9)])
        failures, _ = cbr.gate(base, fresh)
        self.assertTrue(any("build_seconds" in f for f in failures))
        self.assertTrue(any("peak_rss_ratio" in f for f in failures))

    def test_missing_row_at_benched_n_is_fatal(self):
        base = doc([row(variant="kept"), row(variant="dropped")])
        fresh = doc([row(variant="kept")])
        failures, _ = cbr.gate(base, fresh)
        self.assertTrue(any("missing from fresh run" in f
                            for f in failures))

    def test_short_rows_skip_timing_gates_only(self):
        # Sub-floor measurements are scheduler noise: speedup and
        # build_seconds swings must not fail, but peak_rss_ratio (a
        # byte ratio) and identical (correctness) always gate.
        base = doc([row(seconds=0.01, speedup=4.0, build_seconds=0.001,
                        peak_rss_ratio=2.0)])
        fresh = doc([row(seconds=0.01, speedup=1.0, build_seconds=0.002,
                         peak_rss_ratio=2.0)])
        failures, _ = cbr.gate(base, fresh)
        self.assertEqual(failures, [])
        fresh_rss = doc([row(seconds=0.01, speedup=1.0,
                             peak_rss_ratio=4.0)])
        failures, _ = cbr.gate(base, fresh_rss)
        self.assertTrue(any("peak_rss_ratio" in f for f in failures))
        fresh_bad = doc([row(seconds=0.01, identical=False)])
        failures, _ = cbr.gate(base, fresh_bad)
        self.assertTrue(any("identical=false" in f for f in failures))

    def test_min_seconds_floor_is_two_sided(self):
        # A fresh row that collapsed below the floor must not dodge the
        # gate the other way either: floor applies to both sides, so a
        # long baseline vs short fresh row skips (duration itself is
        # caught by the speedup column when it matters upstream).
        base = doc([row(seconds=5.0, speedup=4.0)])
        fresh = doc([row(seconds=0.01, speedup=1.0)])
        failures, _ = cbr.gate(base, fresh)
        self.assertEqual(failures, [])

    def test_unbenched_n_is_skipped_not_failed(self):
        # Committed --huge rows vs a smoke gate that never benched that n.
        base = doc([row(n=100), row(variant="huge", n=10**6)])
        fresh = doc([row(n=100)])
        failures, warnings = cbr.gate(base, fresh)
        self.assertEqual(failures, [])
        self.assertTrue(any("not benched by this run" in w
                            for w in warnings))


class MainEndToEnd(unittest.TestCase):
    def _write(self, tmp, name, payload):
        path = os.path.join(tmp, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        return path

    def test_main_pass_and_fail_exit_codes(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = self._write(tmp, "base.json", doc([row()]))
            good = self._write(tmp, "good.json", doc([row()]))
            bad = self._write(tmp, "bad.json",
                              doc([row(identical=False)]))
            self.assertEqual(
                cbr.main(["--baseline", base, "--fresh", good]), 0)
            self.assertEqual(
                cbr.main(["--baseline", base, "--fresh", bad]), 1)

    def test_require_acceptance_mode(self):
        with tempfile.TemporaryDirectory() as tmp:
            good = self._write(tmp, "good.json", doc([row()]))
            empty = self._write(tmp, "empty.json",
                                doc([row()], acceptance=None))
            # doc() fills a default block; strip it for the bad file.
            with open(empty, "r+", encoding="utf-8") as f:
                payload = json.load(f)
                del payload["acceptance"]
                f.seek(0)
                f.truncate()
                json.dump(payload, f)
            self.assertEqual(
                cbr.main(["--require-acceptance", good]), 0)
            self.assertEqual(
                cbr.main(["--require-acceptance", good, empty]), 1)

    def test_missing_acceptance_helper(self):
        self.assertTrue(cbr.missing_acceptance({}))
        self.assertTrue(cbr.missing_acceptance({"acceptance": {}}))
        self.assertTrue(cbr.missing_acceptance({"acceptance": [True]}))
        self.assertFalse(cbr.missing_acceptance(
            {"acceptance": {"rss_ratio_ok": True}}))


if __name__ == "__main__":
    unittest.main()
