// qcongest command-line interface.
//
//   qcongest_cli diameter  [--n N] [--family ER|grid|cliques|path]
//                          [--maxw W] [--seed S] [--radius]
//                          [--eps-inv E] [--graph FILE]
//   qcongest_cli gadget    [--h H] [--radius] [--seed S] [--full]
//   qcongest_cli degree    --k K [--or] [--eps NUM/DEN]
//   qcongest_cli baseline  [--n N] [--seed S]
//   qcongest_cli params    --n N --d D
//   qcongest_cli sweep     [--n 64,128] [--family ER,grid] [--seeds K]
//                          [--eps-inv 0,8] [--algo bfs|baseline|t11|
//                          t11-radius] [--maxw W] [--seed S]
//                          [--workers K] [--out FILE] [--round-metrics]
//   qcongest_cli serve     [--graphs f1.wg,f2.wg | --count K --n N
//                          --family F --maxw W --seed S] [--warm]
//                          [--workers K] [--queue Q] [--batch B]
//                          [--metrics FILE]
//   qcongest_cli query     --type T [--graph FILE | --n N ...]
//                          [--node U] [--target V] [--query-seed S]
//                          [--id I] [--workers K]
//   qcongest_cli dataset   generate|convert|shuffle|sort|summarize|
//                          pack-csr ... (binary bgraph/bcsr tooling for
//                          the million-node ingest path; docs/datasets.md)
//
// Runs the paper's algorithms on generated or user-provided networks
// (wgraph v1 format; see graph/io.h) and prints the results with their
// CONGEST round bills. `sweep` fans a whole experiment grid out over a
// work-stealing pool and writes aggregated JSON (docs/runtime.md).
// `serve` keeps a resident service::QueryEngine answering line-delimited
// JSON requests from stdin against warm graph artifacts; `query` is its
// one-shot twin (docs/service.md documents both and the wire format).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "congest/primitives.h"
#include "core/approx.h"
#include "core/baselines.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "lowerbound/approxdeg.h"
#include "lowerbound/boolfn.h"
#include "lowerbound/server.h"
#include "runtime/metrics.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "service/query_engine.h"
#include "service/wire.h"
#include "util/table.h"

namespace {

using namespace qc;

struct Args {
  std::map<std::string, std::string> kv;
  std::map<std::string, bool> flags;

  std::uint64_t num(const std::string& key, std::uint64_t def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : std::stoull(it->second);
  }
  std::string str(const std::string& key, const std::string& def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
  bool flag(const std::string& key) const {
    return flags.count(key) != 0;
  }
};

Args parse_args(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      throw ArgumentError("unexpected argument: " + tok);
    }
    tok = tok.substr(2);
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      a.kv[tok] = argv[++i];
    } else {
      a.flags[tok] = true;
    }
  }
  return a;
}

WeightedGraph make_graph(const Args& a) {
  if (a.kv.count("graph")) {
    return load_graph(a.str("graph", ""));
  }
  const auto n = static_cast<NodeId>(a.num("n", 64));
  Rng rng(a.num("seed", 1));
  return gen::from_family(a.str("family", "ER"), n, a.num("maxw", 10), rng);
}

int cmd_diameter(const Args& a) {
  const auto g = make_graph(a);
  const bool radius = a.flag("radius");
  core::Theorem11Options opt;
  opt.seed = a.num("seed", 1);
  opt.eps_inv = static_cast<std::uint32_t>(a.num("eps-inv", 0));
  opt.census = true;
  const auto res = radius ? core::quantum_weighted_radius(g, opt)
                          : core::quantum_weighted_diameter(g, opt);
  std::printf("network: %s, D = %llu\n", g.summary().c_str(),
              (unsigned long long)unweighted_diameter(g));
  std::printf("%s estimate: %.1f (exact %llu, ratio %.4f, bound %.4f)\n",
              radius ? "radius" : "diameter", res.estimate,
              (unsigned long long)res.exact, res.ratio,
              (1 + res.epsilon) * (1 + res.epsilon));
  std::printf("charged rounds: %llu (outer %llu calls x (T1 %llu + T2 "
              "%llu)); validated: %s\n",
              (unsigned long long)res.rounds,
              (unsigned long long)res.outer_calls,
              (unsigned long long)res.t1_outer,
              (unsigned long long)res.t2_outer,
              res.distributed_value_matches ? "yes" : "NO");
  return res.within_bound ? 0 : 2;
}

int cmd_gadget(const Args& a) {
  const auto h = static_cast<std::uint32_t>(a.num("h", 4));
  const bool radius = a.flag("radius");
  const bool full = a.flag("full");
  const auto params = qc::lb::GadgetParams::paper(h);
  Rng rng(a.num("seed", 1));
  const auto input =
      qc::lb::random_input(1ull << params.s, params.ell, rng);
  const auto check =
      radius ? qc::lb::check_radius_reduction(params, input, full)
             : qc::lb::check_diameter_reduction(params, input, full);
  std::printf("gadget h=%u: n=%llu, F%s(x,y)=%d, measured %s = %llu\n", h,
              (unsigned long long)params.node_count(), radius ? "'" : "",
              check.f_value, radius ? "radius" : "diameter",
              (unsigned long long)check.measured);
  std::printf("thresholds: YES <= %llu, NO >= %llu; dichotomy holds: %s; "
              "3/2-separable: %s\n",
              (unsigned long long)check.threshold_high,
              (unsigned long long)check.threshold_low,
              check.gap_respected ? "yes" : "NO",
              check.distinguishable ? "yes" : "NO");
  return check.gap_respected ? 0 : 2;
}

int cmd_degree(const Args& a) {
  const auto k = a.num("k", 16);
  const bool use_or = a.flag("or");
  const double eps = 1.0 / 3.0;
  const auto levels =
      use_or ? qc::lb::or_levels(k) : qc::lb::and_levels(k);
  const auto d = qc::lb::approx_degree_symmetric(levels, eps);
  std::printf("deg_{1/3}(%s_%llu) = %u  (sqrt(k) = %.2f)\n",
              use_or ? "OR" : "AND", (unsigned long long)k, d,
              std::sqrt(double(k)));
  return 0;
}

int cmd_baseline(const Args& a) {
  const auto g = make_graph(a);
  const auto classical = core::classical_unweighted_diameter(g);
  const auto lgm = core::lgm_quantum_unweighted_diameter(g, a.num("seed", 1));
  const auto th = core::three_halves_unweighted_diameter(g, a.num("seed", 1));
  const auto two = core::two_approx_weighted_diameter(g);
  TextTable t({"algorithm", "answer", "rounds"});
  t.add("classical exact APSP (unweighted)", classical.value,
        classical.stats.rounds);
  t.add("quantum LGM block search (unweighted)", lgm.value, lgm.rounds);
  t.add("3/2-approx (unweighted)", th.estimate, th.stats.rounds);
  t.add("2-approx via SSSP (weighted, upper bound)", two.upper_bound,
        two.stats.rounds);
  std::printf("network: %s\n%s", g.summary().c_str(), t.render().c_str());
  return 0;
}

int cmd_params(const Args& a) {
  const auto n = static_cast<std::uint32_t>(a.num("n", 1024));
  const auto d = a.num("d", 16);
  const auto p = qc::paths::Params::make(n, d);
  std::printf("Eq. (1) at n=%u, D=%llu:\n", n, (unsigned long long)d);
  std::printf("  eps = 1/%u, r = %llu, ell = %llu, k = %llu\n", p.eps_inv,
              (unsigned long long)p.r, (unsigned long long)p.ell,
              (unsigned long long)p.k);
  std::printf("  paper bound: ~%.0f rounds vs classical ~%.0f\n",
              core::model::theorem11_rounds(n, d),
              core::model::classical_weighted_rounds(n));
  return 0;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw ArgumentError("empty list argument: " + s);
  return out;
}

template <typename T>
std::vector<T> parse_num_list(const std::string& s) {
  std::vector<T> out;
  for (const auto& tok : split_commas(s)) {
    out.push_back(static_cast<T>(std::stoull(tok)));
  }
  return out;
}

runtime::SweepFn make_sweep_fn(const std::string& algo,
                               runtime::MetricsRegistry* registry) {
  using runtime::SweepPoint;
  using runtime::TaskOutput;
  if (algo == "bfs") {
    return [registry](const SweepPoint& p, const WeightedGraph& g) {
      congest::Config cfg;
      cfg.bandwidth_bits = p.bandwidth_bits;
      cfg.seed = p.seed;
      if (registry) runtime::attach_simulator_metrics(cfg, *registry);
      const auto res = congest::build_bfs_tree(g, 0, cfg);
      TaskOutput out;
      runtime::record_stats(out, res.stats);
      Dist depth = 0;
      for (const auto& node : res.nodes) {
        if (node.depth < kInfDist) depth = std::max(depth, node.depth);
      }
      out.metrics["tree_depth"] = double(depth);
      return out;
    };
  }
  if (algo == "baseline") {
    return [](const SweepPoint&, const WeightedGraph& g) {
      const auto classical = core::classical_unweighted_diameter(g);
      TaskOutput out;
      runtime::record_stats(out, classical.stats);
      out.metrics["diameter"] = double(classical.value);
      out.metrics["value_ok"] =
          classical.value == unweighted_diameter(g) ? 1.0 : 0.0;
      return out;
    };
  }
  if (algo == "t11" || algo == "t11-radius") {
    const bool radius = algo == "t11-radius";
    return [radius](const SweepPoint& p, const WeightedGraph& g) {
      core::Theorem11Options opt;
      opt.seed = p.seed;
      opt.eps_inv = p.eps_inv;
      opt.census = true;
      const auto res = radius ? core::quantum_weighted_radius(g, opt)
                              : core::quantum_weighted_diameter(g, opt);
      TaskOutput out;
      out.metrics["rounds"] = double(res.rounds);
      out.metrics["ratio"] = res.ratio;
      out.metrics["within_bound"] = res.within_bound ? 1.0 : 0.0;
      out.metrics["outer_calls"] = double(res.outer_calls);
      out.metrics["validated"] = res.distributed_value_matches ? 1.0 : 0.0;
      return out;
    };
  }
  throw ArgumentError("unknown sweep algo: " + algo +
                      " (want bfs|baseline|t11|t11-radius)");
}

int cmd_sweep(const Args& a) {
  runtime::SweepSpec spec;
  spec.ns = parse_num_list<NodeId>(a.str("n", "64"));
  spec.families = split_commas(a.str("family", "ER"));
  spec.seeds = static_cast<std::uint32_t>(a.num("seeds", 4));
  spec.eps_invs = parse_num_list<std::uint32_t>(a.str("eps-inv", "0"));
  spec.bandwidth_bits = static_cast<std::uint32_t>(a.num("bandwidth", 0));
  spec.max_weight = a.num("maxw", 10);
  spec.base_seed = a.num("seed", 1);
  const std::string algo = a.str("algo", "baseline");
  const bool round_metrics = a.flag("round-metrics");
  const std::string out_path = a.str("out", "sweep_results.json");

  runtime::MetricsRegistry registry;
  const auto fn = make_sweep_fn(algo, round_metrics ? &registry : nullptr);
  runtime::ThreadPool pool(static_cast<unsigned>(a.num("workers", 0)));
  const auto result = runtime::run_sweep(spec, fn, pool);

  std::string json = runtime::to_json(result, /*include_timing=*/true);
  if (round_metrics) {
    json = "{\"sweep\":" + json +
           ",\"round_metrics\":" + registry.to_json() + "}";
  }
  runtime::write_file(out_path, json);

  TextTable t({"n", "family", "eps_inv", "runs", "fail", "metric", "mean",
               "p50", "p95", "max"});
  for (const auto& cell : result.cells) {
    for (const auto& [name, agg] : cell.metrics) {
      t.add(cell.n, cell.family, cell.eps_inv, cell.runs, cell.failures,
            name, agg.mean, agg.p50, agg.p95, agg.max);
    }
  }
  std::printf("sweep: algo=%s, %zu tasks on %u workers in %.2fs "
              "(%zu failures)\n%s",
              algo.c_str(), result.tasks, result.workers,
              result.wall_seconds, result.failures, t.render().c_str());
  std::printf("wrote %s\n", out_path.c_str());
  return result.failures == 0 ? 0 : 2;
}

/// Builds the engine both service commands share: extension handlers
/// registered on top of the built-ins, metrics wired when given.
service::QueryEngine make_engine(const Args& a, bool auto_dispatch,
                                 runtime::MetricsRegistry* registry) {
  service::EngineOptions opt;
  opt.workers = static_cast<unsigned>(a.num("workers", 0));
  opt.max_in_flight = a.num("queue", 1024);
  opt.max_batch = a.num("batch", 64);
  opt.auto_dispatch = auto_dispatch;
  opt.metrics = registry;
  return service::QueryEngine(opt);
}

/// First 8 bytes of a file (shorter files yield what exists) — the
/// binary formats are distinguished by magic: "bgraph1\0" (edge list)
/// and "bcsrqc1\0" (packed CSR image); anything else is wgraph text.
std::string sniff_magic8(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  QC_REQUIRE(f != nullptr, "cannot open: " + path);
  char magic[8] = {0};
  const std::size_t got = std::fread(magic, 1, sizeof magic, f);
  std::fclose(f);
  return std::string(magic, got);
}

int cmd_serve(const Args& a) {
  runtime::MetricsRegistry registry;
  auto engine = make_engine(a, /*auto_dispatch=*/true, &registry);
  service::register_unweighted_handlers(engine);
  service::register_theorem11_handlers(engine);

  // Graphs come from files (--graphs) or the generator registry
  // (--count copies of --family, seeds derived per index). Names are
  // positional — g0, g1, ... — and echoed to stderr so clients know
  // what to put in the "graph" field.
  if (a.kv.count("graphs")) {
    const auto files = split_commas(a.str("graphs", ""));
    for (std::size_t i = 0; i < files.size(); ++i) {
      const std::string name = "g" + std::to_string(i);
      const std::string magic = sniff_magic8(files[i]);
      if (magic == std::string("bcsrqc1\0", 8)) {
        // Packed CSR image: serve straight from the read-only mapping
        // (specs naming the same file share it — reported below).
        const auto& ctx = engine.add_graph_mapped(name, files[i]);
        std::fprintf(stderr, "mapped %s = %s (n=%u m=%zu maxw=%llu)\n",
                     name.c_str(), files[i].c_str(), ctx.node_count(),
                     ctx.edge_count(),
                     (unsigned long long)ctx.csr().max_weight());
      } else if (magic == std::string("bgraph1\0", 8)) {
        const auto& ctx = engine.add_graph(name, load_bgraph(files[i]));
        std::fprintf(stderr, "loaded %s = %s (%s)\n", name.c_str(),
                     files[i].c_str(), ctx.graph().summary().c_str());
      } else {
        const auto& ctx = engine.add_graph(name, load_graph(files[i]));
        std::fprintf(stderr, "loaded %s = %s (%s)\n", name.c_str(),
                     files[i].c_str(), ctx.graph().summary().c_str());
      }
    }
    // Shared-residency report: every group of mapped graphs whose views
    // resolve to one mapping address serves reads from the same pages.
    std::map<const void*, std::vector<std::string>> by_mapping;
    for (const auto& gname : engine.graph_names()) {
      const auto* ctx = engine.find_graph(gname);
      if (ctx->is_mapped()) {
        by_mapping[ctx->mapping_address()].push_back(gname);
      }
    }
    for (const auto& [addr, names] : by_mapping) {
      std::string list = names.front();
      for (std::size_t i = 1; i < names.size(); ++i) list += "," + names[i];
      std::fprintf(stderr,
                   "mapped residency: {%s} -> one mapping @%p (%ld views)\n",
                   list.c_str(), addr,
                   engine.find_graph(names.front())->mapping_use_count());
    }
  } else {
    const auto count = a.num("count", 1);
    const auto n = static_cast<NodeId>(a.num("n", 64));
    const std::string family = a.str("family", "ER");
    const auto maxw = a.num("maxw", 10);
    const auto seed = a.num("seed", 1);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string name = "g" + std::to_string(i);
      Rng rng(runtime::derive_seed(seed, i));
      const auto& ctx =
          engine.add_graph(name, gen::from_family(family, n, maxw, rng));
      std::fprintf(stderr, "generated %s = %s[%llu] (%s)\n", name.c_str(),
                   family.c_str(), (unsigned long long)i,
                   ctx.graph().summary().c_str());
    }
  }
  if (a.flag("warm")) {
    engine.warm_all();
    for (const auto& name : engine.graph_names()) {
      const auto w = engine.find_graph(name)->warm_state();
      std::fprintf(stderr, "warmed %s: ecc=%d hop_ecc=%d toolkit_rows=%zu\n",
                   name.c_str(), int(w.weighted_ecc), int(w.hop_ecc),
                   w.toolkit_rows);
    }
  }
  std::fprintf(stderr, "serving %zu graph(s), %u workers, queue=%zu, "
               "batch=%zu; one JSON request per line on stdin\n",
               engine.graph_names().size(), engine.worker_count(),
               engine.options().max_in_flight, engine.options().max_batch);

  // Responses go out in request order: futures queue up here and flush
  // as their fronts become ready (fully blocking only at EOF), so slow
  // queries never reorder the stream even though batches complete
  // out of order internally.
  struct Out {
    std::string immediate;
    std::optional<std::future<service::QueryResult>> fut;
  };
  std::deque<Out> outq;
  const auto emit_ready = [&outq](bool block) {
    while (!outq.empty()) {
      Out& front = outq.front();
      if (front.fut.has_value()) {
        if (!block && front.fut->wait_for(std::chrono::seconds(0)) !=
                          std::future_status::ready) {
          return;
        }
        std::printf("%s\n", service::format_response(front.fut->get()).c_str());
      } else {
        std::printf("%s\n", front.immediate.c_str());
      }
      std::fflush(stdout);
      outq.pop_front();
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      emit_ready(false);
      continue;
    }
    service::Query q;
    try {
      q = service::parse_request(line);
    } catch (const std::exception& e) {
      service::QueryResult bad;
      bad.error = e.what();
      outq.push_back({service::format_response(bad), std::nullopt});
      emit_ready(false);
      continue;
    }
    const std::uint64_t id = q.id;
    try {
      Out o;
      o.fut = engine.submit(std::move(q));
      outq.push_back(std::move(o));
    } catch (const service::AdmissionError& e) {
      outq.push_back({service::format_rejection(id, e.what()), std::nullopt});
    }
    emit_ready(false);
  }
  emit_ready(true);

  std::fprintf(stderr, "served %llu queries (%llu rejected, %llu errors)\n",
               (unsigned long long)registry.counter("service.queries").value(),
               (unsigned long long)registry.counter("service.rejected").value(),
               (unsigned long long)registry.counter("service.errors").value());
  for (const auto& type : engine.handler_types()) {
    const auto& h = registry.histogram("service.latency_seconds." + type,
                                       service::latency_histogram_bounds());
    if (h.count() == 0) continue;
    std::fprintf(stderr, "  %-24s n=%llu p50=%.3fms p95=%.3fms\n",
                 type.c_str(), (unsigned long long)h.count(),
                 h.quantile(0.5) * 1e3, h.quantile(0.95) * 1e3);
  }
  if (a.kv.count("metrics")) {
    const std::string path = a.str("metrics", "");
    runtime::write_file(path, registry.to_json());
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
  return 0;
}

// --- dataset tooling (docs/datasets.md) ------------------------------

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool sniff_bgraph(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  QC_REQUIRE(f != nullptr, "cannot open: " + path);
  unsigned char magic[8] = {0};
  const std::size_t got = std::fread(magic, 1, sizeof magic, f);
  std::fclose(f);
  return got == sizeof magic && std::memcmp(magic, "bgraph1\0", 8) == 0;
}

void print_info(const char* verb, const BGraphInfo& info, double seconds) {
  std::printf("%s: n=%llu m=%llu maxw=%llu sorted=%s (%.2fs)\n", verb,
              (unsigned long long)info.n, (unsigned long long)info.m,
              (unsigned long long)info.max_weight,
              info.sorted ? "yes" : "no", seconds);
}

int cmd_dataset(const std::string& verb, const Args& a) {
  const std::string in = a.str("in", "");
  const std::string out = a.str("out", "");
  const double t0 = now_seconds();
  if (verb == "generate") {
    QC_REQUIRE(!out.empty(), "dataset generate needs --out");
    const std::string family = a.str("family", "rmat");
    const auto maxw = a.num("maxw", 10);
    const auto seed = a.num("seed", 1);
    BGraphInfo info;
    if (family == "rmat") {
      const auto scale = static_cast<std::uint32_t>(a.num("scale", 20));
      const auto m = a.num("m", std::uint64_t{10} << scale);
      info = gen::rmat_bgraph(out, scale, m, maxw, seed);
    } else if (family == "chunglu") {
      const auto n = static_cast<NodeId>(a.num("n", 1u << 20));
      const auto m = a.num("m", std::uint64_t{10} * n);
      const double exponent = std::stod(a.str("exponent", "2.5"));
      info = gen::chung_lu_bgraph(out, n, m, exponent, maxw, seed);
    } else if (family == "er") {
      const auto n = static_cast<NodeId>(a.num("n", 1u << 20));
      // Default p keeps the expected degree at ~--avg-deg (10).
      const double avg = double(a.num("avg-deg", 10));
      const double p = a.kv.count("p") ? std::stod(a.str("p", "0"))
                                       : avg / double(n > 1 ? n - 1 : 1);
      info = gen::erdos_renyi_bgraph(out, n, p, maxw, seed);
    } else if (family == "grid") {
      // Road-like lattice; --n picks a square side when --rows/--cols
      // are not given explicitly.
      const auto n = a.num("n", 1u << 20);
      const auto side = static_cast<NodeId>(std::sqrt(double(n)));
      const auto rows = static_cast<NodeId>(a.num("rows", side));
      const auto cols = static_cast<NodeId>(a.num("cols", side));
      const double diag = std::stod(a.str("diag", "0.05"));
      info = gen::grid_bgraph(out, rows, cols, diag, maxw, seed);
    } else {
      throw ArgumentError("unknown dataset family: " + family +
                          " (want rmat|chunglu|er|grid)");
    }
    print_info(("generate " + family + " -> " + out).c_str(), info,
               now_seconds() - t0);
    return 0;
  }
  if (verb == "convert") {
    QC_REQUIRE(!in.empty() && !out.empty(), "dataset convert needs --in/--out");
    if (sniff_bgraph(in)) {
      convert_bgraph_to_text(in, out);
      std::printf("convert %s (bgraph) -> %s (wgraph text) (%.2fs)\n",
                  in.c_str(), out.c_str(), now_seconds() - t0);
    } else {
      const auto info = convert_text_to_bgraph(in, out);
      print_info(("convert " + in + " (text) -> " + out).c_str(), info,
                 now_seconds() - t0);
    }
    return 0;
  }
  // Out-of-core budget for shuffle/sort, in MiB (0 = the library's
  // 256 MiB default). Inputs below the budget take the in-memory fast
  // path; larger ones spill to <out>.spill/.
  const std::uint64_t mem_budget = a.num("mem-budget", 0) << 20;
  if (verb == "shuffle") {
    QC_REQUIRE(!in.empty() && !out.empty(), "dataset shuffle needs --in/--out");
    const auto info = shuffle_bgraph(in, out, a.num("seed", 1), mem_budget);
    print_info(("shuffle " + in + " -> " + out).c_str(), info,
               now_seconds() - t0);
    return 0;
  }
  if (verb == "sort") {
    QC_REQUIRE(!in.empty() && !out.empty(), "dataset sort needs --in/--out");
    const auto info = sort_bgraph(in, out, mem_budget);
    print_info(("sort " + in + " -> " + out).c_str(), info,
               now_seconds() - t0);
    return 0;
  }
  if (verb == "summarize") {
    QC_REQUIRE(!in.empty(), "dataset summarize needs --in");
    const auto s = summarize_bgraph(in);
    std::printf("%s: n=%llu m=%llu weights=[%llu, %llu] sorted=%s\n",
                in.c_str(), (unsigned long long)s.info.n,
                (unsigned long long)s.info.m,
                (unsigned long long)s.min_weight,
                (unsigned long long)s.info.max_weight,
                s.info.sorted ? "yes" : "no");
    std::printf("degrees: avg=%.2f max=%llu isolated=%llu (%.2fs)\n",
                s.avg_degree, (unsigned long long)s.max_degree,
                (unsigned long long)s.isolated, now_seconds() - t0);
    TextTable t({"degree", "nodes"});
    for (std::size_t b = 0; b < s.degree_hist_log2.size(); ++b) {
      if (s.degree_hist_log2[b] == 0) continue;
      t.add("[" + std::to_string(1ull << b) + ", " +
                std::to_string((1ull << (b + 1)) - 1) + "]",
            s.degree_hist_log2[b]);
    }
    std::printf("%s", t.render().c_str());
    return 0;
  }
  if (verb == "pack-csr") {
    QC_REQUIRE(!in.empty() && !out.empty(), "dataset pack-csr needs --in/--out");
    runtime::ThreadPool pool(static_cast<unsigned>(a.num("workers", 0)));
    const auto g = csr_from_bgraph(in, &pool);
    const double t1 = now_seconds();
    write_csr(g, out);
    const double t2 = now_seconds();
    const auto mapped = map_csr(out, /*validate_edges=*/true);
    std::printf("pack-csr %s -> %s: n=%u halves=%zu maxw=%llu "
                "(build %.2fs, write %.2fs, map+verify %.2fs)\n",
                in.c_str(), out.c_str(), g.node_count(), g.halves().size(),
                (unsigned long long)g.max_weight(), t1 - t0, t2 - t1,
                now_seconds() - t2);
    QC_CHECK(mapped.node_count() == g.node_count() &&
                 mapped.halves().size() == g.halves().size(),
             "mapped view disagrees with the freshly built CSR");
    return 0;
  }
  throw ArgumentError(
      "unknown dataset verb: " + verb +
      " (want generate|convert|shuffle|sort|summarize|pack-csr)");
}

int cmd_query(const Args& a) {
  auto engine = make_engine(a, /*auto_dispatch=*/false, nullptr);
  service::register_unweighted_handlers(engine);
  service::register_theorem11_handlers(engine);
  engine.add_graph("g0", make_graph(a));
  service::Query q;
  q.id = a.num("id", 0);
  q.type = a.str("type", "diameter");
  q.node = static_cast<NodeId>(a.num("node", 0));
  q.target = static_cast<NodeId>(a.num("target", 0));
  q.seed = a.num("query-seed", 1);
  q.op = a.str("op", "");
  q.weight = a.num("weight", 1);
  const auto r = engine.query(q);
  std::printf("%s\n", service::format_response(r).c_str());
  return r.ok ? 0 : 2;
}

void usage() {
  std::printf(
      "usage: qcongest_cli <command> [options]\n"
      "  diameter  [--n N] [--family ER|grid|cliques|path] [--maxw W]\n"
      "            [--seed S] [--radius] [--eps-inv E] [--graph FILE]\n"
      "  gadget    [--h H] [--radius] [--seed S] [--full]\n"
      "  degree    --k K [--or]\n"
      "  baseline  [--n N] [--seed S] [--family ...] [--graph FILE]\n"
      "  params    --n N --d D\n"
      "  sweep     [--n 64,128] [--family ER,grid] [--seeds K]\n"
      "            [--eps-inv 0,8] [--algo bfs|baseline|t11|t11-radius]\n"
      "            [--maxw W] [--seed S] [--bandwidth B] [--workers K]\n"
      "            [--out sweep_results.json] [--round-metrics]\n"
      "  serve     [--graphs f1.wg,f2.bg,f3.bcsr | --count K --n N\n"
      "            --family F --maxw W --seed S] [--warm] [--workers K]\n"
      "            [--queue Q] [--batch B] [--metrics FILE]\n"
      "            (.bcsr specs are memory-mapped; same-file specs\n"
      "             share one mapping)\n"
      "  query     --type T [--graph FILE | --n N --family F ...]\n"
      "            [--node U] [--target V] [--query-seed S] [--id I]\n"
      "            [--workers K] [--op insert|remove|reweight --weight W]\n"
      "            (type \"update\" mutates g0 via --op/--node/--target)\n"
      "  dataset   generate  --family rmat|chunglu|er|grid --out F.bg\n"
      "                      [--scale S|--n N] [--m M] [--p P|--avg-deg D]\n"
      "                      [--exponent E] [--rows R --cols C] [--diag P]\n"
      "                      [--maxw W] [--seed S]\n"
      "            convert   --in F --out F   (text<->binary by sniffing)\n"
      "            shuffle   --in F.bg --out F.bg [--seed S]\n"
      "                      [--mem-budget MiB]  (out-of-core past budget)\n"
      "            sort      --in F.bg --out F.bg [--mem-budget MiB]\n"
      "                      (also full dedup check; spills sorted runs)\n"
      "            summarize --in F.bg\n"
      "            pack-csr  --in F.bg --out F.bcsr [--workers K]\n"
      "                      (mmap-able CSR image; parallel two-pass)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  try {
    const std::string cmd = argv[1];
    if (cmd == "dataset") {
      // The dataset family has its own verb in argv[2], which the
      // generic --key parser below would reject.
      QC_REQUIRE(argc >= 3 && argv[2][0] != '-',
                 "dataset needs a verb: generate|convert|shuffle|sort|"
                 "summarize|pack-csr");
      return cmd_dataset(argv[2], parse_args(argc, argv, 3));
    }
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "diameter") return cmd_diameter(a);
    if (cmd == "gadget") return cmd_gadget(a);
    if (cmd == "degree") return cmd_degree(a);
    if (cmd == "baseline") return cmd_baseline(a);
    if (cmd == "params") return cmd_params(a);
    if (cmd == "sweep") return cmd_sweep(a);
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "query") return cmd_query(a);
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
