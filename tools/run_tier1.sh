#!/usr/bin/env sh
# Tier-1 verification, exactly as ROADMAP.md specifies:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest ...
#
# Usage:
#   tools/run_tier1.sh                 # plain build + ctest
#   tools/run_tier1.sh --faults        # build + only the fault-injection
#                                      # suite (ctest label `faults`)
#   tools/run_tier1.sh --tsan          # ThreadSanitizer pass over the
#                                      # concurrency-bearing suites
#                                      # (test_graph, test_runtime,
#                                      # test_congest, test_paths,
#                                      # test_faults, test_theorem11,
#                                      # test_service) — this is the run
#                                      # that covers the shard-parallel
#                                      # mailbox merge
#   tools/run_tier1.sh --bench-gate    # re-run bench_congest_sim (plus
#                                      # the bench_datasets and
#                                      # bench_dynamic smoke tiers) and
#                                      # diff against the committed
#                                      # BENCH_congest_sim.json /
#                                      # BENCH_datasets.json /
#                                      # BENCH_dynamic.json via
#                                      # tools/check_bench_regression.py
#   QC_SANITIZE=thread tools/run_tier1.sh   # sanitized build (own tree):
#                                           # address | undefined | thread
#
# With a thread pool in src/runtime and pool-parallel graph kernels in
# src/graph, the TSan configuration is the one that matters most;
# sanitized builds use build-<sanitizer>/ so they never pollute the
# primary build tree. `--tsan` is the quick opt-in: it builds with
# QC_SANITIZE=thread and runs only the two suites that exercise the
# pool, rather than the full (slow under TSan) ctest sweep. The congest
# and paths suites joined the list when the simulator gained its
# pool-parallel round loop (Config::workers), and the service suite
# joined when src/service added a resident QueryEngine with a
# dispatcher thread, concurrent submit(), and batched pool hand-off.
set -eu

cd "$(dirname "$0")/.."

TSAN_ONLY=0
FAULTS_ONLY=0
BENCH_GATE=0
for arg in "$@"; do
  case "$arg" in
    --tsan) TSAN_ONLY=1 ;;
    --faults) FAULTS_ONLY=1 ;;
    --bench-gate) BENCH_GATE=1 ;;
    *)
      echo "usage: tools/run_tier1.sh [--tsan] [--faults] [--bench-gate]" >&2
      exit 2
      ;;
  esac
done

if [ "$BENCH_GATE" -eq 1 ]; then
  # Perf regression gate: re-run the simulator bench (base graph only —
  # the committed --large rows are compared when present-and-benched,
  # skipped otherwise) and diff it against the committed JSON. The
  # identity flags must hold on any machine; speedups are only compared
  # when spec.hardware_workers matches the baseline's, so a different
  # box degrades to a determinism-only gate instead of flaking.
  BUILD_DIR=build
  # Fail fast before any bench rerun: every committed baseline must
  # carry its acceptance block. A truncated or hand-edited JSON would
  # otherwise sail through the diff (no rows to compare) and only bite
  # when the next full regeneration overwrote it.
  python3 tools/check_bench_regression.py --require-acceptance \
    BENCH_congest_sim.json BENCH_datasets.json BENCH_dynamic.json
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target \
    bench_congest_sim bench_datasets bench_dynamic
  "$BUILD_DIR/bench/bench_congest_sim" --out "$BUILD_DIR/BENCH_fresh.json"
  python3 tools/check_bench_regression.py \
    --baseline BENCH_congest_sim.json --fresh "$BUILD_DIR/BENCH_fresh.json"
  # Dataset-layer gate: the smoke tier re-runs the whole pipeline
  # (identity flags + RSS acceptance); the committed 1e5/1e6 rows are
  # skipped-not-failed because their n is absent from a smoke run.
  "$BUILD_DIR/bench/bench_datasets" --smoke \
    --out "$BUILD_DIR/BENCH_datasets_fresh.json"
  python3 tools/check_bench_regression.py \
    --baseline BENCH_datasets.json \
    --fresh "$BUILD_DIR/BENCH_datasets_fresh.json"
  # Dynamic-update gate: the smoke tier replays an update/read script on
  # both cache policies at workers 1/2/8 (identity flags + the
  # identical_to_scratch acceptance key); the committed full-size rows
  # are skipped-not-failed because their n is absent from a smoke run.
  "$BUILD_DIR/bench/bench_dynamic" --smoke \
    --out "$BUILD_DIR/BENCH_dynamic_fresh.json"
  python3 tools/check_bench_regression.py \
    --baseline BENCH_dynamic.json \
    --fresh "$BUILD_DIR/BENCH_dynamic_fresh.json"
  exit 0
fi

if [ "$TSAN_ONLY" -eq 1 ]; then
  BUILD_DIR=build-thread
  cmake -B "$BUILD_DIR" -S . -DQC_SANITIZE=thread
  cmake --build "$BUILD_DIR" -j --target \
    test_graph test_runtime test_congest test_paths test_faults \
    test_theorem11 test_service
  # Run the binaries directly: gtest_discover_tests registers per-test
  # ctest entries at build time, so a target-filtered build may not have
  # a complete ctest manifest.
  "$BUILD_DIR/tests/test_graph"
  "$BUILD_DIR/tests/test_runtime"
  "$BUILD_DIR/tests/test_congest"
  "$BUILD_DIR/tests/test_paths"
  "$BUILD_DIR/tests/test_faults"
  # The Theorem 1.1 driver suite exercises the pool-parallel oracle
  # (ensure_rows fan-out + concurrent evaluate_set) at workers > 1.
  "$BUILD_DIR/tests/test_theorem11"
  # The service suite hammers QueryEngine from concurrent client
  # threads (submit/drain/shutdown races, admission counter, metrics
  # registry under contention).
  "$BUILD_DIR/tests/test_service"
  exit 0
fi

if [ "$FAULTS_ONLY" -eq 1 ]; then
  # Fault-injection suite only (tests/test_faults.cpp, ctest label
  # `faults`): determinism across worker counts, empty-plan identity,
  # per-class fault events, robust primitives.
  BUILD_DIR=build
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target test_faults
  cd "$BUILD_DIR"
  ctest --output-on-failure -j -L faults
  exit 0
fi

BUILD_DIR=build
CMAKE_EXTRA=""
if [ -n "${QC_SANITIZE:-}" ]; then
  case "$QC_SANITIZE" in
    address|undefined|thread) ;;
    *)
      echo "error: QC_SANITIZE must be address, undefined, or thread" >&2
      exit 2
      ;;
  esac
  BUILD_DIR="build-$QC_SANITIZE"
  CMAKE_EXTRA="-DQC_SANITIZE=$QC_SANITIZE"
fi

# shellcheck disable=SC2086  # CMAKE_EXTRA is intentionally word-split
cmake -B "$BUILD_DIR" -S . $CMAKE_EXTRA
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
