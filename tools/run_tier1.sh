#!/usr/bin/env sh
# Tier-1 verification, exactly as ROADMAP.md specifies:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest ...
#
# Usage:
#   tools/run_tier1.sh                 # plain build + ctest
#   QC_SANITIZE=thread tools/run_tier1.sh   # sanitized build (own tree):
#                                           # address | undefined | thread
#
# With a thread pool in src/runtime, the TSan configuration is the one
# that matters most; sanitized builds use build-<sanitizer>/ so they
# never pollute the primary build tree.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_EXTRA=""
if [ -n "${QC_SANITIZE:-}" ]; then
  case "$QC_SANITIZE" in
    address|undefined|thread) ;;
    *)
      echo "error: QC_SANITIZE must be address, undefined, or thread" >&2
      exit 2
      ;;
  esac
  BUILD_DIR="build-$QC_SANITIZE"
  CMAKE_EXTRA="-DQC_SANITIZE=$QC_SANITIZE"
fi

# shellcheck disable=SC2086  # CMAKE_EXTRA is intentionally word-split
cmake -B "$BUILD_DIR" -S . $CMAKE_EXTRA
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
