#!/usr/bin/env python3
"""Gate a fresh bench JSON against its committed baseline.

Used by `tools/run_tier1.sh --bench-gate` for both BENCH_congest_sim.json
and BENCH_datasets.json (pass --baseline to pick the file): the bench
binary re-runs the suite into a scratch file, and this script diffs it
against the baseline committed at the repo root. It fails (exit 1)
when:

  * any fresh row reports `identical: false` — the engines or worker
    counts disagreed on the ledger/trace/outputs, which is a correctness
    bug, never noise;
  * the fresh acceptance block reports
    `byte_identical_at_all_worker_counts: false`;
  * a baseline row is missing from the fresh run even though its graph
    (same `n`) was benched — a silently dropped variant;
  * a row's `speedup_vs_baseline` regressed by more than
    --tolerance (default 15%) relative to the committed number;
  * a dataset-layer acceptance block reports `rss_ratio_ok: false` —
    the streaming CSR build's child-process peak RSS blew through the
    3x raw-edge-bytes budget — or `external_sort_rss_flat: false` —
    the out-of-core sort's child peak RSS grew with the input instead
    of staying pinned near the memory budget — or
    `mapped_residency_ok: false` — a service holding two mapped .bcsr
    specs of one file stopped being resident-lighter than the same
    service holding two owned copies;
  * a dynamic-update acceptance block (BENCH_dynamic.json) reports
    `identical_to_scratch: false` — the incremental cache-repair engine
    diverged from rebuild-from-scratch, a correctness bug — or
    `incremental_speedup_ok: false` — the n=65536 incremental speedup
    fell below its 2x acceptance floor (full runs only; smoke runs
    report it true vacuously);
  * a row's `build_seconds` grew, or its `peak_rss_ratio` grew, by more
    than --tolerance relative to the committed number (columns present
    only on ingest rows; compared only on matching hardware, like the
    speedups — RSS ratios are allocator-stable but page-cache noise is
    not worth flaking over on foreign machines).

Timing gates (speedup and build_seconds) only apply to rows whose
measurement is at least --min-seconds long on both sides (default
0.3s): the smoke tiers' sub-millisecond rows exist to exercise the
identity flags, and scheduler jitter swings them far past any usable
tolerance. Identity flags, acceptance flags, and peak_rss_ratio are
enforced on every row regardless of duration.

Speedup comparisons are only meaningful when the two files were
produced on comparable hardware. When `spec.hardware_workers` differs
between baseline and fresh, the speedup gate is skipped with a loud
warning (the identity gates still apply — determinism does not depend
on the machine). Baseline rows for graphs the fresh run did not bench
at all (e.g. the committed file has --large rows but the gate ran
without --large) are reported as skipped, not failed.

A second mode, `--require-acceptance FILE...`, validates that each
committed baseline carries a non-empty `acceptance` block and exits 1
naming every file that does not — `run_tier1.sh --bench-gate` runs it
before any bench binary so a truncated or hand-mangled baseline fails
the gate in milliseconds, not after the reruns.

The gate logic lives in `gate(base, fresh, tolerance)` (returns
(failures, warnings) lists) so the unit tests in
tools/test_check_bench_regression.py can drive it on in-memory dicts.
"""

import argparse
import json
import sys

# Timing comparisons (speedup_vs_baseline, build_seconds) only run on
# measurements at least this long, on both sides. Sub-0.3s rows — the
# smoke tiers exist to exercise identity, not perf — swing well past
# any reasonable tolerance from scheduler jitter alone, so gating them
# just makes the gate cry wolf. Identity flags, acceptance flags, and
# peak_rss_ratio (an allocator-stable byte ratio, not a timing) are
# enforced on every row regardless of duration.
MIN_TIMING_GATE_SECONDS = 0.3

# Acceptance keys that are fatal when present and false, with the
# message explaining what broke. Checked only when the key exists, so
# sim/dataset/dynamic files each carry their own subset.
FATAL_ACCEPTANCE = {
    "byte_identical_at_all_worker_counts":
        "outcome divergence across worker counts",
    "rss_ratio_ok":
        "streaming CSR build peak RSS exceeded 3x raw edge bytes",
    "external_sort_rss_flat":
        "external sort child peak RSS grew with the input instead of "
        "staying pinned near the memory budget",
    "mapped_residency_ok":
        "two mapped .bcsr specs stopped being resident-lighter than two "
        "owned copies",
    "identical_to_scratch":
        "the incremental update engine diverged from rebuild-from-scratch",
    "incremental_speedup_ok":
        "delta-aware repair no longer clears its 2x floor over rebuild",
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def key(row):
    # workload + variant + n + workers uniquely names a measurement.
    return (row["workload"], row["variant"], row.get("n"), row.get("workers"))


def missing_acceptance(doc):
    """True when `doc` lacks a usable acceptance block."""
    acc = doc.get("acceptance")
    return not isinstance(acc, dict) or not acc


def gate(base, fresh, tolerance=0.15,
         min_seconds=MIN_TIMING_GATE_SECONDS):
    """Diffs one fresh bench dict against its baseline dict.

    Pure function of its inputs; returns (failures, warnings) as lists
    of strings. Empty failures means the gate passes.
    """
    failures = []
    warnings = []

    for row in fresh.get("results", []):
        if not row.get("identical", False):
            failures.append(
                f"fresh row {key(row)} has identical=false — outcome "
                f"divergence, not a perf question")
    acc = fresh.get("acceptance", {})
    if "byte_identical_at_all_worker_counts" not in acc:
        failures.append(
            "fresh acceptance block is missing "
            "byte_identical_at_all_worker_counts")
    for name, why in FATAL_ACCEPTANCE.items():
        if name in acc and not acc[name]:
            failures.append(f"fresh acceptance {name} is false — {why}")

    base_hw = base.get("spec", {}).get("hardware_workers")
    fresh_hw = fresh.get("spec", {}).get("hardware_workers")
    compare_speed = base_hw == fresh_hw
    if not compare_speed:
        warnings.append(
            f"hardware differs (baseline hardware_workers={base_hw}, "
            f"fresh={fresh_hw}): skipping the speedup gate; identity "
            f"gates still enforced")

    fresh_rows = {key(r): r for r in fresh.get("results", [])}
    fresh_ns = {r.get("n") for r in fresh.get("results", [])}
    for brow in base.get("results", []):
        k = key(brow)
        frow = fresh_rows.get(k)
        if frow is None:
            if brow.get("n") in fresh_ns:
                failures.append(
                    f"baseline row {k} missing from fresh run although "
                    f"n={brow.get('n')} was benched")
            else:
                warnings.append(
                    f"baseline row {k} not benched by this run "
                    f"(n={brow.get('n')} absent — e.g. no --large); skipped")
            continue
        if not compare_speed:
            continue
        long_enough = (brow.get("seconds", 0.0) >= min_seconds
                       and frow.get("seconds", 0.0) >= min_seconds)
        b_speed = brow.get("speedup_vs_baseline", 0.0)
        f_speed = frow.get("speedup_vs_baseline", 0.0)
        if (long_enough and b_speed > 0
                and f_speed < b_speed * (1.0 - tolerance)):
            failures.append(
                f"row {k} speedup regressed {b_speed:.3f} -> {f_speed:.3f} "
                f"(> {tolerance:.0%} below baseline)")
        # Ingest columns (dataset-layer rows): both grow-is-bad.
        # build_seconds is a timing and shares the duration floor (on
        # its own value); peak_rss_ratio is not and is always gated.
        for col in ("build_seconds", "peak_rss_ratio"):
            b_val = brow.get(col)
            f_val = frow.get(col)
            if b_val is None or f_val is None:
                continue
            if col == "build_seconds" and (b_val < min_seconds
                                           or f_val < min_seconds):
                continue
            if b_val > 0 and f_val > b_val * (1.0 + tolerance):
                failures.append(
                    f"row {k} {col} regressed {b_val:.3f} -> {f_val:.3f} "
                    f"(> {tolerance:.0%} above baseline)")
    return failures, warnings


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="BENCH_congest_sim.json",
                    help="committed bench JSON (default: %(default)s)")
    ap.add_argument("--fresh",
                    help="bench JSON produced by the gating run")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional speedup regression "
                         "(default: %(default)s)")
    ap.add_argument("--min-seconds", type=float,
                    default=MIN_TIMING_GATE_SECONDS,
                    help="timing gates only apply to rows measuring at "
                         "least this long on both sides; identity and "
                         "RSS gates always apply (default: %(default)s)")
    ap.add_argument("--require-acceptance", nargs="+", metavar="FILE",
                    help="instead of diffing, verify each FILE carries a "
                         "non-empty acceptance block (fail-fast baseline "
                         "sanity for run_tier1.sh --bench-gate)")
    args = ap.parse_args(argv)

    if args.require_acceptance:
        bad = [p for p in args.require_acceptance
               if missing_acceptance(load(p))]
        for p in bad:
            print(f"FAIL: {p} has no acceptance block — truncated or "
                  f"hand-edited baseline; regenerate it with the bench "
                  f"binary")
        if bad:
            return 1
        print(f"acceptance blocks present in "
              f"{len(args.require_acceptance)} baseline file(s)")
        return 0

    if not args.fresh:
        ap.error("--fresh is required unless --require-acceptance is used")

    base = load(args.baseline)
    fresh = load(args.fresh)
    failures, warnings = gate(base, fresh, args.tolerance,
                              args.min_seconds)

    for w in warnings:
        print(f"warning: {w}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        print(f"bench gate: {len(failures)} failure(s)")
        return 1
    print(f"bench gate: OK "
          f"({len(fresh.get('results', []))} fresh rows checked against "
          f"{len(base.get('results', []))} baseline rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
