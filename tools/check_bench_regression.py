#!/usr/bin/env python3
"""Gate a fresh bench JSON against its committed baseline.

Used by `tools/run_tier1.sh --bench-gate` for both BENCH_congest_sim.json
and BENCH_datasets.json (pass --baseline to pick the file): the bench
binary re-runs the suite into a scratch file, and this script diffs it
against the baseline committed at the repo root. It fails (exit 1)
when:

  * any fresh row reports `identical: false` — the engines or worker
    counts disagreed on the ledger/trace/outputs, which is a correctness
    bug, never noise;
  * the fresh acceptance block reports
    `byte_identical_at_all_worker_counts: false`;
  * a baseline row is missing from the fresh run even though its graph
    (same `n`) was benched — a silently dropped variant;
  * a row's `speedup_vs_baseline` regressed by more than
    --tolerance (default 15%) relative to the committed number;
  * a dataset-layer acceptance block reports `rss_ratio_ok: false` —
    the streaming CSR build's child-process peak RSS blew through the
    3x raw-edge-bytes budget;
  * a dynamic-update acceptance block (BENCH_dynamic.json) reports
    `identical_to_scratch: false` — the incremental cache-repair engine
    diverged from rebuild-from-scratch, a correctness bug — or
    `incremental_speedup_ok: false` — the n=65536 incremental speedup
    fell below its 2x acceptance floor (full runs only; smoke runs
    report it true vacuously);
  * a row's `build_seconds` grew, or its `peak_rss_ratio` grew, by more
    than --tolerance relative to the committed number (columns present
    only on ingest rows; compared only on matching hardware, like the
    speedups — RSS ratios are allocator-stable but page-cache noise is
    not worth flaking over on foreign machines).

Speedup comparisons are only meaningful when the two files were
produced on comparable hardware. When `spec.hardware_workers` differs
between baseline and fresh, the speedup gate is skipped with a loud
warning (the identity gates still apply — determinism does not depend
on the machine). Baseline rows for graphs the fresh run did not bench
at all (e.g. the committed file has --large rows but the gate ran
without --large) are reported as skipped, not failed.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def key(row):
    # workload + variant + n + workers uniquely names a measurement.
    return (row["workload"], row["variant"], row.get("n"), row.get("workers"))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="BENCH_congest_sim.json",
                    help="committed bench JSON (default: %(default)s)")
    ap.add_argument("--fresh", required=True,
                    help="bench JSON produced by the gating run")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional speedup regression "
                         "(default: %(default)s)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    failures = []
    warnings = []

    for row in fresh.get("results", []):
        if not row.get("identical", False):
            failures.append(
                f"fresh row {key(row)} has identical=false — outcome "
                f"divergence, not a perf question")
    acc = fresh.get("acceptance", {})
    if not acc.get("byte_identical_at_all_worker_counts", False):
        failures.append(
            "fresh acceptance byte_identical_at_all_worker_counts is false")
    if "rss_ratio_ok" in acc and not acc["rss_ratio_ok"]:
        failures.append(
            f"fresh acceptance rss_ratio_ok is false (worst ratio "
            f"{acc.get('worst_peak_rss_ratio')}) — streaming CSR build "
            f"peak RSS exceeded 3x raw edge bytes")
    if "identical_to_scratch" in acc and not acc["identical_to_scratch"]:
        failures.append(
            "fresh acceptance identical_to_scratch is false — the "
            "incremental update engine diverged from rebuild-from-scratch")
    if "incremental_speedup_ok" in acc and not acc["incremental_speedup_ok"]:
        failures.append(
            f"fresh acceptance incremental_speedup_ok is false (speedup "
            f"{acc.get('incremental_speedup_at_65536')}) — delta-aware "
            f"repair no longer clears its 2x floor over rebuild")

    base_hw = base.get("spec", {}).get("hardware_workers")
    fresh_hw = fresh.get("spec", {}).get("hardware_workers")
    compare_speed = base_hw == fresh_hw
    if not compare_speed:
        warnings.append(
            f"hardware differs (baseline hardware_workers={base_hw}, "
            f"fresh={fresh_hw}): skipping the speedup gate; identity "
            f"gates still enforced")

    fresh_rows = {key(r): r for r in fresh.get("results", [])}
    fresh_ns = {r.get("n") for r in fresh.get("results", [])}
    for brow in base.get("results", []):
        k = key(brow)
        frow = fresh_rows.get(k)
        if frow is None:
            if brow.get("n") in fresh_ns:
                failures.append(
                    f"baseline row {k} missing from fresh run although "
                    f"n={brow.get('n')} was benched")
            else:
                warnings.append(
                    f"baseline row {k} not benched by this run "
                    f"(n={brow.get('n')} absent — e.g. no --large); skipped")
            continue
        if not compare_speed:
            continue
        b_speed = brow.get("speedup_vs_baseline", 0.0)
        f_speed = frow.get("speedup_vs_baseline", 0.0)
        if b_speed > 0 and f_speed < b_speed * (1.0 - args.tolerance):
            failures.append(
                f"row {k} speedup regressed {b_speed:.3f} -> {f_speed:.3f} "
                f"(> {args.tolerance:.0%} below baseline)")
        # Ingest columns (dataset-layer rows): both grow-is-bad.
        for col in ("build_seconds", "peak_rss_ratio"):
            b_val = brow.get(col)
            f_val = frow.get(col)
            if b_val is None or f_val is None:
                continue
            if b_val > 0 and f_val > b_val * (1.0 + args.tolerance):
                failures.append(
                    f"row {k} {col} regressed {b_val:.3f} -> {f_val:.3f} "
                    f"(> {args.tolerance:.0%} above baseline)")

    for w in warnings:
        print(f"warning: {w}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        print(f"bench gate: {len(failures)} failure(s)")
        return 1
    print(f"bench gate: OK ({len(fresh_rows)} fresh rows checked against "
          f"{len(base.get('results', []))} baseline rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
