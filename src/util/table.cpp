#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace qc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  QC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  QC_REQUIRE(row.size() == header_.size(),
             "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

}  // namespace qc
