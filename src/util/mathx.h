// Small integer/real math helpers shared across the library.
//
// Distances are `std::uint64_t` with an explicit `kInfDist` sentinel; all
// helpers here are careful never to overflow when combining finite
// distances with the sentinel.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.h"

namespace qc {

/// Distance value type used throughout the library (weights are positive
/// integers per the paper, w : E -> N+).
using Dist = std::uint64_t;

/// "Unreachable" sentinel. Chosen so that kInfDist + (any realistic weight
/// sum) does not wrap: realistic sums are < 2^56 in our experiments.
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max() / 4;

/// Saturating addition that preserves the infinity sentinel.
constexpr Dist dist_add(Dist a, Dist b) {
  if (a >= kInfDist || b >= kInfDist) return kInfDist;
  const Dist s = a + b;
  return s >= kInfDist ? kInfDist : s;
}

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t ilog2(std::uint64_t x) {
  std::uint32_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr std::uint32_t clog2(std::uint64_t x) {
  return x <= 1 ? 0 : ilog2(x - 1) + 1;
}

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Integer square root: floor(sqrt(x)).
std::uint64_t isqrt(std::uint64_t x);

/// ceil(sqrt(x)).
std::uint64_t csqrt(std::uint64_t x);

/// Number of bits needed to encode a value in [0, n-1] (at least 1).
constexpr std::uint32_t bits_for(std::uint64_t n) {
  return n <= 2 ? 1 : clog2(n);
}

/// Least-squares fit of y = c * x^e on log-log scale. Returns {e, c}.
/// Used by benchmarks to report measured scaling exponents.
/// Requires all samples positive.
std::pair<double, double> fit_power_law(const std::vector<double>& xs,
                                        const std::vector<double>& ys);

/// (1 + eps)^k computed in double precision.
double pow1p(double eps, int k);

}  // namespace qc
