// Error handling for qcongest.
//
// The library signals contract violations with exceptions (CppCoreGuidelines
// I.10): `InvariantError` for internal invariant breakage, `ModelError` for
// violations of the CONGEST model itself (e.g. a node trying to push more
// than B bits over an edge in one round). Benchmarks and tests rely on
// ModelError being thrown to prove the simulator enforces the model.
#pragma once

#include <stdexcept>
#include <string>

namespace qc {

/// Thrown when an internal invariant of the library is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an algorithm violates the CONGEST model's rules
/// (bandwidth overflow, messaging a non-neighbour, acting after halt, ...).
class ModelError : public std::logic_error {
 public:
  explicit ModelError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a caller passes arguments outside a function's domain.
class ArgumentError : public std::invalid_argument {
 public:
  explicit ArgumentError(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] void raise_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);
[[noreturn]] void raise_argument(const char* expr, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace qc

/// Check an internal invariant; throws qc::InvariantError when false.
#define QC_CHECK(expr, msg)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::qc::detail::raise_invariant(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                    \
  } while (false)

/// Check a caller-facing precondition; throws qc::ArgumentError when false.
#define QC_REQUIRE(expr, msg)                                            \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::qc::detail::raise_argument(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                    \
  } while (false)
