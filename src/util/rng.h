// Deterministic pseudo-random number generation.
//
// All randomness in qcongest flows through `Rng` so that a fixed seed
// reproduces an identical execution — identical sampled vertex sets,
// identical random delays in Algorithm 3, identical quantum measurement
// outcomes. The generator is xoshiro256** seeded via splitmix64, both
// public-domain constructions by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.h"

namespace qc {

/// Deterministic 64-bit PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  // std::uniform_random_bit_generator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (rejection sampling).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Samples each index in [0, n) independently with probability p.
  std::vector<std::uint32_t> sample_indices(std::uint32_t n, double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derives an independent child generator (for per-node streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qc
