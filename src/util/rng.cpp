#include "util/rng.h"

#include <cmath>

namespace qc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro requires a nonzero state; splitmix64 output of any seed is
  // astronomically unlikely to be all-zero, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  QC_REQUIRE(bound > 0, "Rng::below requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  QC_REQUIRE(lo <= hi, "Rng::between requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::vector<std::uint32_t> Rng::sample_indices(std::uint32_t n, double p) {
  std::vector<std::uint32_t> out;
  if (n == 0 || p <= 0.0) return out;
  if (p >= 1.0) {
    out.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  // Geometric skip sampling: the gap before the next success of an
  // i.i.d. Bernoulli(p) scan is Geom(p), sampled by inverse CDF as
  // floor(ln U / ln(1-p)). The included indices have exactly the same
  // joint distribution as the per-index coin-flip loop, but the stream
  // consumes one draw per *selected* index (plus one terminating draw)
  // instead of one per candidate — O(np) expected work instead of O(n).
  const double denom = std::log1p(-p);  // ln(1-p) < 0
  std::uint64_t i = 0;
  for (;;) {
    const double u = uniform();
    if (u <= 0.0) break;  // ln(0) -> infinite skip: no further successes
    const double skip = std::floor(std::log(u) / denom);
    if (skip >= static_cast<double>(n)) break;  // off the end
    i += static_cast<std::uint64_t>(skip);
    if (i >= n) break;
    out.push_back(static_cast<std::uint32_t>(i));
    ++i;
  }
  return out;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace qc
