#include "util/mathx.h"

#include <cmath>

namespace qc {

std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  // Correct for floating point error in either direction.
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

std::uint64_t csqrt(std::uint64_t x) {
  const std::uint64_t r = isqrt(x);
  return r * r == x ? r : r + 1;
}

std::pair<double, double> fit_power_law(const std::vector<double>& xs,
                                        const std::vector<double>& ys) {
  QC_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
             "fit_power_law needs >= 2 equal-length samples");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    QC_REQUIRE(xs[i] > 0 && ys[i] > 0, "fit_power_law needs positive samples");
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  QC_REQUIRE(std::abs(denom) > 1e-12, "fit_power_law: degenerate x samples");
  const double e = (n * sxy - sx * sy) / denom;
  const double logc = (sy - e * sx) / n;
  return {e, std::exp(logc)};
}

double pow1p(double eps, int k) {
  double r = 1.0;
  const double b = 1.0 + eps;
  for (int i = 0; i < k; ++i) r *= b;
  return r;
}

}  // namespace qc
