// ASCII table rendering for benchmark and example output.
//
// The paper's evaluation artifacts are tables (Table 1, Table 2) and graph
// constructions; `TextTable` renders aligned monospace tables that the
// bench binaries print, mirroring the paper's rows.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace qc {

/// Column-aligned monospace table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_string-like semantics.
  template <typename... Cells>
  void add(Cells&&... cells) {
    add_row({cell_to_string(std::forward<Cells>(cells))...});
  }

  /// Renders with `|` separators and a rule under the header.
  std::string render() const;

  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(bool b) { return b ? "yes" : "no"; }
  template <typename T>
  static std::string cell_to_string(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.4g", static_cast<double>(v));
      return buf;
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qc
