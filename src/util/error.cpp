#include "util/error.h"

#include <sstream>

namespace qc::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": `" << expr << "` failed at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void raise_invariant(const char* expr, const char* file, int line,
                     const std::string& msg) {
  throw InvariantError(format("invariant", expr, file, line, msg));
}

void raise_argument(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw ArgumentError(format("precondition", expr, file, line, msg));
}

}  // namespace qc::detail
