#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace qc::runtime {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // Two mixing rounds with the index folded in between: a collision would
  // need splitmix64 outputs to collide, which adjacent indices cannot.
  return splitmix64(splitmix64(base_seed) ^
                    (task_index * 0xd1342543de82ef95ULL));
}

struct ThreadPool::Impl {
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  explicit Impl(unsigned workers) {
    if (workers == 0) {
      workers = std::max(1u, std::thread::hardware_concurrency());
    }
    queues_ = std::vector<WorkerQueue>(workers);
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      stop_ = true;
      work_cv_.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  void submit(std::function<void()> task) {
    const unsigned w = home_queue();
    {
      std::lock_guard<std::mutex> lock(queues_[w].mutex);
      queues_[w].tasks.push_back(std::move(task));
    }
    {
      // queued_/in_flight_ and the notify must share state_mutex_ with the
      // waiters' predicate checks, or a worker between predicate and block
      // would miss the wakeup and strand the task.
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++queued_;
      ++in_flight_;
      work_cv_.notify_one();
    }
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(state_mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }

  unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  unsigned home_queue() {
    for (unsigned w = 0; w < threads_.size(); ++w) {
      if (std::this_thread::get_id() == threads_[w].get_id()) return w;
    }
    return next_external_.fetch_add(1, std::memory_order_relaxed) %
           static_cast<unsigned>(queues_.size());
  }

  /// Own queue front first (submission order), then steal from the back
  /// of the first non-empty victim queue.
  std::optional<std::function<void()>> take(unsigned self) {
    {
      std::lock_guard<std::mutex> lock(queues_[self].mutex);
      if (!queues_[self].tasks.empty()) {
        auto task = std::move(queues_[self].tasks.front());
        queues_[self].tasks.pop_front();
        return task;
      }
    }
    const auto n = static_cast<unsigned>(queues_.size());
    for (unsigned k = 1; k < n; ++k) {
      const unsigned victim = (self + k) % n;
      std::lock_guard<std::mutex> lock(queues_[victim].mutex);
      if (!queues_[victim].tasks.empty()) {
        auto task = std::move(queues_[victim].tasks.back());
        queues_[victim].tasks.pop_back();
        return task;
      }
    }
    return std::nullopt;
  }

  void worker_loop(unsigned self) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(state_mutex_);
        work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
        if (stop_ && queued_ == 0) return;
      }
      auto task = take(self);
      if (!task) continue;  // lost the race to another worker
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        --queued_;
      }
      (*task)();
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (--in_flight_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<WorkerQueue> queues_;
  std::vector<std::thread> threads_;
  std::atomic<unsigned> next_external_{0};
  std::mutex state_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::uint64_t queued_ = 0;     ///< tasks sitting in some deque
  std::uint64_t in_flight_ = 0;  ///< queued + currently executing
  bool stop_ = false;
};

ThreadPool::ThreadPool(unsigned workers)
    : impl_(std::make_unique<Impl>(workers)) {}

ThreadPool::~ThreadPool() = default;

unsigned ThreadPool::worker_count() const { return impl_->worker_count(); }

void ThreadPool::submit(std::function<void()> task) {
  QC_REQUIRE(static_cast<bool>(task), "cannot submit an empty task");
  impl_->submit(std::move(task));
}

void ThreadPool::wait_idle() { impl_->wait_idle(); }

void balanced_ranges(std::span<const std::uint64_t> prefix,
                     std::size_t max_chunks, std::vector<std::size_t>& out) {
  QC_REQUIRE(!prefix.empty() && prefix.front() == 0,
             "prefix must start with a leading 0");
  const std::size_t count = prefix.size() - 1;
  out.clear();
  out.push_back(0);
  if (count == 0) {
    out.push_back(0);
    return;
  }
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min(max_chunks, count));
  const std::uint64_t total = prefix.back();
  for (std::size_t c = 1; c < chunks; ++c) {
    std::size_t cut;
    if (total == 0) {
      cut = count * c / chunks;  // weightless items: even split by index
    } else {
      // First index whose cumulative weight reaches c/chunks of the
      // total — the prefix-sum cut. floor(total*c/chunks) computed
      // without overflow: total = q*chunks + r, so the product splits
      // into an exact q*c term plus r*c/chunks with r, c < chunks.
      const std::uint64_t target =
          (total / chunks) * c + (total % chunks) * c / chunks;
      cut = static_cast<std::size_t>(
          std::lower_bound(prefix.begin() + 1, prefix.end(), target) -
          prefix.begin());
    }
    // Clamp so every chunk keeps at least one item: a single huge item
    // cannot be split, and trailing zero-weight items must not starve
    // the remaining chunks.
    cut = std::max(cut, out.back() + 1);
    cut = std::min(cut, count - (chunks - c));
    out.push_back(cut);
  }
  out.push_back(count);
}

std::vector<std::size_t> balanced_ranges(std::span<const std::uint64_t> prefix,
                                         std::size_t max_chunks) {
  std::vector<std::size_t> out;
  balanced_ranges(prefix, max_chunks, out);
  return out;
}

void parallel_for_ranges(
    ThreadPool& pool, std::span<const std::size_t> bounds,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  QC_REQUIRE(!bounds.empty(), "bounds must hold at least one boundary");
  const std::size_t chunks = bounds.size() - 1;
  parallel_for(pool, chunks, [&](std::size_t c) {
    if (bounds[c] < bounds[c + 1]) fn(c, bounds[c], bounds[c + 1]);
  });
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  struct Shared {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr first_error;
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining.store(count, std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([shared, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (!shared->first_error) {
          shared->first_error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(shared->mutex);
      if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        shared->done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->done_cv.wait(lock, [&] {
    return shared->remaining.load(std::memory_order_acquire) == 0;
  });
  if (shared->first_error) std::rethrow_exception(shared->first_error);
}

}  // namespace qc::runtime
