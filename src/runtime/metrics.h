// Named metrics registry: counters, gauges, and fixed-bucket histograms
// with a deterministic JSON serializer.
//
// The bench binaries historically printed ad-hoc stdout tables; batch
// sweeps need the round/message/bit ledgers and good-event rates in a
// machine-readable form instead. A `MetricsRegistry` collects them from
// any number of threads (instruments are lock-free after registration)
// and serializes to JSON with sorted keys and fixed float formatting, so
// equal measurements produce byte-identical files — the property the
// sweep determinism tests assert.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qc::runtime {

/// Monotone event count. `add` is thread-safe and wait-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. a per-run ratio). Thread-safe.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// v <= upper_bounds[i] (first matching bucket, non-cumulative); one
/// implicit overflow bucket catches the rest. Bounds are fixed at
/// registration so merged/serialized histograms always line up.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; index bounds_.size() is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Nearest-rank quantile over the bucketed observations: the upper
  /// bound of the bucket holding the ⌈q·count⌉-th smallest observation
  /// (so quantile(0.5) is p50, quantile(0.95) is p95). Returns 0 with no
  /// observations and +infinity when the rank lands in the overflow
  /// bucket. The answer depends only on the multiset of observed values
  /// — never on recording order or thread interleaving — so once
  /// recording quiesces, concurrent writers produce the same quantiles
  /// as a serial replay (asserted by tests/test_runtime.cpp). Racing
  /// with in-flight observe() calls is safe and yields a value between
  /// the quantiles of the observations that started before and after.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket bounds {start, start*factor, ...} of length n —
/// the default layout for round/bit ledgers spanning decades.
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t n);

/// Registry of named instruments. Lookup-or-create takes a lock;
/// returned references stay valid and lock-free for the registry's
/// lifetime. Names are unique per kind and may not be shared across
/// kinds (a name is either a counter, a gauge, or a histogram).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registering the same name again must pass identical bounds (or
  /// none, which reuses the existing layout).
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = {});

  /// Serializes every instrument, keys sorted, floats via "%.17g":
  /// {"counters":{...},"gauges":{...},"histograms":{name:
  ///   {"count":N,"sum":S,"buckets":[{"le":b,"count":c},...]}}}
  /// The overflow bucket serializes with "le":"inf".
  std::string to_json() const;

  /// Drops every instrument (references from before are invalidated).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Formats a double exactly and reproducibly for JSON ("%.17g", with
/// integral values printed without exponent/fraction where possible).
std::string json_number(double v);

/// Escapes a string for use as a JSON string literal (adds quotes).
std::string json_string(std::string_view s);

}  // namespace qc::runtime
