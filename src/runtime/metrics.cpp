#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace qc::runtime {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  QC_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    QC_REQUIRE(bounds_[i - 1] < bounds_[i],
               "histogram bounds must be strictly increasing");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  std::size_t slot = bounds_.size();  // overflow unless a bound catches v
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      slot = i;
      break;
    }
  }
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  QC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) return bounds_[i];
  }
  return std::numeric_limits<double>::infinity();
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t n) {
  QC_REQUIRE(start > 0 && factor > 1 && n > 0,
             "exponential_buckets needs start > 0, factor > 1, n > 0");
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  QC_REQUIRE(gauges_.find(name) == gauges_.end() &&
                 histograms_.find(name) == histograms_.end(),
             "metric name already used by another instrument kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  QC_REQUIRE(counters_.find(name) == counters_.end() &&
                 histograms_.find(name) == histograms_.end(),
             "metric name already used by another instrument kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  QC_REQUIRE(counters_.find(name) == counters_.end() &&
                 gauges_.find(name) == gauges_.end(),
             "metric name already used by another instrument kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) {
      upper_bounds = exponential_buckets(1.0, 2.0, 24);
    }
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  } else {
    QC_REQUIRE(upper_bounds.empty() ||
                   upper_bounds == it->second->upper_bounds(),
               "histogram re-registered with different bucket bounds");
  }
  return *it->second;
}

std::string json_number(double v) {
  QC_REQUIRE(std::isfinite(v), "cannot serialize non-finite value to JSON");
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << json_string(name) << ':' << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << json_string(name) << ':' << json_number(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << json_string(name) << ":{\"count\":" << h->count()
       << ",\"sum\":" << json_number(h->sum()) << ",\"buckets\":[";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) os << ',';
      os << "{\"le\":";
      if (i < bounds.size()) {
        os << json_number(bounds[i]);
      } else {
        os << "\"inf\"";
      }
      os << ",\"count\":" << counts[i] << '}';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace qc::runtime
