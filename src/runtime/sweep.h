// Parallel sweep executor for batch CONGEST experiments.
//
// Every paper-facing number is a statistic over many runs — sweeps over
// n, graph family, seed, and ε. A `SweepSpec` names the grid, a
// `SweepFn` runs one cell instance (building its own graph and
// `Simulator`, which are one-instance-per-execution), and `run_sweep`
// executes the cross product on a work-stealing pool, then folds the
// per-run metric maps into mean/min/max/p50/p95 aggregates per cell.
//
// Determinism: task i always gets seed `derive_seed(base_seed, i)`, and
// per-run outputs are stored by task index before aggregation, so the
// aggregated result — and its JSON — is byte-identical at any worker
// count (tests/test_runtime.cpp asserts 2 vs 8 workers).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "congest/simulator.h"
#include "graph/graph.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"

namespace qc::runtime {

/// The experiment grid: cells are the cross product
/// ns × families × eps_invs, each run `seeds` times.
struct SweepSpec {
  std::vector<NodeId> ns = {64};
  std::vector<std::string> families = {"ER"};  ///< gen::from_family names
  std::uint32_t seeds = 1;                     ///< runs per cell
  std::vector<std::uint32_t> eps_invs = {0};   ///< 0 = algorithm default
  std::uint32_t bandwidth_bits = 0;            ///< 0 = CONGEST default
  Weight max_weight = 10;
  std::uint64_t base_seed = 1;

  std::size_t cell_count() const;
  std::size_t task_count() const;
};

/// One point of the grid, handed to the run callback.
struct SweepPoint {
  NodeId n = 0;
  std::string family;
  std::uint32_t eps_inv = 0;
  std::uint32_t bandwidth_bits = 0;
  Weight max_weight = 1;
  std::uint32_t seed_index = 0;   ///< 0..spec.seeds-1 within the cell
  std::uint64_t seed = 0;         ///< derive_seed(base_seed, task_index)
  std::size_t task_index = 0;     ///< global index over the whole sweep
};

/// What one run reports: named scalar metrics ("rounds", "ratio", ...).
struct TaskOutput {
  std::map<std::string, double> metrics;
};

/// Convenience: folds a simulator ledger into the standard metric names
/// rounds / messages / bits.
void record_stats(TaskOutput& out, const congest::RunStats& stats);

/// One run of one grid point. The executor builds the graph (from
/// `point.family` via gen::from_family, weights in [1, max_weight],
/// generator RNG seeded with point.seed) before calling. Throwing marks
/// the run failed; its metrics are excluded from the cell aggregates.
using SweepFn =
    std::function<TaskOutput(const SweepPoint&, const WeightedGraph&)>;

/// Order statistics of one metric across a cell's successful runs.
struct Aggregate {
  std::size_t count = 0;
  double mean = 0, min = 0, max = 0, p50 = 0, p95 = 0;

  /// Folds a sample set (need not be sorted). Percentiles use the
  /// nearest-rank method on the sorted samples.
  static Aggregate of(std::vector<double> samples);
};

/// Aggregated results for one grid cell.
struct SweepCell {
  NodeId n = 0;
  std::string family;
  std::uint32_t eps_inv = 0;
  std::size_t runs = 0;      ///< successful runs folded in
  std::size_t failures = 0;  ///< runs that threw
  std::map<std::string, Aggregate> metrics;
  std::vector<std::string> errors;  ///< first few failure messages
};

/// The whole sweep, cells in spec order (ns × families × eps_invs).
struct SweepResult {
  SweepSpec spec;
  std::vector<SweepCell> cells;
  std::size_t tasks = 0;
  std::size_t failures = 0;
  unsigned workers = 0;       ///< pool size used (not serialized)
  double wall_seconds = 0;    ///< wall clock (not serialized by default)
};

/// Executes the sweep on `pool` and aggregates. Blocks until done.
SweepResult run_sweep(const SweepSpec& spec, const SweepFn& fn,
                      ThreadPool& pool);

/// Reference single-thread executor (same results, bit for bit) — the
/// baseline the speedup benchmark compares against.
SweepResult run_sweep_serial(const SweepSpec& spec, const SweepFn& fn);

/// Deterministic JSON for a sweep result. Timing/worker fields are
/// excluded unless `include_timing` — the determinism tests compare the
/// timing-free form across worker counts.
std::string to_json(const SweepResult& result, bool include_timing = false);

/// Writes `content` to `path` (truncating). Throws ArgumentError on I/O
/// failure.
void write_file(const std::string& path, const std::string& content);

/// Wires a Simulator's opt-in per-round hook (Config::on_round_metrics)
/// into a registry: counters `<prefix>rounds/messages/bits`, histograms
/// `<prefix>round_messages/round_bits/round_active_nodes` of per-round
/// traffic, and `<prefix>round_max_edge_utilization` — the per-round max
/// of bits-on-an-edge / B, on fixed linear [0, 1] buckets (how close the
/// hottest edge came to the bandwidth cap).
void attach_simulator_metrics(congest::Config& config,
                              MetricsRegistry& registry,
                              const std::string& prefix = "sim.");

/// Records one run's per-fault-class tallies (Simulator::fault_counters
/// or RunOutcome::faults) into a registry as counters
/// `<prefix>dropped/duplicated/delayed/corrupted/link_down_drops/
/// crashed_nodes/crash_drops`. Counters accumulate across calls, so a
/// phase orchestration can record each engine run as it finishes.
void record_fault_metrics(const congest::FaultCounters& counters,
                          MetricsRegistry& registry,
                          const std::string& prefix = "sim.faults.");

}  // namespace qc::runtime
