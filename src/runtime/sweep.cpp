#include "runtime/sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "graph/generators.h"
#include "util/error.h"
#include "util/rng.h"

namespace qc::runtime {

std::size_t SweepSpec::cell_count() const {
  return ns.size() * families.size() * eps_invs.size();
}

std::size_t SweepSpec::task_count() const { return cell_count() * seeds; }

void record_stats(TaskOutput& out, const congest::RunStats& stats) {
  out.metrics["rounds"] = static_cast<double>(stats.rounds);
  out.metrics["messages"] = static_cast<double>(stats.messages);
  out.metrics["bits"] = static_cast<double>(stats.bits);
}

Aggregate Aggregate::of(std::vector<double> samples) {
  Aggregate a;
  a.count = samples.size();
  if (samples.empty()) return a;
  // Mean in sample order (fixed by task index), percentiles on the sort.
  double sum = 0;
  for (const double v : samples) sum += v;
  a.mean = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  a.min = samples.front();
  a.max = samples.back();
  const auto rank = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(samples.size())));
    return samples[std::min(samples.size() - 1, idx == 0 ? 0 : idx - 1)];
  };
  a.p50 = rank(0.50);
  a.p95 = rank(0.95);
  return a;
}

namespace {

struct TaskSlot {
  bool ok = false;
  TaskOutput out;
  std::string error;
};

void check_spec(const SweepSpec& spec) {
  QC_REQUIRE(!spec.ns.empty(), "sweep needs at least one n");
  QC_REQUIRE(!spec.families.empty(), "sweep needs at least one family");
  QC_REQUIRE(!spec.eps_invs.empty(), "sweep needs at least one eps_inv");
  QC_REQUIRE(spec.seeds >= 1, "sweep needs at least one seed per cell");
  QC_REQUIRE(spec.max_weight >= 1, "max_weight must be >= 1");
}

SweepPoint point_for(const SweepSpec& spec, std::size_t task_index) {
  SweepPoint p;
  std::size_t rest = task_index;
  p.seed_index = static_cast<std::uint32_t>(rest % spec.seeds);
  rest /= spec.seeds;
  p.eps_inv = spec.eps_invs[rest % spec.eps_invs.size()];
  rest /= spec.eps_invs.size();
  p.family = spec.families[rest % spec.families.size()];
  rest /= spec.families.size();
  p.n = spec.ns[rest];
  p.bandwidth_bits = spec.bandwidth_bits;
  p.max_weight = spec.max_weight;
  p.task_index = task_index;
  p.seed = derive_seed(spec.base_seed, task_index);
  return p;
}

void run_task(const SweepSpec& spec, const SweepFn& fn, std::size_t i,
              TaskSlot& slot) {
  try {
    const SweepPoint point = point_for(spec, i);
    Rng rng(point.seed);
    const WeightedGraph g =
        gen::from_family(point.family, point.n, point.max_weight, rng);
    slot.out = fn(point, g);
    slot.ok = true;
  } catch (const std::exception& e) {
    slot.error = e.what();
  }
}

SweepResult aggregate(const SweepSpec& spec, std::vector<TaskSlot> slots,
                      unsigned workers, double wall_seconds) {
  SweepResult result;
  result.spec = spec;
  result.tasks = slots.size();
  result.workers = workers;
  result.wall_seconds = wall_seconds;
  std::size_t task = 0;
  for (const NodeId n : spec.ns) {
    for (const std::string& family : spec.families) {
      for (const std::uint32_t eps_inv : spec.eps_invs) {
        SweepCell cell;
        cell.n = n;
        cell.family = family;
        cell.eps_inv = eps_inv;
        std::map<std::string, std::vector<double>> samples;
        for (std::uint32_t s = 0; s < spec.seeds; ++s, ++task) {
          const TaskSlot& slot = slots[task];
          if (!slot.ok) {
            ++cell.failures;
            ++result.failures;
            if (cell.errors.size() < 3) cell.errors.push_back(slot.error);
            continue;
          }
          ++cell.runs;
          for (const auto& [name, value] : slot.out.metrics) {
            samples[name].push_back(value);
          }
        }
        for (auto& [name, values] : samples) {
          cell.metrics.emplace(name, Aggregate::of(std::move(values)));
        }
        result.cells.push_back(std::move(cell));
      }
    }
  }
  QC_CHECK(task == slots.size(), "sweep cell walk missed tasks");
  return result;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, const SweepFn& fn,
                      ThreadPool& pool) {
  check_spec(spec);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<TaskSlot> slots(spec.task_count());
  parallel_for(pool, slots.size(),
               [&](std::size_t i) { run_task(spec, fn, i, slots[i]); });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return aggregate(spec, std::move(slots), pool.worker_count(), wall);
}

SweepResult run_sweep_serial(const SweepSpec& spec, const SweepFn& fn) {
  check_spec(spec);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<TaskSlot> slots(spec.task_count());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    run_task(spec, fn, i, slots[i]);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return aggregate(spec, std::move(slots), 1, wall);
}

namespace {

void json_aggregate(std::ostringstream& os, const Aggregate& a) {
  os << "{\"count\":" << a.count << ",\"mean\":" << json_number(a.mean)
     << ",\"min\":" << json_number(a.min) << ",\"max\":" << json_number(a.max)
     << ",\"p50\":" << json_number(a.p50) << ",\"p95\":" << json_number(a.p95)
     << '}';
}

template <typename T, typename Fmt>
void json_array(std::ostringstream& os, const std::vector<T>& xs, Fmt fmt) {
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ',';
    fmt(xs[i]);
  }
  os << ']';
}

}  // namespace

std::string to_json(const SweepResult& result, bool include_timing) {
  std::ostringstream os;
  os << "{\"spec\":{\"ns\":";
  json_array(os, result.spec.ns, [&](NodeId n) { os << n; });
  os << ",\"families\":";
  json_array(os, result.spec.families,
             [&](const std::string& f) { os << json_string(f); });
  os << ",\"seeds\":" << result.spec.seeds << ",\"eps_invs\":";
  json_array(os, result.spec.eps_invs, [&](std::uint32_t e) { os << e; });
  os << ",\"bandwidth_bits\":" << result.spec.bandwidth_bits
     << ",\"max_weight\":" << result.spec.max_weight
     << ",\"base_seed\":" << result.spec.base_seed << '}';
  os << ",\"tasks\":" << result.tasks << ",\"failures\":" << result.failures;
  if (include_timing) {
    os << ",\"workers\":" << result.workers
       << ",\"wall_seconds\":" << json_number(result.wall_seconds);
  }
  os << ",\"cells\":[";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const SweepCell& c = result.cells[i];
    if (i) os << ',';
    os << "{\"n\":" << c.n << ",\"family\":" << json_string(c.family)
       << ",\"eps_inv\":" << c.eps_inv << ",\"runs\":" << c.runs
       << ",\"failures\":" << c.failures << ",\"metrics\":{";
    bool first = true;
    for (const auto& [name, agg] : c.metrics) {
      if (!first) os << ',';
      first = false;
      os << json_string(name) << ':';
      json_aggregate(os, agg);
    }
    os << '}';
    if (!c.errors.empty()) {
      os << ",\"errors\":";
      json_array(os, c.errors,
                 [&](const std::string& e) { os << json_string(e); });
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  QC_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << content;
  out.flush();
  QC_REQUIRE(out.good(), "write failed: " + path);
}

void attach_simulator_metrics(congest::Config& config,
                              MetricsRegistry& registry,
                              const std::string& prefix) {
  Counter* rounds = &registry.counter(prefix + "rounds");
  Counter* messages = &registry.counter(prefix + "messages");
  Counter* bits = &registry.counter(prefix + "bits");
  Histogram* h_messages = &registry.histogram(prefix + "round_messages");
  Histogram* h_bits = &registry.histogram(prefix + "round_bits");
  Histogram* h_active = &registry.histogram(prefix + "round_active_nodes");
  // Utilization lives in [0, 1] (1.0 = some edge hit the bandwidth cap),
  // so fixed linear bounds instead of the default exponential layout.
  Histogram* h_util = &registry.histogram(
      prefix + "round_max_edge_utilization",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  config.on_round_metrics = [=](const congest::RoundMetrics& rm) {
    rounds->add(1);
    messages->add(rm.messages);
    bits->add(rm.bits);
    h_messages->observe(static_cast<double>(rm.messages));
    h_bits->observe(static_cast<double>(rm.bits));
    h_active->observe(static_cast<double>(rm.active_nodes));
    h_util->observe(rm.max_edge_utilization);
  };
}

void record_fault_metrics(const congest::FaultCounters& counters,
                          MetricsRegistry& registry,
                          const std::string& prefix) {
  registry.counter(prefix + "dropped").add(counters.dropped);
  registry.counter(prefix + "duplicated").add(counters.duplicated);
  registry.counter(prefix + "delayed").add(counters.delayed);
  registry.counter(prefix + "corrupted").add(counters.corrupted);
  registry.counter(prefix + "link_down_drops").add(counters.link_down_drops);
  registry.counter(prefix + "crashed_nodes").add(counters.crashed_nodes);
  registry.counter(prefix + "crash_drops").add(counters.crash_drops);
}

}  // namespace qc::runtime
