// Work-stealing thread pool for batch experiment execution.
//
// Every statistic the benchmarks report is an aggregate over many
// independent simulator runs (sweeps over n, graph family, seed, ε), and
// each run is single-threaded by construction (`Simulator` is
// one-instance-per-execution). The pool fans those runs out across
// cores: each worker owns a deque of tasks, takes from its own front,
// and steals from the back of a busier worker when it runs dry.
//
// Determinism contract: parallelism never touches randomness. Seeds for
// parallel work are derived per *task index* with `derive_seed`, never
// from thread ids or scheduling order, so a sweep is bit-reproducible
// at any worker count (asserted by tests/test_runtime.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "util/error.h"

namespace qc::runtime {

/// Derives the RNG seed for task `task_index` of a batch started from
/// `base_seed`. Stateless splitmix64-style mixing: changing either input
/// changes the output avalanche-style, and task i's seed does not depend
/// on which thread runs it or when.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index);

/// Fixed-size work-stealing pool. Tasks are `void()` closures; errors
/// must be captured by the closure (see `parallel_for`, which does).
class ThreadPool {
 public:
  /// `workers == 0` sizes the pool to `std::thread::hardware_concurrency()`
  /// (at least 1).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const;

  /// Enqueues one task. From a worker thread the task lands on that
  /// worker's own deque (cheap, stealable); from outside, deques are fed
  /// round-robin.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Runs `fn(0), fn(1), ..., fn(count-1)` on the pool and blocks until
/// all complete. If any invocation throws, the first captured exception
/// is rethrown here (remaining tasks still run to completion).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Splits `[0, prefix.size() - 1)` into at most `max_chunks` contiguous
/// ranges of balanced weight. `prefix` is an inclusive prefix sum over
/// the per-item weights (`prefix[0] == 0`, `prefix[i]` = weight of items
/// `[0, i)`), so chunk boundaries fall where the cumulative weight
/// crosses multiples of `total / chunks` — a prefix-sum cut, not a
/// greedy packing. Writes `chunks + 1` boundaries into `out`
/// (`out[c] <= out[c+1]`, first 0, last = item count); every chunk is
/// non-empty unless there are no items at all. A zero total falls back
/// to an even split by index. Deterministic in its inputs — boundaries
/// never depend on pool state or scheduling, which is what lets callers
/// with a byte-identical-output contract (the CONGEST simulator's
/// sharded merge, the kernel drivers) chunk by weight.
void balanced_ranges(std::span<const std::uint64_t> prefix,
                     std::size_t max_chunks, std::vector<std::size_t>& out);

/// Allocating convenience overload of the above.
std::vector<std::size_t> balanced_ranges(std::span<const std::uint64_t> prefix,
                                         std::size_t max_chunks);

/// Runs `fn(c, bounds[c], bounds[c+1])` on the pool for every non-empty
/// range described by `bounds` (as produced by `balanced_ranges`) and
/// blocks until all complete. Exceptions propagate as in parallel_for.
void parallel_for_ranges(
    ThreadPool& pool, std::span<const std::size_t> bounds,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Order-preserving parallel map: `out[i] = fn(items[i], i)`. The result
/// vector is indexed by input position regardless of execution order, so
/// downstream aggregation is deterministic at any worker count.
template <typename In, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<In>& items, Fn&& fn)
    -> std::vector<decltype(fn(items[std::size_t{0}], std::size_t{0}))> {
  using Out = decltype(fn(items[std::size_t{0}], std::size_t{0}));
  std::vector<std::optional<Out>> slots(items.size());
  parallel_for(pool, items.size(),
               [&](std::size_t i) { slots[i].emplace(fn(items[i], i)); });
  std::vector<Out> out;
  out.reserve(items.size());
  for (auto& s : slots) {
    QC_CHECK(s.has_value(), "parallel_map slot left empty");
    out.push_back(std::move(*s));
  }
  return out;
}

}  // namespace qc::runtime
