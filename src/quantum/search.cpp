#include "quantum/search.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace qc::quantum {

namespace {

/// Normalizes weights and computes the marked mass.
struct Split {
  std::vector<double> w;  ///< normalized
  double good_mass = 0.0;
};

Split split_weights(const std::vector<double>& weights,
                    const std::function<bool(std::size_t)>& marked) {
  QC_REQUIRE(!weights.empty(), "search needs a non-empty domain");
  double total = 0;
  for (const double w : weights) {
    QC_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  QC_REQUIRE(total > 0.0, "weights must have positive sum");
  Split s;
  s.w.reserve(weights.size());
  for (std::size_t x = 0; x < weights.size(); ++x) {
    s.w.push_back(weights[x] / total);
    if (marked(x)) s.good_mass += s.w.back();
  }
  return s;
}

/// Samples from w restricted to {x : marked(x) == want}, conditioned
/// mass `mass` (> 0).
std::size_t sample_class(const std::vector<double>& w,
                         const std::function<bool(std::size_t)>& marked,
                         bool want, double mass, Rng& rng) {
  double u = rng.uniform() * mass;
  std::size_t last = 0;
  bool seen = false;
  for (std::size_t x = 0; x < w.size(); ++x) {
    if (marked(x) != want) continue;
    last = x;
    seen = true;
    if (u < w[x]) return x;
    u -= w[x];
  }
  QC_CHECK(seen, "sample_class: empty class");
  return last;  // numerical slack
}

}  // namespace

SearchOutcome amplified_measure(const std::vector<double>& weights,
                                const std::function<bool(std::size_t)>& marked,
                                std::uint64_t iterations, Rng& rng) {
  const Split s = split_weights(weights, marked);
  SearchOutcome out;
  out.oracle_calls = iterations + 1;  // iterations plus final verification

  if (s.good_mass <= 0.0) {
    out.found = false;
    out.index = sample_class(s.w, marked, false, 1.0, rng);
    return out;
  }
  if (s.good_mass >= 1.0) {
    out.found = true;
    out.index = sample_class(s.w, marked, true, 1.0, rng);
    return out;
  }

  const double theta = std::asin(std::sqrt(s.good_mass));
  const double sin_t =
      std::sin((2.0 * static_cast<double>(iterations) + 1.0) * theta);
  const double p_good = sin_t * sin_t;

  out.found = rng.chance(p_good);
  out.index = out.found
                  ? sample_class(s.w, marked, true, s.good_mass, rng)
                  : sample_class(s.w, marked, false, 1.0 - s.good_mass, rng);
  return out;
}

SearchOutcome bbht_search(const std::vector<double>& weights,
                          const std::function<bool(std::size_t)>& marked,
                          std::uint64_t max_oracle_calls, Rng& rng) {
  // Cap the iteration scale at the point where even the least likely
  // single element would be fully amplified.
  double min_pos = 1.0;
  double total = 0;
  for (const double w : weights) {
    total += w;
    if (w > 0) min_pos = std::min(min_pos, w);
  }
  QC_REQUIRE(total > 0.0, "weights must have positive sum");
  const double m_cap_d = std::ceil(std::sqrt(total / min_pos)) + 1.0;
  const auto m_cap = static_cast<std::uint64_t>(m_cap_d);

  SearchOutcome out;
  double m = 1.0;
  const double lambda = 6.0 / 5.0;  // BBHT's growth factor
  while (out.oracle_calls < max_oracle_calls) {
    const auto m_now =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(m), m_cap);
    const std::uint64_t j = rng.below(m_now);  // uniform in [0, m)
    SearchOutcome attempt = amplified_measure(weights, marked, j, rng);
    out.oracle_calls += attempt.oracle_calls;
    out.index = attempt.index;
    if (attempt.found) {
      out.found = true;
      return out;
    }
    m = std::min(m * lambda, m_cap_d);
  }
  out.found = false;
  return out;
}

std::uint64_t lemma31_budget(double rho, double delta) {
  QC_REQUIRE(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1]");
  QC_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  const double c = 9.0;
  return static_cast<std::uint64_t>(
      std::ceil(c * std::sqrt(std::log(1.0 / delta) / rho)));
}

MaxFindResult quantum_max_find(
    std::size_t domain_size,
    const std::function<std::int64_t(std::size_t)>& value_of,
    const std::vector<double>& weights, std::uint64_t max_oracle_calls,
    Rng& rng) {
  QC_REQUIRE(domain_size == weights.size(), "values/weights size mismatch");
  const Split s = split_weights(weights, [](std::size_t) { return false; });

  MaxFindResult best;
  // Initial threshold: measure the Setup state once (one oracle call).
  best.index = sample_class(s.w, [](std::size_t) { return false; }, false,
                            1.0, rng);
  best.value = value_of(best.index);
  best.oracle_calls = 1;

  // Dürr–Høyer: repeatedly amplify {x : f(x) > best} until the budget
  // runs out or no better element is found.
  while (best.oracle_calls < max_oracle_calls) {
    const std::int64_t threshold = best.value;
    auto better = [&](std::size_t x) { return value_of(x) > threshold; };
    const SearchOutcome found = bbht_search(
        weights, better, max_oracle_calls - best.oracle_calls, rng);
    best.oracle_calls += found.oracle_calls;
    if (!found.found) break;
    best.index = found.index;
    best.value = value_of(found.index);
  }
  return best;
}

MaxFindResult quantum_max_find(const std::vector<std::int64_t>& values,
                               const std::vector<double>& weights,
                               std::uint64_t max_oracle_calls, Rng& rng) {
  return quantum_max_find(
      values.size(), [&](std::size_t x) { return values[x]; }, weights,
      max_oracle_calls, rng);
}

}  // namespace qc::quantum
