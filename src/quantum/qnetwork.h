// A qubit-level quantum CONGEST network for small instances.
//
// The paper's model: adjacent nodes exchange qubits over O(log n)-qubit
// channels; nodes apply local quantum operations; distinct nodes may
// share entanglement. This class simulates that model exactly (one
// global state vector, a qubit→owner map, per-round per-edge qubit
// budgets, locality-checked gates). It cannot scale past ~20 qubits —
// which is precisely why the library's large-scale engine uses the
// amplitude-exact substitution S1 of DESIGN.md — but it grounds the
// model's claims concretely: tests distribute a leader's superposition
// by CNOT copies along a BFS tree in depth rounds (the Lemma 3.5 Setup
// step) and verify the resulting global entangled state.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/faults.h"
#include "graph/graph.h"
#include "graph/slot_index.h"
#include "quantum/statevector.h"
#include "util/rng.h"

namespace qc::quantum {

class QuantumNetwork {
 public:
  /// A network over `topology` (copied — temporaries are fine) with
  /// `qubit_count` qubits, all initially |0⟩ and owned by node 0.
  /// `qubit_bandwidth` caps qubits per edge per direction per round
  /// (the model's O(log n)).
  QuantumNetwork(WeightedGraph topology, std::uint32_t qubit_count,
                 std::uint32_t qubit_bandwidth = 1);

  std::uint32_t qubit_count() const { return state_.qubit_count(); }
  std::uint64_t rounds() const { return rounds_; }
  const StateVector& state() const { return state_; }

  NodeId owner(std::uint32_t qubit) const;

  /// Initial placement; only allowed before the first round.
  void place(std::uint32_t qubit, NodeId node);

  // --- local operations: `node` must own every operand ---
  void h(NodeId node, std::uint32_t q);
  void x(NodeId node, std::uint32_t q);
  void z(NodeId node, std::uint32_t q);
  void cnot(NodeId node, std::uint32_t control, std::uint32_t target);
  void cz(NodeId node, std::uint32_t control, std::uint32_t target);

  /// Measures qubit q (owned by `node`) in the computational basis;
  /// collapses the global state. Returns the outcome.
  bool measure(NodeId node, std::uint32_t q, Rng& rng);

  /// Installs link outages sharing congest's fault semantics
  /// (congest::LinkDownInterval, keyed by round): a qubit transfer
  /// attempted on a downed link in a covered round throws ModelError.
  /// Quantum transfers cannot be silently dropped-and-retried the way
  /// classical messages are — no-cloning means the in-flight qubit
  /// would be destroyed — so the fault surfaces as a model violation
  /// the protocol must handle (e.g. teleport over another path).
  /// Intervals are validated against the topology. Call before or
  /// between rounds.
  void set_link_faults(std::vector<congest::LinkDownInterval> intervals);

  /// Queues a qubit transfer to a neighbour; committed by end_round().
  /// Throws ModelError on non-neighbours, foreign qubits, exceeding
  /// the per-edge qubit budget this round, or a downed link (see
  /// set_link_faults).
  void send_qubit(NodeId from, NodeId to, std::uint32_t q);

  /// Commits all queued transfers and advances the round counter.
  void end_round();

 private:
  void check_owner(NodeId node, std::uint32_t q) const;

  WeightedGraph topology_;
  const EdgeSlotIndex* slots_;  ///< topology_'s cached index (O(1) routing)
  std::uint32_t qubit_bandwidth_;
  StateVector state_;
  std::vector<NodeId> owner_;
  std::uint64_t rounds_ = 0;
  bool started_ = false;
  struct Transfer {
    NodeId from;
    NodeId to;
    std::uint32_t slot;  ///< slot of `to` in from's adjacency row
    std::uint32_t qubit;
  };
  std::vector<Transfer> pending_;
  /// Qubits queued this round, by dense directed-edge index.
  std::vector<std::uint32_t> edge_in_flight_;
  /// Installed link outages (empty = fault-free).
  std::vector<congest::LinkDownInterval> link_faults_;
};

/// Distributes node 0's superposition qubit to every node by CNOT
/// copies along a BFS tree, in exactly depth(tree) rounds: qubit v is
/// initially held by v's tree parent, which entangles it by a local
/// CNOT and ships it one hop. With qubit 0 prepared as
/// (|0⟩+|1⟩)/√2 the result is the n-qubit GHZ state — every node now
/// holds one share of the leader's superposition (Lemma 3.5's
/// "broadcast using CNOT copies").
/// `parent[v]` is v's BFS-tree parent (ignored for v = 0). Qubit v is
/// node v's share. Returns the rounds used.
std::uint64_t cnot_broadcast(QuantumNetwork& net,
                             const std::vector<NodeId>& parent,
                             const std::vector<Dist>& depth);

/// Shares a Bell pair between adjacent nodes: `from` entangles
/// (epr_local, epr_remote) locally and ships epr_remote — one round.
void share_bell_pair(QuantumNetwork& net, NodeId from, NodeId to,
                     std::uint32_t epr_local, std::uint32_t epr_remote);

/// Standard teleportation of `payload` (held by `from`) onto
/// `epr_remote` (held by adjacent node `to`; must form a Bell pair with
/// `epr_local` at `from`): Bell measurement at `from`, two classical
/// correction bits across the edge (one round), Pauli fix-up at `to`.
/// After the call `epr_remote` carries the payload's state exactly.
struct TeleportResult {
  bool m1 = false;  ///< the Z-basis bit
  bool m2 = false;  ///< the X-correction bit
};
TeleportResult teleport(QuantumNetwork& net, NodeId from, NodeId to,
                        std::uint32_t payload, std::uint32_t epr_local,
                        std::uint32_t epr_remote, Rng& rng);

}  // namespace qc::quantum
