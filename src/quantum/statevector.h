// Dense state-vector quantum simulator.
//
// Small (≤ ~20 qubits) but exact: used to validate the closed-form
// amplitude-level search engine (search.h) on instances where full
// simulation is feasible, and by the examples to demonstrate Grover
// search from first principles. The CONGEST algorithms never need more
// than this — see DESIGN.md substitution S1.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace qc::quantum {

using Amplitude = std::complex<double>;

/// A register of `qubit_count` qubits in a pure state, initialized to
/// |0...0⟩. Qubit 0 is the least significant bit of the basis index.
class StateVector {
 public:
  explicit StateVector(std::uint32_t qubit_count);

  std::uint32_t qubit_count() const { return qubits_; }
  std::size_t dimension() const { return amps_.size(); }

  const std::vector<Amplitude>& amplitudes() const { return amps_; }

  /// Sets an arbitrary (normalized) state. Throws unless |v| = dim and
  /// the norm is 1 within 1e-9.
  void set_state(std::vector<Amplitude> v);

  // --- single-qubit gates ---
  void h(std::uint32_t q);  ///< Hadamard
  void x(std::uint32_t q);  ///< Pauli-X
  void z(std::uint32_t q);  ///< Pauli-Z

  // --- two-qubit gates ---
  void cnot(std::uint32_t control, std::uint32_t target);
  void cz(std::uint32_t control, std::uint32_t target);

  /// Phase oracle: negates the amplitude of every basis state x with
  /// marked(x) == true. This is the standard Grover oracle.
  void oracle(const std::function<bool(std::uint64_t)>& marked);

  /// Grover diffusion operator 2|s⟩⟨s| − I over all qubits
  /// (inversion about the uniform superposition).
  void diffusion();

  /// Probability of measuring basis state x.
  double probability(std::uint64_t x) const;

  /// Samples a basis state from the measurement distribution (does not
  /// collapse; callers re-prepare as needed).
  std::uint64_t sample(Rng& rng) const;

  /// Probability that measuring qubit q yields 1.
  double marginal_one(std::uint32_t q) const;

  /// Projects onto qubit q = outcome and renormalizes (a measurement's
  /// state update). Throws if the outcome has zero probability.
  void collapse(std::uint32_t q, bool outcome);

  /// Σ|amp|² — should be 1; exposed for tests.
  double norm() const;

 private:
  std::uint32_t qubits_;
  std::vector<Amplitude> amps_;
};

/// Runs textbook Grover search on `qubit_count` qubits with the given
/// marked predicate for `iterations` rounds (oracle + diffusion) from
/// the uniform superposition. Returns the final state.
StateVector grover_run(std::uint32_t qubit_count,
                       const std::function<bool(std::uint64_t)>& marked,
                       std::uint64_t iterations);

/// Closed-form Grover success probability sin²((2t+1)·θ) with
/// θ = asin(√(m/N)) — what grover_run must reproduce exactly.
double grover_success_probability(std::size_t n_states, std::size_t n_marked,
                                  std::uint64_t iterations);

}  // namespace qc::quantum
