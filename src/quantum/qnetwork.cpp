#include "quantum/qnetwork.h"

#include <algorithm>

namespace qc::quantum {

QuantumNetwork::QuantumNetwork(WeightedGraph topology,
                               std::uint32_t qubit_count,
                               std::uint32_t qubit_bandwidth)
    : topology_(std::move(topology)),
      slots_(&topology_.slot_index()),
      qubit_bandwidth_(qubit_bandwidth),
      state_(qubit_count),
      owner_(qubit_count, 0),
      edge_in_flight_(slots_->directed_edge_count(), 0) {
  QC_REQUIRE(topology_.node_count() >= 1, "network needs nodes");
  QC_REQUIRE(qubit_bandwidth >= 1, "qubit bandwidth must be >= 1");
}

NodeId QuantumNetwork::owner(std::uint32_t qubit) const {
  QC_REQUIRE(qubit < qubit_count(), "qubit out of range");
  return owner_[qubit];
}

void QuantumNetwork::place(std::uint32_t qubit, NodeId node) {
  QC_REQUIRE(qubit < qubit_count(), "qubit out of range");
  QC_REQUIRE(node < topology_.node_count(), "node out of range");
  QC_REQUIRE(!started_, "placement only before the first round");
  owner_[qubit] = node;
}

void QuantumNetwork::check_owner(NodeId node, std::uint32_t q) const {
  QC_REQUIRE(q < qubit_count(), "qubit out of range");
  if (owner_[q] != node) {
    throw ModelError("node " + std::to_string(node) +
                     " operated on qubit " + std::to_string(q) +
                     " owned by node " + std::to_string(owner_[q]));
  }
}

void QuantumNetwork::h(NodeId node, std::uint32_t q) {
  check_owner(node, q);
  state_.h(q);
}

void QuantumNetwork::x(NodeId node, std::uint32_t q) {
  check_owner(node, q);
  state_.x(q);
}

void QuantumNetwork::z(NodeId node, std::uint32_t q) {
  check_owner(node, q);
  state_.z(q);
}

void QuantumNetwork::cnot(NodeId node, std::uint32_t control,
                          std::uint32_t target) {
  check_owner(node, control);
  check_owner(node, target);
  state_.cnot(control, target);
}

void QuantumNetwork::cz(NodeId node, std::uint32_t control,
                        std::uint32_t target) {
  check_owner(node, control);
  check_owner(node, target);
  state_.cz(control, target);
}

bool QuantumNetwork::measure(NodeId node, std::uint32_t q, Rng& rng) {
  check_owner(node, q);
  const bool outcome = rng.uniform() < state_.marginal_one(q);
  state_.collapse(q, outcome);
  return outcome;
}

void QuantumNetwork::set_link_faults(
    std::vector<congest::LinkDownInterval> intervals) {
  for (const congest::LinkDownInterval& iv : intervals) {
    QC_REQUIRE(iv.a < topology_.node_count() && iv.b < topology_.node_count(),
               "link-down node out of range");
    QC_REQUIRE(slots_->slot(iv.a, iv.b) != EdgeSlotIndex::kNoSlot,
               "link-down interval names a non-edge " + std::to_string(iv.a) +
                   "->" + std::to_string(iv.b));
    QC_REQUIRE(iv.first_round <= iv.last_round,
               "link-down interval is empty (first_round > last_round)");
  }
  link_faults_ = std::move(intervals);
}

void QuantumNetwork::send_qubit(NodeId from, NodeId to, std::uint32_t q) {
  started_ = true;
  check_owner(from, q);
  const std::uint32_t slot =
      from < topology_.node_count() ? slots_->slot(from, to)
                                    : EdgeSlotIndex::kNoSlot;
  if (slot == EdgeSlotIndex::kNoSlot) {
    throw ModelError("qubit sent to non-neighbour");
  }
  // Same round-keyed link-down semantics as the classical engine
  // (congest::link_down_in); the transfer commits in round rounds_.
  if (!link_faults_.empty() &&
      congest::link_down_in(link_faults_, rounds_, from, to)) {
    throw ModelError("qubit transfer on downed link " + std::to_string(from) +
                     "->" + std::to_string(to) + " in round " +
                     std::to_string(rounds_));
  }
  for (const Transfer& t : pending_) {
    QC_REQUIRE(t.qubit != q, "qubit already in flight this round");
  }
  const std::size_t e = slots_->edge_index(from, slot);
  if (edge_in_flight_[e] >= qubit_bandwidth_) {
    throw ModelError("qubit bandwidth exceeded on edge " +
                     std::to_string(from) + "->" + std::to_string(to));
  }
  ++edge_in_flight_[e];
  pending_.push_back(Transfer{from, to, slot, q});
}

void QuantumNetwork::end_round() {
  started_ = true;
  for (const Transfer& t : pending_) {
    owner_[t.qubit] = t.to;
    edge_in_flight_[slots_->edge_index(t.from, t.slot)] = 0;
  }
  pending_.clear();
  ++rounds_;
}

std::uint64_t cnot_broadcast(QuantumNetwork& net,
                             const std::vector<NodeId>& parent,
                             const std::vector<Dist>& depth) {
  const std::size_t n = parent.size();
  QC_REQUIRE(depth.size() == n, "parent/depth size mismatch");
  QC_REQUIRE(net.qubit_count() >= n, "need one qubit per node");

  // Placement: node v's share starts at its parent (the leader's at the
  // leader), so the entangling CNOT is always local.
  net.place(0, 0);
  for (std::uint32_t v = 1; v < n; ++v) {
    net.place(v, parent[v]);
  }

  // The leader prepares its share in (|0> + |1>)/sqrt(2).
  net.h(0, 0);

  const Dist max_depth = *std::max_element(depth.begin(), depth.end());
  for (Dist r = 0; r < max_depth; ++r) {
    for (std::uint32_t v = 1; v < n; ++v) {
      if (depth[v] != r + 1) continue;
      const NodeId p = parent[v];
      // The parent's own share is qubit p; it arrived in an earlier
      // round (or is the leader's original).
      net.cnot(p, static_cast<std::uint32_t>(p), v);
      net.send_qubit(p, static_cast<NodeId>(v), v);
    }
    net.end_round();
  }
  return net.rounds();
}

void share_bell_pair(QuantumNetwork& net, NodeId from, NodeId to,
                     std::uint32_t epr_local, std::uint32_t epr_remote) {
  net.h(from, epr_local);
  net.cnot(from, epr_local, epr_remote);
  net.send_qubit(from, to, epr_remote);
  net.end_round();
}

TeleportResult teleport(QuantumNetwork& net, NodeId from, NodeId to,
                        std::uint32_t payload, std::uint32_t epr_local,
                        std::uint32_t epr_remote, Rng& rng) {
  QC_REQUIRE(net.owner(epr_remote) == to, "epr_remote must sit at `to`");
  // Bell measurement at the sender.
  net.cnot(from, payload, epr_local);
  net.h(from, payload);
  TeleportResult out;
  out.m1 = net.measure(from, payload, rng);
  out.m2 = net.measure(from, epr_local, rng);
  // Two classical bits cross the edge (one CONGEST round), then the
  // receiver applies the Pauli corrections.
  net.end_round();
  if (out.m2) net.x(to, epr_remote);
  if (out.m1) net.z(to, epr_remote);
  return out;
}

}  // namespace qc::quantum
