#include "quantum/framework.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace qc::quantum {

LazyOracle::LazyOracle(std::size_t size,
                       std::function<std::int64_t(std::size_t)> fn)
    : fn_(std::move(fn)), memo_(size, 0), known_(size, 0) {
  QC_REQUIRE(size > 0, "empty search domain");
  QC_REQUIRE(fn_ != nullptr, "LazyOracle needs a value callback");
}

std::int64_t LazyOracle::value(std::size_t x) {
  QC_REQUIRE(x < memo_.size(), "oracle index out of range");
  if (known_[x]) {
    ++hits_;
    return memo_[x];
  }
  memo_[x] = fn_(x);
  known_[x] = 1;
  ++evaluations_;
  return memo_[x];
}

void LazyOracle::prefill(std::size_t x, std::int64_t v) {
  QC_REQUIRE(x < memo_.size(), "oracle index out of range");
  if (known_[x]) {
    QC_CHECK(memo_[x] == v, "prefill disagrees with cached value");
    return;
  }
  memo_[x] = v;
  known_[x] = 1;
}

bool LazyOracle::known(std::size_t x) const {
  QC_REQUIRE(x < memo_.size(), "oracle index out of range");
  return known_[x] != 0;
}

namespace {

/// Shared Lemma 3.1 body: both the eager and the lazy fronts funnel
/// into the same callback-driven Dürr–Høyer run, so they share one RNG
/// trajectory. Negation happens at the accessor (and is undone on the
/// returned value), never in stored data.
OptimizationResult run(std::size_t domain_size,
                       const std::function<std::int64_t(std::size_t)>& raw,
                       const std::vector<double>& weights, bool negate,
                       std::uint64_t t0_rounds, std::uint64_t t_setup_rounds,
                       std::uint64_t t_eval_rounds, double rho, double delta,
                       Rng& rng) {
  QC_REQUIRE(domain_size == weights.size(), "values/weights size mismatch");
  QC_REQUIRE(domain_size > 0, "empty search domain");

  const auto value_of = [&](std::size_t x) {
    const std::int64_t v = raw(x);
    return negate ? -v : v;
  };

  const std::uint64_t budget = lemma31_budget(rho, delta);
  const MaxFindResult found =
      quantum_max_find(domain_size, value_of, weights, budget, rng);

  OptimizationResult out;
  out.index = found.index;
  out.value = negate ? -found.value : found.value;
  out.oracle_calls = found.oracle_calls;
  out.budget_calls = budget;
  out.rounds = t0_rounds + found.oracle_calls * (t_setup_rounds +
                                                 t_eval_rounds);
  return out;
}

OptimizationResult run(const OptimizationProblem& problem, bool negate,
                       Rng& rng) {
  return run(
      problem.values.size(),
      [&](std::size_t x) { return problem.values[x]; }, problem.weights,
      negate, problem.t0_rounds, problem.t_setup_rounds,
      problem.t_eval_rounds, problem.rho, problem.delta, rng);
}

OptimizationResult run(const LazyOptimizationProblem& problem, bool negate,
                       Rng& rng) {
  QC_REQUIRE(problem.oracle != nullptr, "lazy problem needs an oracle");
  return run(
      problem.oracle->size(),
      [&](std::size_t x) { return problem.oracle->value(x); },
      problem.weights, negate, problem.t0_rounds, problem.t_setup_rounds,
      problem.t_eval_rounds, problem.rho, problem.delta, rng);
}

}  // namespace

OptimizationResult framework_maximize(const OptimizationProblem& problem,
                                      Rng& rng) {
  return run(problem, false, rng);
}

OptimizationResult framework_minimize(const OptimizationProblem& problem,
                                      Rng& rng) {
  return run(problem, true, rng);
}

OptimizationResult framework_maximize(const LazyOptimizationProblem& problem,
                                      Rng& rng) {
  return run(problem, false, rng);
}

OptimizationResult framework_minimize(const LazyOptimizationProblem& problem,
                                      Rng& rng) {
  return run(problem, true, rng);
}

}  // namespace qc::quantum
