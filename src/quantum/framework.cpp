#include "quantum/framework.h"

#include <algorithm>

#include "util/error.h"

namespace qc::quantum {

namespace {

OptimizationResult run(const OptimizationProblem& problem, bool negate,
                       Rng& rng) {
  QC_REQUIRE(problem.values.size() == problem.weights.size(),
             "values/weights size mismatch");
  QC_REQUIRE(!problem.values.empty(), "empty search domain");

  std::vector<std::int64_t> values = problem.values;
  if (negate) {
    for (std::int64_t& v : values) v = -v;
  }

  const std::uint64_t budget = lemma31_budget(problem.rho, problem.delta);
  const MaxFindResult found =
      quantum_max_find(values, problem.weights, budget, rng);

  OptimizationResult out;
  out.index = found.index;
  out.value = negate ? -found.value : found.value;
  out.oracle_calls = found.oracle_calls;
  out.budget_calls = budget;
  out.rounds = problem.t0_rounds +
               found.oracle_calls *
                   (problem.t_setup_rounds + problem.t_eval_rounds);
  return out;
}

}  // namespace

OptimizationResult framework_maximize(const OptimizationProblem& problem,
                                      Rng& rng) {
  return run(problem, false, rng);
}

OptimizationResult framework_minimize(const OptimizationProblem& problem,
                                      Rng& rng) {
  return run(problem, true, rng);
}

}  // namespace qc::quantum
