// Distributed quantum optimization framework (Lemma 3.1).
//
// Executable form of Le Gall–Magniez's framework as used by the paper:
// given the three black-box procedures (Initialization / Setup /
// Evaluation) with *measured* CONGEST round costs T₀ / T_setup / T_eval,
// and the classical bookkeeping data (values f(x) and Setup weights
// |α_x|²), the optimizer runs the Dürr–Høyer search with the Lemma 3.1
// call budget and converts oracle calls to rounds:
//
//   rounds = T₀ + calls · (T_setup + T_eval).
//
// Nesting (the paper uses the framework twice, Lemma 3.5 inside
// Theorem 1.1) works by plugging one optimizer's `rounds` in as the
// outer Evaluation cost.
#pragma once

#include <cstdint>
#include <vector>

#include "quantum/search.h"
#include "util/rng.h"

namespace qc::quantum {

/// One instance of the Lemma 3.1 setting.
struct OptimizationProblem {
  /// f(x) for every x ∈ X (classical bookkeeping backend; see
  /// DESIGN.md S1).
  std::vector<std::int64_t> values;
  /// |α_x|² produced by Setup (need not be normalized).
  std::vector<double> weights;
  std::uint64_t t0_rounds = 0;     ///< Initialization cost (measured)
  std::uint64_t t_setup_rounds = 0;  ///< per-invocation Setup cost
  std::uint64_t t_eval_rounds = 0;   ///< per-invocation Evaluation cost
  /// Promised mass ρ of {x : f(x) >= M} under the weights; sets the
  /// call budget.
  double rho = 1.0;
  /// Failure probability target δ.
  double delta = 0.01;
};

/// Result of one framework execution.
struct OptimizationResult {
  std::size_t index = 0;       ///< the element the leader measured
  std::int64_t value = 0;      ///< f at that element
  std::uint64_t oracle_calls = 0;
  std::uint64_t budget_calls = 0;  ///< Lemma 3.1 budget that was allowed
  std::uint64_t rounds = 0;    ///< T₀ + oracle_calls · (T_setup + T_eval)
};

/// Runs the framework to find x with high f(x) (Lemma 3.1 guarantees
/// f(x) >= M with probability >= 1-δ when the promise holds).
OptimizationResult framework_maximize(const OptimizationProblem& problem,
                                      Rng& rng);

/// Same machinery searching for a *low* value (used for the radius).
OptimizationResult framework_minimize(const OptimizationProblem& problem,
                                      Rng& rng);

}  // namespace qc::quantum
