// Distributed quantum optimization framework (Lemma 3.1).
//
// Executable form of Le Gall–Magniez's framework as used by the paper:
// given the three black-box procedures (Initialization / Setup /
// Evaluation) with *measured* CONGEST round costs T₀ / T_setup / T_eval,
// and the classical bookkeeping data (values f(x) and Setup weights
// |α_x|²), the optimizer runs the Dürr–Høyer search with the Lemma 3.1
// call budget and converts oracle calls to rounds:
//
//   rounds = T₀ + calls · (T_setup + T_eval).
//
// Nesting (the paper uses the framework twice, Lemma 3.5 inside
// Theorem 1.1) works by plugging one optimizer's `rounds` in as the
// outer Evaluation cost.
#pragma once

#include <cstdint>
#include <vector>

#include "quantum/search.h"
#include "util/rng.h"

namespace qc::quantum {

/// One instance of the Lemma 3.1 setting.
struct OptimizationProblem {
  /// f(x) for every x ∈ X (classical bookkeeping backend; see
  /// DESIGN.md S1).
  std::vector<std::int64_t> values;
  /// |α_x|² produced by Setup (need not be normalized).
  std::vector<double> weights;
  std::uint64_t t0_rounds = 0;     ///< Initialization cost (measured)
  std::uint64_t t_setup_rounds = 0;  ///< per-invocation Setup cost
  std::uint64_t t_eval_rounds = 0;   ///< per-invocation Evaluation cost
  /// Promised mass ρ of {x : f(x) >= M} under the weights; sets the
  /// call budget.
  double rho = 1.0;
  /// Failure probability target δ.
  double delta = 0.01;
};

/// Result of one framework execution.
struct OptimizationResult {
  std::size_t index = 0;       ///< the element the leader measured
  std::int64_t value = 0;      ///< f at that element
  std::uint64_t oracle_calls = 0;
  std::uint64_t budget_calls = 0;  ///< Lemma 3.1 budget that was allowed
  std::uint64_t rounds = 0;    ///< T₀ + oracle_calls · (T_setup + T_eval)
};

/// Runs the framework to find x with high f(x) (Lemma 3.1 guarantees
/// f(x) >= M with probability >= 1-δ when the promise holds).
OptimizationResult framework_maximize(const OptimizationProblem& problem,
                                      Rng& rng);

/// Same machinery searching for a *low* value (used for the radius).
OptimizationResult framework_minimize(const OptimizationProblem& problem,
                                      Rng& rng);

/// On-demand memoized value oracle for the lazy framework variant: f(x)
/// is produced by a callback on first query and cached, so repeated
/// Grover queries of the same x are free and indices the search never
/// touches with an *expensive* evaluation can be satisfied by a cheap
/// one. `prefill` lets a driver install values it computed out-of-band
/// (e.g. a pooled batch) without them counting as callback evaluations.
///
/// The memo stores raw f; the maximize/minimize drivers negate at the
/// accessor, so one oracle serves both directions.
class LazyOracle {
 public:
  LazyOracle(std::size_t size, std::function<std::int64_t(std::size_t)> fn);

  std::size_t size() const { return memo_.size(); }

  /// f(x), evaluating and caching on first query.
  std::int64_t value(std::size_t x);

  /// Installs f(x) = v without invoking the callback (idempotent; a
  /// second install for the same x must agree with the first).
  void prefill(std::size_t x, std::int64_t v);

  bool known(std::size_t x) const;

  /// Number of callback invocations (cache misses).
  std::uint64_t evaluations() const { return evaluations_; }
  /// Number of memoized queries (cache hits).
  std::uint64_t hits() const { return hits_; }

 private:
  std::function<std::int64_t(std::size_t)> fn_;
  std::vector<std::int64_t> memo_;
  std::vector<char> known_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t hits_ = 0;
};

/// Lazy variant of OptimizationProblem: identical Lemma 3.1 semantics,
/// but f is pulled through a LazyOracle instead of a precomputed
/// vector. Running it on an oracle whose callback matches `values`
/// yields a bit-identical OptimizationResult (same RNG trajectory).
struct LazyOptimizationProblem {
  LazyOracle* oracle = nullptr;      ///< non-owning; must outlive the run
  std::vector<double> weights;       ///< |α_x|², need not be normalized
  std::uint64_t t0_rounds = 0;       ///< Initialization cost (measured)
  std::uint64_t t_setup_rounds = 0;  ///< per-invocation Setup cost
  std::uint64_t t_eval_rounds = 0;   ///< per-invocation Evaluation cost
  double rho = 1.0;                  ///< promised mass of good elements
  double delta = 0.01;               ///< failure probability target
};

OptimizationResult framework_maximize(const LazyOptimizationProblem& problem,
                                      Rng& rng);
OptimizationResult framework_minimize(const LazyOptimizationProblem& problem,
                                      Rng& rng);

}  // namespace qc::quantum
