// Amplitude-exact quantum search over classically-tracked data.
//
// In the distributed quantum optimization framework (Lemma 3.1), the
// global state is always Σ_x α_x |x⟩_I |data(x)⟩ |init⟩ with data(x) a
// classical function of x, so the evolution under amplitude
// amplification is fully determined by the |X|-dimensional amplitude
// vector on the internal register. This module simulates that evolution
// in closed form (exact 2-D rotation in the span of the good/bad
// components), draws measurement outcomes from the exact distribution,
// and counts oracle calls — the quantity Lemma 3.1 converts to CONGEST
// rounds. statevector.h cross-validates it on small instances.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace qc::quantum {

/// Outcome of one search attempt.
struct SearchOutcome {
  bool found = false;       ///< measured element satisfied the predicate
  std::size_t index = 0;    ///< the measured element
  std::uint64_t oracle_calls = 0;  ///< Grover iterations + verifications
};

/// Exact amplitude amplification: prepares Σ √w_x |x⟩ (weights are
/// normalized internally; all must be >= 0 with positive sum), applies
/// `iterations` Grover steps against `marked`, measures. The outcome
/// distribution is exactly sin²((2t+1)θ) on the marked mass, with
/// conditional distribution ∝ w within each class.
SearchOutcome amplified_measure(const std::vector<double>& weights,
                                const std::function<bool(std::size_t)>& marked,
                                std::uint64_t iterations, Rng& rng);

/// Boyer–Brassard–Høyer–Tapp search with unknown marked mass:
/// exponentially growing random iteration counts until a verified
/// marked element is measured or `max_oracle_calls` is spent.
SearchOutcome bbht_search(const std::vector<double>& weights,
                          const std::function<bool(std::size_t)>& marked,
                          std::uint64_t max_oracle_calls, Rng& rng);

/// Dürr–Høyer maximum finding over arbitrary amplitudes — the
/// executable form of Lemma 3.1's search. With total call budget
/// `max_oracle_calls`, returns the best element found; when the initial
/// mass on {x : f(x) >= M} is >= ρ and the budget is
/// >= lemma31_budget(ρ, δ), the returned value is >= M with
/// probability >= 1 − δ.
struct MaxFindResult {
  std::size_t index = 0;
  std::int64_t value = 0;
  std::uint64_t oracle_calls = 0;
};
MaxFindResult quantum_max_find(const std::vector<std::int64_t>& values,
                               const std::vector<double>& weights,
                               std::uint64_t max_oracle_calls, Rng& rng);

/// Callback form of quantum_max_find: f is pulled through `value_of`
/// instead of a precomputed vector. The RNG trajectory — and therefore
/// every field of the result — is identical to the vector overload on
/// the same f, so a lazy caller can be validated against an eager one
/// bit-for-bit. Note the simulation is amplitude-exact: each Grover
/// step's good mass is a sum over the whole domain, so `value_of` is
/// still invoked for every index (the win is per-index memoization and
/// how cheap one evaluation is, not fewer indices touched — see
/// quantum::LazyOracle).
MaxFindResult quantum_max_find(
    std::size_t domain_size,
    const std::function<std::int64_t(std::size_t)>& value_of,
    const std::vector<double>& weights, std::uint64_t max_oracle_calls,
    Rng& rng);

/// The Lemma 3.1 oracle-call budget O(√(log(1/δ)/ρ)), with the constant
/// we use throughout: ⌈c·√(ln(1/δ)/ρ)⌉, c = 9 (validated empirically by
/// the framework tests' success-rate assertions).
std::uint64_t lemma31_budget(double rho, double delta);

}  // namespace qc::quantum
