#include "quantum/statevector.h"

#include <cmath>
#include <numeric>

namespace qc::quantum {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}

StateVector::StateVector(std::uint32_t qubit_count) : qubits_(qubit_count) {
  QC_REQUIRE(qubit_count >= 1 && qubit_count <= 24,
             "state vector supports 1..24 qubits");
  amps_.assign(std::size_t{1} << qubit_count, Amplitude{0.0, 0.0});
  amps_[0] = Amplitude{1.0, 0.0};
}

void StateVector::set_state(std::vector<Amplitude> v) {
  QC_REQUIRE(v.size() == amps_.size(), "state dimension mismatch");
  double n = 0;
  for (const Amplitude& a : v) n += std::norm(a);
  QC_REQUIRE(std::abs(n - 1.0) < 1e-9, "state must be normalized");
  amps_ = std::move(v);
}

void StateVector::h(std::uint32_t q) {
  QC_REQUIRE(q < qubits_, "qubit index out of range");
  const std::size_t bit = std::size_t{1} << q;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) continue;
    const Amplitude a0 = amps_[i];
    const Amplitude a1 = amps_[i | bit];
    amps_[i] = (a0 + a1) * kInvSqrt2;
    amps_[i | bit] = (a0 - a1) * kInvSqrt2;
  }
}

void StateVector::x(std::uint32_t q) {
  QC_REQUIRE(q < qubits_, "qubit index out of range");
  const std::size_t bit = std::size_t{1} << q;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (!(i & bit)) std::swap(amps_[i], amps_[i | bit]);
  }
}

void StateVector::z(std::uint32_t q) {
  QC_REQUIRE(q < qubits_, "qubit index out of range");
  const std::size_t bit = std::size_t{1} << q;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) amps_[i] = -amps_[i];
  }
}

void StateVector::cnot(std::uint32_t control, std::uint32_t target) {
  QC_REQUIRE(control < qubits_ && target < qubits_ && control != target,
             "bad control/target");
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & cbit) && !(i & tbit)) std::swap(amps_[i], amps_[i | tbit]);
  }
}

void StateVector::cz(std::uint32_t control, std::uint32_t target) {
  QC_REQUIRE(control < qubits_ && target < qubits_ && control != target,
             "bad control/target");
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & cbit) && (i & tbit)) amps_[i] = -amps_[i];
  }
}

void StateVector::oracle(const std::function<bool(std::uint64_t)>& marked) {
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (marked(i)) amps_[i] = -amps_[i];
  }
}

void StateVector::diffusion() {
  // 2|s⟩⟨s| − I: reflect every amplitude about the mean.
  Amplitude mean{0.0, 0.0};
  for (const Amplitude& a : amps_) mean += a;
  mean /= static_cast<double>(amps_.size());
  for (Amplitude& a : amps_) a = 2.0 * mean - a;
}

double StateVector::probability(std::uint64_t x) const {
  QC_REQUIRE(x < amps_.size(), "basis state out of range");
  return std::norm(amps_[x]);
}

std::uint64_t StateVector::sample(Rng& rng) const {
  double u = rng.uniform();
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const double p = std::norm(amps_[i]);
    if (u < p) return i;
    u -= p;
  }
  return amps_.size() - 1;  // numerical slack lands on the last state
}

double StateVector::marginal_one(std::uint32_t q) const {
  QC_REQUIRE(q < qubits_, "qubit index out of range");
  const std::size_t bit = std::size_t{1} << q;
  double p = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) p += std::norm(amps_[i]);
  }
  return p;
}

void StateVector::collapse(std::uint32_t q, bool outcome) {
  QC_REQUIRE(q < qubits_, "qubit index out of range");
  const std::size_t bit = std::size_t{1} << q;
  const double p = outcome ? marginal_one(q) : 1.0 - marginal_one(q);
  QC_REQUIRE(p > 1e-12, "collapse onto a zero-probability outcome");
  const double scale = 1.0 / std::sqrt(p);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (((i & bit) != 0) == outcome) {
      amps_[i] *= scale;
    } else {
      amps_[i] = Amplitude{0.0, 0.0};
    }
  }
}

double StateVector::norm() const {
  double n = 0;
  for (const Amplitude& a : amps_) n += std::norm(a);
  return n;
}

StateVector grover_run(std::uint32_t qubit_count,
                       const std::function<bool(std::uint64_t)>& marked,
                       std::uint64_t iterations) {
  StateVector sv(qubit_count);
  for (std::uint32_t q = 0; q < qubit_count; ++q) sv.h(q);
  for (std::uint64_t t = 0; t < iterations; ++t) {
    sv.oracle(marked);
    sv.diffusion();
  }
  return sv;
}

double grover_success_probability(std::size_t n_states, std::size_t n_marked,
                                  std::uint64_t iterations) {
  QC_REQUIRE(n_marked <= n_states && n_states > 0, "bad Grover instance");
  if (n_marked == 0) return 0.0;
  const double theta = std::asin(std::sqrt(static_cast<double>(n_marked) /
                                           static_cast<double>(n_states)));
  const double s = std::sin((2.0 * static_cast<double>(iterations) + 1.0) *
                            theta);
  return s * s;
}

}  // namespace qc::quantum
