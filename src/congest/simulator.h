// Synchronous CONGEST network simulator.
//
// Executes per-node programs round by round on a `WeightedGraph` topology:
// in round r every node receives the messages sent to it in round r-1,
// does local computation, and queues messages for round r+1. The engine
// enforces the model:
//   * a node can only message its direct neighbours,
//   * at most `bandwidth_bits` (= B, default c·ceil(log2 n)) per edge per
//     direction per round,
//   * no activity after a program declares itself done.
// Violations throw `ModelError` — tests exercise this on purpose.
//
// The engine also keeps a ledger (rounds, messages, bits) that the
// benchmarks report; simulated rounds are the paper's complexity measure.
//
// Fast path (see docs/perf.md, "Simulator fast path"): message routing
// and bandwidth accounting are O(1) per send via a precomputed
// `EdgeSlotIndex`; mailbox rows live in a double-buffered arena that
// allocates nothing in steady state; each round touches only the active
// node set (not-done nodes plus message receivers); and with
// `Config::workers > 1` the independent per-node `on_round` calls fan
// out over a work-stealing pool. The ledger, traces, per-round metrics,
// and all program outputs are byte-identical at any worker count — the
// merge of queued messages always *replays* (sender id, program order):
// serially on the reference path, or — for pooled runs past
// `Config::Execution::sharded_merge_min_messages` — sharded by receiver
// over contiguous degree-balanced node ranges, every shard replaying
// the same order into its own arena region (docs/perf.md, "Sharded
// mailbox delivery").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "congest/faults.h"
#include "congest/message.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/slot_index.h"
#include "util/rng.h"

namespace qc::runtime {
class ThreadPool;  // runtime/thread_pool.h
}

namespace qc::congest {

/// Per-round observability snapshot handed to Config::on_round_metrics
/// after each executed round.
struct RoundMetrics {
  std::uint64_t round = 0;     ///< the round that just executed
  std::uint64_t messages = 0;  ///< messages queued during that round
  std::uint64_t bits = 0;      ///< bits queued during that round
  NodeId active_nodes = 0;     ///< nodes whose on_round ran
  /// Max over directed edges of (bits queued on that edge) / B — 1.0
  /// means some edge was filled to the bandwidth cap this round.
  double max_edge_utilization = 0.0;

  friend bool operator==(const RoundMetrics&, const RoundMetrics&) = default;
};

/// Engine configuration.
///
/// Fields are grouped into sub-structs — `Execution` (how the run is
/// driven), `Hooks` (observability), `Faults` (the fault plan, see
/// congest/faults.h) — while flat reference aliases keep pre-grouping
/// call sites (`cfg.workers = 4`) compiling unchanged. The aliases are
/// real references into this object's own sub-structs, so either
/// spelling reads and writes the same storage; docs/api.md describes
/// the migration path.
struct Config {
  /// Execution mechanics: the round budget and the parallelism knobs.
  struct Execution {
    /// Hard cap (horizon) on simulated rounds; exceeding it throws
    /// ModelError (guards against non-terminating programs).
    std::uint64_t max_rounds = 50'000'000;
    /// Worker threads for the round loop: 1 = serial (the default and
    /// the reference semantics), 0 = hardware concurrency, k > 1 = k
    /// workers. Nodes within a round are independent, so the engine
    /// fans `on_round` over a pool; results (ledger, traces, metrics,
    /// program outputs) are byte-identical at any worker count.
    /// Programs must then keep their mutable state per-node (shared
    /// data read-only) — every program in this library already does.
    unsigned workers = 1;
    /// Optional borrowed pool for the round loop; overrides `workers`.
    /// The pool must not be one the caller is currently blocking on.
    runtime::ThreadPool* pool = nullptr;
    /// Pooled runs only: a merge phase that queued at least this many
    /// deliveries uses the shard-parallel mailbox merge; below it the
    /// serial merge wins on fork/join overhead. 0 = always shard (the
    /// determinism tests force this). Serial and sharded merges are
    /// byte-identical by construction, so the knob trades wall-clock
    /// only, never results.
    std::size_t sharded_merge_min_messages = 4096;
    /// Pooled runs only: a round whose estimated program-phase work —
    /// active node count plus deliveries queued for this round — falls
    /// below this threshold runs its `on_round` loop serially instead
    /// of fanning out over the pool. Low-traffic workloads (Algorithm
    /// 1's hop-limited SSSP averages ~112 deliveries per round at
    /// n=2048) otherwise pay fork/join overhead every round for chunks
    /// that finish in microseconds, which is how pooled runs ended up
    /// *slower* than serial on those workloads (docs/perf.md). 0 =
    /// always pool when a pool is present (the determinism tests force
    /// both settings). Like the merge knob, serial and pooled program
    /// phases are byte-identical by construction, so this trades
    /// wall-clock only, never results.
    std::size_t pooled_round_min_work = 4096;
  };

  /// Observability hooks. Observers only: they never alter message
  /// flow, the ledger, or the halting rule.
  struct Hooks {
    /// Record every message (round, from, to, bits) — used by the
    /// lower-bound simulation lemma to meter cross-partition traffic.
    bool record_trace = false;
    /// Opt-in per-round observability hook (e.g. feeding a
    /// runtime::MetricsRegistry via runtime::attach_simulator_metrics).
    /// Called once after every executed round; empty = no overhead.
    std::function<void(const RoundMetrics&)> on_round_metrics;
  };

  /// The fault schedule (congest/faults.h). Default-constructed = empty
  /// = the fault-free fast path, byte-identical to a config without the
  /// subsystem.
  using Faults = FaultPlan;

  /// Per-edge per-direction bits per round. 0 means "use the CONGEST
  /// default" of kBandwidthLogFactor * ceil(log2 n). Flat: a model
  /// parameter, not an execution knob.
  std::uint32_t bandwidth_bits = 0;
  /// Seed for the engine-supplied per-node RNG streams (and, unless
  /// `faults.seed` overrides it, for probabilistic fault decisions).
  std::uint64_t seed = 1;

  Execution execution;
  Hooks hooks;
  Faults faults;

  // Flat aliases for the grouped fields: source compatibility with
  // pre-grouping call sites. These are references into this object's
  // own sub-structs; the user-defined copy/move members below keep
  // them bound here (implicitly generated ones would be deleted or
  // would rebind per-member).
  std::uint64_t& max_rounds = execution.max_rounds;
  unsigned& workers = execution.workers;
  runtime::ThreadPool*& pool = execution.pool;
  bool& record_trace = hooks.record_trace;
  std::function<void(const RoundMetrics&)>& on_round_metrics =
      hooks.on_round_metrics;

  Config() = default;
  Config(const Config& o)
      : bandwidth_bits(o.bandwidth_bits),
        seed(o.seed),
        execution(o.execution),
        hooks(o.hooks),
        faults(o.faults) {}
  Config(Config&& o) noexcept
      : bandwidth_bits(o.bandwidth_bits),
        seed(o.seed),
        execution(std::move(o.execution)),
        hooks(std::move(o.hooks)),
        faults(std::move(o.faults)) {}
  Config& operator=(const Config& o) {
    if (this != &o) {
      bandwidth_bits = o.bandwidth_bits;
      seed = o.seed;
      execution = o.execution;
      hooks = o.hooks;
      faults = o.faults;
    }
    return *this;
  }
  Config& operator=(Config&& o) noexcept {
    if (this != &o) {
      bandwidth_bits = o.bandwidth_bits;
      seed = o.seed;
      execution = std::move(o.execution);
      hooks = std::move(o.hooks);
      faults = std::move(o.faults);
    }
    return *this;
  }
};

/// One recorded message (sent during `round`, delivered in round+1).
struct TraceEntry {
  std::uint64_t round;
  NodeId from;
  NodeId to;
  std::uint32_t bits;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// Multiplier c in B = c * ceil(log2 n). The paper's B = O(log n); the
/// constant matters only for constant factors. The widest messages in
/// the library are Algorithm 4's overlay edges, which carry a σ-scaled
/// approximate distance of up to ~4·log2(n) bits (log ℓ + log ε⁻¹ +
/// log n + log W for poly(n) weights) plus two node ids, hence c = 8.
inline constexpr std::uint32_t kBandwidthLogFactor = 8;

/// Computes the default bandwidth for an n-node network.
std::uint32_t default_bandwidth(NodeId n);

/// Execution totals for one run.
struct RunStats {
  std::uint64_t rounds = 0;    ///< synchronous rounds elapsed
  std::uint64_t messages = 0;  ///< total point-to-point messages
  std::uint64_t bits = 0;      ///< total bits on all edges

  friend bool operator==(const RunStats&, const RunStats&) = default;
};

/// Full report for one run: the ledger plus what the fault plan did to
/// it. Primitives that can detect partial completion (e.g. a BFS tree
/// cut off by crash-stop failures) set `completed = false` and explain
/// in `diagnostic`; the raw engine always reports completed runs (a run
/// that cannot finish throws ModelError at the horizon instead).
struct RunOutcome {
  RunStats stats;
  FaultCounters faults;
  bool completed = true;
  std::string diagnostic;  ///< empty when completed

  friend bool operator==(const RunOutcome&, const RunOutcome&) = default;
};

class Simulator;

/// Per-node facilities handed to a program each round.
class NodeContext {
 public:
  NodeId id() const { return id_; }
  NodeId n() const;
  std::uint64_t round() const;
  std::uint32_t bandwidth() const;
  std::span<const HalfEdge> neighbors() const;
  bool has_neighbor(NodeId v) const;

  /// Slot of `v` in this node's neighbors() row, or EdgeSlotIndex::kNoSlot
  /// if v is not a neighbour. O(1). Message senders are always neighbours
  /// (engine-enforced), so `neighbor_slot(in.from)` lets a program index
  /// per-neighbour state with a flat vector instead of a map.
  std::uint32_t neighbor_slot(NodeId v) const;

  /// Queues a message to neighbour `to` for delivery next round.
  void send(NodeId to, Message m);
  /// Queues a message to the neighbour at `slot` of neighbors() — the
  /// O(1)-admission fast path for senders that already know the slot
  /// (broadcast uses it for every edge).
  void send_to_slot(std::uint32_t slot, Message m);
  /// Queues a copy of `m` to every neighbour.
  void broadcast(const Message& m);

  /// Deterministic per-node random stream (nodes may use private
  /// randomness in the CONGEST model).
  Rng& rng();

 private:
  friend class Simulator;
  NodeContext(Simulator& sim, NodeId id) : sim_(&sim), id_(id) {}
  Simulator* sim_;
  NodeId id_;
};

/// A distributed algorithm, from one node's point of view.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 0; may send initial messages.
  virtual void on_start(NodeContext& ctx) { (void)ctx; }

  /// Called every round with the messages delivered this round.
  virtual void on_round(NodeContext& ctx, std::span<const Incoming> inbox) = 0;

  /// The engine stops when every node is done and no messages are in
  /// flight. A done node must stay silent (enforced). done() must be a
  /// pure function of program state, and that state may change only
  /// inside on_start/on_round — the engine caches doneness between
  /// activations and re-queries it only after the program runs, so a
  /// done node with an empty inbox is skipped entirely.
  virtual bool done() const = 0;
};

/// The synchronous engine. One instance per execution. The topology must
/// not be mutated while the simulator is alive (it holds the graph's
/// cached CSR + slot-index views).
class Simulator {
 public:
  Simulator(const WeightedGraph& graph, Config config = {});
  ~Simulator();

  /// Runs the given programs (one per node, index = node id) to
  /// completion. Returns the ledger for this run.
  RunStats run(std::span<const std::unique_ptr<NodeProgram>> programs);

  const WeightedGraph& graph() const { return *graph_; }
  std::uint32_t bandwidth() const { return bandwidth_; }
  /// Message trace of the last run (empty unless config.record_trace).
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// Per-fault-class tallies of the last run (all zero when the plan is
  /// empty — the fault path never executes).
  const FaultCounters& fault_counters() const { return fault_counters_; }
  /// Ledger + fault counters of the last run as one report.
  RunOutcome outcome() const { return RunOutcome{stats_, fault_counters_, true, {}}; }

 private:
  friend class NodeContext;

  /// One queued point-to-point message, parked in its sender's outbox
  /// until the serial merge scatters it into the receiver-side arena.
  struct OutMsg {
    NodeId to;
    std::uint32_t slot;  ///< slot of `to` in the sender's adjacency row
    std::uint32_t seq;   ///< sender-local program-order sequence number
    Message msg;
  };

  /// One queued broadcast: stored once and expanded to every neighbour
  /// at scatter time (the dominant primitive — a degree-d broadcast
  /// parks one message, not d copies).
  struct OutBcast {
    std::uint32_t seq;
    Message msg;
  };

  /// Per-sender queue for one round. `seq` orders singles and broadcasts
  /// so the merge can replay the sender's exact program order.
  struct Outbox {
    std::vector<OutMsg> singles;
    std::vector<OutBcast> bcasts;
    std::uint32_t next_seq = 0;

    bool empty() const { return singles.empty() && bcasts.empty(); }
    void clear() {
      singles.clear();
      bcasts.clear();
      next_seq = 0;
    }
  };

  /// Receiver-side mailbox storage: raw memory with a constructed-element
  /// watermark. The scatter pass move/copy-constructs each slot on first
  /// use and assigns thereafter — there is no default-construction pass
  /// over fresh capacity (a vector resize would value-initialize every
  /// new element only to overwrite it immediately).
  class MailArena {
   public:
    MailArena() = default;
    MailArena(const MailArena&) = delete;
    MailArena& operator=(const MailArena&) = delete;
    ~MailArena();

    Incoming* data() { return data_; }
    const Incoming* data() const { return data_; }
    /// Elements [0, constructed()) are live and assignable; slots beyond
    /// must be placement-constructed (then note_filled raises the mark).
    std::size_t constructed() const { return constructed_; }
    void ensure_capacity(std::size_t need);
    void note_filled(std::size_t total) {
      if (total > constructed_) constructed_ = total;
    }

   private:
    Incoming* data_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t constructed_ = 0;
  };

  void queue_message(NodeId from, NodeId to, Message m);
  void queue_to_slot(NodeId from, std::uint32_t slot, Message m);
  void queue_broadcast(NodeId from, const Message& m);
  void admit(NodeId from, NodeId to, std::uint32_t slot, Message&& m);
  void account(NodeId from, NodeId to, std::uint32_t bits);
  void merge_outboxes(int dst);
  void merge_outboxes_sharded(int dst, runtime::ThreadPool& pool);
  void merge_outboxes_faulted(int dst);
  void ensure_shard_plan(unsigned workers);
  std::size_t place_rows(std::span<const NodeId> rows, int dst,
                         std::size_t off);
  void apply_crashes();
  void clear_mailbox(int b);
  void build_actives();
  void run_actives(std::span<const std::unique_ptr<NodeProgram>> programs,
                   std::vector<NodeContext>& contexts);
  runtime::ThreadPool* round_pool();

  const WeightedGraph* graph_;
  const CsrGraph* csr_;
  const EdgeSlotIndex* slots_;
  Config config_;
  std::uint32_t bandwidth_;
  std::uint64_t round_ = 0;
  RunStats stats_;
  std::vector<Rng> node_rngs_;
  std::vector<TraceEntry> trace_;

  // Activation bookkeeping: a node may send only during its own
  // activation (on_start, or on_round while active). Epochs advance once
  // per phase; last_active_epoch_[v] == epoch_ iff v runs this phase.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> last_active_epoch_;
  std::vector<char> node_done_;  ///< done() after the node's last run
  std::vector<NodeId> live_;     ///< sorted ids of not-done nodes
  std::vector<NodeId> actives_;  ///< scratch: nodes running this round

  // Serial engine (no pool configured): ledger/trace/receiver counts are
  // accounted at queue time — admission order is already (sender id,
  // program order) — and the merge skips its counting pass. Parallel
  // engine: accounting is deferred to the serial merge, which replays
  // the same order. Both produce byte-identical results.
  bool queue_accounting_ = false;
  std::uint32_t* pending_count_ = nullptr;     ///< counts of filling mailbox
  std::vector<NodeId>* pending_touched_ = nullptr;
  char* pending_flag_ = nullptr;               ///< touched flags, same buffer

  // Per-sender outboxes (worker-private during a parallel round) and the
  // flat per-directed-edge bandwidth ledger, reset via the queued
  // messages themselves (touched slots only, never an O(2m) refill).
  std::vector<Outbox> outbox_;
  std::vector<std::uint32_t> edge_bits_;
  std::uint32_t round_max_edge_bits_ = 0;
  std::uint64_t queued_count_ = 0;

  // Double-buffered mailbox arena: arena_[cur_] is delivered this round
  // while the merge scatters next round's messages into arena_[1-cur_].
  // Rows are contiguous spans [inbox_begin_[v], +inbox_count_[v]).
  MailArena arena_[2];
  std::vector<std::size_t> inbox_begin_[2];
  std::vector<std::uint32_t> inbox_count_[2];
  std::vector<NodeId> touched_[2];      ///< receivers with messages
  std::vector<char> touched_flag_[2];   ///< same set, as per-node flags
  std::vector<std::size_t> fill_;       ///< scatter cursors, by receiver
  int cur_ = 0;

  std::unique_ptr<runtime::ThreadPool> own_pool_;

  // Shard plan for the parallel merge (built once per worker count by
  // ensure_shard_plan; topology-only, so it survives across runs).
  // Receivers are owned by contiguous degree-balanced node ranges —
  // shard sh owns [shard_bounds_[sh], shard_bounds_[sh+1]) — so every
  // mailbox row, receiver count, fill cursor, and (destination-owned)
  // bandwidth slot is written by exactly one shard. bucket_slot_ is a
  // per-row permutation of each sender's adjacency slots grouped by
  // destination shard (stable, so ascending slot within a group);
  // bucket_off_[from * (S+1) + sh] brackets the group — a shard expands
  // a broadcast by walking only its own bucket instead of filtering the
  // whole row.
  unsigned shard_plan_workers_ = 0;
  std::vector<NodeId> shard_bounds_;       ///< S+1 boundaries
  std::vector<std::uint8_t> node_shard_;   ///< owner shard, per node
  std::vector<std::size_t> bucket_off_;    ///< n x (S+1), row-major
  std::vector<std::uint32_t> bucket_slot_; ///< 2m local slots, bucketed
  std::vector<std::size_t> bucket_cursor_; ///< build scratch, size S

  // Per-merge scratch for the sharded merge (reused, steady-state
  // allocation-free). merge_chunks_ entries are cache-line-sized so the
  // parallel passes never false-share their tallies: entry t < S is
  // shard t (receiver side), entry S + c is accounting chunk c (sender
  // side).
  struct alignas(64) MergeChunk {
    std::uint64_t bits = 0;           ///< sender chunk: ledger bits
    std::uint64_t total = 0;          ///< shard: deliveries owned
    std::uint32_t max_edge_bits = 0;  ///< shard: utilization sample
  };
  std::vector<NodeId> merge_senders_;        ///< active senders with mail
  std::vector<std::uint64_t> sender_prefix_; ///< delivery-count prefix
  std::vector<std::size_t> sender_bounds_;   ///< accounting chunk cuts
  std::vector<MergeChunk> merge_chunks_;
  std::vector<std::vector<NodeId>> shard_touched_;
  std::vector<std::size_t> shard_base_;      ///< arena region starts
  std::vector<std::uint64_t> actives_prefix_; ///< run_actives weights
  std::vector<std::size_t> actives_bounds_;

  // Fault path (null/empty unless Config::faults is non-empty — the
  // fast path above is untouched by an empty plan). The faulted merge
  // resolves every send through the engine, so fault outcomes — like
  // the ledger — are decided serially in (sender id, program order)
  // and are identical at any worker count.
  std::unique_ptr<FaultEngine> faults_;
  FaultCounters fault_counters_;
  /// One message after fault resolution, waiting to be scattered.
  struct Delivery {
    NodeId to;
    NodeId from;
    Message msg;
  };
  std::vector<Delivery> resolved_;  ///< scratch, reused across merges
  /// A message held back by a delay fault until its new delivery round.
  struct Delayed {
    std::uint64_t round;  ///< adjusted delivery round
    NodeId to;
    NodeId from;
    Message msg;
  };
  std::vector<Delayed> delayed_;  ///< in-flight, insertion-ordered
  std::uint64_t delivery_round_ = 0;  ///< of the merge in progress
  std::vector<std::uint32_t> edge_ordinal_;  ///< per-merge message ordinals
  std::vector<std::size_t> touched_edge_scratch_;
};

/// Convenience: run a homogeneous program type over every node.
/// `make(node_id)` builds the per-node instance. Returns stats and the
/// program objects (so callers can read per-node outputs).
template <typename Program>
struct HomogeneousRun {
  RunStats stats;
  RunOutcome outcome;  ///< stats + fault counters (faults all zero
                       ///< when the config carried no plan)
  std::vector<std::unique_ptr<NodeProgram>> programs;

  Program& at(NodeId v) { return static_cast<Program&>(*programs[v]); }
  const Program& at(NodeId v) const {
    return static_cast<const Program&>(*programs[v]);
  }
};

template <typename Program, typename Factory>
HomogeneousRun<Program> run_on_all(const WeightedGraph& g, Factory&& make,
                                   Config config = {}) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(make(v));
  }
  Simulator sim(g, config);
  RunStats stats = sim.run(programs);
  return {stats, sim.outcome(), std::move(programs)};
}

}  // namespace qc::congest
