// Synchronous CONGEST network simulator.
//
// Executes per-node programs round by round on a `WeightedGraph` topology:
// in round r every node receives the messages sent to it in round r-1,
// does local computation, and queues messages for round r+1. The engine
// enforces the model:
//   * a node can only message its direct neighbours,
//   * at most `bandwidth_bits` (= B, default c·ceil(log2 n)) per edge per
//     direction per round,
//   * no activity after a program declares itself done.
// Violations throw `ModelError` — tests exercise this on purpose.
//
// The engine also keeps a ledger (rounds, messages, bits) that the
// benchmarks report; simulated rounds are the paper's complexity measure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace qc::congest {

/// Per-round observability snapshot handed to Config::on_round_metrics
/// after each executed round.
struct RoundMetrics {
  std::uint64_t round = 0;     ///< the round that just executed
  std::uint64_t messages = 0;  ///< messages queued during that round
  std::uint64_t bits = 0;      ///< bits queued during that round
  NodeId active_nodes = 0;     ///< nodes whose on_round ran
};

/// Engine configuration.
struct Config {
  /// Per-edge per-direction bits per round. 0 means "use the CONGEST
  /// default" of kBandwidthLogFactor * ceil(log2 n).
  std::uint32_t bandwidth_bits = 0;
  /// Hard cap on simulated rounds; exceeding it throws ModelError
  /// (guards against non-terminating programs).
  std::uint64_t max_rounds = 50'000'000;
  /// Seed for the engine-supplied per-node RNG streams.
  std::uint64_t seed = 1;
  /// Record every message (round, from, to, bits) — used by the
  /// lower-bound simulation lemma to meter cross-partition traffic.
  bool record_trace = false;
  /// Opt-in per-round observability hook (e.g. feeding a
  /// runtime::MetricsRegistry via runtime::attach_simulator_metrics).
  /// Called once after every executed round; empty = no overhead.
  std::function<void(const RoundMetrics&)> on_round_metrics;
};

/// One recorded message (sent during `round`, delivered in round+1).
struct TraceEntry {
  std::uint64_t round;
  NodeId from;
  NodeId to;
  std::uint32_t bits;
};

/// Multiplier c in B = c * ceil(log2 n). The paper's B = O(log n); the
/// constant matters only for constant factors. The widest messages in
/// the library are Algorithm 4's overlay edges, which carry a σ-scaled
/// approximate distance of up to ~4·log2(n) bits (log ℓ + log ε⁻¹ +
/// log n + log W for poly(n) weights) plus two node ids, hence c = 8.
inline constexpr std::uint32_t kBandwidthLogFactor = 8;

/// Computes the default bandwidth for an n-node network.
std::uint32_t default_bandwidth(NodeId n);

/// Execution totals for one run.
struct RunStats {
  std::uint64_t rounds = 0;    ///< synchronous rounds elapsed
  std::uint64_t messages = 0;  ///< total point-to-point messages
  std::uint64_t bits = 0;      ///< total bits on all edges
};

class Simulator;

/// Per-node facilities handed to a program each round.
class NodeContext {
 public:
  NodeId id() const { return id_; }
  NodeId n() const;
  std::uint64_t round() const;
  std::uint32_t bandwidth() const;
  std::span<const HalfEdge> neighbors() const;
  bool has_neighbor(NodeId v) const;

  /// Queues a message to neighbour `to` for delivery next round.
  void send(NodeId to, Message m);
  /// Queues a copy of `m` to every neighbour.
  void broadcast(const Message& m);

  /// Deterministic per-node random stream (nodes may use private
  /// randomness in the CONGEST model).
  Rng& rng();

 private:
  friend class Simulator;
  NodeContext(Simulator& sim, NodeId id) : sim_(&sim), id_(id) {}
  Simulator* sim_;
  NodeId id_;
};

/// A distributed algorithm, from one node's point of view.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 0; may send initial messages.
  virtual void on_start(NodeContext& ctx) { (void)ctx; }

  /// Called every round with the messages delivered this round.
  virtual void on_round(NodeContext& ctx, std::span<const Incoming> inbox) = 0;

  /// The engine stops when every node is done and no messages are in
  /// flight. A done node must stay silent (enforced).
  virtual bool done() const = 0;
};

/// The synchronous engine. One instance per execution.
class Simulator {
 public:
  Simulator(const WeightedGraph& graph, Config config = {});

  /// Runs the given programs (one per node, index = node id) to
  /// completion. Returns the ledger for this run.
  RunStats run(std::span<const std::unique_ptr<NodeProgram>> programs);

  const WeightedGraph& graph() const { return *graph_; }
  std::uint32_t bandwidth() const { return bandwidth_; }
  /// Message trace of the last run (empty unless config.record_trace).
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  friend class NodeContext;

  void queue_message(NodeId from, NodeId to, Message m);

  const WeightedGraph* graph_;
  Config config_;
  std::uint32_t bandwidth_;
  std::uint64_t round_ = 0;
  RunStats stats_;
  std::vector<Rng> node_rngs_;
  std::vector<bool> sender_done_;
  // outgoing[v] = messages to deliver to v next round.
  std::vector<std::vector<Incoming>> outgoing_;
  std::uint64_t outgoing_count_ = 0;
  // bits_this_round_[sender] accumulates per-neighbour usage; reset each
  // round. Indexed by (sender, slot-of-neighbour).
  std::vector<std::vector<std::uint32_t>> edge_bits_;
  std::vector<TraceEntry> trace_;
};

/// Convenience: run a homogeneous program type over every node.
/// `make(node_id)` builds the per-node instance. Returns stats and the
/// program objects (so callers can read per-node outputs).
template <typename Program>
struct HomogeneousRun {
  RunStats stats;
  std::vector<std::unique_ptr<NodeProgram>> programs;

  Program& at(NodeId v) { return static_cast<Program&>(*programs[v]); }
  const Program& at(NodeId v) const {
    return static_cast<const Program&>(*programs[v]);
  }
};

template <typename Program, typename Factory>
HomogeneousRun<Program> run_on_all(const WeightedGraph& g, Factory&& make,
                                   Config config = {}) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(make(v));
  }
  Simulator sim(g, config);
  RunStats stats = sim.run(programs);
  return {stats, std::move(programs)};
}

}  // namespace qc::congest
