#include "congest/simulator.h"

#include <algorithm>
#include <memory>
#include <new>
#include <numeric>
#include <string>

#include "runtime/thread_pool.h"

namespace qc::congest {

std::uint32_t default_bandwidth(NodeId n) {
  const std::uint32_t logn = std::max<std::uint32_t>(1, clog2(std::max<NodeId>(n, 2)));
  return kBandwidthLogFactor * logn;
}

NodeId NodeContext::n() const { return sim_->csr_->node_count(); }
std::uint64_t NodeContext::round() const { return sim_->round_; }
std::uint32_t NodeContext::bandwidth() const { return sim_->bandwidth(); }

std::span<const HalfEdge> NodeContext::neighbors() const {
  return sim_->csr_->neighbors(id_);
}

bool NodeContext::has_neighbor(NodeId v) const {
  return sim_->slots_->slot(id_, v) != EdgeSlotIndex::kNoSlot;
}

std::uint32_t NodeContext::neighbor_slot(NodeId v) const {
  return sim_->slots_->slot(id_, v);
}

void NodeContext::send(NodeId to, Message m) {
  sim_->queue_message(id_, to, std::move(m));
}

void NodeContext::send_to_slot(std::uint32_t slot, Message m) {
  sim_->queue_to_slot(id_, slot, std::move(m));
}

void NodeContext::broadcast(const Message& m) {
  sim_->queue_broadcast(id_, m);
}

Rng& NodeContext::rng() { return sim_->node_rngs_[id_]; }

Simulator::Simulator(const WeightedGraph& graph, Config config)
    : graph_(&graph),
      csr_(&graph.csr()),
      slots_(&graph.slot_index()),
      config_(std::move(config)),
      bandwidth_(config_.bandwidth_bits != 0
                     ? config_.bandwidth_bits
                     : default_bandwidth(graph.node_count())) {
  QC_REQUIRE(graph.node_count() >= 1, "network needs at least one node");
  const NodeId n = graph.node_count();
  Rng master(config_.seed);
  node_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    node_rngs_.push_back(master.fork());
  }
  last_active_epoch_.assign(n, 0);
  node_done_.assign(n, 0);
  outbox_.resize(n);
  edge_bits_.assign(slots_->directed_edge_count(), 0);
  for (int b = 0; b < 2; ++b) {
    inbox_begin_[b].assign(n, 0);
    inbox_count_[b].assign(n, 0);
    touched_flag_[b].assign(n, 0);
  }
  fill_.assign(n, 0);
  // An empty plan constructs nothing: the fault path stays cold and the
  // fast path runs exactly as in a fault-free build.
  if (!config_.faults.empty()) {
    faults_ = std::make_unique<FaultEngine>(config_.faults, *slots_, n,
                                            config_.seed);
    edge_ordinal_.assign(slots_->directed_edge_count(), 0);
  }
}

Simulator::~Simulator() = default;

Simulator::MailArena::~MailArena() {
  std::destroy_n(data_, constructed_);
  ::operator delete(data_, std::align_val_t{alignof(Incoming)});
}

void Simulator::MailArena::ensure_capacity(std::size_t need) {
  if (need <= cap_) return;
  const std::size_t new_cap = std::max(need, cap_ * 2);
  auto* fresh = static_cast<Incoming*>(::operator new(
      new_cap * sizeof(Incoming), std::align_val_t{alignof(Incoming)}));
  std::uninitialized_move_n(data_, constructed_, fresh);
  std::destroy_n(data_, constructed_);
  ::operator delete(data_, std::align_val_t{alignof(Incoming)});
  data_ = fresh;
  cap_ = new_cap;
}

void Simulator::queue_message(NodeId from, NodeId to, Message m) {
  QC_CHECK(from < csr_->node_count(), "sender out of range");
  const std::uint32_t slot = slots_->slot(from, to);
  if (slot == EdgeSlotIndex::kNoSlot) {
    throw ModelError("node " + std::to_string(from) +
                     " tried to message non-neighbour " + std::to_string(to));
  }
  admit(from, to, slot, std::move(m));
}

void Simulator::queue_to_slot(NodeId from, std::uint32_t slot, Message m) {
  QC_CHECK(from < csr_->node_count(), "sender out of range");
  const auto row = csr_->neighbors(from);
  QC_REQUIRE(slot < row.size(), "neighbour slot out of range");
  admit(from, row[slot].to, slot, std::move(m));
}

// One admission sweep for all of from's edges: the epoch check runs
// once, the bandwidth row is walked sequentially, and the message is
// parked ONCE — expansion to per-receiver copies happens at scatter.
void Simulator::queue_broadcast(NodeId from, const Message& m) {
  QC_CHECK(from < csr_->node_count(), "sender out of range");
  const auto row = csr_->neighbors(from);
  if (row.empty()) return;
  if (last_active_epoch_[from] != epoch_) {
    throw ModelError("node " + std::to_string(from) +
                     " sent a message after declaring done");
  }
  const std::uint32_t bits = m.bit_size();
  const std::size_t base = slots_->edge_index(from, 0);
  auto& box = outbox_[from];
  for (std::uint32_t s = 0; s < row.size(); ++s) {
    const std::uint32_t used = edge_bits_[base + s] + bits;
    if (used > bandwidth_) {
      throw ModelError("bandwidth exceeded on edge " + std::to_string(from) +
                       "->" + std::to_string(row[s].to) + ": " +
                       std::to_string(used) +
                       " bits > B=" + std::to_string(bandwidth_) +
                       " in round " + std::to_string(round_));
    }
    edge_bits_[base + s] = used;
  }
  box.bcasts.emplace_back(box.next_seq++, m);
  if (queue_accounting_) {
    stats_.messages += row.size();
    stats_.bits += std::uint64_t{bits} * row.size();
    queued_count_ += row.size();
    if (config_.hooks.record_trace) {
      for (std::uint32_t s = 0; s < row.size(); ++s) {
        trace_.push_back(TraceEntry{round_, from, row[s].to, bits});
      }
    }
    for (std::uint32_t s = 0; s < row.size(); ++s) {
      const NodeId to = row[s].to;
      if (pending_count_[to]++ == 0) {
        pending_touched_->push_back(to);
        pending_flag_[to] = 1;
      }
    }
  }
}

void Simulator::admit(NodeId from, NodeId to, std::uint32_t slot, Message&& m) {
  // Defensive: a program can only reach its own context during its own
  // activation, but a buggy one that stashes a context pointer and sends
  // out of turn must not corrupt the ledger.
  if (last_active_epoch_[from] != epoch_) {
    throw ModelError("node " + std::to_string(from) +
                     " sent a message after declaring done");
  }
  const std::size_t e = slots_->edge_index(from, slot);
  const std::uint32_t used = edge_bits_[e] + m.bit_size();
  if (used > bandwidth_) {
    throw ModelError("bandwidth exceeded on edge " + std::to_string(from) +
                     "->" + std::to_string(to) + ": " + std::to_string(used) +
                     " bits > B=" + std::to_string(bandwidth_) +
                     " in round " + std::to_string(round_));
  }
  edge_bits_[e] = used;
  const std::uint32_t bits = m.bit_size();
  auto& box = outbox_[from];
  box.singles.emplace_back(to, slot, box.next_seq++, std::move(m));
  if (queue_accounting_) account(from, to, bits);
}

// Queue-time accounting (serial engine only): admissions arrive in
// (sender id, program order) — the exact order the merge pass would
// replay — so the ledger, trace, and receiver counts can be taken here
// and the merge's counting pass skipped.
void Simulator::account(NodeId from, NodeId to, std::uint32_t bits) {
  stats_.messages += 1;
  stats_.bits += bits;
  if (config_.hooks.record_trace) {
    trace_.push_back(TraceEntry{round_, from, to, bits});
  }
  if (pending_count_[to]++ == 0) {
    pending_touched_->push_back(to);
    pending_flag_[to] = 1;
  }
  ++queued_count_;
}

void Simulator::clear_mailbox(int b) {
  for (NodeId v : touched_[b]) {
    inbox_count_[b][v] = 0;
    touched_flag_[b][v] = 0;
  }
  touched_[b].clear();
}

// Shared placement pass: assigns contiguous arena rows (begin offsets +
// fill cursors) for `rows` starting at `off`; returns the end offset.
// All three merges route through here — the fast and faulted merges
// place every touched receiver from offset 0, the sharded merge places
// each shard's receivers from that shard's arena base.
std::size_t Simulator::place_rows(std::span<const NodeId> rows, int dst,
                                  std::size_t off) {
  auto& begin = inbox_begin_[dst];
  const auto& count = inbox_count_[dst];
  for (NodeId v : rows) {
    begin[v] = off;
    fill_[v] = off;
    off += count[v];
  }
  return off;
}

// Serial merge of the per-sender outboxes into mailbox buffer `dst`.
// Iterating senders in actives_ order (ascending node id) and each
// outbox in program order reproduces exactly the ledger/trace ordering
// of queue-time accounting in a serial engine — which is what makes
// pooled rounds byte-identical to serial ones.
void Simulator::merge_outboxes(int dst) {
  auto& arena = arena_[dst];
  auto& count = inbox_count_[dst];
  auto& touched = touched_[dst];

  // Pass 1: ledger, trace, per-receiver counts, replaying each sender's
  // singles and broadcasts interleaved in seq (= program) order. Skipped
  // when the serial engine already accounted at queue time (admission
  // order is the same order this pass replays).
  std::size_t total;
  if (queue_accounting_) {
    total = queued_count_;
  } else {
    total = 0;
    for (NodeId from : actives_) {
      const Outbox& box = outbox_[from];
      auto si = box.singles.begin();
      auto bi = box.bcasts.begin();
      const auto row = csr_->neighbors(from);
      while (si != box.singles.end() || bi != box.bcasts.end()) {
        if (bi == box.bcasts.end() ||
            (si != box.singles.end() && si->seq < bi->seq)) {
          const std::uint32_t bits = si->msg.bit_size();
          stats_.messages += 1;
          stats_.bits += bits;
          if (config_.hooks.record_trace) {
            trace_.push_back(TraceEntry{round_, from, si->to, bits});
          }
          if (count[si->to]++ == 0) {
            touched.push_back(si->to);
            touched_flag_[dst][si->to] = 1;
          }
          ++total;
          ++si;
        } else {
          const std::uint32_t bits = bi->msg.bit_size();
          stats_.messages += row.size();
          stats_.bits += std::uint64_t{bits} * row.size();
          total += row.size();
          for (const HalfEdge& he : row) {
            if (config_.hooks.record_trace) {
              trace_.push_back(TraceEntry{round_, from, he.to, bits});
            }
            if (count[he.to]++ == 0) {
              touched.push_back(he.to);
              touched_flag_[dst][he.to] = 1;
            }
          }
          ++bi;
        }
      }
    }
    queued_count_ = total;
  }

  // Pass 2: lay out contiguous per-receiver rows (first-receipt order —
  // row placement is not observable, only row contents are). The arena
  // only ever grows and never default-constructs ahead of use.
  arena.ensure_capacity(total);
  place_rows(touched, dst, 0);

  // Pass 3: scatter, replaying seq order per sender so each receiver's
  // row is in (sender id, program order) — the order the old
  // per-receiver push_back produced; broadcasts expand to one copy per
  // neighbour here (the last edge steals the parked message). Also
  // resets the bandwidth slots the round actually used (first visit
  // reads the edge's final total — the utilization sample — and zeroes
  // it; later visits no-op).
  Incoming* a = arena.data();
  const std::size_t watermark = arena.constructed();
  const auto reset_edge = [&](std::size_t e) {
    if (edge_bits_[e] != 0) {
      round_max_edge_bits_ = std::max(round_max_edge_bits_, edge_bits_[e]);
      edge_bits_[e] = 0;
    }
  };
  const auto put_move = [&](NodeId to, NodeId from, Message&& m) {
    const std::size_t idx = fill_[to]++;
    if (idx < watermark) {
      a[idx].from = from;
      a[idx].msg = std::move(m);
    } else {
      ::new (a + idx) Incoming{from, std::move(m)};
    }
  };
  const auto put_copy = [&](NodeId to, NodeId from, const Message& m) {
    const std::size_t idx = fill_[to]++;
    if (idx < watermark) {
      a[idx].from = from;
      a[idx].msg = m;
    } else {
      ::new (a + idx) Incoming{from, m};
    }
  };
  for (NodeId from : actives_) {
    Outbox& box = outbox_[from];
    if (box.empty()) continue;
    auto si = box.singles.begin();
    auto bi = box.bcasts.begin();
    const auto row = csr_->neighbors(from);
    const std::size_t base = row.empty() ? 0 : slots_->edge_index(from, 0);
    while (si != box.singles.end() || bi != box.bcasts.end()) {
      if (bi == box.bcasts.end() ||
          (si != box.singles.end() && si->seq < bi->seq)) {
        reset_edge(slots_->edge_index(from, si->slot));
        put_move(si->to, from, std::move(si->msg));
        ++si;
      } else {
        for (std::size_t s = 0; s + 1 < row.size(); ++s) {
          reset_edge(base + s);
          put_copy(row[s].to, from, bi->msg);
        }
        const std::size_t last = row.size() - 1;
        reset_edge(base + last);
        put_move(row[last].to, from, std::move(bi->msg));
        ++bi;
      }
    }
    box.clear();
  }
  arena.note_filled(total);
}

// Builds (or rebuilds, when the worker count changes) the receiver
// shard plan for the parallel merge. Topology-only: shard boundaries
// come from the CSR's degree-balanced prefix-sum cut, and the broadcast
// buckets are a per-row counting sort of each sender's adjacency slots
// by destination shard — both deterministic, both reusable across runs.
// Shards are capped at 64: node_shard_ stays one byte per node, and
// past ~64 receiver ranges the fork/join overhead dominates any split.
void Simulator::ensure_shard_plan(unsigned workers) {
  const unsigned want = std::min(workers, 64u);
  if (want == shard_plan_workers_) return;
  shard_plan_workers_ = want;
  const NodeId n = csr_->node_count();
  shard_bounds_ = csr_->balanced_node_shards(want);
  const std::size_t S = shard_bounds_.size() - 1;
  node_shard_.assign(n, 0);
  for (std::size_t sh = 0; sh < S; ++sh) {
    for (NodeId v = shard_bounds_[sh]; v < shard_bounds_[sh + 1]; ++v) {
      node_shard_[v] = static_cast<std::uint8_t>(sh);
    }
  }
  // Broadcast buckets: for every sender row, the local slots grouped by
  // destination shard, stable within a group (ascending slot — the
  // order the serial scatter visits them). bucket_off_ holds absolute
  // cuts into bucket_slot_, so a row's group sh is
  // bucket_slot_[off[sh], off[sh+1]).
  bucket_off_.assign(static_cast<std::size_t>(n) * (S + 1), 0);
  bucket_slot_.resize(slots_->directed_edge_count());
  bucket_cursor_.assign(S, 0);
  for (NodeId from = 0; from < n; ++from) {
    const auto row = csr_->neighbors(from);
    std::size_t* off =
        bucket_off_.data() + static_cast<std::size_t>(from) * (S + 1);
    off[0] = slots_->edge_index(from, 0);  // = the row's CSR offset
    std::fill(bucket_cursor_.begin(), bucket_cursor_.end(), 0);
    for (const HalfEdge& he : row) ++bucket_cursor_[node_shard_[he.to]];
    for (std::size_t sh = 0; sh < S; ++sh) {
      off[sh + 1] = off[sh] + bucket_cursor_[sh];
    }
    std::copy(off, off + S, bucket_cursor_.begin());
    for (std::uint32_t s = 0; s < row.size(); ++s) {
      bucket_slot_[bucket_cursor_[node_shard_[row[s].to]]++] = s;
    }
  }
  shard_touched_.resize(S);
  shard_base_.assign(S + 1, 0);
}

// Shard-parallel merge — the pooled counterpart of merge_outboxes, and
// the reason pooled rounds scale past the program phase (docs/perf.md,
// "Sharded mailbox delivery"). Two parallel phases around one serial
// reduce:
//   pass 1 fuses receiver-side counting (one task per shard: count[],
//   touched, shard totals — every write receiver-owned, so shard-
//   disjoint) with sender-side accounting (one task per balanced sender
//   chunk: ledger bits and the trace slice, whose position is known up
//   front because deliveries-per-sender is exactly trace-entries-per-
//   sender);
//   the serial reduce folds chunk tallies in deterministic order and
//   turns shard totals into arena region bases;
//   pass 2 places rows and scatters, one task per shard, each shard
//   replaying ALL senders in (sender id, program order) but emitting
//   only deliveries it owns — per-receiver row contents come out
//   byte-identical to the serial merge. Broadcasts expand via the
//   precomputed per-shard buckets; a directed edge's bandwidth slot is
//   owned by its destination's shard, so the reset/utilization sample
//   is race-free too.
// What may differ from the serial merge is only unobservable: touched_
// order (build_actives sorts or flag-scans), arena row placement
// (programs see spans), and that broadcast payloads are always copied
// (the serial merge moves the last copy).
void Simulator::merge_outboxes_sharded(int dst, runtime::ThreadPool& pool) {
  // Pass 0 (serial, O(#senders)): who queued mail and how many
  // deliveries each sender expands to. The per-sender counts are both
  // the balance weights for the accounting chunks and the trace-slice
  // prefix.
  merge_senders_.clear();
  sender_prefix_.clear();
  sender_prefix_.push_back(0);
  for (NodeId from : actives_) {
    const Outbox& box = outbox_[from];
    if (box.empty()) continue;
    merge_senders_.push_back(from);
    sender_prefix_.push_back(sender_prefix_.back() + box.singles.size() +
                             box.bcasts.size() * csr_->degree(from));
  }
  const auto total = static_cast<std::size_t>(sender_prefix_.back());
  const std::size_t S = shard_bounds_.size() - 1;
  if (merge_senders_.empty() || S < 2 ||
      total < config_.execution.sharded_merge_min_messages) {
    merge_outboxes(dst);  // nothing mutated yet: clean fallback
    return;
  }

  auto& arena = arena_[dst];
  auto& count = inbox_count_[dst];
  auto& touched = touched_[dst];
  char* tflag = touched_flag_[dst].data();

  stats_.messages += total;
  arena.ensure_capacity(total);
  const std::size_t trace_base = trace_.size();
  if (config_.hooks.record_trace) trace_.resize(trace_base + total);

  runtime::balanced_ranges(sender_prefix_, pool.worker_count() * 2,
                           sender_bounds_);
  const std::size_t C = sender_bounds_.size() - 1;
  merge_chunks_.assign(S + C, MergeChunk{});
  for (auto& mine : shard_touched_) mine.clear();

  // Pass 1 (parallel): tasks [0, S) count deliveries per owned
  // receiver; tasks [S, S+C) account a sender chunk's ledger bits and
  // fill its trace slice. The two sides touch disjoint state, so they
  // share one fork/join.
  runtime::parallel_for(pool, S + C, [&](std::size_t t) {
    if (t < S) {
      const auto sh = static_cast<std::uint8_t>(t);
      auto& mine = shard_touched_[t];
      std::uint64_t owned = 0;
      for (NodeId from : merge_senders_) {
        const Outbox& box = outbox_[from];
        for (const OutMsg& sm : box.singles) {
          if (node_shard_[sm.to] != sh) continue;
          if (count[sm.to] == 0) {
            mine.push_back(sm.to);
            tflag[sm.to] = 1;
          }
          ++count[sm.to];
          ++owned;
        }
        if (!box.bcasts.empty()) {
          const auto k = static_cast<std::uint32_t>(box.bcasts.size());
          const auto row = csr_->neighbors(from);
          const std::size_t* off =
              bucket_off_.data() + static_cast<std::size_t>(from) * (S + 1);
          for (std::size_t i = off[t]; i < off[t + 1]; ++i) {
            const NodeId to = row[bucket_slot_[i]].to;
            if (count[to] == 0) {
              mine.push_back(to);
              tflag[to] = 1;
            }
            count[to] += k;
          }
          owned += (off[t + 1] - off[t]) * std::uint64_t{k};
        }
      }
      merge_chunks_[t].total = owned;
    } else {
      const std::size_t c = t - S;
      std::uint64_t bits_sum = 0;
      TraceEntry* tr =
          config_.hooks.record_trace
              ? trace_.data() + trace_base + sender_prefix_[sender_bounds_[c]]
              : nullptr;
      for (std::size_t i = sender_bounds_[c]; i < sender_bounds_[c + 1]; ++i) {
        const NodeId from = merge_senders_[i];
        const Outbox& box = outbox_[from];
        auto si = box.singles.begin();
        auto bi = box.bcasts.begin();
        const auto row = csr_->neighbors(from);
        while (si != box.singles.end() || bi != box.bcasts.end()) {
          if (bi == box.bcasts.end() ||
              (si != box.singles.end() && si->seq < bi->seq)) {
            const std::uint32_t bits = si->msg.bit_size();
            bits_sum += bits;
            if (tr) *tr++ = TraceEntry{round_, from, si->to, bits};
            ++si;
          } else {
            const std::uint32_t bits = bi->msg.bit_size();
            bits_sum += std::uint64_t{bits} * row.size();
            if (tr) {
              for (const HalfEdge& he : row) {
                *tr++ = TraceEntry{round_, from, he.to, bits};
              }
            }
            ++bi;
          }
        }
      }
      merge_chunks_[t].bits = bits_sum;
    }
  });

  // Serial reduce, deterministic order: ledger bits chunk by chunk,
  // shard totals into contiguous arena region bases.
  for (std::size_t c = 0; c < C; ++c) stats_.bits += merge_chunks_[S + c].bits;
  std::size_t off = 0;
  for (std::size_t sh = 0; sh < S; ++sh) {
    shard_base_[sh] = off;
    off += static_cast<std::size_t>(merge_chunks_[sh].total);
  }
  shard_base_[S] = off;
  QC_CHECK(off == total, "sharded merge lost deliveries");

  // Pass 2 (parallel, one task per shard): place the shard's rows in
  // its arena region, then scatter by replaying every sender's seq
  // order and keeping only owned deliveries. Singles are moved (their
  // one consumer is this shard); broadcast payloads are copied (other
  // shards are reading them concurrently).
  Incoming* a = arena.data();
  const std::size_t watermark = arena.constructed();
  runtime::parallel_for(pool, S, [&](std::size_t t) {
    const auto sh = static_cast<std::uint8_t>(t);
    place_rows(shard_touched_[t], dst, shard_base_[t]);
    std::uint32_t max_bits = 0;
    const auto reset_edge = [&](std::size_t e) {
      if (edge_bits_[e] != 0) {
        max_bits = std::max(max_bits, edge_bits_[e]);
        edge_bits_[e] = 0;
      }
    };
    const auto put_move = [&](NodeId to, NodeId from, Message&& m) {
      const std::size_t idx = fill_[to]++;
      if (idx < watermark) {
        a[idx].from = from;
        a[idx].msg = std::move(m);
      } else {
        ::new (a + idx) Incoming{from, std::move(m)};
      }
    };
    const auto put_copy = [&](NodeId to, NodeId from, const Message& m) {
      const std::size_t idx = fill_[to]++;
      if (idx < watermark) {
        a[idx].from = from;
        a[idx].msg = m;
      } else {
        ::new (a + idx) Incoming{from, m};
      }
    };
    for (NodeId from : merge_senders_) {
      Outbox& box = outbox_[from];
      auto si = box.singles.begin();
      auto bi = box.bcasts.begin();
      const auto row = csr_->neighbors(from);
      const std::size_t base = row.empty() ? 0 : slots_->edge_index(from, 0);
      const std::size_t* boff =
          bucket_off_.data() + static_cast<std::size_t>(from) * (S + 1);
      while (si != box.singles.end() || bi != box.bcasts.end()) {
        if (bi == box.bcasts.end() ||
            (si != box.singles.end() && si->seq < bi->seq)) {
          if (node_shard_[si->to] == sh) {
            reset_edge(slots_->edge_index(from, si->slot));
            put_move(si->to, from, std::move(si->msg));
          }
          ++si;
        } else {
          for (std::size_t i = boff[t]; i < boff[t + 1]; ++i) {
            const std::uint32_t s = bucket_slot_[i];
            reset_edge(base + s);
            put_copy(row[s].to, from, bi->msg);
          }
          ++bi;
        }
      }
    }
    merge_chunks_[t].max_edge_bits = max_bits;
  });

  for (std::size_t sh = 0; sh < S; ++sh) {
    round_max_edge_bits_ =
        std::max(round_max_edge_bits_, merge_chunks_[sh].max_edge_bits);
  }
  arena.note_filled(total);
  for (const auto& mine : shard_touched_) {
    touched.insert(touched.end(), mine.begin(), mine.end());
  }
  for (NodeId from : merge_senders_) outbox_[from].clear();
  queued_count_ = total;
}

// Fault-path merge: same serial (sender id, program order) replay as
// merge_outboxes, but every send is resolved through the FaultEngine
// before it reaches a mailbox. The ledger and trace account every
// *attempted* send — the bandwidth was spent whether or not delivery
// succeeds — so an all-drop plan still shows the full message bill.
// Faults are keyed by delivery round (delivery_round_, set by run()
// before each merge), which is unique per merge even though the start
// merge and round 0's merge both run with round_ == 0.
void Simulator::merge_outboxes_faulted(int dst) {
  auto& arena = arena_[dst];
  auto& count = inbox_count_[dst];
  auto& touched = touched_[dst];
  char* tflag = touched_flag_[dst].data();
  FaultCounters& fc = fault_counters_;

  resolved_.clear();

  // Pass 1a: delayed messages whose adjusted round has come, in the
  // order their delays were decided (deterministic — decisions happen
  // in the serial merge). Only the receiver-crash check is re-run at
  // arrival; the fault decision itself was consumed at the original
  // delivery round.
  if (!delayed_.empty()) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < delayed_.size(); ++i) {
      Delayed& d = delayed_[i];
      if (d.round != delivery_round_) {
        if (keep != i) delayed_[keep] = std::move(d);
        ++keep;
        continue;
      }
      if (faults_->crashed_by(d.to, delivery_round_)) {
        ++fc.crash_drops;
      } else {
        resolved_.push_back(Delivery{d.to, d.from, std::move(d.msg)});
      }
    }
    delayed_.resize(keep);
  }

  // Pass 1b: this phase's sends. Resolution order per message:
  // link-down > receiver crash > explicit/probabilistic decision; a
  // delayed message is re-checked against receiver crashes on arrival.
  // The round's explicit-event bucket is resolved once here, not once
  // per message (events_ is a map keyed by delivery round).
  touched_edge_scratch_.clear();
  const std::vector<FaultEvent>* round_events =
      faults_->events_for_round(delivery_round_);
  const auto resolve = [&](NodeId from, NodeId to, std::size_t e,
                           Message&& m) {
    const std::uint32_t bits = m.bit_size();
    stats_.messages += 1;
    stats_.bits += bits;
    if (config_.hooks.record_trace) {
      trace_.push_back(TraceEntry{round_, from, to, bits});
    }
    // First visit reads the edge's final bandwidth total (the
    // utilization sample) and zeroes the slot — as in the fast merge.
    if (edge_bits_[e] != 0) {
      round_max_edge_bits_ = std::max(round_max_edge_bits_, edge_bits_[e]);
      edge_bits_[e] = 0;
    }
    const std::uint32_t ordinal = edge_ordinal_[e]++;
    if (ordinal == 0) touched_edge_scratch_.push_back(e);
    if (faults_->link_down(delivery_round_, from, to)) {
      ++fc.link_down_drops;
      return;
    }
    if (faults_->crashed_by(to, delivery_round_)) {
      ++fc.crash_drops;
      return;
    }
    const FaultEngine::Decision d =
        faults_->decide(delivery_round_, from, to, e, ordinal, round_events);
    if (d.drop) {
      ++fc.dropped;
      return;
    }
    if (d.corrupt) {
      m = FaultEngine::corrupted_copy(m, d);
      ++fc.corrupted;
    }
    if (d.delay > 0) {
      ++fc.delayed;
      delayed_.push_back(
          Delayed{delivery_round_ + d.delay, to, from, std::move(m)});
      return;
    }
    if (d.duplicate) {
      ++fc.duplicated;
      resolved_.push_back(Delivery{to, from, m});
    }
    resolved_.push_back(Delivery{to, from, std::move(m)});
  };

  for (NodeId from : actives_) {
    Outbox& box = outbox_[from];
    if (box.empty()) continue;
    auto si = box.singles.begin();
    auto bi = box.bcasts.begin();
    const auto row = csr_->neighbors(from);
    const std::size_t base = row.empty() ? 0 : slots_->edge_index(from, 0);
    while (si != box.singles.end() || bi != box.bcasts.end()) {
      if (bi == box.bcasts.end() ||
          (si != box.singles.end() && si->seq < bi->seq)) {
        resolve(from, si->to, slots_->edge_index(from, si->slot),
                std::move(si->msg));
        ++si;
      } else {
        for (std::size_t s = 0; s + 1 < row.size(); ++s) {
          Message copy = bi->msg;
          resolve(from, row[s].to, base + s, std::move(copy));
        }
        const std::size_t last = row.size() - 1;
        resolve(from, row[last].to, base + last, std::move(bi->msg));
        ++bi;
      }
    }
    box.clear();
  }
  for (const std::size_t e : touched_edge_scratch_) edge_ordinal_[e] = 0;

  // Pass 2 + 3: lay out and scatter the surviving deliveries, exactly
  // as the fast merge does from its outbox replay.
  const std::size_t total = resolved_.size();
  for (const Delivery& d : resolved_) {
    if (count[d.to]++ == 0) {
      touched.push_back(d.to);
      tflag[d.to] = 1;
    }
  }
  arena.ensure_capacity(total);
  place_rows(touched, dst, 0);
  Incoming* a = arena.data();
  const std::size_t watermark = arena.constructed();
  for (Delivery& d : resolved_) {
    const std::size_t idx = fill_[d.to]++;
    if (idx < watermark) {
      a[idx].from = d.from;
      a[idx].msg = std::move(d.msg);
    } else {
      ::new (a + idx) Incoming{d.from, std::move(d.msg)};
    }
  }
  arena.note_filled(total);
  // Delayed messages are still in flight: they must keep the run alive
  // until they arrive, so they count as queued work.
  queued_count_ = total + delayed_.size();
}

// Crash-stop: from its crash round on, a node neither computes nor
// sends. Deliveries *to* it are destroyed at merge time; here the node
// is removed from the live set so build_actives never schedules it
// again. crashed_nodes counts crash events that stopped a node that
// was still running (a node that finished before its crash round is
// unaffected); doneness is deterministic, so this tally is too.
void Simulator::apply_crashes() {
  if (live_.empty()) return;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const NodeId v = live_[i];
    if (faults_->crashed_by(v, round_)) {
      node_done_[v] = 1;
      ++fault_counters_.crashed_nodes;
    } else {
      live_[keep++] = v;
    }
  }
  live_.resize(keep);
}

// actives = live (not-done) ∪ touched (has mail) — exactly the nodes the
// reference engine would run: done nodes with empty inboxes are silent.
// live_ is always sorted; touched_ arrives in first-receipt order, so
// dense rounds use one O(n) flag scan (node_done_ is maintained for
// every node, and a node outside live_ is exactly a node with
// node_done_ set) while sparse rounds sort the short touched list and
// merge — the active-set design stays sub-O(n) when activity is sparse.
void Simulator::build_actives() {
  actives_.clear();
  auto& touched = touched_[cur_];
  const NodeId n = csr_->node_count();
  if ((touched.size() + live_.size()) * 8 >= n) {
    const char* flag = touched_flag_[cur_].data();
    for (NodeId v = 0; v < n; ++v) {
      if (node_done_[v] == 0 || flag[v] != 0) actives_.push_back(v);
    }
  } else {
    std::sort(touched.begin(), touched.end());
    std::set_union(live_.begin(), live_.end(), touched.begin(), touched.end(),
                   std::back_inserter(actives_));
  }
}

runtime::ThreadPool* Simulator::round_pool() {
  if (config_.execution.pool != nullptr) return config_.execution.pool;
  if (config_.execution.workers == 1) return nullptr;
  if (!own_pool_) {
    own_pool_ =
        std::make_unique<runtime::ThreadPool>(config_.execution.workers);
  }
  return own_pool_.get();
}

void Simulator::run_actives(
    std::span<const std::unique_ptr<NodeProgram>> programs,
    std::vector<NodeContext>& contexts) {
  const auto& arena = arena_[cur_];
  const auto& begin = inbox_begin_[cur_];
  const auto& count = inbox_count_[cur_];
  const auto run_one = [&](NodeId v) {
    const std::span<const Incoming> inbox =
        count[v] != 0
            ? std::span<const Incoming>(arena.data() + begin[v], count[v])
            : std::span<const Incoming>();
    programs[v]->on_round(contexts[v], inbox);
    node_done_[v] = programs[v]->done() ? 1 : 0;
  };

  runtime::ThreadPool* pool = round_pool();
  if (pool == nullptr || actives_.size() <= 1) {
    for (NodeId v : actives_) run_one(v);
    return;
  }
  // Auto-serial fallback for low-traffic rounds: when the active set
  // plus this round's queued deliveries is tiny, the per-round
  // fork/join of the pool costs more than the programs themselves
  // (Algorithm 1's hop-limited SSSP is the canonical victim — a
  // handful of frontier messages per round, every round). Work is
  // measured in deliveries, not degree mass: an active node with an
  // empty inbox usually no-ops regardless of its degree. Serial and
  // pooled program phases are byte-identical by construction, so this
  // is a wall-clock decision only (mirrors
  // sharded_merge_min_messages; 0 disables the fallback).
  if (config_.execution.pooled_round_min_work != 0) {
    std::size_t work = actives_.size();
    for (NodeId v : actives_) work += count[v];
    if (work < config_.execution.pooled_round_min_work) {
      for (NodeId v : actives_) run_one(v);
      return;
    }
  }
  // Everything a worker touches here is owned by the node it runs:
  // programs[v], contexts[v], node_rngs_[v], outbox_[v], node_done_[v],
  // and the sender's disjoint stripe of edge_bits_. Shared engine state
  // (ledger, trace, mailboxes) is only touched in the merge, whose
  // parallel form partitions it by receiver shard.
  //
  // Chunks are cut by estimated per-node work — 1 + inbox size +
  // degree — not by node count: a hub node's on_round reads and sends
  // orders of magnitude more than a leaf's, and equal-count chunks
  // leave the hub's chunk as the straggler every round.
  actives_prefix_.clear();
  actives_prefix_.reserve(actives_.size() + 1);
  actives_prefix_.push_back(0);
  for (NodeId v : actives_) {
    actives_prefix_.push_back(actives_prefix_.back() + 1 + count[v] +
                              csr_->degree(v));
  }
  runtime::balanced_ranges(actives_prefix_,
                           static_cast<std::size_t>(pool->worker_count()) * 4,
                           actives_bounds_);
  runtime::parallel_for_ranges(
      *pool, actives_bounds_, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) run_one(actives_[i]);
      });
}

RunStats Simulator::run(std::span<const std::unique_ptr<NodeProgram>> programs) {
  const NodeId n = csr_->node_count();
  QC_REQUIRE(programs.size() == n, "need exactly one program per node");

  stats_ = RunStats{};
  round_ = 0;
  queued_count_ = 0;
  round_max_edge_bits_ = 0;
  trace_.clear();
  cur_ = 0;
  // Full reset (not just touched slots): a previous run may have been
  // aborted mid-round by a ModelError, leaving partial residue.
  for (int b = 0; b < 2; ++b) {
    std::fill(inbox_count_[b].begin(), inbox_count_[b].end(), 0u);
    std::fill(touched_flag_[b].begin(), touched_flag_[b].end(), char{0});
    touched_[b].clear();
    // Arena contents may be stale; rows are always assigned before they
    // are spanned, so no reset is needed.
  }
  for (auto& box : outbox_) box.clear();
  std::fill(edge_bits_.begin(), edge_bits_.end(), 0u);
  fault_counters_ = FaultCounters{};
  delayed_.clear();
  if (faults_) {
    std::fill(edge_ordinal_.begin(), edge_ordinal_.end(), 0u);
  }

  // No pool configured → the serial engine accounts at queue time and
  // the merge skips its counting pass (same order, same bytes). With a
  // fault plan, accounting always defers to the (serial) faulted merge:
  // queue-time accounting counts receiver mailboxes at admission, before
  // the engine has decided whether the message survives.
  runtime::ThreadPool* pool = round_pool();
  queue_accounting_ = pool == nullptr && faults_ == nullptr;

  // Pooled fault-free runs merge through the receiver-sharded parallel
  // path once a phase is big enough (byte-identical either way — the
  // sharded merge falls back below its threshold). The faulted merge
  // stays serial: fault resolution order is part of its determinism
  // contract.
  if (pool != nullptr && faults_ == nullptr) {
    ensure_shard_plan(pool->worker_count());
  }
  const bool sharded =
      pool != nullptr && faults_ == nullptr && shard_bounds_.size() > 2;
  const auto do_merge = [&](int dst) {
    if (faults_) {
      merge_outboxes_faulted(dst);
    } else if (sharded) {
      merge_outboxes_sharded(dst, *pool);
    } else {
      merge_outboxes(dst);
    }
  };

  std::vector<NodeContext> contexts;
  contexts.reserve(n);
  for (NodeId v = 0; v < n; ++v) contexts.push_back(NodeContext(*this, v));

  // Start hook (counts as pre-round-0 local computation; sends land in
  // round 0 inboxes and in the round 0 metrics report).
  ++epoch_;
  std::fill(last_active_epoch_.begin(), last_active_epoch_.end(), epoch_);
  pending_count_ = inbox_count_[0].data();
  pending_touched_ = &touched_[0];
  pending_flag_ = touched_flag_[0].data();
  for (NodeId v = 0; v < n; ++v) {
    programs[v]->on_start(contexts[v]);
  }
  live_.clear();
  for (NodeId v = 0; v < n; ++v) {
    node_done_[v] = programs[v]->done() ? 1 : 0;
    if (node_done_[v] == 0) live_.push_back(v);
  }
  actives_.resize(n);
  std::iota(actives_.begin(), actives_.end(), NodeId{0});
  // Start-phase sends are delivered in round 0; round r's sends are
  // delivered in round r+1 (delivery_round_ keys the fault plan).
  delivery_round_ = 0;
  do_merge(0);

  std::uint64_t reported_messages = 0;
  std::uint64_t reported_bits = 0;
  for (;;) {
    // arena_[cur_] holds this round's deliveries (merged last phase).
    const bool had_messages = queued_count_ > 0;
    queued_count_ = 0;
    if (live_.empty() && !had_messages) break;

    if (faults_) apply_crashes();
    build_actives();
    clear_mailbox(1 - cur_);  // two-rounds-ago mail, no longer referenced
    pending_count_ = inbox_count_[1 - cur_].data();
    pending_touched_ = &touched_[1 - cur_];
    pending_flag_ = touched_flag_[1 - cur_].data();

    ++epoch_;
    for (NodeId v : actives_) last_active_epoch_[v] = epoch_;
    run_actives(programs, contexts);

    // Only active nodes can change doneness; inactive ones were done and
    // stayed done, so the new live set filters straight out of actives_.
    live_.clear();
    for (NodeId v : actives_) {
      if (node_done_[v] == 0) live_.push_back(v);
    }

    delivery_round_ = round_ + 1;
    do_merge(1 - cur_);

    if (config_.hooks.on_round_metrics) {
      config_.hooks.on_round_metrics(RoundMetrics{
          round_, stats_.messages - reported_messages,
          stats_.bits - reported_bits, static_cast<NodeId>(actives_.size()),
          static_cast<double>(round_max_edge_bits_) / bandwidth_});
      reported_messages = stats_.messages;
      reported_bits = stats_.bits;
    }
    round_max_edge_bits_ = 0;

    ++round_;
    if (round_ > config_.execution.max_rounds) {
      throw ModelError("simulation exceeded max_rounds=" +
                       std::to_string(config_.execution.max_rounds));
    }
    cur_ = 1 - cur_;
  }

  stats_.rounds = round_;
  return stats_;
}

}  // namespace qc::congest
