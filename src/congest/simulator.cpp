#include "congest/simulator.h"

#include <algorithm>

namespace qc::congest {

std::uint32_t default_bandwidth(NodeId n) {
  const std::uint32_t logn = std::max<std::uint32_t>(1, clog2(std::max<NodeId>(n, 2)));
  return kBandwidthLogFactor * logn;
}

NodeId NodeContext::n() const { return sim_->graph().node_count(); }
std::uint64_t NodeContext::round() const { return sim_->round_; }
std::uint32_t NodeContext::bandwidth() const { return sim_->bandwidth(); }

std::span<const HalfEdge> NodeContext::neighbors() const {
  return sim_->graph().neighbors(id_);
}

bool NodeContext::has_neighbor(NodeId v) const {
  return sim_->graph().has_edge(id_, v);
}

void NodeContext::send(NodeId to, Message m) {
  sim_->queue_message(id_, to, std::move(m));
}

void NodeContext::broadcast(const Message& m) {
  for (const HalfEdge& h : neighbors()) {
    sim_->queue_message(id_, h.to, m);
  }
}

Rng& NodeContext::rng() { return sim_->node_rngs_[id_]; }

Simulator::Simulator(const WeightedGraph& graph, Config config)
    : graph_(&graph),
      config_(config),
      bandwidth_(config.bandwidth_bits != 0
                     ? config.bandwidth_bits
                     : default_bandwidth(graph.node_count())) {
  QC_REQUIRE(graph.node_count() >= 1, "network needs at least one node");
  Rng master(config_.seed);
  node_rngs_.reserve(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    node_rngs_.push_back(master.fork());
  }
  sender_done_.assign(graph.node_count(), false);
  outgoing_.resize(graph.node_count());
  edge_bits_.resize(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    edge_bits_[v].assign(graph.degree(v), 0);
  }
}

void Simulator::queue_message(NodeId from, NodeId to, Message m) {
  QC_CHECK(from < graph_->node_count(), "sender out of range");
  if (to >= graph_->node_count() || !graph_->has_edge(from, to)) {
    throw ModelError("node " + std::to_string(from) +
                     " tried to message non-neighbour " + std::to_string(to));
  }
  if (sender_done_[from]) {
    throw ModelError("node " + std::to_string(from) +
                     " sent a message after declaring done");
  }
  // Locate the neighbour slot for bandwidth accounting.
  const auto adj = graph_->neighbors(from);
  std::size_t slot = adj.size();
  for (std::size_t i = 0; i < adj.size(); ++i) {
    if (adj[i].to == to) {
      slot = i;
      break;
    }
  }
  QC_CHECK(slot < adj.size(), "neighbour slot lookup failed");
  const std::uint32_t used = edge_bits_[from][slot] + m.bit_size();
  if (used > bandwidth_) {
    throw ModelError("bandwidth exceeded on edge " + std::to_string(from) +
                     "->" + std::to_string(to) + ": " + std::to_string(used) +
                     " bits > B=" + std::to_string(bandwidth_) +
                     " in round " + std::to_string(round_));
  }
  edge_bits_[from][slot] = used;
  stats_.messages += 1;
  stats_.bits += m.bit_size();
  if (config_.record_trace) {
    trace_.push_back(TraceEntry{round_, from, to, m.bit_size()});
  }
  outgoing_[to].push_back(Incoming{from, std::move(m)});
  ++outgoing_count_;
}

RunStats Simulator::run(std::span<const std::unique_ptr<NodeProgram>> programs) {
  const NodeId n = graph_->node_count();
  QC_REQUIRE(programs.size() == n, "need exactly one program per node");

  stats_ = RunStats{};
  round_ = 0;
  outgoing_count_ = 0;
  trace_.clear();
  for (auto& row : outgoing_) row.clear();

  std::vector<NodeContext> contexts;
  contexts.reserve(n);
  for (NodeId v = 0; v < n; ++v) contexts.push_back(NodeContext(*this, v));

  // Start hook (counts as pre-round-0 local computation; sends land in
  // round 0 inboxes).
  for (NodeId v = 0; v < n; ++v) {
    sender_done_[v] = false;
    programs[v]->on_start(contexts[v]);
  }

  std::vector<std::vector<Incoming>> inboxes(n);
  // Traffic already reported through on_round_metrics; the round-0
  // report then picks up on_start sends too (they are queued at
  // round_ == 0, before the first loop iteration).
  std::uint64_t reported_messages = 0;
  std::uint64_t reported_bits = 0;
  for (;;) {
    // Deliver: this round's inbox is last round's outbox.
    for (NodeId v = 0; v < n; ++v) {
      inboxes[v].clear();
      inboxes[v].swap(outgoing_[v]);
    }
    const bool had_messages = outgoing_count_ > 0;
    outgoing_count_ = 0;
    for (auto& bits : edge_bits_) {
      std::fill(bits.begin(), bits.end(), 0);
    }

    bool all_done = true;
    for (NodeId v = 0; v < n; ++v) {
      if (!programs[v]->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done && !had_messages) break;

    NodeId active = 0;
    for (NodeId v = 0; v < n; ++v) {
      sender_done_[v] = programs[v]->done() && inboxes[v].empty();
      if (sender_done_[v]) continue;  // silent this round
      programs[v]->on_round(contexts[v], inboxes[v]);
      sender_done_[v] = false;
      ++active;
    }
    if (config_.on_round_metrics) {
      config_.on_round_metrics(RoundMetrics{
          round_, stats_.messages - reported_messages,
          stats_.bits - reported_bits, active});
      reported_messages = stats_.messages;
      reported_bits = stats_.bits;
    }
    ++round_;
    if (round_ > config_.max_rounds) {
      throw ModelError("simulation exceeded max_rounds=" +
                       std::to_string(config_.max_rounds));
    }
  }

  stats_.rounds = round_;
  return stats_;
}

}  // namespace qc::congest
