// Deterministic fault injection for the CONGEST simulator.
//
// The paper's model is a fault-free synchronous network, but every real
// deployment of the Appendix A building blocks must survive dropped,
// delayed, duplicated, and corrupted messages. This header defines the
// fault *plan* — what goes wrong, when — and the engine that resolves it.
// Plans are fully deterministic: probabilistic faults are decided by a
// counter-based hash of (fault seed, delivery round, directed edge,
// per-edge message ordinal), never by a stateful RNG, so the decision
// for a given message is independent of worker count, scheduling, and
// every other message. Two runs with the same seed produce identical
// `FaultCounters` and identical program-visible behaviour at any
// `Config` worker count.
//
// Convention: faults are keyed by **delivery round**. A message sent in
// round r is normally delivered in round r+1; that is the round the
// fault plan sees (on_start sends are delivered in round 0). A link-down
// interval [first, last] destroys every message whose delivery round
// falls inside it; a crash at round c destroys deliveries *to* the
// crashed node from round c on and stops the node's activations from
// round c on. Delay-by-k moves the delivery round from r+1 to r+1+k;
// the fault decision is made once, at the original delivery round, and
// the delayed copy is only re-checked against receiver crashes on
// arrival. An empty plan is guaranteed to leave the engine's fast path
// untouched — ledger, trace, metrics, and outputs stay byte-identical
// to a fault-free build (pinned by tests/test_faults.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"
#include "graph/slot_index.h"

namespace qc::congest {

/// What happens to one delivered message.
enum class FaultKind : std::uint8_t {
  kDrop,       ///< the message vanishes
  kDuplicate,  ///< the receiver gets two copies
  kDelay,      ///< delivery happens `delay_rounds` rounds late
  kCorrupt,    ///< one field is XOR-perturbed (widths stay valid)
};

/// One explicitly scheduled fault: applies to the `slot`-th message
/// (0-based ordinal) delivered over directed edge (from, to) in
/// delivery round `round`. Explicit events take precedence over the
/// probabilistic model for the message they name.
struct FaultEvent {
  std::uint64_t round = 0;  ///< delivery round (see header convention)
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t slot = 0;  ///< per-edge per-round message ordinal
  FaultKind kind = FaultKind::kDrop;
  std::uint32_t delay_rounds = 1;  ///< kDelay: extra rounds in flight
  std::uint32_t corrupt_field = 0;  ///< kCorrupt: field index to flip
  /// kCorrupt: XOR mask applied to the field value, truncated to the
  /// field's declared width so the corrupted message is still valid.
  std::uint64_t corrupt_mask = 1;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A link outage: messages on edge {a, b} (both directions when
/// `symmetric`, else only a→b) with delivery round in
/// [first_round, last_round] are destroyed.
struct LinkDownInterval {
  NodeId a = 0;
  NodeId b = 0;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;  ///< inclusive
  bool symmetric = true;

  friend bool operator==(const LinkDownInterval&,
                         const LinkDownInterval&) = default;
};

/// Crash-stop node failure: from round `round` on, the node neither
/// computes nor communicates, and deliveries to it are destroyed.
/// (on_start runs before round 0, so a crash at round 0 still lets the
/// node's start-phase sends out.)
struct CrashEvent {
  NodeId node = 0;
  std::uint64_t round = 0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// Seed-derived per-message fault probabilities. Decisions are drawn
/// independently per message and per class; classes are resolved in
/// priority order drop > duplicate > delay > corrupt, at most one per
/// message.
struct FaultProbabilities {
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  double corrupt = 0.0;
  std::uint32_t delay_rounds = 1;  ///< extra rounds for probabilistic delays

  bool any() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || corrupt > 0.0;
  }

  friend bool operator==(const FaultProbabilities&,
                         const FaultProbabilities&) = default;
};

/// The complete fault schedule for one engine run — `Config::Faults`.
/// Default-constructed = empty = the engine's fault-free fast path.
struct FaultPlan {
  /// Seed for probabilistic decisions; 0 derives from the engine seed.
  std::uint64_t seed = 0;
  FaultProbabilities probabilities;
  std::vector<FaultEvent> events;
  std::vector<LinkDownInterval> link_down;
  std::vector<CrashEvent> crashes;

  bool empty() const {
    return !probabilities.any() && events.empty() && link_down.empty() &&
           crashes.empty();
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Per-fault-class tallies for one run; part of `RunOutcome` and
/// exported to a `runtime::MetricsRegistry` via
/// `runtime::record_fault_metrics`.
struct FaultCounters {
  std::uint64_t dropped = 0;          ///< probabilistic + explicit drops
  std::uint64_t duplicated = 0;       ///< extra copies delivered
  std::uint64_t delayed = 0;          ///< messages delivered late
  std::uint64_t corrupted = 0;        ///< messages with a flipped field
  std::uint64_t link_down_drops = 0;  ///< destroyed by link outages
  std::uint64_t crashed_nodes = 0;    ///< crash events applied
  std::uint64_t crash_drops = 0;      ///< deliveries to crashed nodes

  std::uint64_t total() const {
    return dropped + duplicated + delayed + corrupted + link_down_drops +
           crashed_nodes + crash_drops;
  }

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

/// Resolves a `FaultPlan` message by message. Engine-internal: the
/// simulator constructs one per execution when the plan is non-empty
/// and consults it from the serial merge, so resolution order — and
/// with it every counter — is identical at any worker count. Pure
/// decision logic: the tallies live in the simulator's FaultCounters.
class FaultEngine {
 public:
  /// Validates the plan against the topology (event/link endpoints must
  /// be real directed edges, nodes in range) and freezes it.
  FaultEngine(const FaultPlan& plan, const EdgeSlotIndex& slots, NodeId n,
              std::uint64_t engine_seed);

  /// The resolved fate of one message. At most one fault class fires.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    std::uint32_t delay = 0;  ///< extra delivery rounds (0 = on time)
    bool corrupt = false;
    bool corrupt_explicit = false;    ///< use the event's field/mask
    std::uint32_t corrupt_field = 0;  ///< explicit corruption target
    std::uint64_t corrupt_mask = 0;   ///< explicit corruption mask
    std::uint64_t entropy = 0;        ///< probabilistic corruption bits
  };

  /// Decides the fate of the `ordinal`-th message delivered over
  /// directed edge `edge` (= slots.edge_index(from, slot)) in
  /// `delivery_round`. Pure: same arguments, same decision.
  Decision decide(std::uint64_t delivery_round, NodeId from, NodeId to,
                  std::size_t edge, std::uint32_t ordinal) const;

  /// The explicit events scheduled for `delivery_round` (nullptr when
  /// there are none — the common case). The faulted merge hoists this
  /// map lookup out of its per-message loop and passes the result to
  /// the `decide` overload below: one find per merge, not per message.
  const std::vector<FaultEvent>* events_for_round(
      std::uint64_t delivery_round) const;

  /// As `decide`, but with the round's event bucket already resolved
  /// via events_for_round (pass nullptr for an event-free round).
  Decision decide(std::uint64_t delivery_round, NodeId from, NodeId to,
                  std::size_t edge, std::uint32_t ordinal,
                  const std::vector<FaultEvent>* round_events) const;

  /// True iff the directed link from→to is down for `delivery_round`.
  bool link_down(std::uint64_t delivery_round, NodeId from, NodeId to) const;

  /// First round at which `v` is crashed, or kNeverCrashes.
  static constexpr std::uint64_t kNeverCrashes =
      ~static_cast<std::uint64_t>(0);
  std::uint64_t crash_round(NodeId v) const { return crash_round_[v]; }
  bool crashed_by(NodeId v, std::uint64_t round) const {
    return crash_round_[v] <= round;
  }

  /// Returns `m` with the chosen field XOR-perturbed inside its declared
  /// width (so the result is a valid message of identical bit size).
  /// Explicit decisions use (corrupt_field, corrupt_mask); probabilistic
  /// ones derive field and bit from `entropy`. A field-less message is
  /// returned unchanged.
  static Message corrupted_copy(const Message& m, const Decision& d);

 private:
  const FaultEvent* find_event(std::uint64_t delivery_round, NodeId from,
                               NodeId to, std::uint32_t ordinal) const;
  static const FaultEvent* find_in(const std::vector<FaultEvent>* bucket,
                                   NodeId from, NodeId to,
                                   std::uint32_t ordinal);

  std::uint64_t seed_;
  FaultProbabilities probs_;
  /// Events bucketed by delivery round (each bucket is tiny).
  std::map<std::uint64_t, std::vector<FaultEvent>> events_;
  std::vector<LinkDownInterval> link_down_;
  std::vector<std::uint64_t> crash_round_;  ///< per node
};

/// Shared helper: true iff any interval in `intervals` covers
/// (round, from→to). Used by both the classical engine and
/// `quantum::QuantumNetwork` so both observe one link-down semantics.
bool link_down_in(const std::vector<LinkDownInterval>& intervals,
                  std::uint64_t round, NodeId from, NodeId to);

}  // namespace qc::congest
