// CONGEST messages with explicit bit accounting.
//
// The CONGEST model's defining constraint is that each edge carries at
// most B = O(log n) bits per round. To make that enforceable, a message
// is a sequence of fields each pushed with a declared bit width; the
// simulator sums the declared widths of everything a node puts on an edge
// in a round and rejects overflows. Declared widths are checked against
// the actual values (a value must fit in its declared width), so programs
// cannot under-declare.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/error.h"
#include "util/mathx.h"

namespace qc::congest {

/// A single message: fields with declared widths.
class Message {
 public:
  Message() = default;

  /// Appends a field. `bits` in [1, 64]; `value` must fit in `bits`.
  Message& push(std::uint64_t value, std::uint32_t bits) {
    QC_REQUIRE(bits >= 1 && bits <= 64, "field width must be in [1, 64]");
    QC_REQUIRE(bits == 64 || value < (std::uint64_t{1} << bits),
               "field value does not fit in declared width");
    fields_.push_back(value);
    widths_.push_back(bits);
    bit_size_ += bits;
    return *this;
  }

  std::size_t field_count() const { return fields_.size(); }

  std::uint64_t field(std::size_t i) const {
    QC_REQUIRE(i < fields_.size(), "message field index out of range");
    return fields_[i];
  }

  std::uint32_t field_width(std::size_t i) const {
    QC_REQUIRE(i < widths_.size(), "message field index out of range");
    return widths_[i];
  }

  /// Total declared size in bits — what the bandwidth cap meters.
  std::uint32_t bit_size() const { return bit_size_; }

  friend bool operator==(const Message&, const Message&) = default;

 private:
  std::vector<std::uint64_t> fields_;
  std::vector<std::uint32_t> widths_;
  std::uint32_t bit_size_ = 0;
};

/// A received message together with its sender.
struct Incoming {
  NodeId from;
  Message msg;
};

}  // namespace qc::congest
