// CONGEST messages with explicit bit accounting.
//
// The CONGEST model's defining constraint is that each edge carries at
// most B = O(log n) bits per round. To make that enforceable, a message
// is a sequence of fields each pushed with a declared bit width; the
// simulator sums the declared widths of everything a node puts on an edge
// in a round and rejects overflows. Declared widths are checked against
// the actual values (a value must fit in its declared width), so programs
// cannot under-declare.
//
// Storage is a small inline buffer, not heap vectors: every message in
// the library carries at most 6 fields (Algorithm 4's overlay edges —
// two ids plus a scaled distance — are the widest at 3), so the common
// case fits entirely inside the object and copying a message into a
// mailbox is a flat memcpy-sized move with zero allocations. Wider
// messages spill transparently to a heap vector; nothing in the API
// changes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/error.h"
#include "util/mathx.h"

namespace qc::congest {

/// A single message: fields with declared widths.
class Message {
 public:
  /// Fields stored inline; pushes beyond this spill to the heap.
  static constexpr std::size_t kInlineFields = 6;

  Message() = default;

  /// Appends a field. `bits` in [1, 64]; `value` must fit in `bits`.
  Message& push(std::uint64_t value, std::uint32_t bits) {
    QC_REQUIRE(bits >= 1 && bits <= 64, "field width must be in [1, 64]");
    QC_REQUIRE(bits == 64 || value < (std::uint64_t{1} << bits),
               "field value does not fit in declared width");
    if (count_ < kInlineFields) {
      values_[count_] = value;
      widths_[count_] = static_cast<std::uint8_t>(bits);
    } else {
      spill_.push_back({value, static_cast<std::uint8_t>(bits)});
    }
    ++count_;
    bit_size_ += bits;
    return *this;
  }

  std::size_t field_count() const { return count_; }

  std::uint64_t field(std::size_t i) const {
    QC_REQUIRE(i < count_, "message field index out of range");
    return i < kInlineFields ? values_[i] : spill_[i - kInlineFields].value;
  }

  std::uint32_t field_width(std::size_t i) const {
    QC_REQUIRE(i < count_, "message field index out of range");
    return i < kInlineFields ? widths_[i] : spill_[i - kInlineFields].width;
  }

  /// Total declared size in bits — what the bandwidth cap meters.
  std::uint32_t bit_size() const { return bit_size_; }

  // Unused inline slots stay zero-initialized (fields are append-only),
  // so memberwise equality is exactly field-sequence equality.
  friend bool operator==(const Message&, const Message&) = default;

 private:
  struct SpillField {
    std::uint64_t value;
    std::uint8_t width;

    friend bool operator==(const SpillField&, const SpillField&) = default;
  };

  std::uint64_t values_[kInlineFields] = {};
  std::vector<SpillField> spill_;
  std::uint32_t bit_size_ = 0;
  std::uint16_t count_ = 0;
  std::uint8_t widths_[kInlineFields] = {};
};

/// A received message together with its sender.
struct Incoming {
  NodeId from = 0;
  Message msg;
};

}  // namespace qc::congest
