// Reusable distributed primitives on the CONGEST simulator.
//
// These are the O(D)- and O(D+k)-round building blocks the paper's
// algorithms assume:
//   * BFS spanning tree from a root (O(D) rounds);
//   * global aggregate (min/max/sum) by convergecast + downcast
//     ("converge-casting" in the paper's Lemma 3.5 proof, O(D) rounds);
//   * pipelined flooding of k items to every node (O(D + k) rounds) —
//     the "broadcast by pipelining" used by Algorithms 3-5.
//
// Each primitive is a genuine `NodeProgram` (message-level, bandwidth
// checked) plus a convenience wrapper that runs it and collects outputs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "congest/simulator.h"

namespace qc::congest {

inline constexpr NodeId kNoParent = static_cast<NodeId>(-1);

/// Output of BFS-tree construction for one node.
struct BfsTreeNodeResult {
  NodeId parent = kNoParent;  ///< kNoParent for the root / unreached
  Dist depth = kInfDist;      ///< hop distance from the root
  std::vector<NodeId> children;
};

/// Result of a BFS-tree build over the whole network.
struct BfsTreeResult {
  RunStats stats;
  std::vector<BfsTreeNodeResult> nodes;
};

/// Builds a BFS spanning tree rooted at `root`. Every node learns its
/// parent, depth, and children. O(D) rounds.
BfsTreeResult build_bfs_tree(const WeightedGraph& g, NodeId root,
                             Config config = {});

/// Associative fold for aggregates.
enum class AggregateOp { kMin, kMax, kSum };

/// Result of a global aggregate.
struct AggregateResult {
  RunStats stats;
  std::uint64_t value = 0;  ///< aggregate, known to every node on return
};

/// Computes op over each node's `inputs[v]` and disseminates the result
/// to all nodes via convergecast + downcast on a BFS tree rooted at
/// `root`. `value_bits` is the encoded width of any partial aggregate
/// (caller guarantees all partials fit). O(D) rounds.
AggregateResult global_aggregate(const WeightedGraph& g, NodeId root,
                                 const std::vector<std::uint64_t>& inputs,
                                 AggregateOp op, std::uint32_t value_bits,
                                 Config config = {});

/// One flooded item: an opaque payload that must fit in one message
/// (payload bits + header <= B). Items are deduplicated by content, so
/// payloads must be globally distinct (give them an id field).
using FloodItem = Message;

/// Result of a pipelined flood.
struct FloodResult {
  RunStats stats;
  /// items_at[v] = all items known to v (its own + received), in a
  /// deterministic order (sorted by content).
  std::vector<std::vector<FloodItem>> items_at;
};

/// Floods every node's initial items to all nodes, pipelined: each node
/// relays one not-yet-relayed item per round to all neighbours.
/// O(D + k) rounds for k total items.
FloodResult flood_items(const WeightedGraph& g,
                        std::vector<std::vector<FloodItem>> initial,
                        Config config = {});

/// Result of a leader election.
struct ElectionResult {
  RunStats stats;
  NodeId leader = 0;  ///< agreed upon by every node
};

/// Min-id leader election by flooding with a fixed horizon: every node
/// forwards the smallest id it has seen; after `horizon` >= D rounds
/// all nodes agree on the global minimum. (The paper assumes a
/// pre-defined leader; this primitive discharges that assumption —
/// horizon = n is always safe since D <= n-1.)
ElectionResult elect_leader(const WeightedGraph& g, std::uint64_t horizon,
                            Config config = {});

}  // namespace qc::congest
