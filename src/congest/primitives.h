// Reusable distributed primitives on the CONGEST simulator.
//
// These are the O(D)- and O(D+k)-round building blocks the paper's
// algorithms assume:
//   * BFS spanning tree from a root (O(D) rounds);
//   * global aggregate (min/max/sum) by convergecast + downcast
//     ("converge-casting" in the paper's Lemma 3.5 proof, O(D) rounds);
//   * pipelined flooding of k items to every node (O(D + k) rounds) —
//     the "broadcast by pipelining" used by Algorithms 3-5;
//   * acked flooding (flood_items_reliable) — the same dissemination
//     goal made robust to message faults by per-item per-neighbour
//     acknowledgements with retry/timeout/backoff.
//
// Each primitive is a genuine `NodeProgram` (message-level, bandwidth
// checked) plus a convenience wrapper that runs it and collects outputs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/simulator.h"

namespace qc::congest {

/// A distributed primitive detected that it cannot produce a correct
/// result: bad input (e.g. duplicate flood payloads), or a fault plan
/// broke an assumption the protocol does not tolerate.
/// `paths::AlgorithmFailure` is an alias of this type.
class AlgorithmFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr NodeId kNoParent = static_cast<NodeId>(-1);

/// Output of BFS-tree construction for one node.
struct BfsTreeNodeResult {
  NodeId parent = kNoParent;  ///< kNoParent for the root / unreached
  Dist depth = kInfDist;      ///< hop distance from the root
  std::vector<NodeId> children;
};

/// Result of a BFS-tree build over the whole network.
struct BfsTreeResult {
  RunStats stats;
  /// Full report. Under crash-stop faults the tree can be cut off from
  /// part of the network; then `outcome.completed` is false and
  /// `outcome.diagnostic` says how many nodes stayed unreached.
  RunOutcome outcome;
  std::vector<BfsTreeNodeResult> nodes;
  std::vector<NodeId> unreached;  ///< nodes with no depth (ascending)
};

/// Builds a BFS spanning tree rooted at `root`. Every node learns its
/// parent, depth, and children. O(D) rounds fault-free. Liveness is
/// guaranteed under any fault plan: every node gives up after an
/// internal horizon of ~2n rounds, so a partitioned build terminates
/// and reports the unreached set instead of spinning to max_rounds.
BfsTreeResult build_bfs_tree(const WeightedGraph& g, NodeId root,
                             Config config = {});

/// Associative fold for aggregates.
enum class AggregateOp { kMin, kMax, kSum };

/// Result of a global aggregate.
struct AggregateResult {
  RunStats stats;
  std::uint64_t value = 0;  ///< aggregate, known to every node on return
};

/// Computes op over each node's `inputs[v]` and disseminates the result
/// to all nodes via convergecast + downcast on a BFS tree rooted at
/// `root`. `value_bits` is the encoded width of any partial aggregate
/// (caller guarantees all partials fit). O(D) rounds.
AggregateResult global_aggregate(const WeightedGraph& g, NodeId root,
                                 const std::vector<std::uint64_t>& inputs,
                                 AggregateOp op, std::uint32_t value_bits,
                                 Config config = {});

/// One flooded item: an opaque payload that must fit in one message
/// (payload bits + header <= B). Relaying deduplicates by content
/// (field-value tuple), so payloads MUST be globally distinct — give
/// items an id field. Historically two nodes injecting identical
/// payloads silently lost one of them to that dedup; injection now
/// validates distinctness up front and throws `AlgorithmFailure`
/// naming both injection sites instead.
using FloodItem = Message;

/// Result of a pipelined flood.
struct FloodResult {
  RunStats stats;
  /// items_at[v] = all items known to v (its own + received), in a
  /// deterministic order (sorted by content).
  std::vector<std::vector<FloodItem>> items_at;
};

/// How much of the converged flood state to materialize into
/// `FloodResult::items_at`. The protocol (rounds, messages, stats) is
/// identical in all modes — only the final read-out differs. Most
/// callers drive a flood purely for its round cost and read `.stats`;
/// copying every item out of every node is the single largest local
/// cost of a big flood, so skip it when nothing reads the items.
enum class FloodCollect : std::uint8_t {
  kAllNodes,   ///< items_at[v] for every node v (default)
  kFirstNode,  ///< items_at = { node 0's items } only
  kStatsOnly,  ///< items_at left empty
};

/// Floods every node's initial items to all nodes, pipelined: each node
/// relays one not-yet-relayed item per round to all neighbours.
/// O(D + k) rounds for k total items. Throws `AlgorithmFailure` if two
/// injected payloads are identical (see FloodItem).
FloodResult flood_items(const WeightedGraph& g,
                        std::vector<std::vector<FloodItem>> initial,
                        Config config = {},
                        FloodCollect collect = FloodCollect::kAllNodes);

/// Result of an acked flood.
struct ReliableFloodResult {
  RunOutcome outcome;  ///< ledger + what the fault plan did to the run
  /// items_at[v] = all items known to v, sorted by content — identical
  /// to flood_items output whenever the protocol converges.
  std::vector<std::vector<FloodItem>> items_at;
};

/// Acked flooding: like flood_items, but every (item, neighbour) pair
/// is retransmitted on a `timeout_rounds` timeout with exponential
/// backoff until the neighbour acknowledges it, and receivers re-ack
/// retransmissions (so lost acks are also recovered). Converges to the
/// flood_items result under message drop (any probability < 1),
/// duplication, and delay. Corruption is survived but not hidden: the
/// wire format carries no checksum, so a corrupted payload circulates
/// as a spurious extra item. NOT robust to crash-stop failures (a
/// crashed node can never ack; the survivors would retry until the
/// round horizon) — crash recovery needs a membership protocol, which
/// is out of scope here. Costs one extra ack per delivered item and
/// needs 2·(item bits + 1) <= B so a data and an ack message can share
/// an edge each round. Throws `AlgorithmFailure` on duplicate injected
/// payloads, like flood_items.
ReliableFloodResult flood_items_reliable(
    const WeightedGraph& g, std::vector<std::vector<FloodItem>> initial,
    std::uint64_t timeout_rounds = 8, Config config = {});

/// Result of a leader election.
struct ElectionResult {
  RunStats stats;
  NodeId leader = 0;  ///< agreed upon by every node
};

/// Min-id leader election by flooding with a fixed horizon: every node
/// forwards the smallest id it has seen; after `horizon` >= D rounds
/// all nodes agree on the global minimum. (The paper assumes a
/// pre-defined leader; this primitive discharges that assumption —
/// horizon = n is always safe since D <= n-1.)
ElectionResult elect_leader(const WeightedGraph& g, std::uint64_t horizon,
                            Config config = {});

}  // namespace qc::congest
