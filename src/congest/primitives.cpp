#include "congest/primitives.h"

#include <algorithm>
#include <deque>
#include <map>

namespace qc::congest {

namespace {

// ---------------------------------------------------------------------
// BFS tree
// ---------------------------------------------------------------------

// Wire format: {type:1}{payload}. type 0 = announce(depth), type 1 =
// adopt (no payload).
class BfsTreeProgram final : public NodeProgram {
 public:
  BfsTreeProgram(NodeId root, std::uint32_t depth_bits)
      : root_(root), depth_bits_(depth_bits) {}

  void on_start(NodeContext& ctx) override {
    if (ctx.id() == root_) {
      result_.parent = kNoParent;
      result_.depth = 0;
      Message announce;
      announce.push(0, 1).push(0, depth_bits_);
      ctx.broadcast(announce);
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      const std::uint64_t type = in.msg.field(0);
      if (type == 0 && result_.depth == kInfDist) {
        // First announce wins; tie-break on sender id is irrelevant for
        // depth correctness (all same-round announces carry equal depth).
        result_.parent = in.from;
        result_.depth = in.msg.field(1) + 1;
        Message announce;
        announce.push(0, 1).push(result_.depth, depth_bits_);
        ctx.broadcast(announce);
        Message adopt;
        adopt.push(1, 1);
        ctx.send(in.from, adopt);
      } else if (type == 1) {
        result_.children.push_back(in.from);
      }
    }
  }

  bool done() const override { return result_.depth != kInfDist; }

  const BfsTreeNodeResult& result() const { return result_; }

 private:
  NodeId root_;
  std::uint32_t depth_bits_;
  BfsTreeNodeResult result_;
};

// ---------------------------------------------------------------------
// Global aggregate (convergecast + downcast on a fresh BFS tree)
// ---------------------------------------------------------------------

// Wire format: {type:2}{payload}. type 0 = announce(depth), type 1 =
// adopt, type 2 = up(partial), type 3 = down(final).
class AggregateProgram final : public NodeProgram {
 public:
  AggregateProgram(NodeId root, std::uint64_t input, AggregateOp op,
                   std::uint32_t depth_bits, std::uint32_t value_bits)
      : root_(root),
        op_(op),
        depth_bits_(depth_bits),
        value_bits_(value_bits),
        partial_(input) {}

  void on_start(NodeContext& ctx) override {
    if (ctx.id() == root_) {
      adopted_ = true;
      Message announce;
      announce.push(0, 2).push(0, depth_bits_);
      ctx.broadcast(announce);
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      switch (in.msg.field(0)) {
        case 0:  // announce(depth)
          if (!adopted_) {
            adopted_ = true;
            parent_ = in.from;
            Message announce;
            announce.push(0, 2).push(in.msg.field(1) + 1, depth_bits_);
            ctx.broadcast(announce);
            Message adopt;
            adopt.push(1, 2);
            ctx.send(in.from, adopt);
          }
          break;
        case 1:  // adopt
          children_.push_back(in.from);
          break;
        case 2:  // up(partial)
          partial_ = fold(partial_, in.msg.field(1));
          ++reports_;
          break;
        case 3:  // down(final)
          if (!final_.has_value()) {
            final_ = in.msg.field(1);
            push_down(ctx);
          }
          break;
        default:
          throw ModelError("AggregateProgram: unknown message type");
      }
    }

    if (adopted_) ++rounds_since_adopt_;

    // Children membership is final three local rounds after adoption:
    // we adopt in round t, our announce is delivered in t+1, children
    // adopt in t+1, and their adopt messages land in round t+2 — which
    // is the round where rounds_since_adopt_ reaches 3 (inbox is
    // processed before this check).
    if (adopted_ && !sent_up_ && rounds_since_adopt_ >= 3 &&
        reports_ == children_.size()) {
      sent_up_ = true;
      if (ctx.id() == root_ || parent_ == kNoParent) {
        final_ = partial_;
        push_down(ctx);
      } else {
        Message up;
        up.push(2, 2).push(partial_, value_bits_);
        ctx.send(parent_, up);
      }
    }
  }

  bool done() const override { return final_.has_value(); }

  std::uint64_t value() const {
    QC_CHECK(final_.has_value(), "aggregate not finished");
    return *final_;
  }

 private:
  std::uint64_t fold(std::uint64_t a, std::uint64_t b) const {
    switch (op_) {
      case AggregateOp::kMin: return std::min(a, b);
      case AggregateOp::kMax: return std::max(a, b);
      case AggregateOp::kSum: return a + b;
    }
    throw InvariantError("unreachable aggregate op");
  }

  void push_down(NodeContext& ctx) {
    Message down;
    down.push(3, 2).push(*final_, value_bits_);
    for (const NodeId child : children_) ctx.send(child, down);
  }

  NodeId root_;
  AggregateOp op_;
  std::uint32_t depth_bits_;
  std::uint32_t value_bits_;
  NodeId parent_ = kNoParent;
  std::vector<NodeId> children_;
  bool adopted_ = false;
  bool sent_up_ = false;
  std::uint64_t rounds_since_adopt_ = 0;
  std::size_t reports_ = 0;
  std::uint64_t partial_;
  std::optional<std::uint64_t> final_;
};

// ---------------------------------------------------------------------
// Pipelined flooding
// ---------------------------------------------------------------------

// Relays one unseen item per round to all neighbours. With k items total
// this completes within O(D + k) rounds (Topkis-style pipelined
// flooding). Items are relayed verbatim; dedup keys on field contents.
class FloodProgram final : public NodeProgram {
 public:
  explicit FloodProgram(std::vector<FloodItem> initial) {
    for (FloodItem& item : initial) learn(std::move(item));
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) learn(in.msg);
    if (!queue_.empty()) {
      ctx.broadcast(queue_.front());
      queue_.pop_front();
    }
  }

  bool done() const override { return queue_.empty(); }

  std::vector<FloodItem> known_sorted() const {
    std::vector<FloodItem> out;
    out.reserve(known_.size());
    for (const auto& [key, item] : known_) out.push_back(item);
    return out;
  }

 private:
  void learn(FloodItem item) {
    std::vector<std::uint64_t> key(item.field_count());
    for (std::size_t i = 0; i < key.size(); ++i) key[i] = item.field(i);
    if (known_.emplace(std::move(key), item).second) {
      queue_.push_back(std::move(item));
    }
  }

  std::map<std::vector<std::uint64_t>, FloodItem> known_;
  std::deque<FloodItem> queue_;
};

// ---------------------------------------------------------------------
// Leader election (min-id flooding, fixed horizon)
// ---------------------------------------------------------------------
class ElectionProgram final : public NodeProgram {
 public:
  ElectionProgram(std::uint64_t horizon, std::uint32_t id_bits)
      : horizon_(horizon), id_bits_(id_bits) {}

  void on_start(NodeContext& ctx) override {
    best_ = ctx.id();
    Message m;
    m.push(best_, id_bits_);
    ctx.broadcast(m);
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    bool improved = false;
    for (const Incoming& in : inbox) {
      const auto cand = static_cast<NodeId>(in.msg.field(0));
      if (cand < best_) {
        best_ = cand;
        improved = true;
      }
    }
    if (improved && round_ + 1 < horizon_) {
      Message m;
      m.push(best_, id_bits_);
      ctx.broadcast(m);
    }
    ++round_;
  }

  bool done() const override { return round_ >= horizon_; }

  NodeId leader() const { return best_; }

 private:
  std::uint64_t horizon_;
  std::uint32_t id_bits_;
  NodeId best_ = 0;
  std::uint64_t round_ = 0;
};

}  // namespace

ElectionResult elect_leader(const WeightedGraph& g, std::uint64_t horizon,
                            Config config) {
  QC_REQUIRE(horizon >= 1, "election horizon must be >= 1");
  QC_REQUIRE(g.is_connected(), "election needs a connected network");
  const std::uint32_t id_bits = bits_for(g.node_count());
  auto run = run_on_all<ElectionProgram>(
      g,
      [&](NodeId) {
        return std::make_unique<ElectionProgram>(horizon, id_bits);
      },
      config);
  ElectionResult out;
  out.stats = run.stats;
  out.leader = run.at(0).leader();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    QC_CHECK(run.at(v).leader() == out.leader,
             "election did not converge — horizon below the diameter?");
  }
  return out;
}

BfsTreeResult build_bfs_tree(const WeightedGraph& g, NodeId root,
                             Config config) {
  QC_REQUIRE(root < g.node_count(), "root out of range");
  QC_REQUIRE(g.is_connected(), "BFS tree needs a connected network");
  const std::uint32_t depth_bits = bits_for(g.node_count());
  auto run = run_on_all<BfsTreeProgram>(
      g,
      [&](NodeId) {
        return std::make_unique<BfsTreeProgram>(root, depth_bits);
      },
      config);
  BfsTreeResult out;
  out.stats = run.stats;
  out.nodes.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.nodes.push_back(run.at(v).result());
  }
  return out;
}

AggregateResult global_aggregate(const WeightedGraph& g, NodeId root,
                                 const std::vector<std::uint64_t>& inputs,
                                 AggregateOp op, std::uint32_t value_bits,
                                 Config config) {
  QC_REQUIRE(root < g.node_count(), "root out of range");
  QC_REQUIRE(inputs.size() == g.node_count(), "one input per node");
  QC_REQUIRE(g.is_connected(), "aggregate needs a connected network");
  const std::uint32_t depth_bits = bits_for(g.node_count());
  auto run = run_on_all<AggregateProgram>(
      g,
      [&](NodeId v) {
        return std::make_unique<AggregateProgram>(root, inputs[v], op,
                                                  depth_bits, value_bits);
      },
      config);
  AggregateResult out;
  out.stats = run.stats;
  out.value = run.at(root).value();
  // Sanity: every node must have learned the same value.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    QC_CHECK(run.at(v).value() == out.value,
             "aggregate disseminated inconsistently");
  }
  return out;
}

FloodResult flood_items(const WeightedGraph& g,
                        std::vector<std::vector<FloodItem>> initial,
                        Config config) {
  QC_REQUIRE(initial.size() == g.node_count(), "one item list per node");
  QC_REQUIRE(g.is_connected(), "flooding needs a connected network");
  const std::uint32_t bandwidth = config.bandwidth_bits != 0
                                      ? config.bandwidth_bits
                                      : default_bandwidth(g.node_count());
  for (const auto& items : initial) {
    for (const FloodItem& item : items) {
      QC_REQUIRE(item.bit_size() <= bandwidth,
                 "flood item does not fit in one CONGEST message");
    }
  }
  auto run = run_on_all<FloodProgram>(
      g,
      [&](NodeId v) { return std::make_unique<FloodProgram>(std::move(initial[v])); },
      config);
  FloodResult out;
  out.stats = run.stats;
  out.items_at.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.items_at.push_back(run.at(v).known_sorted());
  }
  return out;
}

}  // namespace qc::congest
