#include "congest/primitives.h"

#include <algorithm>
#include <deque>
#include <map>

namespace qc::congest {

namespace {

// ---------------------------------------------------------------------
// BFS tree
// ---------------------------------------------------------------------

// Wire format: {type:1}{payload}. type 0 = announce(depth), type 1 =
// adopt (no payload). `horizon` is the liveness check: an unreached
// node gives up after that many rounds instead of waiting forever, so
// a build cut off by crash-stop faults terminates and reports its
// unreached set. Fault-free the horizon (> any possible depth) never
// fires and behaviour is bit-for-bit what it was without it.
class BfsTreeProgram final : public NodeProgram {
 public:
  BfsTreeProgram(NodeId root, std::uint32_t depth_bits, std::uint64_t horizon)
      : root_(root), depth_bits_(depth_bits), horizon_(horizon) {}

  void on_start(NodeContext& ctx) override {
    if (ctx.id() == root_) {
      result_.parent = kNoParent;
      result_.depth = 0;
      Message announce;
      announce.push(0, 1).push(0, depth_bits_);
      ctx.broadcast(announce);
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      const std::uint64_t type = in.msg.field(0);
      if (type == 0 && result_.depth == kInfDist) {
        // First announce wins; tie-break on sender id is irrelevant for
        // depth correctness (all same-round announces carry equal depth).
        result_.parent = in.from;
        result_.depth = in.msg.field(1) + 1;
        Message announce;
        announce.push(0, 1).push(result_.depth, depth_bits_);
        ctx.broadcast(announce);
        Message adopt;
        adopt.push(1, 1);
        ctx.send(in.from, adopt);
      } else if (type == 1) {
        result_.children.push_back(in.from);
      }
    }
    ++rounds_;
  }

  bool done() const override {
    return result_.depth != kInfDist || rounds_ >= horizon_;
  }

  const BfsTreeNodeResult& result() const { return result_; }

 private:
  NodeId root_;
  std::uint32_t depth_bits_;
  std::uint64_t horizon_;
  std::uint64_t rounds_ = 0;
  BfsTreeNodeResult result_;
};

// ---------------------------------------------------------------------
// Global aggregate (convergecast + downcast on a fresh BFS tree)
// ---------------------------------------------------------------------

// Wire format: {type:2}{payload}. type 0 = announce(depth), type 1 =
// adopt, type 2 = up(partial), type 3 = down(final).
class AggregateProgram final : public NodeProgram {
 public:
  AggregateProgram(NodeId root, std::uint64_t input, AggregateOp op,
                   std::uint32_t depth_bits, std::uint32_t value_bits)
      : root_(root),
        op_(op),
        depth_bits_(depth_bits),
        value_bits_(value_bits),
        partial_(input) {}

  void on_start(NodeContext& ctx) override {
    if (ctx.id() == root_) {
      adopted_ = true;
      Message announce;
      announce.push(0, 2).push(0, depth_bits_);
      ctx.broadcast(announce);
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      switch (in.msg.field(0)) {
        case 0:  // announce(depth)
          if (!adopted_) {
            adopted_ = true;
            parent_ = in.from;
            Message announce;
            announce.push(0, 2).push(in.msg.field(1) + 1, depth_bits_);
            ctx.broadcast(announce);
            Message adopt;
            adopt.push(1, 2);
            ctx.send(in.from, adopt);
          }
          break;
        case 1:  // adopt
          children_.push_back(in.from);
          break;
        case 2:  // up(partial)
          partial_ = fold(partial_, in.msg.field(1));
          ++reports_;
          break;
        case 3:  // down(final)
          if (!final_.has_value()) {
            final_ = in.msg.field(1);
            push_down(ctx);
          }
          break;
        default:
          throw ModelError("AggregateProgram: unknown message type");
      }
    }

    if (adopted_) ++rounds_since_adopt_;

    // Children membership is final three local rounds after adoption:
    // we adopt in round t, our announce is delivered in t+1, children
    // adopt in t+1, and their adopt messages land in round t+2 — which
    // is the round where rounds_since_adopt_ reaches 3 (inbox is
    // processed before this check).
    if (adopted_ && !sent_up_ && rounds_since_adopt_ >= 3 &&
        reports_ == children_.size()) {
      sent_up_ = true;
      if (ctx.id() == root_ || parent_ == kNoParent) {
        final_ = partial_;
        push_down(ctx);
      } else {
        Message up;
        up.push(2, 2).push(partial_, value_bits_);
        ctx.send(parent_, up);
      }
    }
  }

  bool done() const override { return final_.has_value(); }

  std::uint64_t value() const {
    QC_CHECK(final_.has_value(), "aggregate not finished");
    return *final_;
  }

 private:
  std::uint64_t fold(std::uint64_t a, std::uint64_t b) const {
    switch (op_) {
      case AggregateOp::kMin: return std::min(a, b);
      case AggregateOp::kMax: return std::max(a, b);
      case AggregateOp::kSum: return a + b;
    }
    throw InvariantError("unreachable aggregate op");
  }

  void push_down(NodeContext& ctx) {
    Message down;
    down.push(3, 2).push(*final_, value_bits_);
    for (const NodeId child : children_) ctx.send(child, down);
  }

  NodeId root_;
  AggregateOp op_;
  std::uint32_t depth_bits_;
  std::uint32_t value_bits_;
  NodeId parent_ = kNoParent;
  std::vector<NodeId> children_;
  bool adopted_ = false;
  bool sent_up_ = false;
  std::uint64_t rounds_since_adopt_ = 0;
  std::size_t reports_ = 0;
  std::uint64_t partial_;
  std::optional<std::uint64_t> final_;
};

// ---------------------------------------------------------------------
// Pipelined flooding
// ---------------------------------------------------------------------

// Relays one unseen item per round to all neighbours. With k items total
// this completes within O(D + k) rounds (Topkis-style pipelined
// flooding). Items are relayed verbatim; dedup keys on field contents.
class FloodProgram final : public NodeProgram {
 public:
  explicit FloodProgram(std::vector<FloodItem> initial) {
    for (FloodItem& item : initial) learn(item);
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) learn(in.msg);
    if (!queue_.empty()) {
      ctx.broadcast(queue_.front());
      queue_.pop_front();
    }
  }

  bool done() const override { return queue_.empty(); }

  std::vector<FloodItem> known_sorted() const {
    std::vector<FloodItem> out;
    out.reserve(known_.size());
    for (const auto& [key, item] : known_) out.push_back(item);
    return out;
  }

 private:
  // Every delivered copy of every item lands here (Theta(m * items)
  // calls per flood), so the duplicate check must not allocate: the
  // key is built in a reused buffer and only genuinely new items pay
  // for a map insertion.
  void learn(const FloodItem& item) {
    key_.resize(item.field_count());
    for (std::size_t i = 0; i < key_.size(); ++i) key_[i] = item.field(i);
    if (known_.find(key_) == known_.end()) {
      known_.emplace(key_, item);
      queue_.push_back(item);
    }
  }

  std::map<std::vector<std::uint64_t>, FloodItem> known_;
  std::deque<FloodItem> queue_;
  std::vector<std::uint64_t> key_;  // reused learn() scratch
};

std::vector<std::uint64_t> flood_key(const Message& m) {
  std::vector<std::uint64_t> key(m.field_count());
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = m.field(i);
  return key;
}

// Relaying dedups by content, so two identical injected payloads would
// silently collapse into one item. Fail loudly at injection instead.
void require_distinct_payloads(
    const std::vector<std::vector<FloodItem>>& initial) {
  std::map<std::vector<std::uint64_t>, NodeId> owner;
  for (NodeId v = 0; v < initial.size(); ++v) {
    for (const FloodItem& item : initial[v]) {
      const auto [it, inserted] = owner.emplace(flood_key(item), v);
      if (!inserted) {
        throw AlgorithmFailure(
            "flood: duplicate payload injected at node " +
            std::to_string(it->second) + " and node " + std::to_string(v) +
            " — flooding dedups by content, so payloads must be globally "
            "distinct (give items an id field)");
      }
    }
  }
}

// ---------------------------------------------------------------------
// Acked flooding (fault-tolerant dissemination)
// ---------------------------------------------------------------------

// Wire format: {type:1}{item fields}. type 0 = data, type 1 = ack
// (echoing the item's fields). Every node keeps, per known item and
// per neighbour, whether that neighbour has acknowledged the item; an
// unacked (item, neighbour) pair is retransmitted after
// timeout << min(attempts, 6) rounds. Receiving data(i) from a
// neighbour both acks i *to* that neighbour and marks the neighbour as
// having i (it clearly does); a retransmission of an already-known item
// is re-acked, which recovers dropped acks. At most one data and one
// ack message per edge per round (the wrapper checks 2·(bits+1) <= B).
// A done node that receives a retransmission is reactivated by the
// engine and re-acks — that is what lets the whole network quiesce.
class ReliableFloodProgram final : public NodeProgram {
 public:
  ReliableFloodProgram(std::vector<FloodItem> initial,
                       std::uint64_t timeout_rounds)
      : timeout_(timeout_rounds) {
    for (FloodItem& item : initial) {
      const auto key = flood_key(item);
      if (index_.emplace(key, items_.size()).second) {
        items_.push_back(ItemState{std::move(item), {}, {}, {}});
      }
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    const std::size_t degree = ctx.neighbors().size();
    if (!init_) {
      init_ = true;
      ack_queue_.resize(degree);
      for (ItemState& st : items_) init_slots(st, degree);
    }

    for (const Incoming& in : inbox) {
      const std::uint32_t slot = ctx.neighbor_slot(in.from);
      const std::uint64_t type = in.msg.field(0);
      Message payload;
      for (std::size_t i = 1; i < in.msg.field_count(); ++i) {
        payload.push(in.msg.field(i), in.msg.field_width(i));
      }
      const auto key = flood_key(payload);
      if (type == 0) {
        // data: learn if new, always (re-)ack, and note the sender has it.
        auto it = index_.find(key);
        if (it == index_.end()) {
          it = index_.emplace(key, items_.size()).first;
          items_.push_back(ItemState{std::move(payload), {}, {}, {}});
          init_slots(items_.back(), degree);
        }
        ItemState& st = items_[it->second];
        st.acked[slot] = 1;
        ack_queue_[slot].push_back(it->second);
      } else {
        // ack: the neighbour confirmed receipt. A corrupted ack may name
        // an item we never sent — ignore it; the retry path recovers.
        const auto it = index_.find(key);
        if (it != index_.end()) items_[it->second].acked[slot] = 1;
      }
    }

    // Per neighbour: at most one ack and one data retransmission.
    const std::uint64_t now = ctx.round();
    for (std::uint32_t s = 0; s < degree; ++s) {
      if (!ack_queue_[s].empty()) {
        const std::size_t idx = ack_queue_[s].front();
        ack_queue_[s].pop_front();
        ctx.send_to_slot(s, with_type(items_[idx].item, 1));
      }
      for (std::size_t idx = 0; idx < items_.size(); ++idx) {
        ItemState& st = items_[idx];
        if (st.acked[s] != 0 || st.next_retry[s] > now) continue;
        ctx.send_to_slot(s, with_type(st.item, 0));
        st.next_retry[s] =
            now + (timeout_ << std::min<std::uint32_t>(st.attempts[s], 6));
        ++st.attempts[s];
        break;
      }
    }
  }

  bool done() const override {
    if (!init_) return false;
    for (const auto& q : ack_queue_) {
      if (!q.empty()) return false;
    }
    for (const ItemState& st : items_) {
      for (const char a : st.acked) {
        if (a == 0) return false;
      }
    }
    return true;
  }

  std::vector<FloodItem> known_sorted() const {
    std::vector<FloodItem> out;
    out.reserve(index_.size());
    for (const auto& [key, idx] : index_) out.push_back(items_[idx].item);
    return out;
  }

 private:
  struct ItemState {
    FloodItem item;
    std::vector<char> acked;               ///< per neighbour slot
    std::vector<std::uint64_t> next_retry; ///< round of next send
    std::vector<std::uint32_t> attempts;   ///< backoff exponent
  };

  static void init_slots(ItemState& st, std::size_t degree) {
    st.acked.assign(degree, 0);
    st.next_retry.assign(degree, 0);
    st.attempts.assign(degree, 0);
  }

  static Message with_type(const FloodItem& item, std::uint64_t type) {
    Message m;
    m.push(type, 1);
    for (std::size_t i = 0; i < item.field_count(); ++i) {
      m.push(item.field(i), item.field_width(i));
    }
    return m;
  }

  std::uint64_t timeout_;
  bool init_ = false;
  std::map<std::vector<std::uint64_t>, std::size_t> index_;
  std::vector<ItemState> items_;  ///< insertion order (= retry priority)
  std::vector<std::deque<std::size_t>> ack_queue_;  ///< per neighbour slot
};

// ---------------------------------------------------------------------
// Leader election (min-id flooding, fixed horizon)
// ---------------------------------------------------------------------
class ElectionProgram final : public NodeProgram {
 public:
  ElectionProgram(std::uint64_t horizon, std::uint32_t id_bits)
      : horizon_(horizon), id_bits_(id_bits) {}

  void on_start(NodeContext& ctx) override {
    best_ = ctx.id();
    Message m;
    m.push(best_, id_bits_);
    ctx.broadcast(m);
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    bool improved = false;
    for (const Incoming& in : inbox) {
      const auto cand = static_cast<NodeId>(in.msg.field(0));
      if (cand < best_) {
        best_ = cand;
        improved = true;
      }
    }
    if (improved && round_ + 1 < horizon_) {
      Message m;
      m.push(best_, id_bits_);
      ctx.broadcast(m);
    }
    ++round_;
  }

  bool done() const override { return round_ >= horizon_; }

  NodeId leader() const { return best_; }

 private:
  std::uint64_t horizon_;
  std::uint32_t id_bits_;
  NodeId best_ = 0;
  std::uint64_t round_ = 0;
};

}  // namespace

ElectionResult elect_leader(const WeightedGraph& g, std::uint64_t horizon,
                            Config config) {
  QC_REQUIRE(horizon >= 1, "election horizon must be >= 1");
  QC_REQUIRE(g.is_connected(), "election needs a connected network");
  const std::uint32_t id_bits = bits_for(g.node_count());
  auto run = run_on_all<ElectionProgram>(
      g,
      [&](NodeId) {
        return std::make_unique<ElectionProgram>(horizon, id_bits);
      },
      config);
  ElectionResult out;
  out.stats = run.stats;
  out.leader = run.at(0).leader();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    QC_CHECK(run.at(v).leader() == out.leader,
             "election did not converge — horizon below the diameter?");
  }
  return out;
}

BfsTreeResult build_bfs_tree(const WeightedGraph& g, NodeId root,
                             Config config) {
  QC_REQUIRE(root < g.node_count(), "root out of range");
  QC_REQUIRE(g.is_connected(), "BFS tree needs a connected network");
  const std::uint32_t depth_bits = bits_for(g.node_count());
  // Liveness horizon: any reachable node is announced within D < n
  // rounds, so 2n + 2 never fires fault-free but bounds a build whose
  // frontier was destroyed by crash-stop or link-down faults.
  const std::uint64_t horizon = 2 * std::uint64_t{g.node_count()} + 2;
  auto run = run_on_all<BfsTreeProgram>(
      g,
      [&](NodeId) {
        return std::make_unique<BfsTreeProgram>(root, depth_bits, horizon);
      },
      config);
  BfsTreeResult out;
  out.stats = run.stats;
  out.outcome = run.outcome;
  out.nodes.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.nodes.push_back(run.at(v).result());
    if (out.nodes.back().depth == kInfDist) out.unreached.push_back(v);
  }
  if (!out.unreached.empty()) {
    out.outcome.completed = false;
    out.outcome.diagnostic =
        "BFS tree incomplete: " + std::to_string(out.unreached.size()) +
        " of " + std::to_string(g.node_count()) +
        " nodes unreached (crashed nodes: " +
        std::to_string(out.outcome.faults.crashed_nodes) +
        ", deliveries lost to crashes: " +
        std::to_string(out.outcome.faults.crash_drops) +
        ", to link-down: " +
        std::to_string(out.outcome.faults.link_down_drops) + ")";
  }
  return out;
}

AggregateResult global_aggregate(const WeightedGraph& g, NodeId root,
                                 const std::vector<std::uint64_t>& inputs,
                                 AggregateOp op, std::uint32_t value_bits,
                                 Config config) {
  QC_REQUIRE(root < g.node_count(), "root out of range");
  QC_REQUIRE(inputs.size() == g.node_count(), "one input per node");
  QC_REQUIRE(g.is_connected(), "aggregate needs a connected network");
  const std::uint32_t depth_bits = bits_for(g.node_count());
  auto run = run_on_all<AggregateProgram>(
      g,
      [&](NodeId v) {
        return std::make_unique<AggregateProgram>(root, inputs[v], op,
                                                  depth_bits, value_bits);
      },
      config);
  AggregateResult out;
  out.stats = run.stats;
  out.value = run.at(root).value();
  // Sanity: every node must have learned the same value.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    QC_CHECK(run.at(v).value() == out.value,
             "aggregate disseminated inconsistently");
  }
  return out;
}

FloodResult flood_items(const WeightedGraph& g,
                        std::vector<std::vector<FloodItem>> initial,
                        Config config, FloodCollect collect) {
  QC_REQUIRE(initial.size() == g.node_count(), "one item list per node");
  QC_REQUIRE(g.is_connected(), "flooding needs a connected network");
  require_distinct_payloads(initial);
  const std::uint32_t bandwidth = config.bandwidth_bits != 0
                                      ? config.bandwidth_bits
                                      : default_bandwidth(g.node_count());
  for (const auto& items : initial) {
    for (const FloodItem& item : items) {
      QC_REQUIRE(item.bit_size() <= bandwidth,
                 "flood item does not fit in one CONGEST message");
    }
  }
  auto run = run_on_all<FloodProgram>(
      g,
      [&](NodeId v) { return std::make_unique<FloodProgram>(std::move(initial[v])); },
      config);
  FloodResult out;
  out.stats = run.stats;
  const NodeId read_out = collect == FloodCollect::kAllNodes ? g.node_count()
                          : collect == FloodCollect::kFirstNode
                              ? std::min<NodeId>(1, g.node_count())
                              : 0;
  out.items_at.reserve(read_out);
  for (NodeId v = 0; v < read_out; ++v) {
    out.items_at.push_back(run.at(v).known_sorted());
  }
  return out;
}

ReliableFloodResult flood_items_reliable(
    const WeightedGraph& g, std::vector<std::vector<FloodItem>> initial,
    std::uint64_t timeout_rounds, Config config) {
  QC_REQUIRE(initial.size() == g.node_count(), "one item list per node");
  QC_REQUIRE(g.is_connected(), "flooding needs a connected network");
  QC_REQUIRE(timeout_rounds >= 1, "retry timeout must be >= 1 round");
  require_distinct_payloads(initial);
  const std::uint32_t bandwidth = config.bandwidth_bits != 0
                                      ? config.bandwidth_bits
                                      : default_bandwidth(g.node_count());
  for (const auto& items : initial) {
    for (const FloodItem& item : items) {
      // One data + one ack message may share an edge in a round, each
      // carrying the item plus a 1-bit type tag.
      QC_REQUIRE(2 * (item.bit_size() + 1) <= bandwidth,
                 "acked flood item does not fit: need 2*(bits+1) <= B for "
                 "a data and an ack message per edge per round");
    }
  }
  auto run = run_on_all<ReliableFloodProgram>(
      g,
      [&](NodeId v) {
        return std::make_unique<ReliableFloodProgram>(std::move(initial[v]),
                                                      timeout_rounds);
      },
      config);
  ReliableFloodResult out;
  out.outcome = run.outcome;
  out.items_at.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.items_at.push_back(run.at(v).known_sorted());
  }
  return out;
}

}  // namespace qc::congest
