#include "congest/faults.h"

#include <algorithm>

namespace qc::congest {

namespace {

// splitmix64 finalizer — the same mixing the library's Rng seeds with.
// Used here as a counter-based hash: every fault decision is a pure
// function of its key, which is what makes plans scheduling-independent.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_key(std::uint64_t seed, std::uint64_t round,
                       std::uint64_t edge, std::uint64_t ordinal,
                       std::uint64_t cls) {
  std::uint64_t h = mix64(seed ^ 0x6a09e667f3bcc909ULL);
  h = mix64(h ^ round);
  h = mix64(h ^ edge);
  h = mix64(h ^ ordinal);
  h = mix64(h ^ cls);
  return h;
}

// Top 53 bits → uniform double in [0, 1).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

enum Cls : std::uint64_t {
  kClsDrop = 1,
  kClsDuplicate = 2,
  kClsDelay = 3,
  kClsCorrupt = 4,
  kClsEntropy = 5,
};

}  // namespace

bool link_down_in(const std::vector<LinkDownInterval>& intervals,
                  std::uint64_t round, NodeId from, NodeId to) {
  for (const LinkDownInterval& iv : intervals) {
    if (round < iv.first_round || round > iv.last_round) continue;
    if (iv.a == from && iv.b == to) return true;
    if (iv.symmetric && iv.a == to && iv.b == from) return true;
  }
  return false;
}

FaultEngine::FaultEngine(const FaultPlan& plan, const EdgeSlotIndex& slots,
                         NodeId n, std::uint64_t engine_seed)
    : seed_(plan.seed != 0 ? plan.seed : mix64(engine_seed ^ 0xfau)),
      probs_(plan.probabilities),
      link_down_(plan.link_down),
      crash_round_(n, kNeverCrashes) {
  const auto check_prob = [](double p, const char* name) {
    QC_REQUIRE(p >= 0.0 && p <= 1.0,
               std::string("fault probability out of [0, 1]: ") + name);
  };
  check_prob(probs_.drop, "drop");
  check_prob(probs_.duplicate, "duplicate");
  check_prob(probs_.delay, "delay");
  check_prob(probs_.corrupt, "corrupt");
  QC_REQUIRE(probs_.delay_rounds >= 1,
             "probabilistic delay_rounds must be >= 1");

  for (const FaultEvent& e : plan.events) {
    QC_REQUIRE(e.from < n && e.to < n, "fault event node out of range");
    QC_REQUIRE(slots.slot(e.from, e.to) != EdgeSlotIndex::kNoSlot,
               "fault event names a non-edge " + std::to_string(e.from) +
                   "->" + std::to_string(e.to));
    if (e.kind == FaultKind::kDelay) {
      QC_REQUIRE(e.delay_rounds >= 1, "fault event delay_rounds must be >= 1");
    }
    events_[e.round].push_back(e);
  }
  for (const LinkDownInterval& iv : link_down_) {
    QC_REQUIRE(iv.a < n && iv.b < n, "link-down node out of range");
    QC_REQUIRE(slots.slot(iv.a, iv.b) != EdgeSlotIndex::kNoSlot,
               "link-down interval names a non-edge " + std::to_string(iv.a) +
                   "->" + std::to_string(iv.b));
    QC_REQUIRE(iv.first_round <= iv.last_round,
               "link-down interval is empty (first_round > last_round)");
  }
  for (const CrashEvent& c : plan.crashes) {
    QC_REQUIRE(c.node < n, "crash event node out of range");
    crash_round_[c.node] = std::min(crash_round_[c.node], c.round);
  }
}

const FaultEvent* FaultEngine::find_event(std::uint64_t delivery_round,
                                          NodeId from, NodeId to,
                                          std::uint32_t ordinal) const {
  return find_in(events_for_round(delivery_round), from, to, ordinal);
}

const std::vector<FaultEvent>* FaultEngine::events_for_round(
    std::uint64_t delivery_round) const {
  const auto it = events_.find(delivery_round);
  return it == events_.end() ? nullptr : &it->second;
}

const FaultEvent* FaultEngine::find_in(const std::vector<FaultEvent>* bucket,
                                       NodeId from, NodeId to,
                                       std::uint32_t ordinal) {
  if (bucket == nullptr) return nullptr;
  for (const FaultEvent& e : *bucket) {
    if (e.from == from && e.to == to && e.slot == ordinal) return &e;
  }
  return nullptr;
}

FaultEngine::Decision FaultEngine::decide(std::uint64_t delivery_round,
                                          NodeId from, NodeId to,
                                          std::size_t edge,
                                          std::uint32_t ordinal) const {
  return decide(delivery_round, from, to, edge, ordinal,
                events_for_round(delivery_round));
}

FaultEngine::Decision FaultEngine::decide(
    std::uint64_t delivery_round, NodeId from, NodeId to, std::size_t edge,
    std::uint32_t ordinal, const std::vector<FaultEvent>* round_events) const {
  Decision d;
  if (const FaultEvent* e = find_in(round_events, from, to, ordinal)) {
    switch (e->kind) {
      case FaultKind::kDrop:
        d.drop = true;
        break;
      case FaultKind::kDuplicate:
        d.duplicate = true;
        break;
      case FaultKind::kDelay:
        d.delay = e->delay_rounds;
        break;
      case FaultKind::kCorrupt:
        d.corrupt = true;
        d.corrupt_explicit = true;
        d.corrupt_field = e->corrupt_field;
        d.corrupt_mask = e->corrupt_mask;
        break;
    }
    return d;
  }
  if (!probs_.any()) return d;
  // Priority drop > duplicate > delay > corrupt; each class draws its
  // own hash so enabling one class never perturbs another's stream.
  if (probs_.drop > 0.0 &&
      to_unit(hash_key(seed_, delivery_round, edge, ordinal, kClsDrop)) <
          probs_.drop) {
    d.drop = true;
    return d;
  }
  if (probs_.duplicate > 0.0 &&
      to_unit(hash_key(seed_, delivery_round, edge, ordinal, kClsDuplicate)) <
          probs_.duplicate) {
    d.duplicate = true;
    return d;
  }
  if (probs_.delay > 0.0 &&
      to_unit(hash_key(seed_, delivery_round, edge, ordinal, kClsDelay)) <
          probs_.delay) {
    d.delay = probs_.delay_rounds;
    return d;
  }
  if (probs_.corrupt > 0.0 &&
      to_unit(hash_key(seed_, delivery_round, edge, ordinal, kClsCorrupt)) <
          probs_.corrupt) {
    d.corrupt = true;
    d.entropy = hash_key(seed_, delivery_round, edge, ordinal, kClsEntropy);
  }
  return d;
}

bool FaultEngine::link_down(std::uint64_t delivery_round, NodeId from,
                            NodeId to) const {
  return link_down_in(link_down_, delivery_round, from, to);
}

Message FaultEngine::corrupted_copy(const Message& m, const Decision& d) {
  const std::size_t fields = m.field_count();
  if (fields == 0) return m;
  std::size_t target;
  std::uint64_t mask;
  if (d.corrupt_explicit) {
    target = std::min<std::size_t>(d.corrupt_field, fields - 1);
    mask = d.corrupt_mask;
  } else {
    target = static_cast<std::size_t>(d.entropy % fields);
    mask = std::uint64_t{1} << ((d.entropy >> 32) % m.field_width(target));
  }
  const std::uint32_t width = m.field_width(target);
  if (width < 64) mask &= (std::uint64_t{1} << width) - 1;
  if (mask == 0) mask = 1;  // a corruption event must change something
  Message out;
  for (std::size_t i = 0; i < fields; ++i) {
    const std::uint64_t v =
        i == target ? (m.field(i) ^ mask) : m.field(i);
    out.push(v, m.field_width(i));
  }
  return out;
}

}  // namespace qc::congest
