// Resident query service over warm graph artifacts.
//
// Every driver before this subsystem was batch-shaped: build a graph,
// run one algorithm, print, exit — so each invocation re-paid CSR
// construction, eccentricity tables, and the toolkit's first-level
// d̃^ℓ rows. The `QueryEngine` inverts that: it loads N named graphs
// once, keeps the derived artifacts (CsrGraph, EdgeSlotIndex,
// eccentricity tables, `paths::ToolkitCache`) resident, and answers
// diameter / radius / eccentricity / SSSP / approximate-distance
// queries from many concurrent clients against the warm state.
//
// Three load-bearing properties (tests/test_service.cpp pins each):
//
//  * Determinism. A query's result is a pure function of
//    (graph, type, operands, seed). Admission order, batching, worker
//    count, and client concurrency never change any result — warm
//    tables are built by deterministic pooled algorithms (PR 2's
//    contract), seeds come from `Query::seed` (never from threads or
//    arrival time), and result slots are index-ordered.
//
//  * Admission control. At most `EngineOptions::max_in_flight` admitted
//    queries exist at once; `submit` past that throws `AdmissionError`
//    immediately instead of queueing unboundedly. Once admitted, a
//    query is always answered — shutdown drains the queue.
//
//  * Batching. The dispatcher drains up to `max_batch` queued queries
//    at a time and groups compatible ones — same graph, same type — so
//    a handler sees the whole group in one `run_batch` call and can
//    coalesce work: the SSSP handler fans sources across the qc_pool
//    pool, the approx-distance handler prefetches the union of first-
//    level rows before answering any member.
//
// Dispatch is a registry: `register_handler` adds a new query type
// without touching the engine core (the unweighted-diameter
// specialization and the Theorem 1.1 drivers register exactly this
// way — see register_unweighted_handlers / register_theorem11_handlers).
//
// Mutations ride the same registry: the built-in "update" type batches
// edge insert/remove/reweight ops through `GraphContext::apply_update`,
// which patches the warm artifacts delta-aware (CSR overlay, slot-index
// row repair, toolkit row invalidation, eccentricity-table delta
// repair) instead of discarding them. Ordering against reads is a
// per-graph reader/writer lock: handlers whose `mutating()` returns
// true run under the exclusive side, everything else shares — so reads
// never observe a half-applied batch, and a graph's queries serialize
// against its updates without stalling other graphs.
//
// Threading rules for handlers: `run_batch` always executes on a
// client or dispatcher thread, never on a pool worker, so handlers may
// (and do) run warm-table builds and `runtime::parallel_for` directly.
// Handlers must not keep per-call mutable state on `this` — one handler
// instance serves concurrent `query()` callers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "runtime/thread_pool.h"
#include "util/mathx.h"

namespace qc::runtime {
class MetricsRegistry;  // runtime/metrics.h
}

namespace qc::paths {
class ToolkitCache;  // paths/reference.h
struct Params;       // paths/params.h
}  // namespace qc::paths

namespace qc::service {

/// Thrown by `submit` when admission control refuses a query: the
/// engine is saturated (`max_in_flight` admitted queries outstanding)
/// or shutting down. The query was *not* enqueued; retrying later is
/// safe. Distinct from ArgumentError so clients can treat backpressure
/// differently from malformed requests.
class AdmissionError : public std::runtime_error {
 public:
  explicit AdmissionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One request. `type` selects the handler; the operand fields mean
/// whatever the handler documents (see docs/service.md for the
/// built-ins: `node` is the SSSP/eccentricity source and the
/// approx-distance s, `target` the approx-distance t, `seed` feeds the
/// randomized Theorem 1.1 handlers, and the "update" type reads `op` /
/// `node` / `target` / `weight` as one edge mutation). `id` is opaque
/// to the engine and echoed into the result so clients can match
/// responses to requests.
struct Query {
  std::uint64_t id = 0;
  std::string graph;  ///< named graph; "" = the engine's only graph
  std::string type;   ///< handler key, e.g. "diameter", "sssp"
  NodeId node = 0;
  NodeId target = 0;
  std::uint64_t seed = 1;
  std::string op;     ///< "update" sub-op: "insert" | "remove" | "reweight"
  Weight weight = 1;  ///< "update" weight operand (insert/reweight)
};

/// One answer. Exactly one of {ok, error} is meaningful; `value` is the
/// scalar answer in `scale`-scaled fixed-point units (scale == 1 for
/// the exact handlers), `dist` is the per-node vector for SSSP-shaped
/// queries. Defaulted equality is what the determinism tests compare —
/// every field is part of the contract.
struct QueryResult {
  std::uint64_t id = 0;
  std::string type;
  bool ok = false;
  std::string error;
  Dist value = 0;
  std::uint64_t scale = 1;     ///< fixed-point scale of value (σ·σ″ etc.)
  std::vector<Dist> dist;      ///< per-node payload (SSSP), else empty

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

/// One loaded graph plus its lazily-built warm artifacts. Accessors
/// build on first use (guarded by a warm mutex — concurrent queries pay
/// for each table exactly once) and return references that stay valid
/// until the next `apply_update` on this context. Mutations go through
/// `apply_update` exclusively, under the engine's per-graph writer
/// lock, so readers never observe a half-repaired table.
/// The toolkit accessors require a connected graph (ArgumentError
/// otherwise), mirroring the Theorem 1.1 preconditions.
class GraphContext {
 public:
  /// The toolkit overrides are threaded into core::derive_params for
  /// the resident ToolkitCache (and must be mirrored by every handler
  /// that derives its own Params — the Theorem 1.1 handlers do). 0 =
  /// the paper defaults.
  GraphContext(std::string name, WeightedGraph g,
               std::uint32_t toolkit_eps_inv = 0,
               std::uint64_t toolkit_r_override = 0);

  /// Mapped-residency variant: serves reads straight from a read-only
  /// memory-mapped bcsr view (`view.is_mapped()` must hold; the
  /// shared_ptr keep-alive inside the view pins the mapping, so N
  /// contexts constructed from copies of one view share a single
  /// mapping and its page cache). No owned WeightedGraph exists until
  /// a handler needs one: `weighted_graph()` materializes lazily (the
  /// toolkit / Theorem 1.1 path), and the first "update" performs the
  /// copy-on-write detach — see apply_update. `source_path` is
  /// reporting-only (the serve driver's residency summary).
  GraphContext(std::string name, CsrGraph view, std::string source_path,
               std::uint32_t toolkit_eps_inv = 0,
               std::uint64_t toolkit_r_override = 0);
  ~GraphContext();

  GraphContext(const GraphContext&) = delete;
  GraphContext& operator=(const GraphContext&) = delete;

  const std::string& name() const { return name_; }

  /// The owned WeightedGraph. On a mapped context this is empty until
  /// `weighted_graph()` or an update materializes it — handlers should
  /// read through `csr()` / `node_count()` / `edge_count()`, which
  /// serve either storage mode.
  const WeightedGraph& graph() const { return g_; }

  /// The adjacency every read handler uses: the mapped read-only view
  /// while one is live, the owned graph's lazily-built CSR otherwise.
  /// Callers must hold state_mutex() (shared side suffices) — the
  /// engine's handler paths do.
  const CsrGraph& csr() const;

  NodeId node_count() const;
  std::size_t edge_count() const;

  /// Owned WeightedGraph, materializing it from the mapped view on
  /// first call (the toolkit and Theorem 1.1 handlers need adjacency
  /// rows, not just CSR spans). Materialization keeps the mapped view
  /// alive for `csr()` reads — only an update detaches it.
  const WeightedGraph& weighted_graph();

  /// True while reads are served from the mapped bcsr view (i.e. the
  /// copy-on-write detach has not happened).
  bool is_mapped() const { return mapped_ != nullptr; }
  /// Identity / liveness of the underlying mapping (nullptr / 0 when
  /// not mapped): equal addresses across contexts prove they share one
  /// mapping.
  const void* mapping_address() const;
  long mapping_use_count() const;
  /// The bcsr file this context was mapped from ("" for owned graphs).
  const std::string& source_path() const { return source_path_; }

  /// Connectivity. Owned mode defers to the graph's cached verdict;
  /// mapped mode runs one DFS over the view on first call and caches
  /// the answer (invalidated by the detach, which re-derives it from
  /// the owned graph).
  bool connected() const;

  std::uint32_t toolkit_eps_inv() const { return toolkit_eps_inv_; }
  std::uint64_t toolkit_r_override() const { return toolkit_r_override_; }

  /// Per-graph reader/writer lock ordering queries against updates:
  /// the engine runs non-mutating handlers under the shared side and
  /// mutating ones under the exclusive side.
  std::shared_mutex& state_mutex() const { return state_mutex_; }

  /// Weighted eccentricity table (pooled Dijkstra sweep on first use).
  const std::vector<Dist>& weighted_eccentricities(runtime::ThreadPool& pool);

  /// Hop eccentricity table (pooled BFS sweep on first use) — the
  /// unweighted specialization's warm state.
  const std::vector<Dist>& hop_eccentricities(runtime::ThreadPool& pool);

  /// Resident first-level row cache, built on first use with
  /// core::derive_params(g) under this context's toolkit overrides —
  /// the same Params a Theorem 1.1 run with those overrides derives,
  /// so the cache can be handed to `Theorem11Options::toolkit` as-is.
  paths::ToolkitCache& toolkit();
  const paths::Params& toolkit_params();

  /// What one `apply_update` did to the warm state (diagnostics; the
  /// dynamic-update tests and bench read these to prove the delta
  /// paths actually ran).
  struct UpdateOutcome {
    UpdateStats stats;                      ///< graph-layer effects
    std::size_t changed_edges = 0;          ///< net edges whose state changed
    std::size_t ecc_rows_recomputed = 0;    ///< weighted table rows redone
    std::size_t hop_rows_recomputed = 0;    ///< hop table rows redone
    std::size_t toolkit_rows_dropped = 0;   ///< Lemma-invalidated d̃^ℓ rows
    bool toolkit_rebuilt = false;           ///< params identity changed
    bool scratch = false;                   ///< rebuild-from-scratch path ran
  };

  // On a mapped context, apply_update first performs the copy-on-write
  // detach — materialize the owned graph from the view, then drop the
  // view — exactly once per context (later updates find owned storage),
  // reporting it via UpdateStats::mapped_detached in the outcome.

  /// Applies an edge batch and repairs the warm artifacts. With
  /// `incremental` the CSR/slot-index are patched (WeightedGraph::apply
  /// kIncremental), toolkit rows are invalidated per the endpoint
  /// certificate (paths::ToolkitCache::invalidate_rows) after a
  /// rebind_params, and the eccentricity tables are delta-repaired: a
  /// source u's distance vector can only change if some changed edge
  /// lies on a shortest path from u in the old or the new graph, which
  /// 2·|endpoints| endpoint Dijkstras/BFS certify exactly — only the
  /// affected sources re-run. Without `incremental` (or when the batch
  /// disconnects the graph) every warm artifact is discarded instead.
  /// Validation is atomic: an ArgumentError propagates with the graph
  /// and all warm state untouched. Callers must hold the exclusive
  /// side of state_mutex() (the engine's update handler does).
  UpdateOutcome apply_update(const GraphUpdate& update,
                             runtime::ThreadPool& pool, bool incremental);

  /// Which warm artifacts exist right now (reporting only — the serve
  /// driver's startup summary).
  struct WarmState {
    bool csr = false;
    bool connectivity = false;
    bool weighted_ecc = false;
    bool hop_ecc = false;
    std::size_t toolkit_rows = 0;  ///< cached d̃^ℓ rows (0 = no cache yet)
    bool mapped = false;           ///< reads served from the bcsr mapping
    bool materialized = false;     ///< owned WeightedGraph exists
  };
  WarmState warm_state() const;

 private:
  /// core::derive_params(g_) with this context's overrides applied.
  /// Defined in the .cpp (needs core/theorem11.h).
  paths::Params derive_toolkit_params() const;

  /// Builds g_ from the mapped view if it does not exist yet. Caller
  /// holds warm_mutex_.
  void materialize_locked();

  std::string name_;
  WeightedGraph g_;
  /// Mapped storage mode: the read-only bcsr view (null once detached
  /// or for owned contexts). Mutated only under the exclusive side of
  /// state_mutex() plus warm_mutex_ (apply_update's detach).
  std::unique_ptr<CsrGraph> mapped_;
  std::string source_path_;
  /// Whether g_ holds the graph (always for owned contexts; false on a
  /// mapped context until weighted_graph() / the detach).
  bool g_materialized_ = true;
  /// Mapped-mode connectivity cache: -1 unknown, else 0/1. Guarded by
  /// warm_mutex_.
  mutable int mapped_connected_ = -1;
  std::uint32_t toolkit_eps_inv_ = 0;
  std::uint64_t toolkit_r_override_ = 0;
  mutable std::shared_mutex state_mutex_;
  /// Guards lazy builds below (once_flag cannot be reset, and
  /// apply_update legitimately re-arms the builds).
  mutable std::mutex warm_mutex_;
  bool ecc_valid_ = false;
  bool hop_ecc_valid_ = false;
  std::vector<Dist> ecc_;
  std::vector<Dist> hop_ecc_;
  std::unique_ptr<paths::ToolkitCache> toolkit_;
};

/// Everything a handler needs to answer a group of queries.
struct QueryContext {
  GraphContext& graph;
  runtime::ThreadPool& pool;
  /// EngineOptions::incremental_updates, threaded through so the
  /// update handler (and the bench's scratch-baseline engine) picks
  /// the cache-maintenance policy per engine, not per query.
  bool incremental_updates = true;
};

/// One query type. `run_batch` receives every query of a compatible
/// group (same graph, same type, batch order) and must fill
/// `results[i]` for `queries[i]` — set `ok`/payload or `ok = false`
/// with `error`; the engine stamps `id` and `type` afterwards, so
/// handlers cannot mismatch them. Throwing fails the whole group with
/// the exception text (fine for preconditions that hold for all
/// members, e.g. "graph is not connected").
class QueryHandler {
 public:
  virtual ~QueryHandler() = default;

  /// The registry key this handler serves (stable, lowercase).
  virtual std::string type() const = 0;

  /// True for handlers that mutate the graph or its warm artifacts.
  /// The engine runs mutating groups under the exclusive side of the
  /// graph's state_mutex() (readers share), so a mutating handler owns
  /// the graph for the whole batch.
  virtual bool mutating() const { return false; }

  virtual void run_batch(QueryContext& ctx, std::span<const Query> queries,
                         std::span<QueryResult> results) = 0;
};

struct EngineOptions {
  /// Workers of the engine-owned qc_pool pool (0 = hardware
  /// concurrency). Results are byte-identical at any value.
  unsigned workers = 0;
  /// Admission bound: maximum admitted-but-unanswered queries. submit
  /// beyond it throws AdmissionError.
  std::size_t max_in_flight = 1024;
  /// Maximum queries one dispatch drains and groups together.
  std::size_t max_batch = 64;
  /// Run the background dispatcher thread. Off = the owner pumps the
  /// queue via drain() (the deterministic-batching tests do this to
  /// control grouping exactly).
  bool auto_dispatch = true;
  /// Optional run-report sink (borrowed; must outlive the engine).
  /// When set, the engine records "service.*" counters and per-type
  /// latency histograms into it — see docs/service.md for the schema.
  runtime::MetricsRegistry* metrics = nullptr;
  /// Cache-maintenance policy for "update" queries: delta-aware repair
  /// of the warm artifacts (default) vs discard-and-rebuild. Answers
  /// are byte-identical either way — the dynamic bench runs one engine
  /// of each and diffs full response transcripts.
  bool incremental_updates = true;
  /// Toolkit parameter overrides applied to every graph this engine
  /// loads (forwarded to GraphContext; 0 = paper defaults). The
  /// dynamic bench uses them to pin a locality-friendly ℓ at large n.
  std::uint32_t toolkit_eps_inv = 0;
  std::uint64_t toolkit_r_override = 0;
};

/// The resident engine. Construction registers the six built-in
/// handlers (diameter, radius, eccentricity, sssp, approx_distance,
/// update); graphs and further handlers are added by the owner, then
/// clients call `query` (synchronous) or `submit`
/// (admission-controlled, batched) from any number of threads.
///
/// Registration (`add_graph`, `register_handler`) is thread-safe but
/// meant for setup: do it before serving traffic, or accept that
/// in-flight queries race against the new entry (they see it or they
/// don't — never a torn state).
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions opt = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Loads a named graph. Throws ArgumentError on an empty or duplicate
  /// name. From here on the graph changes only through "update" queries
  /// (GraphContext::apply_update), which repair the warm artifacts in
  /// step — reads between updates serve from warm state as before.
  GraphContext& add_graph(std::string name, WeightedGraph g);

  /// Loads a named graph as a memory-mapped bcsr view (graph/io.h
  /// `map_csr`). The engine keys mappings by canonical file path: N
  /// specs naming the same file share one mapping (one set of resident
  /// pages), which `GraphContext::mapping_address()` lets callers
  /// verify. Answers are identical to owned-copy loading; the graph
  /// converts to owned storage on its first "update" (copy-on-write
  /// detach, reported in UpdateStats::mapped_detached). Throws
  /// ArgumentError on an empty/duplicate name or an unreadable file.
  GraphContext& add_graph_mapped(std::string name,
                                 const std::string& bcsr_path);

  /// Looks up a loaded graph; "" resolves to the engine's only graph
  /// (nullptr when none or several are loaded — ambiguity is an error
  /// the caller must surface). Unknown names return nullptr.
  GraphContext* find_graph(std::string_view name);

  std::vector<std::string> graph_names() const;

  /// Adds a query type. Throws ArgumentError on an empty or duplicate
  /// type key.
  void register_handler(std::unique_ptr<QueryHandler> handler);

  bool has_handler(std::string_view type) const;
  std::vector<std::string> handler_types() const;

  /// Eagerly builds the warm artifacts of one graph (CSR + slot index +
  /// connectivity always; eccentricity tables and the toolkit cache
  /// when connected) so first queries don't pay construction latency.
  void warm(std::string_view name);
  void warm_all();

  /// Synchronous path: answers on the calling thread against the warm
  /// state, bypassing admission control and batching (the caller *is*
  /// the backpressure). Safe from any number of threads concurrently.
  QueryResult query(const Query& q);

  /// Admission-controlled path: enqueues and returns a future. Throws
  /// AdmissionError when saturated or stopping; otherwise the future is
  /// always eventually fulfilled (errors arrive as ok = false results,
  /// not exceptions). With auto_dispatch the background dispatcher
  /// picks the query up; otherwise call drain().
  std::future<QueryResult> submit(Query q);

  /// Manually dispatches one batch: drains up to max_batch queued
  /// queries, groups by (graph, type), runs each group's handler, and
  /// fulfills the promises. Mutating queries are coalescing barriers
  /// on their graph: grouping never reorders a query across a
  /// same-graph mutating query in either direction, so admission
  /// order is the order reads observe updates in. Returns how many
  /// queries it answered (0 = queue was empty). The
  /// deterministic-batching tests call this with max_batch = 1 vs max
  /// to pin grouping-independence.
  std::size_t drain();

  /// Admitted-but-unanswered queries right now (queued + executing).
  std::size_t in_flight() const;

  unsigned worker_count() const { return pool_.worker_count(); }
  const EngineOptions& options() const { return opt_; }
  runtime::ThreadPool& pool() { return pool_; }

 private:
  struct Pending {
    Query q;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void register_builtin_handlers();
  void dispatch_loop();
  /// Whether `type` is served by a mutating() handler — such queries
  /// are coalescing barriers on their graph (see drain()).
  bool is_mutating_type(std::string_view type) const;
  /// Runs one already-grouped batch (same graph, same type) and writes
  /// results; never throws (handler exceptions become error results).
  void execute_group(std::span<const Query> queries,
                     std::span<QueryResult> results);
  void record_query_metrics(const Query& q, const QueryResult& r,
                            double seconds);

  EngineOptions opt_;
  runtime::ThreadPool pool_;

  mutable std::mutex registry_mutex_;
  std::map<std::string, std::unique_ptr<GraphContext>, std::less<>> graphs_;
  std::map<std::string, std::unique_ptr<QueryHandler>, std::less<>> handlers_;
  /// One mapped view per canonical bcsr path: contexts added via
  /// add_graph_mapped copy from these, so same-file specs share the
  /// mapping (the registry entry also keeps it alive across detaches
  /// of individual contexts — cheap: the view owns no arrays).
  std::map<std::string, CsrGraph, std::less<>> mapped_files_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> pending_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::optional<std::thread> dispatcher_;  // last member: started in ctor
};

/// The bucket layout of every "service.latency_seconds.<type>"
/// histogram the engine records (1µs to ~33s in powers of two).
/// Callers reading quantiles out of the shared registry pass this to
/// `MetricsRegistry::histogram` so lookup never conflicts with the
/// engine's registration.
std::vector<double> latency_histogram_bounds();

/// Registers the unweighted specialization as extension query types —
/// "unweighted_diameter" and "unweighted_eccentricity" answer from the
/// hop-eccentricity warm table (the Õ(√(nD)) Le Gall–Magniez setting's
/// exact baseline). Exists to demonstrate that a specialization plugs
/// into the registry without touching the engine core.
void register_unweighted_handlers(QueryEngine& engine);

/// Registers the Theorem 1.1 drivers as query types — "t11_diameter"
/// and "t11_radius" run the full quantum estimate with Query::seed,
/// handing the context's resident ToolkitCache to
/// `Theorem11Options::toolkit` so repeated estimates on one graph share
/// first-level rows instead of rebuilding them per run.
void register_theorem11_handlers(QueryEngine& engine);

}  // namespace qc::service
