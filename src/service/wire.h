// Line-delimited JSON wire format of the query service.
//
// One request object per line in, one response object per line out —
// the `qcongest_cli serve` driver speaks exactly this over
// stdin/stdout, and `qcongest_cli query` prints a single response.
//
// Request (flat object; unknown keys are rejected so typos fail loud):
//   {"id":7,"graph":"g0","type":"sssp","node":5}
//   {"id":8,"type":"update","op":"reweight","u":3,"v":9,"w":17}
//   keys: "id" (uint, echoed back, default 0), "graph" (string,
//   optional when the engine serves exactly one graph), "type" (string,
//   required), "node" / "source" / "u" (synonyms, uint node id),
//   "target" / "v" (synonyms, uint node id), "seed" (uint, randomized
//   handlers only), "op" (string, update sub-operation
//   insert|remove|reweight), "weight" / "w" (synonyms, uint, update
//   edge weight).
//
// Response:
//   {"id":7,"ok":true,"type":"sssp","value":0,"dist":[0,2,5]}
//   {"id":8,"ok":true,"type":"approx_distance","value":840,"scale":120,
//    "approx":7}
//   {"id":9,"ok":false,"type":"diameter","error":"unknown graph: g9"}
//   Distances at or above kInfDist serialize as the string "inf".
//   Admission rejections add "code":"rejected" (see format_rejection) so
//   clients can distinguish backpressure from request errors and retry.
//
// docs/service.md documents the format alongside the engine semantics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/query_engine.h"

namespace qc::service {

/// Parses one request line. Throws ArgumentError on malformed JSON,
/// unknown keys, non-integer ids, or a missing/empty "type".
Query parse_request(std::string_view line);

/// Serializes a result as one JSON line (no trailing newline). Key
/// order is fixed, so equal results produce byte-identical lines.
std::string format_response(const QueryResult& r);

/// The response emitted when admission control rejects a request
/// outright (the engine never saw it, so there is no QueryResult):
/// {"id":N,"ok":false,"code":"rejected","error":reason}.
std::string format_rejection(std::uint64_t id, std::string_view reason);

}  // namespace qc::service
