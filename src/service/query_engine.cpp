#include "service/query_engine.h"

#include <algorithm>
#include <utility>

#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "paths/params.h"
#include "paths/reference.h"
#include "runtime/metrics.h"
#include "util/error.h"

namespace qc::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void require_connected(const GraphContext& g) {
  QC_REQUIRE(g.connected(),
             "graph '" + g.name() + "' is not connected");
}

void require_node(const GraphContext& g, NodeId v, const char* what) {
  QC_REQUIRE(v < g.graph().node_count(),
             std::string(what) + " out of range for graph '" + g.name() +
                 "' (n=" + std::to_string(g.graph().node_count()) + ")");
}

// ---------------------------------------------------------------------------
// Built-in handlers. All run on the caller/dispatcher thread (never a
// pool worker — see the header's threading rules), so they may trigger
// warm-table builds and fan work out with parallel_for themselves.

/// Scalar answers read off the warm eccentricity tables. One class per
/// reduction keeps each type() key a separate registry entry.
class DiameterHandler final : public QueryHandler {
 public:
  std::string type() const override { return "diameter"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.weighted_eccentricities(ctx.pool);
    const Dist d = *std::max_element(ecc.begin(), ecc.end());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = d;
    }
  }
};

class RadiusHandler final : public QueryHandler {
 public:
  std::string type() const override { return "radius"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.weighted_eccentricities(ctx.pool);
    const Dist r = *std::min_element(ecc.begin(), ecc.end());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = r;
    }
  }
};

class EccentricityHandler final : public QueryHandler {
 public:
  std::string type() const override { return "eccentricity"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.weighted_eccentricities(ctx.pool);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      require_node(ctx.graph, queries[i].node, "eccentricity node");
      results[i].ok = true;
      results[i].value = ecc[queries[i].node];
    }
  }
};

/// Full single-source distance vectors. The batched shape is what pays:
/// sources fan out across the pool with one Dijkstra each, slot i of
/// the result span belonging to query i regardless of execution order.
class SsspHandler final : public QueryHandler {
 public:
  std::string type() const override { return "sssp"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    for (const Query& q : queries) {
      require_node(ctx.graph, q.node, "sssp node");
      require_node(ctx.graph, q.target, "sssp target");
    }
    const CsrGraph& csr = ctx.graph.graph().csr();  // warm on this thread
    runtime::parallel_for(ctx.pool, queries.size(), [&](std::size_t i) {
      DijkstraWorkspace ws;
      ws.dijkstra(csr, queries[i].node, results[i].dist);
      results[i].ok = true;
      results[i].value = results[i].dist[queries[i].target];
    });
  }
};

/// Lemma 3.2 approximate distances d̃^ℓ(node, target) from the resident
/// ToolkitCache. Coalescing shape: prefetch the union of source rows
/// with one pooled ensure_rows, then answer every member from cache.
/// Values are σ-scaled; kInfDist means Lemma 3.2 certifies no bound at
/// this ℓ (the pair is farther than the (1+2/ε)·ℓ eligibility cap).
class ApproxDistanceHandler final : public QueryHandler {
 public:
  std::string type() const override { return "approx_distance"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    std::vector<NodeId> sources;
    sources.reserve(queries.size());
    for (const Query& q : queries) {
      require_node(ctx.graph, q.node, "approx_distance node");
      require_node(ctx.graph, q.target, "approx_distance target");
      sources.push_back(q.node);
    }
    paths::ToolkitCache& cache = ctx.graph.toolkit();
    cache.ensure_rows(sources, &ctx.pool);
    const std::uint64_t sigma = cache.base_scale().sigma();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = cache.approx_row(queries[i].node)[queries[i].target];
      results[i].scale = sigma;
    }
  }
};

// ---------------------------------------------------------------------------
// Extension handlers (registered by free functions, not the ctor — they
// are the proof that new specializations ride the registry).

class UnweightedDiameterHandler final : public QueryHandler {
 public:
  std::string type() const override { return "unweighted_diameter"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.hop_eccentricities(ctx.pool);
    const Dist d = *std::max_element(ecc.begin(), ecc.end());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = d;
    }
  }
};

class UnweightedEccentricityHandler final : public QueryHandler {
 public:
  std::string type() const override { return "unweighted_eccentricity"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.hop_eccentricities(ctx.pool);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      require_node(ctx.graph, queries[i].node, "unweighted_eccentricity node");
      results[i].ok = true;
      results[i].value = ecc[queries[i].node];
    }
  }
};

/// Full Theorem 1.1 runs against the resident toolkit. Queries execute
/// serially in batch order (each run is internally deterministic given
/// its seed; kLazySerial keeps the run off the pool so concurrent
/// groups don't contend for it). The resident cache never changes the
/// answer — rows are a pure function of (graph, params) — it only
/// makes the second run on a graph cheap.
class Theorem11Handler final : public QueryHandler {
 public:
  explicit Theorem11Handler(bool radius) : radius_(radius) {}
  std::string type() const override {
    return radius_ ? "t11_radius" : "t11_diameter";
  }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    QC_REQUIRE(ctx.graph.graph().node_count() >= 2,
               "Theorem 1.1 needs n >= 2");
    for (std::size_t i = 0; i < queries.size(); ++i) {
      core::Theorem11Options opt;
      opt.seed = queries[i].seed;
      opt.oracle_mode = core::OracleMode::kLazySerial;
      opt.toolkit = &ctx.graph.toolkit();
      const core::Theorem11Result out =
          radius_ ? core::quantum_weighted_radius(ctx.graph.graph(), opt)
                  : core::quantum_weighted_diameter(ctx.graph.graph(), opt);
      results[i].ok = true;
      results[i].value = out.estimate_scaled;
      results[i].scale = out.total_scale;
    }
  }

 private:
  bool radius_;
};

}  // namespace

// ---------------------------------------------------------------------------
// GraphContext

GraphContext::GraphContext(std::string name, WeightedGraph g)
    : name_(std::move(name)), g_(std::move(g)) {}

GraphContext::~GraphContext() = default;

const std::vector<Dist>& GraphContext::weighted_eccentricities(
    runtime::ThreadPool& pool) {
  std::call_once(ecc_once_,
                 [&] { ecc_ = qc::eccentricities(g_.csr(), &pool); });
  return ecc_;
}

const std::vector<Dist>& GraphContext::hop_eccentricities(
    runtime::ThreadPool& pool) {
  std::call_once(hop_ecc_once_, [&] {
    hop_ecc_ = qc::unweighted_eccentricities(g_.csr(), &pool);
  });
  return hop_ecc_;
}

paths::ToolkitCache& GraphContext::toolkit() {
  // An exceptional exit (disconnected graph) leaves the flag unset, so
  // a later call on a then-valid context retries the construction.
  std::call_once(toolkit_once_, [&] {
    QC_REQUIRE(g_.is_connected(),
               "graph '" + name_ + "' is not connected");
    toolkit_ = std::make_unique<paths::ToolkitCache>(
        g_, core::derive_params(g_));
  });
  return *toolkit_;
}

const paths::Params& GraphContext::toolkit_params() {
  return toolkit().params();
}

GraphContext::WarmState GraphContext::warm_state() const {
  WarmState w;
  w.connectivity = g_.connectivity_cached();
  w.weighted_ecc = !ecc_.empty();
  w.hop_ecc = !hop_ecc_.empty();
  w.csr = w.weighted_ecc || w.hop_ecc || toolkit_ != nullptr;
  w.toolkit_rows = toolkit_ ? toolkit_->cached_row_count() : 0;
  return w;
}

// ---------------------------------------------------------------------------
// QueryEngine

QueryEngine::QueryEngine(EngineOptions opt)
    : opt_(opt), pool_(opt.workers) {
  QC_REQUIRE(opt_.max_in_flight >= 1, "max_in_flight must be >= 1");
  QC_REQUIRE(opt_.max_batch >= 1, "max_batch must be >= 1");
  register_builtin_handlers();
  if (opt_.auto_dispatch) {
    dispatcher_.emplace([this] { dispatch_loop(); });
  }
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_ && dispatcher_->joinable()) dispatcher_->join();
  // Admitted queries are always answered: drain whatever the dispatcher
  // (or a manual owner) left behind before the promises die.
  while (drain() > 0) {
  }
}

void QueryEngine::register_builtin_handlers() {
  register_handler(std::make_unique<DiameterHandler>());
  register_handler(std::make_unique<RadiusHandler>());
  register_handler(std::make_unique<EccentricityHandler>());
  register_handler(std::make_unique<SsspHandler>());
  register_handler(std::make_unique<ApproxDistanceHandler>());
}

GraphContext& QueryEngine::add_graph(std::string name, WeightedGraph g) {
  QC_REQUIRE(!name.empty(), "graph name must be non-empty");
  auto ctx = std::make_unique<GraphContext>(name, std::move(g));
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto [it, inserted] = graphs_.emplace(std::move(name), std::move(ctx));
  QC_REQUIRE(inserted, "graph '" + it->first + "' is already loaded");
  return *it->second;
}

GraphContext* QueryEngine::find_graph(std::string_view name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (name.empty()) {
    return graphs_.size() == 1 ? graphs_.begin()->second.get() : nullptr;
  }
  const auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second.get();
}

std::vector<std::string> QueryEngine::graph_names() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, ctx] : graphs_) names.push_back(name);
  return names;
}

void QueryEngine::register_handler(std::unique_ptr<QueryHandler> handler) {
  QC_REQUIRE(handler != nullptr, "handler must be non-null");
  std::string key = handler->type();
  QC_REQUIRE(!key.empty(), "handler type key must be non-empty");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto [it, inserted] = handlers_.emplace(std::move(key), std::move(handler));
  QC_REQUIRE(inserted,
             "query type '" + it->first + "' is already registered");
}

bool QueryEngine::has_handler(std::string_view type) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return handlers_.find(type) != handlers_.end();
}

std::vector<std::string> QueryEngine::handler_types() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> types;
  types.reserve(handlers_.size());
  for (const auto& [type, h] : handlers_) types.push_back(type);
  return types;
}

void QueryEngine::warm(std::string_view name) {
  GraphContext* ctx = find_graph(name);
  QC_REQUIRE(ctx != nullptr,
             "unknown graph: " + std::string(name.empty() ? "<default>"
                                                          : name));
  ctx->graph().csr();
  ctx->graph().slot_index();
  if (ctx->connected()) {
    ctx->weighted_eccentricities(pool_);
    ctx->hop_eccentricities(pool_);
    ctx->toolkit();
  }
}

void QueryEngine::warm_all() {
  for (const std::string& name : graph_names()) warm(name);
}

QueryResult QueryEngine::query(const Query& q) {
  const auto t0 = Clock::now();
  QueryResult r;
  execute_group({&q, 1}, {&r, 1});
  record_query_metrics(q, r, seconds_since(t0));
  return r;
}

std::future<QueryResult> QueryEngine::submit(Query q) {
  std::future<QueryResult> fut;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) throw AdmissionError("engine is stopping");
    if (in_flight_ >= opt_.max_in_flight) {
      if (opt_.metrics) opt_.metrics->counter("service.rejected").add();
      throw AdmissionError(
          "engine saturated: " + std::to_string(in_flight_) +
          " queries in flight (max_in_flight=" +
          std::to_string(opt_.max_in_flight) + ")");
    }
    Pending p;
    p.q = std::move(q);
    p.admitted = Clock::now();
    fut = p.promise.get_future();
    pending_.push_back(std::move(p));
    ++in_flight_;
  }
  queue_cv_.notify_one();
  return fut;
}

std::size_t QueryEngine::drain() {
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    const std::size_t n = std::min(pending_.size(), opt_.max_batch);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  if (batch.empty()) return 0;

  // Group compatible queries — same graph, same type — preserving batch
  // order within and across groups (first appearance wins). Batches are
  // small (<= max_batch), so the quadratic group scan is noise.
  struct Group {
    std::vector<std::size_t> indices;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Group* home = nullptr;
    for (Group& g : groups) {
      const Query& rep = batch[g.indices.front()].q;
      if (rep.graph == batch[i].q.graph && rep.type == batch[i].q.type) {
        home = &g;
        break;
      }
    }
    if (home == nullptr) {
      groups.push_back({});
      home = &groups.back();
    }
    home->indices.push_back(i);
  }

  std::vector<QueryResult> results(batch.size());
  for (const Group& g : groups) {
    std::vector<Query> qs;
    std::vector<QueryResult> rs(g.indices.size());
    qs.reserve(g.indices.size());
    for (const std::size_t i : g.indices) qs.push_back(batch[i].q);
    execute_group(qs, rs);
    for (std::size_t j = 0; j < g.indices.size(); ++j) {
      results[g.indices[j]] = std::move(rs[j]);
    }
  }

  if (opt_.metrics) {
    opt_.metrics->counter("service.batches").add();
    opt_.metrics
        ->histogram("service.batch_size",
                    runtime::exponential_buckets(1.0, 2.0, 12))
        .observe(static_cast<double>(batch.size()));
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    record_query_metrics(batch[i].q, results[i],
                         seconds_since(batch[i].admitted));
    batch[i].promise.set_value(std::move(results[i]));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    in_flight_ -= batch.size();
  }
  return batch.size();
}

std::size_t QueryEngine::in_flight() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return in_flight_;
}

void QueryEngine::dispatch_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // the destructor drains what remains
    }
    drain();
  }
}

void QueryEngine::execute_group(std::span<const Query> queries,
                                std::span<QueryResult> results) {
  const Query& rep = queries.front();
  QueryHandler* handler = nullptr;
  GraphContext* graph = nullptr;
  std::string error;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = handlers_.find(rep.type);
    if (it == handlers_.end()) {
      error = "unknown query type: " + rep.type;
    } else {
      handler = it->second.get();
    }
  }
  if (error.empty()) {
    graph = find_graph(rep.graph);
    if (graph == nullptr) {
      error = rep.graph.empty()
                  ? "query names no graph and the engine does not serve "
                    "exactly one"
                  : "unknown graph: " + rep.graph;
    }
  }
  if (error.empty()) {
    try {
      QueryContext ctx{*graph, pool_};
      handler->run_batch(ctx, queries, results);
    } catch (const std::exception& e) {
      error = e.what();
    }
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!error.empty()) {
      results[i] = QueryResult{};  // discard any partial handler writes
      results[i].error = error;
    }
    results[i].id = queries[i].id;
    results[i].type = queries[i].type;
  }
}

void QueryEngine::record_query_metrics(const Query& q, const QueryResult& r,
                                       double seconds) {
  if (!opt_.metrics) return;
  opt_.metrics->counter("service.queries").add();
  opt_.metrics->counter("service.queries." + q.type).add();
  if (!r.ok) opt_.metrics->counter("service.errors").add();
  opt_.metrics
      ->histogram("service.latency_seconds." + q.type,
                  latency_histogram_bounds())
      .observe(seconds);
}

std::vector<double> latency_histogram_bounds() {
  return runtime::exponential_buckets(1e-6, 2.0, 26);
}

// ---------------------------------------------------------------------------
// Extension registration

void register_unweighted_handlers(QueryEngine& engine) {
  engine.register_handler(std::make_unique<UnweightedDiameterHandler>());
  engine.register_handler(std::make_unique<UnweightedEccentricityHandler>());
}

void register_theorem11_handlers(QueryEngine& engine) {
  engine.register_handler(std::make_unique<Theorem11Handler>(false));
  engine.register_handler(std::make_unique<Theorem11Handler>(true));
}

}  // namespace qc::service
