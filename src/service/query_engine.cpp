#include "service/query_engine.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "graph/update.h"
#include "paths/params.h"
#include "paths/reference.h"
#include "runtime/metrics.h"
#include "util/error.h"

namespace qc::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void require_connected(const GraphContext& g) {
  QC_REQUIRE(g.connected(),
             "graph '" + g.name() + "' is not connected");
}

void require_node(const GraphContext& g, NodeId v, const char* what) {
  QC_REQUIRE(v < g.node_count(),
             std::string(what) + " out of range for graph '" + g.name() +
                 "' (n=" + std::to_string(g.node_count()) + ")");
}

// ---------------------------------------------------------------------------
// Built-in handlers. All run on the caller/dispatcher thread (never a
// pool worker — see the header's threading rules), so they may trigger
// warm-table builds and fan work out with parallel_for themselves.

/// Scalar answers read off the warm eccentricity tables. One class per
/// reduction keeps each type() key a separate registry entry.
class DiameterHandler final : public QueryHandler {
 public:
  std::string type() const override { return "diameter"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.weighted_eccentricities(ctx.pool);
    const Dist d = *std::max_element(ecc.begin(), ecc.end());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = d;
    }
  }
};

class RadiusHandler final : public QueryHandler {
 public:
  std::string type() const override { return "radius"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.weighted_eccentricities(ctx.pool);
    const Dist r = *std::min_element(ecc.begin(), ecc.end());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = r;
    }
  }
};

class EccentricityHandler final : public QueryHandler {
 public:
  std::string type() const override { return "eccentricity"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.weighted_eccentricities(ctx.pool);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      require_node(ctx.graph, queries[i].node, "eccentricity node");
      results[i].ok = true;
      results[i].value = ecc[queries[i].node];
    }
  }
};

/// Full single-source distance vectors. The batched shape is what pays:
/// sources fan out across the pool with one Dijkstra each, slot i of
/// the result span belonging to query i regardless of execution order.
class SsspHandler final : public QueryHandler {
 public:
  std::string type() const override { return "sssp"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    for (const Query& q : queries) {
      require_node(ctx.graph, q.node, "sssp node");
      require_node(ctx.graph, q.target, "sssp target");
    }
    const CsrGraph& csr = ctx.graph.csr();  // warm on this thread
    runtime::parallel_for(ctx.pool, queries.size(), [&](std::size_t i) {
      DijkstraWorkspace ws;
      ws.dijkstra(csr, queries[i].node, results[i].dist);
      results[i].ok = true;
      results[i].value = results[i].dist[queries[i].target];
    });
  }
};

/// Lemma 3.2 approximate distances d̃^ℓ(node, target) from the resident
/// ToolkitCache. Coalescing shape: prefetch the union of source rows
/// with one pooled ensure_rows, then answer every member from cache.
/// Values are σ-scaled; kInfDist means Lemma 3.2 certifies no bound at
/// this ℓ (the pair is farther than the (1+2/ε)·ℓ eligibility cap).
class ApproxDistanceHandler final : public QueryHandler {
 public:
  std::string type() const override { return "approx_distance"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    std::vector<NodeId> sources;
    sources.reserve(queries.size());
    for (const Query& q : queries) {
      require_node(ctx.graph, q.node, "approx_distance node");
      require_node(ctx.graph, q.target, "approx_distance target");
      sources.push_back(q.node);
    }
    paths::ToolkitCache& cache = ctx.graph.toolkit();
    cache.ensure_rows(sources, &ctx.pool);
    const std::uint64_t sigma = cache.base_scale().sigma();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = cache.approx_row(queries[i].node)[queries[i].target];
      results[i].scale = sigma;
    }
  }
};

// ---------------------------------------------------------------------------
// Extension handlers (registered by free functions, not the ctor — they
// are the proof that new specializations ride the registry).

class UnweightedDiameterHandler final : public QueryHandler {
 public:
  std::string type() const override { return "unweighted_diameter"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.hop_eccentricities(ctx.pool);
    const Dist d = *std::max_element(ecc.begin(), ecc.end());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = d;
    }
  }
};

class UnweightedEccentricityHandler final : public QueryHandler {
 public:
  std::string type() const override { return "unweighted_eccentricity"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    const auto& ecc = ctx.graph.hop_eccentricities(ctx.pool);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      require_node(ctx.graph, queries[i].node, "unweighted_eccentricity node");
      results[i].ok = true;
      results[i].value = ecc[queries[i].node];
    }
  }
};

/// Full Theorem 1.1 runs against the resident toolkit. Queries execute
/// serially in batch order (each run is internally deterministic given
/// its seed; kLazySerial keeps the run off the pool so concurrent
/// groups don't contend for it). The resident cache never changes the
/// answer — rows are a pure function of (graph, params) — it only
/// makes the second run on a graph cheap.
class Theorem11Handler final : public QueryHandler {
 public:
  explicit Theorem11Handler(bool radius) : radius_(radius) {}
  std::string type() const override {
    return radius_ ? "t11_radius" : "t11_diameter";
  }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    require_connected(ctx.graph);
    QC_REQUIRE(ctx.graph.node_count() >= 2, "Theorem 1.1 needs n >= 2");
    // The quantum drivers walk adjacency rows: a mapped context
    // materializes its owned WeightedGraph here (the mapped view stays
    // live for csr() readers — only an update detaches it).
    const WeightedGraph& wg = ctx.graph.weighted_graph();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      core::Theorem11Options opt;
      opt.seed = queries[i].seed;
      // Mirror the context's toolkit overrides: the resident cache was
      // built with these, and derive_params must agree fieldwise for
      // the driver to accept a borrowed cache.
      opt.eps_inv = ctx.graph.toolkit_eps_inv();
      opt.r_override = ctx.graph.toolkit_r_override();
      opt.oracle_mode = core::OracleMode::kLazySerial;
      opt.toolkit = &ctx.graph.toolkit();
      const core::Theorem11Result out =
          radius_ ? core::quantum_weighted_radius(wg, opt)
                  : core::quantum_weighted_diameter(wg, opt);
      results[i].ok = true;
      results[i].value = out.estimate_scaled;
      results[i].scale = out.total_scale;
    }
  }

 private:
  bool radius_;
};

/// Built-in "update": coalesces the group's edge ops into one
/// GraphUpdate and applies it atomically through
/// GraphContext::apply_update — the engine already holds the graph's
/// exclusive state lock (mutating() below), so in-flight reads are
/// ordered strictly before or after the whole batch. When the
/// coalesced batch fails validation it is replayed op-by-op so every
/// query gets its own verdict — earlier valid ops still land, exactly
/// as if they had been submitted alone. A result's value is the
/// graph's edge count after its op took effect.
class UpdateHandler final : public QueryHandler {
 public:
  std::string type() const override { return "update"; }
  bool mutating() const override { return true; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    GraphUpdate batch;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const Query& q = queries[i];
      if (q.op == "insert") {
        batch.insert(q.node, q.target, q.weight);
      } else if (q.op == "remove") {
        batch.remove(q.node, q.target);
      } else if (q.op == "reweight") {
        batch.reweight(q.node, q.target, q.weight);
      } else {
        results[i].ok = false;
        results[i].error =
            q.op.empty() ? "update needs op = insert | remove | reweight"
                         : "unknown update op: " + q.op;
        continue;
      }
      members.push_back(i);
    }
    if (members.empty()) return;
    try {
      ctx.graph.apply_update(batch, ctx.pool, ctx.incremental_updates);
      for (const std::size_t i : members) {
        results[i].ok = true;
        results[i].value = static_cast<Dist>(ctx.graph.edge_count());
      }
    } catch (const ArgumentError&) {
      // The batch as a whole is invalid; degrade to sequential per-op
      // application so each query learns its own fate (deterministic:
      // batch order is admission order).
      for (std::size_t j = 0; j < members.size(); ++j) {
        const std::size_t i = members[j];
        try {
          ctx.graph.apply_update(GraphUpdate{}.push(batch.ops()[j]), ctx.pool,
                                 ctx.incremental_updates);
          results[i].ok = true;
          results[i].value =
              static_cast<Dist>(ctx.graph.edge_count());
        } catch (const std::exception& e) {
          results[i].ok = false;
          results[i].error = e.what();
        }
      }
    }
  }
};

/// Pre/post state of one edge a batch touched (first-touch order).
/// The delta-repair certificates below only care about edges whose
/// state actually changed net.
struct TouchedEdgeState {
  NodeId u = 0, v = 0;       // canonical u < v
  bool before = false, after = false;
  Weight w_before = 1, w_after = 1;

  bool changed() const {
    return before != after || (before && w_before != w_after);
  }
  bool topology_changed() const { return before != after; }
};

std::size_t endpoint_slot(const std::vector<NodeId>& endpoints, NodeId x) {
  return static_cast<std::size_t>(
      std::lower_bound(endpoints.begin(), endpoints.end(), x) -
      endpoints.begin());
}

}  // namespace

// ---------------------------------------------------------------------------
// GraphContext

GraphContext::GraphContext(std::string name, WeightedGraph g,
                           std::uint32_t toolkit_eps_inv,
                           std::uint64_t toolkit_r_override)
    : name_(std::move(name)),
      g_(std::move(g)),
      toolkit_eps_inv_(toolkit_eps_inv),
      toolkit_r_override_(toolkit_r_override) {}

GraphContext::GraphContext(std::string name, CsrGraph view,
                           std::string source_path,
                           std::uint32_t toolkit_eps_inv,
                           std::uint64_t toolkit_r_override)
    : name_(std::move(name)),
      mapped_(std::make_unique<CsrGraph>(std::move(view))),
      source_path_(std::move(source_path)),
      g_materialized_(false),
      toolkit_eps_inv_(toolkit_eps_inv),
      toolkit_r_override_(toolkit_r_override) {
  QC_REQUIRE(mapped_->is_mapped(),
             "graph '" + name_ + "': context view is not memory-mapped");
}

GraphContext::~GraphContext() = default;

const CsrGraph& GraphContext::csr() const {
  return mapped_ ? *mapped_ : g_.csr();
}

NodeId GraphContext::node_count() const {
  return mapped_ ? mapped_->node_count() : g_.node_count();
}

std::size_t GraphContext::edge_count() const {
  return mapped_ ? mapped_->edge_count() : g_.edge_count();
}

const void* GraphContext::mapping_address() const {
  return mapped_ ? mapped_->mapping_address() : nullptr;
}

long GraphContext::mapping_use_count() const {
  return mapped_ ? mapped_->mapping_use_count() : 0;
}

bool GraphContext::connected() const {
  if (mapped_ == nullptr) return g_.is_connected();
  std::lock_guard<std::mutex> lock(warm_mutex_);
  if (mapped_connected_ < 0) {
    // One DFS over the mapped view; no WeightedGraph is materialized
    // just to ask connectivity.
    const CsrGraph& c = *mapped_;
    const NodeId n = c.node_count();
    if (n == 0) {
      mapped_connected_ = 1;
    } else {
      std::vector<char> seen(n, 0);
      std::vector<NodeId> stack = {0};
      seen[0] = 1;
      NodeId visited = 1;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const HalfEdge& h : c.neighbors(u)) {
          if (!seen[h.to]) {
            seen[h.to] = 1;
            ++visited;
            stack.push_back(h.to);
          }
        }
      }
      mapped_connected_ = visited == n ? 1 : 0;
    }
  }
  return mapped_connected_ != 0;
}

void GraphContext::materialize_locked() {
  if (g_materialized_) return;
  // Rebuild the edge list from the view's upper-triangle half-edges
  // (u < to), in (u, v) order — exactly the canonical edge list the
  // bcsr file was built from, so the owned graph's CSR reproduces the
  // mapped adjacency bit for bit.
  const CsrGraph& c = *mapped_;
  const NodeId n = c.node_count();
  std::vector<Edge> edges;
  edges.reserve(c.edge_count());
  for (NodeId u = 0; u < n; ++u) {
    for (const HalfEdge& h : c.neighbors(u)) {
      if (h.to > u) edges.push_back({u, h.to, h.weight});
    }
  }
  g_ = WeightedGraph::from_edges(n, std::move(edges));
  g_materialized_ = true;
}

const WeightedGraph& GraphContext::weighted_graph() {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  materialize_locked();
  return g_;
}

paths::Params GraphContext::derive_toolkit_params() const {
  core::Theorem11Options opt;
  opt.eps_inv = toolkit_eps_inv_;
  opt.r_override = toolkit_r_override_;
  return core::derive_params(g_, opt);
}

const std::vector<Dist>& GraphContext::weighted_eccentricities(
    runtime::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  if (!ecc_valid_) {
    ecc_ = qc::eccentricities(csr(), &pool);
    ecc_valid_ = true;
  }
  return ecc_;
}

const std::vector<Dist>& GraphContext::hop_eccentricities(
    runtime::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  if (!hop_ecc_valid_) {
    hop_ecc_ = qc::unweighted_eccentricities(csr(), &pool);
    hop_ecc_valid_ = true;
  }
  return hop_ecc_;
}

paths::ToolkitCache& GraphContext::toolkit() {
  // An exceptional exit (disconnected graph) leaves the pointer unset,
  // so a later call on a then-valid context retries the construction.
  std::lock_guard<std::mutex> lock(warm_mutex_);
  if (!toolkit_) {
    // The toolkit reads adjacency rows from a WeightedGraph: a mapped
    // context materializes its owned copy here (reads keep flowing
    // from the mapped view; this is not the update-time detach).
    materialize_locked();
    QC_REQUIRE(g_.is_connected(),
               "graph '" + name_ + "' is not connected");
    toolkit_ =
        std::make_unique<paths::ToolkitCache>(g_, derive_toolkit_params());
  }
  return *toolkit_;
}

const paths::Params& GraphContext::toolkit_params() {
  return toolkit().params();
}

GraphContext::UpdateOutcome GraphContext::apply_update(
    const GraphUpdate& update, runtime::ThreadPool& pool, bool incremental) {
  // Copy-on-write detach: the first update on a mapped context
  // materializes the owned graph and drops the view, exactly once —
  // later updates find owned storage and this block is a no-op. From
  // here on the body below runs on owned state either way.
  bool detached_now = false;
  if (mapped_ != nullptr) {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    materialize_locked();
    mapped_.reset();
    mapped_connected_ = -1;
    detached_now = true;
  }

  UpdateOutcome out;
  if (!incremental) {
    out.stats = g_.apply(update, UpdatePolicy::kRebuild);
    out.stats.mapped_detached = detached_now;
    std::lock_guard<std::mutex> lock(warm_mutex_);
    ecc_.clear();
    hop_ecc_.clear();
    ecc_valid_ = hop_ecc_valid_ = false;
    toolkit_.reset();
    out.scratch = true;
    return out;
  }

  // Which warm tables exist decides what pre-update state to capture.
  // Callers hold the exclusive state lock, so nobody flips these under
  // us — the warm mutex is only against the engine's locking being
  // bypassed by a direct GraphContext user.
  bool had_ecc, had_hop, had_toolkit;
  {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    had_ecc = ecc_valid_;
    had_hop = hop_ecc_valid_;
    had_toolkit = toolkit_ != nullptr;
  }

  // Pre-apply state of every touched edge. Out-of-range ids are left
  // uncaptured: apply() below throws on them before anything is used.
  std::vector<TouchedEdgeState> touched;
  {
    std::unordered_set<std::uint64_t> seen;
    const NodeId n = g_.node_count();
    for (const EdgeOp& op : update.ops()) {
      const NodeId a = std::min(op.u, op.v);
      const NodeId b = std::max(op.u, op.v);
      if (!seen.insert((static_cast<std::uint64_t>(a) << 32) | b).second) {
        continue;
      }
      TouchedEdgeState e;
      e.u = a;
      e.v = b;
      if (a != b && b < n) {
        e.before = g_.has_edge(a, b);
        if (e.before) e.w_before = g_.edge_weight(a, b);
      }
      touched.push_back(e);
    }
  }
  std::vector<NodeId> endpoints;
  endpoints.reserve(touched.size() * 2);
  for (const TouchedEdgeState& e : touched) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());

  // Lemma-2 pre-vectors: distances *from each endpoint* in the old
  // graph. By symmetry pre_w[slot(x)][s] = d_old(s, x), so the tight-
  // edge certificate below reads them per source without ever running
  // a per-source search.
  std::vector<std::vector<Dist>> pre_w, pre_h;
  if ((had_ecc || had_hop) && !touched.empty()) {
    const CsrGraph& csr0 = g_.csr();
    if (had_ecc) {
      pre_w.resize(endpoints.size());
      runtime::parallel_for(pool, endpoints.size(), [&](std::size_t i) {
        DijkstraWorkspace ws;
        ws.dijkstra(csr0, endpoints[i], pre_w[i]);
      });
    }
    if (had_hop) {
      pre_h.resize(endpoints.size());
      runtime::parallel_for(pool, endpoints.size(), [&](std::size_t i) {
        DijkstraWorkspace ws;
        ws.bfs(csr0, endpoints[i], pre_h[i]);
      });
    }
  }

  out.stats = g_.apply(update, UpdatePolicy::kIncremental);
  out.stats.mapped_detached = detached_now;

  std::vector<TouchedEdgeState> changed;
  for (TouchedEdgeState e : touched) {
    e.after = g_.has_edge(e.u, e.v);
    if (e.after) e.w_after = g_.edge_weight(e.u, e.v);
    if (e.changed()) changed.push_back(e);
  }
  out.changed_edges = changed.size();
  if (changed.empty()) return out;  // net no-op: every table is exact

  std::vector<NodeId> changed_endpoints;
  changed_endpoints.reserve(changed.size() * 2);
  for (const TouchedEdgeState& e : changed) {
    changed_endpoints.push_back(e.u);
    changed_endpoints.push_back(e.v);
  }
  std::sort(changed_endpoints.begin(), changed_endpoints.end());
  changed_endpoints.erase(
      std::unique(changed_endpoints.begin(), changed_endpoints.end()),
      changed_endpoints.end());

  const bool now_connected = g_.is_connected();

  if (had_toolkit) {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    if (!now_connected) {
      // Params cannot even be derived; drop the cache, the accessor
      // rebuilds if the graph ever reconnects.
      toolkit_.reset();
    } else if (toolkit_->rebind_params(derive_toolkit_params())) {
      out.toolkit_rows_dropped = toolkit_->invalidate_rows(changed_endpoints);
    } else {
      // The row identity (ℓ, 1/ε, max weight) moved: no cached row is
      // reusable. Rebuild the cache shell; rows refill on demand.
      toolkit_ =
          std::make_unique<paths::ToolkitCache>(g_, derive_toolkit_params());
      out.toolkit_rebuilt = true;
    }
  }

  if (!had_ecc && !had_hop) return out;
  if (!now_connected) {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    ecc_.clear();
    hop_ecc_.clear();
    ecc_valid_ = hop_ecc_valid_ = false;
    return out;
  }

  // Post-vectors on the (patched) new graph, same endpoint slots.
  const CsrGraph& csr1 = g_.csr();
  std::vector<std::vector<Dist>> post_w, post_h;
  const bool topo_changed = out.stats.topology_changed;
  if (had_ecc) {
    post_w.resize(endpoints.size());
    runtime::parallel_for(pool, endpoints.size(), [&](std::size_t i) {
      DijkstraWorkspace ws;
      ws.dijkstra(csr1, endpoints[i], post_w[i]);
    });
  }
  if (had_hop && topo_changed) {
    post_h.resize(endpoints.size());
    runtime::parallel_for(pool, endpoints.size(), [&](std::size_t i) {
      DijkstraWorkspace ws;
      ws.bfs(csr1, endpoints[i], post_h[i]);
    });
  }

  // Source s is affected iff some changed edge is *tight* from s — on
  // a shortest path in the old graph (its distances may rise) or in
  // the new one (they may fall). Tightness from s reads only the
  // endpoint vectors: d(s,x) + w == d(s,y) (either direction), with
  // the saturating dist_add keeping kInfDist conservative. Unaffected
  // sources keep byte-exact distance vectors, hence eccentricities.
  const NodeId n = g_.node_count();
  std::vector<NodeId> affected_w, affected_h;
  for (NodeId s = 0; s < n; ++s) {
    if (had_ecc) {
      for (const TouchedEdgeState& e : changed) {
        const std::size_t iu = endpoint_slot(endpoints, e.u);
        const std::size_t iv = endpoint_slot(endpoints, e.v);
        const bool tight_old =
            e.before && (dist_add(pre_w[iu][s], e.w_before) == pre_w[iv][s] ||
                         dist_add(pre_w[iv][s], e.w_before) == pre_w[iu][s]);
        const bool tight_new =
            e.after && (dist_add(post_w[iu][s], e.w_after) == post_w[iv][s] ||
                        dist_add(post_w[iv][s], e.w_after) == post_w[iu][s]);
        if (tight_old || tight_new) {
          affected_w.push_back(s);
          break;
        }
      }
    }
    if (had_hop && topo_changed) {
      for (const TouchedEdgeState& e : changed) {
        if (!e.topology_changed()) continue;  // reweights keep hops exact
        const std::size_t iu = endpoint_slot(endpoints, e.u);
        const std::size_t iv = endpoint_slot(endpoints, e.v);
        const bool tight_old =
            e.before && (dist_add(pre_h[iu][s], 1) == pre_h[iv][s] ||
                         dist_add(pre_h[iv][s], 1) == pre_h[iu][s]);
        const bool tight_new =
            e.after && (dist_add(post_h[iu][s], 1) == post_h[iv][s] ||
                        dist_add(post_h[iv][s], 1) == post_h[iu][s]);
        if (tight_old || tight_new) {
          affected_h.push_back(s);
          break;
        }
      }
    }
  }

  std::vector<Dist> fresh_w, fresh_h;
  if (!affected_w.empty()) {
    fresh_w = qc::eccentricities(csr1, affected_w, &pool);
  }
  if (!affected_h.empty()) {
    fresh_h = qc::unweighted_eccentricities(csr1, affected_h, &pool);
  }
  {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    for (std::size_t i = 0; i < affected_w.size(); ++i) {
      ecc_[affected_w[i]] = fresh_w[i];
    }
    for (std::size_t i = 0; i < affected_h.size(); ++i) {
      hop_ecc_[affected_h[i]] = fresh_h[i];
    }
  }
  out.ecc_rows_recomputed = affected_w.size();
  out.hop_rows_recomputed = affected_h.size();
  return out;
}

GraphContext::WarmState GraphContext::warm_state() const {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  WarmState w;
  w.mapped = mapped_ != nullptr;
  w.materialized = g_materialized_;
  w.connectivity =
      w.mapped ? mapped_connected_ >= 0 : g_.connectivity_cached();
  w.weighted_ecc = ecc_valid_;
  w.hop_ecc = hop_ecc_valid_;
  w.csr =
      w.mapped || w.weighted_ecc || w.hop_ecc || toolkit_ != nullptr;
  w.toolkit_rows = toolkit_ ? toolkit_->cached_row_count() : 0;
  return w;
}

// ---------------------------------------------------------------------------
// QueryEngine

QueryEngine::QueryEngine(EngineOptions opt)
    : opt_(opt), pool_(opt.workers) {
  QC_REQUIRE(opt_.max_in_flight >= 1, "max_in_flight must be >= 1");
  QC_REQUIRE(opt_.max_batch >= 1, "max_batch must be >= 1");
  register_builtin_handlers();
  if (opt_.auto_dispatch) {
    dispatcher_.emplace([this] { dispatch_loop(); });
  }
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_ && dispatcher_->joinable()) dispatcher_->join();
  // Admitted queries are always answered: drain whatever the dispatcher
  // (or a manual owner) left behind before the promises die.
  while (drain() > 0) {
  }
}

void QueryEngine::register_builtin_handlers() {
  register_handler(std::make_unique<DiameterHandler>());
  register_handler(std::make_unique<RadiusHandler>());
  register_handler(std::make_unique<EccentricityHandler>());
  register_handler(std::make_unique<SsspHandler>());
  register_handler(std::make_unique<ApproxDistanceHandler>());
  register_handler(std::make_unique<UpdateHandler>());
}

GraphContext& QueryEngine::add_graph(std::string name, WeightedGraph g) {
  QC_REQUIRE(!name.empty(), "graph name must be non-empty");
  auto ctx = std::make_unique<GraphContext>(name, std::move(g),
                                            opt_.toolkit_eps_inv,
                                            opt_.toolkit_r_override);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto [it, inserted] = graphs_.emplace(std::move(name), std::move(ctx));
  QC_REQUIRE(inserted, "graph '" + it->first + "' is already loaded");
  return *it->second;
}

GraphContext& QueryEngine::add_graph_mapped(std::string name,
                                            const std::string& bcsr_path) {
  QC_REQUIRE(!name.empty(), "graph name must be non-empty");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  // Key mappings by canonical path so two specs naming the same file —
  // even through different spellings — share one mapping.
  std::error_code ec;
  std::string key = std::filesystem::weakly_canonical(bcsr_path, ec).string();
  if (ec || key.empty()) key = bcsr_path;
  auto mit = mapped_files_.find(key);
  if (mit == mapped_files_.end()) {
    mit = mapped_files_.emplace(std::move(key), map_csr(bcsr_path)).first;
  }
  auto ctx = std::make_unique<GraphContext>(name, CsrGraph(mit->second),
                                            bcsr_path, opt_.toolkit_eps_inv,
                                            opt_.toolkit_r_override);
  auto [it, inserted] = graphs_.emplace(std::move(name), std::move(ctx));
  QC_REQUIRE(inserted, "graph '" + it->first + "' is already loaded");
  return *it->second;
}

GraphContext* QueryEngine::find_graph(std::string_view name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (name.empty()) {
    return graphs_.size() == 1 ? graphs_.begin()->second.get() : nullptr;
  }
  const auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second.get();
}

std::vector<std::string> QueryEngine::graph_names() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, ctx] : graphs_) names.push_back(name);
  return names;
}

void QueryEngine::register_handler(std::unique_ptr<QueryHandler> handler) {
  QC_REQUIRE(handler != nullptr, "handler must be non-null");
  std::string key = handler->type();
  QC_REQUIRE(!key.empty(), "handler type key must be non-empty");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto [it, inserted] = handlers_.emplace(std::move(key), std::move(handler));
  QC_REQUIRE(inserted,
             "query type '" + it->first + "' is already registered");
}

bool QueryEngine::has_handler(std::string_view type) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return handlers_.find(type) != handlers_.end();
}

std::vector<std::string> QueryEngine::handler_types() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> types;
  types.reserve(handlers_.size());
  for (const auto& [type, h] : handlers_) types.push_back(type);
  return types;
}

void QueryEngine::warm(std::string_view name) {
  GraphContext* ctx = find_graph(name);
  QC_REQUIRE(ctx != nullptr,
             "unknown graph: " + std::string(name.empty() ? "<default>"
                                                          : name));
  std::shared_lock<std::shared_mutex> lock(ctx->state_mutex());
  ctx->csr();
  // The slot index belongs to the owned graph's update path; a mapped
  // context has no owned graph to index until it detaches.
  if (!ctx->is_mapped()) ctx->graph().slot_index();
  if (ctx->connected()) {
    ctx->weighted_eccentricities(pool_);
    ctx->hop_eccentricities(pool_);
    ctx->toolkit();
  }
}

void QueryEngine::warm_all() {
  for (const std::string& name : graph_names()) warm(name);
}

QueryResult QueryEngine::query(const Query& q) {
  const auto t0 = Clock::now();
  QueryResult r;
  execute_group({&q, 1}, {&r, 1});
  record_query_metrics(q, r, seconds_since(t0));
  return r;
}

std::future<QueryResult> QueryEngine::submit(Query q) {
  std::future<QueryResult> fut;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) throw AdmissionError("engine is stopping");
    if (in_flight_ >= opt_.max_in_flight) {
      if (opt_.metrics) opt_.metrics->counter("service.rejected").add();
      throw AdmissionError(
          "engine saturated: " + std::to_string(in_flight_) +
          " queries in flight (max_in_flight=" +
          std::to_string(opt_.max_in_flight) + ")");
    }
    Pending p;
    p.q = std::move(q);
    p.admitted = Clock::now();
    fut = p.promise.get_future();
    pending_.push_back(std::move(p));
    ++in_flight_;
  }
  queue_cv_.notify_one();
  return fut;
}

std::size_t QueryEngine::drain() {
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    const std::size_t n = std::min(pending_.size(), opt_.max_batch);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  if (batch.empty()) return 0;

  // Group compatible queries — same graph, same type — preserving batch
  // order within and across groups (first appearance wins). Mutating
  // queries are barriers on their graph: a read must not join a group
  // formed before a same-graph mutating group (it would run before an
  // update it was admitted after and observe pre-update state), and a
  // mutating query must not join a group formed before any same-graph
  // group (the jumped-over read would observe a write admitted after
  // it). Batches are small (<= max_batch), so the quadratic group scan
  // is noise.
  struct Group {
    std::vector<std::size_t> indices;
    bool mutating = false;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Query& q = batch[i].q;
    const bool mut = is_mutating_type(q.type);
    Group* home = nullptr;
    std::size_t home_idx = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const Query& rep = batch[groups[gi].indices.front()].q;
      if (rep.graph == q.graph && rep.type == q.type) {
        home = &groups[gi];  // last match: groups repeat past a barrier
        home_idx = gi;
      }
    }
    for (std::size_t gi = home_idx + 1; home != nullptr && gi < groups.size();
         ++gi) {
      const Query& rep = batch[groups[gi].indices.front()].q;
      if (rep.graph == q.graph && (groups[gi].mutating || mut)) home = nullptr;
    }
    if (home == nullptr) {
      groups.push_back({});
      home = &groups.back();
      home->mutating = mut;
    }
    home->indices.push_back(i);
  }

  std::vector<QueryResult> results(batch.size());
  for (const Group& g : groups) {
    std::vector<Query> qs;
    std::vector<QueryResult> rs(g.indices.size());
    qs.reserve(g.indices.size());
    for (const std::size_t i : g.indices) qs.push_back(batch[i].q);
    execute_group(qs, rs);
    for (std::size_t j = 0; j < g.indices.size(); ++j) {
      results[g.indices[j]] = std::move(rs[j]);
    }
  }

  if (opt_.metrics) {
    opt_.metrics->counter("service.batches").add();
    opt_.metrics
        ->histogram("service.batch_size",
                    runtime::exponential_buckets(1.0, 2.0, 12))
        .observe(static_cast<double>(batch.size()));
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    record_query_metrics(batch[i].q, results[i],
                         seconds_since(batch[i].admitted));
    batch[i].promise.set_value(std::move(results[i]));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    in_flight_ -= batch.size();
  }
  return batch.size();
}

std::size_t QueryEngine::in_flight() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return in_flight_;
}

bool QueryEngine::is_mutating_type(std::string_view type) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = handlers_.find(type);
  return it != handlers_.end() && it->second->mutating();
}

void QueryEngine::dispatch_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // the destructor drains what remains
    }
    drain();
  }
}

void QueryEngine::execute_group(std::span<const Query> queries,
                                std::span<QueryResult> results) {
  const Query& rep = queries.front();
  QueryHandler* handler = nullptr;
  GraphContext* graph = nullptr;
  std::string error;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = handlers_.find(rep.type);
    if (it == handlers_.end()) {
      error = "unknown query type: " + rep.type;
    } else {
      handler = it->second.get();
    }
  }
  if (error.empty()) {
    graph = find_graph(rep.graph);
    if (graph == nullptr) {
      error = rep.graph.empty()
                  ? "query names no graph and the engine does not serve "
                    "exactly one"
                  : "unknown graph: " + rep.graph;
    }
  }
  if (error.empty()) {
    try {
      QueryContext ctx{*graph, pool_, opt_.incremental_updates};
      // Readers share the graph's state lock; mutating handlers own it
      // exclusively, so no group ever observes a half-applied update.
      if (handler->mutating()) {
        std::unique_lock<std::shared_mutex> lock(graph->state_mutex());
        handler->run_batch(ctx, queries, results);
      } else {
        std::shared_lock<std::shared_mutex> lock(graph->state_mutex());
        handler->run_batch(ctx, queries, results);
      }
    } catch (const std::exception& e) {
      error = e.what();
    }
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!error.empty()) {
      results[i] = QueryResult{};  // discard any partial handler writes
      results[i].error = error;
    }
    results[i].id = queries[i].id;
    results[i].type = queries[i].type;
  }
}

void QueryEngine::record_query_metrics(const Query& q, const QueryResult& r,
                                       double seconds) {
  if (!opt_.metrics) return;
  opt_.metrics->counter("service.queries").add();
  opt_.metrics->counter("service.queries." + q.type).add();
  if (!r.ok) opt_.metrics->counter("service.errors").add();
  opt_.metrics
      ->histogram("service.latency_seconds." + q.type,
                  latency_histogram_bounds())
      .observe(seconds);
}

std::vector<double> latency_histogram_bounds() {
  return runtime::exponential_buckets(1e-6, 2.0, 26);
}

// ---------------------------------------------------------------------------
// Extension registration

void register_unweighted_handlers(QueryEngine& engine) {
  engine.register_handler(std::make_unique<UnweightedDiameterHandler>());
  engine.register_handler(std::make_unique<UnweightedEccentricityHandler>());
}

void register_theorem11_handlers(QueryEngine& engine) {
  engine.register_handler(std::make_unique<Theorem11Handler>(false));
  engine.register_handler(std::make_unique<Theorem11Handler>(true));
}

}  // namespace qc::service
