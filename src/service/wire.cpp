#include "service/wire.h"

#include <cctype>

#include "runtime/metrics.h"
#include "util/error.h"

namespace qc::service {

namespace {

/// Hand-rolled parser for the one JSON shape the wire allows: a flat
/// object of string/uint members. Strict on purpose — unknown keys,
/// nesting, floats, and negative numbers are request bugs, and a typo
/// that silently defaulted an operand would corrupt results quietly.
struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw ArgumentError("bad request JSON at byte " + std::to_string(i) +
                        ": " + what);
  }
  bool done() const { return i >= s.size(); }
  char peek() const { return done() ? '\0' : s[i]; }
  void skip_ws() {
    while (!done() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                       s[i] == '\n')) {
      ++i;
    }
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i;
  }
  bool eat(char c) {
    if (peek() != c) return false;
    ++i;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (!done() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (done()) fail("unterminated escape");
        const char e = s[i++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default:
            fail(std::string("unsupported escape '\\") + e + "'");
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  std::uint64_t parse_uint() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected an unsigned integer");
    }
    std::uint64_t v = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      const std::uint64_t digit = static_cast<std::uint64_t>(s[i] - '0');
      if (v > (UINT64_MAX - digit) / 10) fail("integer overflow");
      v = v * 10 + digit;
      ++i;
    }
    if (peek() == '.' || peek() == 'e' || peek() == 'E') {
      fail("integers only (no floats)");
    }
    return v;
  }

  NodeId parse_node() {
    const std::uint64_t v = parse_uint();
    if (v > UINT32_MAX) fail("node id exceeds 32 bits");
    return static_cast<NodeId>(v);
  }
};

/// One Dist for output: raw integer, or "inf" for the saturated
/// sentinel (kInfDist and anything the saturating arithmetic pushed
/// above it) — printing the 2^62 sentinel as a number would invite
/// clients to do arithmetic on it.
std::string dist_json(Dist d) {
  return d >= kInfDist ? std::string("\"inf\"") : std::to_string(d);
}

}  // namespace

Query parse_request(std::string_view line) {
  Cursor c{line};
  c.skip_ws();
  c.expect('{');
  Query q;
  c.skip_ws();
  if (!c.eat('}')) {
    for (;;) {
      c.skip_ws();
      const std::string key = c.parse_string();
      c.skip_ws();
      c.expect(':');
      c.skip_ws();
      if (key == "id") {
        q.id = c.parse_uint();
      } else if (key == "graph") {
        q.graph = c.parse_string();
      } else if (key == "type") {
        q.type = c.parse_string();
      } else if (key == "node" || key == "source" || key == "u") {
        q.node = c.parse_node();
      } else if (key == "target" || key == "v") {
        q.target = c.parse_node();
      } else if (key == "seed") {
        q.seed = c.parse_uint();
      } else if (key == "op") {
        q.op = c.parse_string();
      } else if (key == "weight" || key == "w") {
        q.weight = c.parse_uint();
      } else {
        c.fail("unknown request key \"" + key + "\"");
      }
      c.skip_ws();
      if (c.eat(',')) continue;
      c.expect('}');
      break;
    }
  }
  c.skip_ws();
  if (!c.done()) c.fail("trailing bytes after the request object");
  if (q.type.empty()) {
    throw ArgumentError("request needs a non-empty \"type\"");
  }
  return q;
}

std::string format_response(const QueryResult& r) {
  std::string out = "{\"id\":" + std::to_string(r.id) +
                    ",\"ok\":" + (r.ok ? "true" : "false");
  if (!r.type.empty()) out += ",\"type\":" + runtime::json_string(r.type);
  if (!r.ok) {
    out += ",\"error\":" + runtime::json_string(r.error) + "}";
    return out;
  }
  out += ",\"value\":" + dist_json(r.value);
  if (r.scale != 1) {
    out += ",\"scale\":" + std::to_string(r.scale);
    if (r.value < kInfDist) {
      out += ",\"approx\":" +
             runtime::json_number(static_cast<double>(r.value) /
                                  static_cast<double>(r.scale));
    }
  }
  if (!r.dist.empty()) {
    out += ",\"dist\":[";
    for (std::size_t i = 0; i < r.dist.size(); ++i) {
      if (i != 0) out += ',';
      out += dist_json(r.dist[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::string format_rejection(std::uint64_t id, std::string_view reason) {
  return "{\"id\":" + std::to_string(id) +
         ",\"ok\":false,\"code\":\"rejected\",\"error\":" +
         runtime::json_string(std::string(reason)) + "}";
}

}  // namespace qc::service
