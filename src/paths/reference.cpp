#include "paths/reference.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/algorithms.h"

namespace qc::paths {

namespace {

/// Multi-source variant: one reweighted view per scale, shared across
/// sources. Returns rows indexed like `sources`. The per-scale rounding
/// w_i only changes weights, so instead of rebuilding a WeightedGraph per
/// scale (O(m·deg) duplicate-checked add_edge) the shared CSR topology is
/// kept and only its weight entries are rewritten; the scratch CSR, the
/// Dijkstra workspace, and the row buffer are all reused across the
/// scale × source loop, so iterations allocate nothing after the first.
std::vector<std::vector<Dist>> approx_bounded_hop_multi(
    const WeightedGraph& g, const std::vector<NodeId>& sources,
    const HopScale& scale) {
  const NodeId n = g.node_count();
  std::vector<std::vector<Dist>> best(sources.size(),
                                      std::vector<Dist>(n, kInfDist));
  const std::uint32_t scales = scale.scale_count();
  const Dist cap = scale.rounded_cap();
  const CsrGraph& base = g.csr();
  CsrGraph gi;
  DijkstraWorkspace ws;
  std::vector<Dist> di;
  for (std::uint32_t i = 0; i < scales; ++i) {
    gi.assign_reweighted(
        base, [&](Weight w) { return scale.rounded_weight(w, i); });
    for (std::size_t a = 0; a < sources.size(); ++a) {
      ws.dijkstra(gi, sources[a], di);
      for (NodeId v = 0; v < n; ++v) {
        if (di[v] <= cap) {
          const Dist shifted = di[v] << i;
          QC_CHECK((shifted >> i) == di[v] && shifted < kInfDist,
                   "scaled distance overflow");
          best[a][v] = std::min(best[a][v], shifted);
        }
      }
    }
  }
  return best;
}

}  // namespace

std::vector<Dist> approx_bounded_hop_from(const WeightedGraph& g, NodeId s,
                                          const HopScale& scale) {
  return approx_bounded_hop_multi(g, {s}, scale).front();
}

std::vector<Dist> dijkstra_matrix(const std::vector<std::vector<Dist>>& w,
                                  std::uint32_t s) {
  const std::size_t n = w.size();
  QC_REQUIRE(s < n, "matrix Dijkstra source out of range");
  std::vector<Dist> dist(n, kInfDist);
  std::vector<bool> fixed(n, false);
  // Binary heap with lazy deletion, matching the graph kernels: each
  // settle is O(log n) instead of the previous O(n) linear scan (the
  // relaxation pass over the row stays O(n) — it's a dense matrix).
  using Item = std::pair<Dist, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(0, s);
  while (!pq.empty()) {
    const auto [du, u] = pq.top();
    pq.pop();
    if (fixed[u] || du != dist[u]) continue;
    fixed[u] = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u || w[u][v] >= kInfDist) continue;
      const Dist nd = dist_add(du, w[u][v]);
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.emplace(nd, static_cast<std::uint32_t>(v));
      }
    }
  }
  return dist;
}

Dist hop_diameter_matrix(const std::vector<std::vector<Dist>>& w) {
  const std::size_t n = w.size();
  Dist h = 0;
  for (std::size_t s = 0; s < n; ++s) {
    // Lexicographic Dijkstra on (weight, hops).
    std::vector<Dist> dist(n, kInfDist);
    std::vector<Dist> hops(n, kInfDist);
    std::vector<bool> fixed(n, false);
    dist[s] = 0;
    hops[s] = 0;
    for (std::size_t iter = 0; iter < n; ++iter) {
      std::size_t u = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (fixed[v] || dist[v] >= kInfDist) continue;
        if (u == n || std::pair(dist[v], hops[v]) < std::pair(dist[u], hops[u])) {
          u = v;
        }
      }
      if (u == n) break;
      fixed[u] = true;
      for (std::size_t v = 0; v < n; ++v) {
        if (v == u || w[u][v] >= kInfDist) continue;
        const Dist nd = dist_add(dist[u], w[u][v]);
        const Dist nh = hops[u] + 1;
        if (nd < dist[v] || (nd == dist[v] && nh < hops[v])) {
          dist[v] = nd;
          hops[v] = nh;
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (hops[v] < kInfDist) h = std::max(h, hops[v]);
    }
  }
  return h;
}

std::vector<std::vector<Dist>> approx_bounded_hop_matrix(
    const std::vector<std::vector<Dist>>& w, const HopScale& scale) {
  const std::size_t n = w.size();
  std::vector<std::vector<Dist>> best(n, std::vector<Dist>(n, kInfDist));
  const std::uint32_t scales = scale.scale_count();
  const Dist cap = scale.rounded_cap();
  std::vector<std::vector<Dist>> wi(n, std::vector<Dist>(n, kInfDist));
  for (std::uint32_t i = 0; i < scales; ++i) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        wi[a][b] = (a != b && w[a][b] < kInfDist)
                       ? scale.rounded_weight(w[a][b], i)
                       : kInfDist;
      }
    }
    for (std::size_t a = 0; a < n; ++a) {
      const auto di = dijkstra_matrix(wi, static_cast<std::uint32_t>(a));
      for (std::size_t b = 0; b < n; ++b) {
        if (di[b] <= cap) {
          const Dist shifted = di[b] << i;
          QC_CHECK((shifted >> i) == di[b] && shifted < kInfDist,
                   "scaled distance overflow");
          best[a][b] = std::min(best[a][b], shifted);
        }
      }
    }
  }
  return best;
}

Dist Skeleton::approx_distance(std::uint32_t s_idx, NodeId v) const {
  QC_REQUIRE(s_idx < size(), "skeleton source index out of range");
  const std::uint64_t sigma2 = overlay_scale.sigma();
  Dist best = kInfDist;
  for (std::uint32_t u = 0; u < size(); ++u) {
    const Dist through = dist_add(
        overlay_approx[s_idx][u],
        approx_hop[u][v] >= kInfDist ? kInfDist : approx_hop[u][v] * sigma2);
    best = std::min(best, through);
  }
  return best;
}

Dist Skeleton::approx_eccentricity(std::uint32_t s_idx) const {
  Dist ecc = 0;
  const NodeId n = params.n;
  for (NodeId v = 0; v < n; ++v) {
    ecc = std::max(ecc, approx_distance(s_idx, v));
  }
  return ecc;
}

namespace {

/// Shared tail of skeleton construction once the first-level rows are
/// known (used by both build_skeleton and ToolkitCache::skeleton).
Skeleton skeleton_from_rows(const WeightedGraph& g, const Params& params,
                            std::vector<NodeId> sorted_set,
                            std::vector<std::vector<Dist>> approx_hop) {
  Skeleton sk;
  sk.params = params;
  sk.members = std::move(sorted_set);
  const std::size_t b = sk.members.size();

  sk.base_scale = HopScale{params.ell, params.eps_inv, g.max_weight()};
  sk.approx_hop = std::move(approx_hop);

  // Overlay G'_S: complete graph, w'({u,v}) = d̃^ℓ(u,v). d̃^ℓ is symmetric
  // in exact arithmetic; enforce defensively by taking the min of the
  // two directed evaluations.
  sk.overlay_w1.assign(b, std::vector<Dist>(b, kInfDist));
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = 0; c < b; ++c) {
      if (a != c) sk.overlay_w1[a][c] = sk.approx_hop[a][sk.members[c]];
    }
  }
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = a + 1; c < b; ++c) {
      const Dist m = std::min(sk.overlay_w1[a][c], sk.overlay_w1[c][a]);
      sk.overlay_w1[a][c] = sk.overlay_w1[c][a] = m;
    }
  }

  // Exact full-metric distances on the overlay (kept for validating
  // Observation 3.12; the construction below uses the H-based procedure
  // the distributed Algorithm 4 runs).
  sk.overlay_dist1.reserve(b);
  for (std::size_t a = 0; a < b; ++a) {
    sk.overlay_dist1.push_back(
        dijkstra_matrix(sk.overlay_w1, static_cast<std::uint32_t>(a)));
  }

  // --- Algorithm 4 / Observation 3.12 construction ---
  // Each member a contributes its k shortest incident overlay edges
  // (ties by neighbour index); H is the union of those stars. Distances
  // in H from a to its k nearest overlay nodes equal the true overlay
  // distances (Observation 3.12 in [21]).
  const std::size_t kk = static_cast<std::size_t>(
      std::min<std::uint64_t>(params.k, b > 0 ? b - 1 : 0));
  std::vector<std::vector<Dist>> h(b, std::vector<Dist>(b, kInfDist));
  for (std::size_t a = 0; a < b; ++a) {
    std::vector<std::uint32_t> order;
    for (std::uint32_t c = 0; c < b; ++c) {
      if (c != a && sk.overlay_w1[a][c] < kInfDist) order.push_back(c);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair(sk.overlay_w1[a][x], x) <
                       std::pair(sk.overlay_w1[a][y], y);
              });
    if (order.size() > kk) order.resize(kk);
    for (const std::uint32_t c : order) {
      h[a][c] = h[c][a] = sk.overlay_w1[a][c];
    }
  }

  // N^k and shortcut weights from H.
  sk.nearest_k.assign(b, {});
  sk.overlay_w2 = sk.overlay_w1;
  for (std::size_t a = 0; a < b; ++a) {
    const auto dh = dijkstra_matrix(h, static_cast<std::uint32_t>(a));
    std::vector<std::uint32_t> order(b);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair(dh[x], x) < std::pair(dh[y], y);
              });
    for (const std::uint32_t c : order) {
      if (c == a || dh[c] >= kInfDist) continue;
      if (sk.nearest_k[a].size() == kk) break;
      sk.nearest_k[a].push_back(c);
      sk.overlay_w2[a][c] = std::min(sk.overlay_w2[a][c], dh[c]);
      sk.overlay_w2[c][a] = std::min(sk.overlay_w2[c][a], dh[c]);
    }
  }

  // Lemma 3.2 on the overlay with hop bound ℓ'' = 4|S|/k.
  std::uint64_t max_w2 = 1;
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = 0; c < b; ++c) {
      if (a != c && sk.overlay_w2[a][c] < kInfDist) {
        max_w2 = std::max(max_w2, sk.overlay_w2[a][c]);
      }
    }
  }
  sk.overlay_scale = HopScale{params.overlay_ell(b), params.eps_inv, max_w2};
  sk.overlay_approx =
      approx_bounded_hop_matrix(sk.overlay_w2, sk.overlay_scale);
  return sk;
}

std::vector<NodeId> checked_sorted_set(const WeightedGraph& g,
                                       std::vector<NodeId> set) {
  QC_REQUIRE(!set.empty(), "skeleton set must be non-empty");
  std::sort(set.begin(), set.end());
  QC_REQUIRE(std::adjacent_find(set.begin(), set.end()) == set.end(),
             "skeleton set has duplicates");
  QC_REQUIRE(set.back() < g.node_count(), "skeleton member out of range");
  return set;
}

}  // namespace

Skeleton build_skeleton(const WeightedGraph& g, const Params& params,
                        std::vector<NodeId> set) {
  auto sorted = checked_sorted_set(g, std::move(set));
  const HopScale base{params.ell, params.eps_inv, g.max_weight()};
  auto rows = approx_bounded_hop_multi(g, sorted, base);
  return skeleton_from_rows(g, params, std::move(sorted), std::move(rows));
}

ToolkitCache::ToolkitCache(const WeightedGraph& g, const Params& params)
    : g_(&g),
      params_(params),
      base_scale_{params.ell, params.eps_inv, g.max_weight()},
      rows_(g.node_count()),
      has_row_(g.node_count(), false) {}

const std::vector<Dist>& ToolkitCache::approx_row(NodeId u) {
  QC_REQUIRE(u < g_->node_count(), "node out of range");
  if (!has_row_[u]) {
    rows_[u] = approx_bounded_hop_from(*g_, u, base_scale_);
    has_row_[u] = true;
  }
  return rows_[u];
}

Skeleton ToolkitCache::skeleton(std::vector<NodeId> set) {
  auto sorted = checked_sorted_set(*g_, std::move(set));
  std::vector<std::vector<Dist>> rows;
  rows.reserve(sorted.size());
  for (const NodeId u : sorted) rows.push_back(approx_row(u));
  return skeleton_from_rows(*g_, params_, std::move(sorted),
                            std::move(rows));
}

}  // namespace qc::paths
