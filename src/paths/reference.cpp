#include "paths/reference.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <queue>

#include "graph/algorithms.h"
#include "runtime/thread_pool.h"

namespace qc::paths {

namespace {

/// Multi-source variant: one reweighted view per scale, shared across
/// sources. Returns rows indexed like `sources`. The per-scale rounding
/// w_i only changes weights, so instead of rebuilding a WeightedGraph per
/// scale (O(m·deg) duplicate-checked add_edge) the shared CSR topology is
/// kept and only its weight entries are rewritten; the scratch CSR, the
/// Dijkstra workspace, and the row buffer are all reused across the
/// scale × source loop, so iterations allocate nothing after the first.
std::vector<std::vector<Dist>> approx_bounded_hop_multi(
    const WeightedGraph& g, const std::vector<NodeId>& sources,
    const HopScale& scale) {
  const NodeId n = g.node_count();
  std::vector<std::vector<Dist>> best(sources.size(),
                                      std::vector<Dist>(n, kInfDist));
  const std::uint32_t scales = scale.scale_count();
  const Dist cap = scale.rounded_cap();
  const CsrGraph& base = g.csr();
  CsrGraph gi;
  DijkstraWorkspace ws;
  std::vector<Dist> di;
  for (std::uint32_t i = 0; i < scales; ++i) {
    gi.assign_reweighted(
        base, [&](Weight w) { return scale.rounded_weight(w, i); });
    for (std::size_t a = 0; a < sources.size(); ++a) {
      // Labels above the eligibility cap are discarded by the filter
      // below, so the capped run (exact up to `cap`, see algorithms.h)
      // yields identical rows while settling only the cap ball — at
      // fine scales that ball is a small fraction of the graph.
      ws.dijkstra(gi, sources[a], di, cap);
      for (NodeId v = 0; v < n; ++v) {
        if (di[v] <= cap) {
          const Dist shifted = di[v] << i;
          QC_CHECK((shifted >> i) == di[v] && shifted < kInfDist,
                   "scaled distance overflow");
          best[a][v] = std::min(best[a][v], shifted);
        }
      }
    }
  }
  return best;
}

/// Dense-matrix Dijkstra into caller-owned scratch. Binary heap with
/// lazy deletion, matching the graph kernels: each settle is O(log n)
/// instead of an O(n) linear scan (the relaxation pass over the row
/// stays O(n) — it's a dense matrix). `cap` follows the
/// DijkstraWorkspace contract: labels <= cap are exact, relaxations
/// past it are pruned (pruned targets keep kInfDist), so a caller that
/// discards labels above `cap` sees identical output either way.
void dijkstra_matrix_into(const std::vector<std::vector<Dist>>& w,
                          std::uint32_t s, Dist cap, std::vector<Dist>& dist,
                          std::vector<char>& fixed,
                          std::vector<std::pair<Dist, std::uint32_t>>& heap) {
  const std::size_t n = w.size();
  QC_REQUIRE(s < n, "matrix Dijkstra source out of range");
  dist.assign(n, kInfDist);
  fixed.assign(n, 0);
  heap.clear();
  const auto cmp = std::greater<>{};
  dist[s] = 0;
  heap.emplace_back(0, s);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const auto [du, u] = heap.back();
    heap.pop_back();
    if (fixed[u] || du != dist[u]) continue;
    fixed[u] = 1;
    const auto& row = w[u];
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u || row[v] >= kInfDist) continue;
      const Dist nd = dist_add(du, row[v]);
      if (nd < dist[v] && nd <= cap) {
        dist[v] = nd;
        heap.emplace_back(nd, static_cast<std::uint32_t>(v));
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
}

/// Scratch-reusing body of approx_bounded_hop_matrix: Lemma 3.2 on a
/// dense matrix. Each scale's APSP is one in-place Floyd-Warshall over
/// the rounded matrix (dense graph: cheaper than per-source Dijkstras),
/// with the eligibility cap applied when folding. `best` is resized
/// and overwritten.
void approx_matrix_into(const std::vector<std::vector<Dist>>& w,
                        const HopScale& scale,
                        std::vector<std::vector<Dist>>& wi,
                        std::vector<std::vector<Dist>>& best) {
  const std::size_t n = w.size();
  best.assign(n, std::vector<Dist>(n, kInfDist));
  const std::uint32_t scales = scale.scale_count();
  const Dist cap = scale.rounded_cap();
  wi.assign(n, std::vector<Dist>(n, kInfDist));
  // Useful-scale band, exact on both ends: a scale whose lightest
  // rounded edge already exceeds the eligibility cap settles nothing
  // beyond the diagonal (skip it), and once every pair is finite with
  // value <= 2^{i+1}, scale j > i only offers dist_j·2^j >= 2^{i+1}
  // (every rounded weight is >= 1), so no later scale can improve any
  // entry (stop). Skipped and stopped scales reproduce the full loop's
  // integers exactly.
  Dist min_w = kInfDist;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) min_w = std::min(min_w, w[a][b]);
    }
  }
  for (std::uint32_t i = 0; i < scales; ++i) {
    if (min_w < kInfDist && scale.rounded_weight(min_w, i) > cap) {
      for (std::size_t a = 0; a < n; ++a) best[a][a] = 0;
      continue;
    }
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        wi[a][b] = (a != b && w[a][b] < kInfDist)
                       ? scale.rounded_weight(w[a][b], i)
                       : a == b ? 0
                                : kInfDist;
      }
    }
    // In-place Floyd–Warshall APSP on the rounded matrix. For a dense
    // b×b graph this beats b heap Dijkstras by a large constant, and
    // the integers cannot differ: shortest distances are unique, and a
    // pair is folded into `best` iff its distance is <= cap — exactly
    // the pairs the cap-pruned Dijkstra would have settled (every
    // prefix of a <= cap path is <= cap). Sums cannot overflow:
    // every stored label is <= kInfDist = 2^64/4.
    for (std::size_t k = 0; k < n; ++k) {
      const std::vector<Dist>& wk = wi[k];
      for (std::size_t a = 0; a < n; ++a) {
        const Dist dak = wi[a][k];
        if (dak >= kInfDist) continue;
        std::vector<Dist>& wa = wi[a];
        for (std::size_t b = 0; b < n; ++b) {
          const Dist nd = dak + wk[b];
          if (nd < wa[b]) wa[b] = nd;
        }
      }
    }
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (wi[a][b] <= cap) {
          const Dist shifted = wi[a][b] << i;
          QC_CHECK((shifted >> i) == wi[a][b] && shifted < kInfDist,
                   "scaled distance overflow");
          best[a][b] = std::min(best[a][b], shifted);
        }
      }
    }
    bool settled = true;
    Dist mx = 0;
    for (std::size_t a = 0; a < n && settled; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        if (best[a][b] >= kInfDist) {
          settled = false;
          break;
        }
        mx = std::max(mx, best[a][b]);
      }
    }
    if (settled && mx <= (Dist{1} << (i + 1))) break;
  }
}

}  // namespace

std::vector<Dist> approx_bounded_hop_from(const WeightedGraph& g, NodeId s,
                                          const HopScale& scale) {
  return approx_bounded_hop_multi(g, {s}, scale).front();
}

std::vector<Dist> dijkstra_matrix(const std::vector<std::vector<Dist>>& w,
                                  std::uint32_t s) {
  std::vector<Dist> dist;
  std::vector<char> fixed;
  std::vector<std::pair<Dist, std::uint32_t>> heap;
  dijkstra_matrix_into(w, s, kInfDist, dist, fixed, heap);
  return dist;
}

Dist hop_diameter_matrix(const std::vector<std::vector<Dist>>& w) {
  const std::size_t n = w.size();
  Dist h = 0;
  for (std::size_t s = 0; s < n; ++s) {
    // Lexicographic Dijkstra on (weight, hops).
    std::vector<Dist> dist(n, kInfDist);
    std::vector<Dist> hops(n, kInfDist);
    std::vector<bool> fixed(n, false);
    dist[s] = 0;
    hops[s] = 0;
    for (std::size_t iter = 0; iter < n; ++iter) {
      std::size_t u = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (fixed[v] || dist[v] >= kInfDist) continue;
        if (u == n || std::pair(dist[v], hops[v]) < std::pair(dist[u], hops[u])) {
          u = v;
        }
      }
      if (u == n) break;
      fixed[u] = true;
      for (std::size_t v = 0; v < n; ++v) {
        if (v == u || w[u][v] >= kInfDist) continue;
        const Dist nd = dist_add(dist[u], w[u][v]);
        const Dist nh = hops[u] + 1;
        if (nd < dist[v] || (nd == dist[v] && nh < hops[v])) {
          dist[v] = nd;
          hops[v] = nh;
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (hops[v] < kInfDist) h = std::max(h, hops[v]);
    }
  }
  return h;
}

std::vector<std::vector<Dist>> approx_bounded_hop_matrix(
    const std::vector<std::vector<Dist>>& w, const HopScale& scale) {
  std::vector<std::vector<Dist>> best;
  std::vector<std::vector<Dist>> wi;
  approx_matrix_into(w, scale, wi, best);
  return best;
}

Dist Skeleton::approx_distance(std::uint32_t s_idx, NodeId v) const {
  QC_REQUIRE(s_idx < size(), "skeleton source index out of range");
  const std::uint64_t sigma2 = overlay_scale.sigma();
  Dist best = kInfDist;
  for (std::uint32_t u = 0; u < size(); ++u) {
    const Dist through = dist_add(
        overlay_approx[s_idx][u],
        approx_hop[u][v] >= kInfDist ? kInfDist : approx_hop[u][v] * sigma2);
    best = std::min(best, through);
  }
  return best;
}

Dist Skeleton::approx_eccentricity(std::uint32_t s_idx) const {
  Dist ecc = 0;
  const NodeId n = params.n;
  for (NodeId v = 0; v < n; ++v) {
    ecc = std::max(ecc, approx_distance(s_idx, v));
  }
  return ecc;
}

namespace {

/// Shared tail of skeleton construction once the first-level rows are
/// known (used by both build_skeleton and ToolkitCache::skeleton).
Skeleton skeleton_from_rows(const WeightedGraph& g, const Params& params,
                            std::vector<NodeId> sorted_set,
                            std::vector<std::vector<Dist>> approx_hop) {
  Skeleton sk;
  sk.params = params;
  sk.members = std::move(sorted_set);
  const std::size_t b = sk.members.size();

  sk.base_scale = HopScale{params.ell, params.eps_inv, g.max_weight()};
  sk.approx_hop = std::move(approx_hop);

  // Overlay G'_S: complete graph, w'({u,v}) = d̃^ℓ(u,v). d̃^ℓ is symmetric
  // in exact arithmetic; enforce defensively by taking the min of the
  // two directed evaluations.
  sk.overlay_w1.assign(b, std::vector<Dist>(b, kInfDist));
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = 0; c < b; ++c) {
      if (a != c) sk.overlay_w1[a][c] = sk.approx_hop[a][sk.members[c]];
    }
  }
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = a + 1; c < b; ++c) {
      const Dist m = std::min(sk.overlay_w1[a][c], sk.overlay_w1[c][a]);
      sk.overlay_w1[a][c] = sk.overlay_w1[c][a] = m;
    }
  }

  // Exact full-metric distances on the overlay (kept for validating
  // Observation 3.12; the construction below uses the H-based procedure
  // the distributed Algorithm 4 runs).
  sk.overlay_dist1.reserve(b);
  for (std::size_t a = 0; a < b; ++a) {
    sk.overlay_dist1.push_back(
        dijkstra_matrix(sk.overlay_w1, static_cast<std::uint32_t>(a)));
  }

  // --- Algorithm 4 / Observation 3.12 construction ---
  // Each member a contributes its k shortest incident overlay edges
  // (ties by neighbour index); H is the union of those stars. Distances
  // in H from a to its k nearest overlay nodes equal the true overlay
  // distances (Observation 3.12 in [21]).
  const std::size_t kk = static_cast<std::size_t>(
      std::min<std::uint64_t>(params.k, b > 0 ? b - 1 : 0));
  std::vector<std::vector<Dist>> h(b, std::vector<Dist>(b, kInfDist));
  for (std::size_t a = 0; a < b; ++a) {
    std::vector<std::uint32_t> order;
    for (std::uint32_t c = 0; c < b; ++c) {
      if (c != a && sk.overlay_w1[a][c] < kInfDist) order.push_back(c);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair(sk.overlay_w1[a][x], x) <
                       std::pair(sk.overlay_w1[a][y], y);
              });
    if (order.size() > kk) order.resize(kk);
    for (const std::uint32_t c : order) {
      h[a][c] = h[c][a] = sk.overlay_w1[a][c];
    }
  }

  // N^k and shortcut weights from H.
  sk.nearest_k.assign(b, {});
  sk.overlay_w2 = sk.overlay_w1;
  for (std::size_t a = 0; a < b; ++a) {
    const auto dh = dijkstra_matrix(h, static_cast<std::uint32_t>(a));
    std::vector<std::uint32_t> order(b);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair(dh[x], x) < std::pair(dh[y], y);
              });
    for (const std::uint32_t c : order) {
      if (c == a || dh[c] >= kInfDist) continue;
      if (sk.nearest_k[a].size() == kk) break;
      sk.nearest_k[a].push_back(c);
      sk.overlay_w2[a][c] = std::min(sk.overlay_w2[a][c], dh[c]);
      sk.overlay_w2[c][a] = std::min(sk.overlay_w2[c][a], dh[c]);
    }
  }

  // Lemma 3.2 on the overlay with hop bound ℓ'' = 4|S|/k.
  std::uint64_t max_w2 = 1;
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = 0; c < b; ++c) {
      if (a != c && sk.overlay_w2[a][c] < kInfDist) {
        max_w2 = std::max(max_w2, sk.overlay_w2[a][c]);
      }
    }
  }
  sk.overlay_scale = HopScale{params.overlay_ell(b), params.eps_inv, max_w2};
  sk.overlay_approx =
      approx_bounded_hop_matrix(sk.overlay_w2, sk.overlay_scale);
  return sk;
}

std::vector<NodeId> checked_sorted_set(const WeightedGraph& g,
                                       std::vector<NodeId> set) {
  QC_REQUIRE(!set.empty(), "skeleton set must be non-empty");
  std::sort(set.begin(), set.end());
  QC_REQUIRE(std::adjacent_find(set.begin(), set.end()) == set.end(),
             "skeleton set has duplicates");
  QC_REQUIRE(set.back() < g.node_count(), "skeleton member out of range");
  return set;
}

}  // namespace

Skeleton build_skeleton(const WeightedGraph& g, const Params& params,
                        std::vector<NodeId> set) {
  auto sorted = checked_sorted_set(g, std::move(set));
  const HopScale base{params.ell, params.eps_inv, g.max_weight()};
  auto rows = approx_bounded_hop_multi(g, sorted, base);
  return skeleton_from_rows(g, params, std::move(sorted), std::move(rows));
}

ToolkitCache::ToolkitCache(const WeightedGraph& g, const Params& params)
    : g_(&g),
      params_(params),
      base_scale_{params.ell, params.eps_inv, g.max_weight()},
      rows_(g.node_count()),
      row_ready_(new std::atomic<std::uint8_t>[g.node_count()]) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    row_ready_[u].store(0, std::memory_order_relaxed);
  }
  // Warm the lazily built CSR view now, while we are provably
  // single-threaded; concurrent row fills then only ever read it.
  (void)g.csr();
}

void ToolkitCache::publish_row(NodeId u, std::vector<Dist>&& row) {
  std::lock_guard<std::mutex> lock(row_mutex_[u % kRowShards]);
  if (row_ready_[u].load(std::memory_order_relaxed)) return;
  rows_[u] = std::move(row);
  row_ready_[u].store(1, std::memory_order_release);
}

const std::vector<Dist>& ToolkitCache::approx_row(NodeId u) {
  QC_REQUIRE(u < g_->node_count(), "node out of range");
  if (!row_ready_[u].load(std::memory_order_acquire)) {
    publish_row(u, approx_bounded_hop_from(*g_, u, base_scale_));
  }
  return rows_[u];
}

void ToolkitCache::ensure_rows(const std::vector<NodeId>& nodes,
                               runtime::ThreadPool* pool) {
  std::vector<NodeId> missing;
  for (const NodeId u : nodes) {
    QC_REQUIRE(u < g_->node_count(), "node out of range");
    if (!row_ready_[u].load(std::memory_order_acquire)) missing.push_back(u);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  if (missing.empty()) return;
  if (pool == nullptr || pool->worker_count() <= 1 || missing.size() < 2) {
    auto rows = approx_bounded_hop_multi(*g_, missing, base_scale_);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      publish_row(missing[i], std::move(rows[i]));
    }
    return;
  }
  // Chunked fan-out: each chunk shares one Dijkstra workspace and one
  // reweighted scratch CSR (via approx_bounded_hop_multi), and rows land
  // keyed by node id — the cache contents cannot depend on scheduling.
  const std::size_t chunk_count = std::min<std::size_t>(
      missing.size(), static_cast<std::size_t>(pool->worker_count()) * 4);
  runtime::parallel_for(*pool, chunk_count, [&](std::size_t c) {
    const std::size_t lo = missing.size() * c / chunk_count;
    const std::size_t hi = missing.size() * (c + 1) / chunk_count;
    if (lo == hi) return;
    const std::vector<NodeId> slice(missing.begin() + lo,
                                    missing.begin() + hi);
    auto rows = approx_bounded_hop_multi(*g_, slice, base_scale_);
    for (std::size_t i = 0; i < slice.size(); ++i) {
      publish_row(slice[i], std::move(rows[i]));
    }
  });
}

std::size_t ToolkitCache::cached_row_count() const {
  std::size_t count = 0;
  for (NodeId u = 0; u < g_->node_count(); ++u) {
    if (row_ready_[u].load(std::memory_order_acquire)) ++count;
  }
  return count;
}

std::size_t ToolkitCache::invalidate_rows(std::span<const NodeId> endpoints) {
  for (const NodeId x : endpoints) {
    QC_REQUIRE(x < g_->node_count(), "node out of range");
  }
  std::size_t dropped = 0;
  for (NodeId u = 0; u < g_->node_count(); ++u) {
    if (!row_ready_[u].load(std::memory_order_acquire)) continue;
    const std::vector<Dist>& row = rows_[u];
    bool affected = false;
    for (const NodeId x : endpoints) {
      if (row[x] < kInfDist) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;
    row_ready_[u].store(0, std::memory_order_release);
    rows_[u].clear();
    rows_[u].shrink_to_fit();
    ++dropped;
  }
  return dropped;
}

bool ToolkitCache::rebind_params(const Params& params) {
  const HopScale fresh{params.ell, params.eps_inv, g_->max_weight()};
  if (fresh.ell != base_scale_.ell || fresh.eps_inv != base_scale_.eps_inv ||
      fresh.max_weight != base_scale_.max_weight) {
    return false;
  }
  params_ = params;
  return true;
}

Skeleton ToolkitCache::skeleton(std::vector<NodeId> set) {
  auto sorted = checked_sorted_set(*g_, std::move(set));
  std::vector<std::vector<Dist>> rows;
  rows.reserve(sorted.size());
  for (const NodeId u : sorted) rows.push_back(approx_row(u));
  return skeleton_from_rows(*g_, params_, std::move(sorted),
                            std::move(rows));
}

SetEvaluation ToolkitCache::evaluate_set(std::vector<NodeId> set,
                                         SetEvalWorkspace& ws) {
  auto sorted = checked_sorted_set(*g_, std::move(set));
  const std::size_t b = sorted.size();
  ws.row_ptrs_.clear();
  ws.row_ptrs_.reserve(b);
  for (const NodeId u : sorted) ws.row_ptrs_.push_back(&approx_row(u));

  // Overlay weights w′({u,v}) = d̃^ℓ(u,v), symmetrized exactly as
  // skeleton_from_rows does.
  ws.w1_.assign(b, std::vector<Dist>(b, kInfDist));
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = 0; c < b; ++c) {
      if (a != c) ws.w1_[a][c] = (*ws.row_ptrs_[a])[sorted[c]];
    }
  }
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = a + 1; c < b; ++c) {
      const Dist m = std::min(ws.w1_[a][c], ws.w1_[c][a]);
      ws.w1_[a][c] = ws.w1_[c][a] = m;
    }
  }

  // k-star union H (Algorithm 4 / Observation 3.12), as in
  // skeleton_from_rows.
  const std::size_t kk = static_cast<std::size_t>(
      std::min<std::uint64_t>(params_.k, b > 0 ? b - 1 : 0));
  ws.h_.assign(b, std::vector<Dist>(b, kInfDist));
  for (std::size_t a = 0; a < b; ++a) {
    ws.order_.clear();
    for (std::uint32_t c = 0; c < b; ++c) {
      if (c != a && ws.w1_[a][c] < kInfDist) ws.order_.push_back(c);
    }
    std::sort(ws.order_.begin(), ws.order_.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair(ws.w1_[a][x], x) <
                       std::pair(ws.w1_[a][y], y);
              });
    if (ws.order_.size() > kk) ws.order_.resize(kk);
    for (const std::uint32_t c : ws.order_) {
      ws.h_[a][c] = ws.h_[c][a] = ws.w1_[a][c];
    }
  }

  // Shortcut weights w″ from H — identical to skeleton_from_rows except
  // the nearest_k lists are consumed on the fly instead of stored. The
  // per-source Dijkstras on H become one in-place Floyd-Warshall APSP
  // (dense b×b matrix; shortest distances are unique, so the selection
  // below sees the same integers).
  ws.w2_ = ws.w1_;
  ws.wi_ = ws.h_;
  for (std::size_t a = 0; a < b; ++a) ws.wi_[a][a] = 0;
  for (std::size_t k2 = 0; k2 < b; ++k2) {
    const std::vector<Dist>& wk = ws.wi_[k2];
    for (std::size_t a = 0; a < b; ++a) {
      const Dist dak = ws.wi_[a][k2];
      if (dak >= kInfDist) continue;
      std::vector<Dist>& wa = ws.wi_[a];
      for (std::size_t c = 0; c < b; ++c) {
        const Dist nd = dak + wk[c];
        if (nd < wa[c]) wa[c] = nd;
      }
    }
  }
  for (std::size_t a = 0; a < b; ++a) {
    const std::vector<Dist>& da = ws.wi_[a];
    ws.order_.resize(b);
    std::iota(ws.order_.begin(), ws.order_.end(), 0);
    std::sort(ws.order_.begin(), ws.order_.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair(da[x], x) < std::pair(da[y], y);
              });
    std::size_t taken = 0;
    for (const std::uint32_t c : ws.order_) {
      if (c == a || da[c] >= kInfDist) continue;
      if (taken == kk) break;
      ++taken;
      ws.w2_[a][c] = std::min(ws.w2_[a][c], da[c]);
      ws.w2_[c][a] = std::min(ws.w2_[c][a], da[c]);
    }
  }

  std::uint64_t max_w2 = 1;
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = 0; c < b; ++c) {
      if (a != c && ws.w2_[a][c] < kInfDist) {
        max_w2 = std::max(max_w2, ws.w2_[a][c]);
      }
    }
  }
  const HopScale overlay_scale{params_.overlay_ell(b), params_.eps_inv,
                               max_w2};
  approx_matrix_into(ws.w2_, overlay_scale, ws.wi_, ws.overlay_);

  SetEvaluation out;
  out.total_scale = base_scale_.sigma() * overlay_scale.sigma();
  QC_CHECK(out.total_scale == params_.total_scale(b),
           "scale-only pass disagrees with built overlay scale");

  // Member eccentricities, matching Skeleton::approx_eccentricity
  // integer-for-integer: ecc(s) = max_v min_u { A(s,u) + B(u,v) } where
  // A(s,u) = d̃″(s,u) and B(u,v) = σ″·d̃^ℓ(u,v). B is member-independent,
  // so one b·n pass finds each target's smallest B and its hub; that
  // candidate seeds the minimum, and the inner scan — hubs in ascending
  // A order — stops at the first hub with A(s,u) + B₁(v) ≥ best, which
  // lower-bounds everything later in the order. dist_add is monotone and
  // saturating, so the pruned scan returns exactly the full scan's
  // integers (including kInfDist).
  const std::uint64_t sigma2 = overlay_scale.sigma();
  const NodeId n = g_->node_count();
  ws.bmin_arg_.assign(n, 0);
  ws.bmin1_.assign(n, kInfDist);
  for (std::uint32_t u = 0; u < b; ++u) {
    const std::vector<Dist>& row = *ws.row_ptrs_[u];
    for (NodeId v = 0; v < n; ++v) {
      const Dist hop = row[v];
      const Dist bv = hop >= kInfDist ? kInfDist : hop * sigma2;
      if (bv < ws.bmin1_[v]) {
        ws.bmin1_[v] = bv;
        ws.bmin_arg_[v] = u;
      }
    }
  }
  // Targets in descending-B₁ order: the first targets are the ones that
  // can set the max, and once even A_max(s) + B₁(v) cannot beat the
  // running eccentricity no later target can either.
  ws.tord_.resize(n);
  std::iota(ws.tord_.begin(), ws.tord_.end(), 0);
  std::sort(ws.tord_.begin(), ws.tord_.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              return std::pair(ws.bmin1_[y], x) < std::pair(ws.bmin1_[x], y);
            });
  out.member_ecc.assign(b, 0);
  for (std::size_t s = 0; s < b; ++s) {
    ws.order_.resize(b);
    std::iota(ws.order_.begin(), ws.order_.end(), 0);
    std::sort(ws.order_.begin(), ws.order_.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return ws.overlay_[s][x] < ws.overlay_[s][y];
              });
    Dist amax = 0;
    for (std::size_t u = 0; u < b; ++u) {
      amax = std::max(amax, ws.overlay_[s][u]);
    }
    Dist ecc = 0;
    for (const std::uint32_t v : ws.tord_) {
      const Dist b1 = ws.bmin1_[v];
      if (dist_add(amax, b1) <= ecc) break;  // bounds all later targets
      Dist best = dist_add(ws.overlay_[s][ws.bmin_arg_[v]], b1);
      if (best <= ecc) continue;  // an upper bound: v cannot raise the max
      for (const std::uint32_t u : ws.order_) {
        const Dist hub = ws.overlay_[s][u];
        if (dist_add(hub, b1) >= best) break;
        const Dist hop = (*ws.row_ptrs_[u])[v];
        best = std::min(
            best, dist_add(hub, hop >= kInfDist ? kInfDist : hop * sigma2));
      }
      ecc = std::max(ecc, best);
    }
    out.member_ecc[s] = ecc;
  }
  return out;
}

}  // namespace qc::paths
