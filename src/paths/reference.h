// Centralized reference implementation of Nanongkai's toolkit quantities
// (Lemma 3.2 and Lemma 3.3 of the paper).
//
// Everything is computed in exact fixed-point integer units (see
// params.h): first-level approximate distances d̃^ℓ carry a factor
// σ = 2·ℓ·eps_inv; second-level (overlay) approximate distances carry
// σ·σ″ with σ″ = 2·ℓ″·eps_inv. The distributed implementations in
// distributed.h compute the same integers via CONGEST messages; tests
// assert bit-exact agreement.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "paths/params.h"
#include "util/mathx.h"

namespace qc::runtime {
class ThreadPool;  // runtime/thread_pool.h
}

namespace qc::paths {

/// d̃^ℓ_{G,w}(s, ·) in σ-scaled units (Lemma 3.2):
///   min_i { d_{G,w_i}(s,v) · 2^i  :  d_{G,w_i}(s,v) <= (1+2/ε)·ℓ }
/// kInfDist where no scale is eligible.
std::vector<Dist> approx_bounded_hop_from(const WeightedGraph& g, NodeId s,
                                          const HopScale& scale);

/// Lemma 3.2 on an abstract complete-ish graph given as a distance
/// matrix `w` (kInfDist entries = no edge). Returns the full matrix of
/// approximate ℓ-hop distances, in σ(scale)-scaled units *relative to
/// the units of `w`*.
std::vector<std::vector<Dist>> approx_bounded_hop_matrix(
    const std::vector<std::vector<Dist>>& w, const HopScale& scale);

/// Exact Dijkstra on a dense matrix graph (kInfDist = no edge).
std::vector<Dist> dijkstra_matrix(const std::vector<std::vector<Dist>>& w,
                                  std::uint32_t s);

/// Hop diameter of a dense matrix graph under its weights: the maximum,
/// over connected pairs, of the minimum edge count among weight-shortest
/// paths. Used to check the k-shortcut property (Theorem 3.10 of [21])
/// that Lemma 3.3's proof relies on: H_{G″,w″} < 4·|S|/k.
Dist hop_diameter_matrix(const std::vector<std::vector<Dist>>& w);

/// All skeleton structures of Lemma 3.3 for one vertex set S.
struct Skeleton {
  Params params;
  std::vector<NodeId> members;  ///< S, sorted ascending

  HopScale base_scale;     ///< Lemma 3.2 scale on G (units: w)
  HopScale overlay_scale;  ///< Lemma 3.2 scale on G″ (units: σ·w)

  /// approx_hop[a][v] = d̃^ℓ_{G,w}(S[a], v), σ units.
  std::vector<std::vector<Dist>> approx_hop;
  /// overlay_w1[a][b] = w′_S({S[a],S[b]}) = d̃^ℓ(S[a],S[b]), σ units.
  std::vector<std::vector<Dist>> overlay_w1;
  /// overlay_dist1[a][b] = d_{G′_S,w′_S}(S[a],S[b]), σ units.
  std::vector<std::vector<Dist>> overlay_dist1;
  /// nearest_k[a] = indices (into members) of the k closest other
  /// members of a on (G′_S, w′_S), ties broken by index.
  std::vector<std::vector<std::uint32_t>> nearest_k;
  /// overlay_w2[a][b] = w″_S({S[a],S[b]}), σ units.
  std::vector<std::vector<Dist>> overlay_w2;
  /// overlay_approx[a][b] = d̃^{ℓ″}_{G″,w″}(S[a],S[b]), σ·σ″ units.
  std::vector<std::vector<Dist>> overlay_approx;

  std::size_t size() const { return members.size(); }

  /// σ·σ″ — the fixed-point scale of approx_distance values.
  std::uint64_t total_scale() const {
    return base_scale.sigma() * overlay_scale.sigma();
  }

  /// d̃_{G,w,S}(S[s_idx], v) in σ·σ″ units (Lemma 3.3):
  ///   min_u { d̃″(s,u) + σ″ · d̃^ℓ(u,v) }.
  Dist approx_distance(std::uint32_t s_idx, NodeId v) const;

  /// ẽ_{G,w,S}(S[s_idx]) = max_v d̃_{G,w,S}(S[s_idx], v), σ·σ″ units.
  Dist approx_eccentricity(std::uint32_t s_idx) const;
};

/// Builds every Lemma 3.3 structure for the set S (must be non-empty,
/// sorted or not — it is sorted internally).
Skeleton build_skeleton(const WeightedGraph& g, const Params& params,
                        std::vector<NodeId> set);

/// What the Theorem 1.1 oracle actually consumes from a set: the scale of
/// its approximate distances and the approximate eccentricity of every
/// member (kInfDist where Lemma 3.3 fails to certify a finite value).
/// Produced by `ToolkitCache::evaluate_set` without materializing a
/// `Skeleton` — see that method for what is skipped.
struct SetEvaluation {
  std::uint64_t total_scale = 0;  ///< σ·σ″, == Params::total_scale(|S|)
  std::vector<Dist> member_ecc;   ///< indexed like the sorted set
};

/// Reusable scratch for `ToolkitCache::evaluate_set`: overlay matrices,
/// heap/order buffers, and the per-scale rounded-weight copy all keep
/// their capacity across calls, so repeated evaluations allocate nothing
/// after warm-up. Not thread-safe — one workspace per worker.
class SetEvalWorkspace {
 public:
  SetEvalWorkspace() = default;

 private:
  friend class ToolkitCache;
  std::vector<std::vector<Dist>> w1_;      // overlay weights w′
  std::vector<std::vector<Dist>> h_;       // k-star union H
  std::vector<std::vector<Dist>> w2_;      // shortcut weights w″
  std::vector<std::vector<Dist>> overlay_; // d̃^{ℓ″} on (G″, w″)
  std::vector<std::vector<Dist>> wi_;      // Floyd-Warshall scratch matrix
  std::vector<std::uint32_t> order_;
  std::vector<const std::vector<Dist>*> row_ptrs_;
  std::vector<std::uint32_t> bmin_arg_;    // per-target best hub by B
  std::vector<Dist> bmin1_;                // smallest B(u, v) per target v
  std::vector<std::uint32_t> tord_;        // targets by descending B₁
};

/// Shared backend for building many skeletons on the same (G, w, Params):
/// the first-level rows d̃^ℓ(u, ·) depend only on the member u (ℓ and ε
/// are global), so they are computed once per distinct member across all
/// sets. Used by the Theorem 1.1 driver, which needs n skeletons.
///
/// Thread-safety: `approx_row`, `ensure_rows`, and `evaluate_set` may be
/// called concurrently — row publication is guarded by sharded mutexes
/// with an atomic ready flag per node (double-checked, acquire/release),
/// and `evaluate_set` only reads published rows plus caller-owned
/// scratch. `skeleton` is also safe under the same rules but copies its
/// rows, so prefer `evaluate_set` on hot paths.
class ToolkitCache {
 public:
  ToolkitCache(const WeightedGraph& g, const Params& params);

  ToolkitCache(const ToolkitCache&) = delete;
  ToolkitCache& operator=(const ToolkitCache&) = delete;

  const WeightedGraph& graph() const { return *g_; }
  const Params& params() const { return params_; }
  const HopScale& base_scale() const { return base_scale_; }

  /// d̃^ℓ(u, ·) in σ units; computed on first use, then cached.
  const std::vector<Dist>& approx_row(NodeId u);

  /// Batch-fills the first-level rows of every node in `nodes` that is
  /// not cached yet. With a pool, missing rows are chunked across
  /// workers (one Dijkstra workspace and reweighted CSR per chunk); the
  /// cached rows are identical either way, so downstream results never
  /// depend on the worker count. Call this once with the union of
  /// members before fanning `evaluate_set` out over a pool — it keeps
  /// the per-row mutex path contention-free.
  void ensure_rows(const std::vector<NodeId>& nodes,
                   runtime::ThreadPool* pool = nullptr);

  /// Same construction as build_skeleton but reading first-level rows
  /// from the cache.
  Skeleton skeleton(std::vector<NodeId> set);

  /// Trimmed construction for the Theorem 1.1 oracle: computes exactly
  /// the `SetEvaluation` a value query needs, in exactly the integers
  /// `skeleton(set)` would produce, but skips everything the oracle
  /// never reads — the exact overlay metric `overlay_dist1` (kept on
  /// `Skeleton` only to validate Observation 3.12), the `nearest_k`
  /// lists, the per-member row copies, and the `Skeleton` itself. The
  /// eccentricity scan precomputes, per target v, the smallest
  /// B(u,v) = σ″·d̃^ℓ(u,v) over hubs u (one b·n pass shared by all
  /// members) and visits targets in descending-B₁ order, so each
  /// member's max converges within the first few targets: a target whose
  /// best-B candidate cannot beat the running max is skipped outright,
  /// and the whole scan stops once even A_max(s) + B₁(v) cannot. When a
  /// target does need its exact minimum, hubs are scanned in ascending
  /// d̃″(s,u) order and the scan breaks at d̃″(s,u) + B₁(v) ≥ best. All
  /// bounds are monotone under the saturating `dist_add`, so the pruned
  /// integers equal the full scan's exactly.
  SetEvaluation evaluate_set(std::vector<NodeId> set, SetEvalWorkspace& ws);

  /// Number of cached first-level rows (reporting only).
  std::size_t cached_row_count() const;

  /// Delta-aware invalidation after an edge batch touching `endpoints`
  /// (sorted or not; the set of all endpoints of changed edges).
  /// Cached row u survives iff its entry for every endpoint is
  /// kInfDist: a scale-i capped search from u whose result an edge
  /// change could alter must settle one endpoint of the first changed
  /// edge on the path within the cap — in the old or the new graph —
  /// and the new-graph case reduces to the old by taking the first
  /// changed edge along the new path (its prefix uses old weights).
  /// So all-infinite endpoint entries certify the row exact. Returns
  /// the number of rows dropped. NOT thread-safe against concurrent
  /// readers — the service layer calls it under its exclusive
  /// per-graph update lock.
  std::size_t invalidate_rows(std::span<const NodeId> endpoints);

  /// Adopts fresh Params after a graph mutation when the row identity
  /// (ℓ, 1/ε, max weight) is unchanged — d̂ (and thus r, k) drift with
  /// topology, but rows depend only on the base scale, so surviving
  /// rows stay byte-exact. Returns false without changing anything
  /// when the identity differs; the caller must rebuild the cache.
  bool rebind_params(const Params& params);

 private:
  static constexpr std::size_t kRowShards = 16;

  void publish_row(NodeId u, std::vector<Dist>&& row);

  const WeightedGraph* g_;
  Params params_;
  HopScale base_scale_;
  std::vector<std::vector<Dist>> rows_;   // indexed by node; empty = unset
  /// rows_[u] is readable iff row_ready_[u] (acquire) is nonzero.
  std::unique_ptr<std::atomic<std::uint8_t>[]> row_ready_;
  mutable std::array<std::mutex, kRowShards> row_mutex_;
};

}  // namespace qc::paths
