// Centralized reference implementation of Nanongkai's toolkit quantities
// (Lemma 3.2 and Lemma 3.3 of the paper).
//
// Everything is computed in exact fixed-point integer units (see
// params.h): first-level approximate distances d̃^ℓ carry a factor
// σ = 2·ℓ·eps_inv; second-level (overlay) approximate distances carry
// σ·σ″ with σ″ = 2·ℓ″·eps_inv. The distributed implementations in
// distributed.h compute the same integers via CONGEST messages; tests
// assert bit-exact agreement.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "paths/params.h"
#include "util/mathx.h"

namespace qc::paths {

/// d̃^ℓ_{G,w}(s, ·) in σ-scaled units (Lemma 3.2):
///   min_i { d_{G,w_i}(s,v) · 2^i  :  d_{G,w_i}(s,v) <= (1+2/ε)·ℓ }
/// kInfDist where no scale is eligible.
std::vector<Dist> approx_bounded_hop_from(const WeightedGraph& g, NodeId s,
                                          const HopScale& scale);

/// Lemma 3.2 on an abstract complete-ish graph given as a distance
/// matrix `w` (kInfDist entries = no edge). Returns the full matrix of
/// approximate ℓ-hop distances, in σ(scale)-scaled units *relative to
/// the units of `w`*.
std::vector<std::vector<Dist>> approx_bounded_hop_matrix(
    const std::vector<std::vector<Dist>>& w, const HopScale& scale);

/// Exact Dijkstra on a dense matrix graph (kInfDist = no edge).
std::vector<Dist> dijkstra_matrix(const std::vector<std::vector<Dist>>& w,
                                  std::uint32_t s);

/// Hop diameter of a dense matrix graph under its weights: the maximum,
/// over connected pairs, of the minimum edge count among weight-shortest
/// paths. Used to check the k-shortcut property (Theorem 3.10 of [21])
/// that Lemma 3.3's proof relies on: H_{G″,w″} < 4·|S|/k.
Dist hop_diameter_matrix(const std::vector<std::vector<Dist>>& w);

/// All skeleton structures of Lemma 3.3 for one vertex set S.
struct Skeleton {
  Params params;
  std::vector<NodeId> members;  ///< S, sorted ascending

  HopScale base_scale;     ///< Lemma 3.2 scale on G (units: w)
  HopScale overlay_scale;  ///< Lemma 3.2 scale on G″ (units: σ·w)

  /// approx_hop[a][v] = d̃^ℓ_{G,w}(S[a], v), σ units.
  std::vector<std::vector<Dist>> approx_hop;
  /// overlay_w1[a][b] = w′_S({S[a],S[b]}) = d̃^ℓ(S[a],S[b]), σ units.
  std::vector<std::vector<Dist>> overlay_w1;
  /// overlay_dist1[a][b] = d_{G′_S,w′_S}(S[a],S[b]), σ units.
  std::vector<std::vector<Dist>> overlay_dist1;
  /// nearest_k[a] = indices (into members) of the k closest other
  /// members of a on (G′_S, w′_S), ties broken by index.
  std::vector<std::vector<std::uint32_t>> nearest_k;
  /// overlay_w2[a][b] = w″_S({S[a],S[b]}), σ units.
  std::vector<std::vector<Dist>> overlay_w2;
  /// overlay_approx[a][b] = d̃^{ℓ″}_{G″,w″}(S[a],S[b]), σ·σ″ units.
  std::vector<std::vector<Dist>> overlay_approx;

  std::size_t size() const { return members.size(); }

  /// σ·σ″ — the fixed-point scale of approx_distance values.
  std::uint64_t total_scale() const {
    return base_scale.sigma() * overlay_scale.sigma();
  }

  /// d̃_{G,w,S}(S[s_idx], v) in σ·σ″ units (Lemma 3.3):
  ///   min_u { d̃″(s,u) + σ″ · d̃^ℓ(u,v) }.
  Dist approx_distance(std::uint32_t s_idx, NodeId v) const;

  /// ẽ_{G,w,S}(S[s_idx]) = max_v d̃_{G,w,S}(S[s_idx], v), σ·σ″ units.
  Dist approx_eccentricity(std::uint32_t s_idx) const;
};

/// Builds every Lemma 3.3 structure for the set S (must be non-empty,
/// sorted or not — it is sorted internally).
Skeleton build_skeleton(const WeightedGraph& g, const Params& params,
                        std::vector<NodeId> set);

/// Shared backend for building many skeletons on the same (G, w, Params):
/// the first-level rows d̃^ℓ(u, ·) depend only on the member u (ℓ and ε
/// are global), so they are computed once per distinct member across all
/// sets. Used by the Theorem 1.1 driver, which needs n skeletons.
class ToolkitCache {
 public:
  ToolkitCache(const WeightedGraph& g, const Params& params);

  const WeightedGraph& graph() const { return *g_; }
  const Params& params() const { return params_; }
  const HopScale& base_scale() const { return base_scale_; }

  /// d̃^ℓ(u, ·) in σ units; computed on first use, then cached.
  const std::vector<Dist>& approx_row(NodeId u);

  /// Same construction as build_skeleton but reading first-level rows
  /// from the cache.
  Skeleton skeleton(std::vector<NodeId> set);

 private:
  const WeightedGraph* g_;
  Params params_;
  HopScale base_scale_;
  std::vector<std::vector<Dist>> rows_;   // indexed by node; empty = unset
  std::vector<bool> has_row_;
};

}  // namespace qc::paths
