// Distributed (CONGEST) implementations of Nanongkai's toolkit —
// Algorithms 1–5 of the paper's Appendix A.
//
// Each algorithm runs genuinely on the simulator: message-level, with
// the per-edge bandwidth cap enforced. The returned values are exact
// integers in the same fixed-point units as the centralized reference
// (reference.h); tests assert bit-exact agreement.
//
// Composition style: Algorithms 4 and 5 are *phase orchestrations* —
// sequences of engine runs (floods, aggregates, multiplexed SSSPs) whose
// round counts are summed. Phase boundaries are deterministic given
// values every node knows (fixed scale schedules; the per-round
// announcement count a that Algorithm 5 explicitly disseminates), so the
// free end-of-run detection of the engine does not hide real rounds
// beyond constants.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "congest/primitives.h"
#include "congest/simulator.h"
#include "paths/params.h"
#include "util/rng.h"

namespace qc::paths {

/// Thrown when a randomized algorithm hits its (low-probability) failure
/// event — e.g. Algorithm 3's per-window message budget overflows.
/// Wrappers catch it and retry with fresh randomness, counting the
/// wasted rounds. Alias of congest::AlgorithmFailure (primitives and
/// orchestrations share one failure type).
using AlgorithmFailure = congest::AlgorithmFailure;

/// One request object for every `distributed_*` entry point, replacing
/// their historically repeated (source, cap, weight_of, scale, sources,
/// rng, params, config) parameter lists. Every field is defaulted;
/// populate the ones your algorithm reads — each entry point documents
/// which — directly or with the fluent with_* setters:
///
///   auto res = distributed_bounded_hop_sssp(
///       g, RunRequest{}.with_source(0).with_scale(scale).with_config(cfg));
///
/// Fault plans ride along in `config.faults` (with_faults is a
/// shortcut), so every Appendix A algorithm can run under fault
/// injection without signature changes.
struct RunRequest {
  /// Engine configuration, faults included (congest/simulator.h).
  congest::Config config;
  /// Source node (Algorithms 1-2).
  NodeId source = 0;
  /// Distance cap for bounded-distance SSSP (Algorithm 2).
  Dist cap = 0;
  /// Edge-weight transform for bounded-distance SSSP; empty = identity.
  std::function<std::uint64_t(Weight)> weight_of;
  /// Hop/scale schedule (Algorithms 1 and 3).
  HopScale scale{};
  /// Source set (Algorithms 3-4).
  std::vector<NodeId> sources;
  /// Private randomness for Algorithm 3's delays (borrowed, required by
  /// distributed_multi_source_bhs only).
  Rng* rng = nullptr;
  /// Paper parameters (Algorithms 4-5; borrowed, must outlive the call).
  const Params* params = nullptr;
  /// Overlay index of the SSSP source (Algorithm 5).
  std::uint32_t overlay_source = 0;

  RunRequest& with_config(congest::Config c) {
    config = std::move(c);
    return *this;
  }
  RunRequest& with_faults(congest::FaultPlan plan) {
    config.faults = std::move(plan);
    return *this;
  }
  RunRequest& with_source(NodeId s) {
    source = s;
    return *this;
  }
  RunRequest& with_cap(Dist c) {
    cap = c;
    return *this;
  }
  RunRequest& with_weight_of(std::function<std::uint64_t(Weight)> f) {
    weight_of = std::move(f);
    return *this;
  }
  RunRequest& with_scale(const HopScale& s) {
    scale = s;
    return *this;
  }
  RunRequest& with_sources(std::vector<NodeId> s) {
    sources = std::move(s);
    return *this;
  }
  RunRequest& with_rng(Rng& r) {
    rng = &r;
    return *this;
  }
  RunRequest& with_params(const Params& p) {
    params = &p;
    return *this;
  }
  RunRequest& with_overlay_source(std::uint32_t idx) {
    overlay_source = idx;
    return *this;
  }
};

/// Algorithm 2: Bounded-Distance SSSP. Every node learns
/// d_{G,f(w)}(s, ·) when it is <= cap (else kInfDist), in cap+2 rounds.
/// `weight_of(w)` transforms the stored edge weight (identity for plain
/// runs, Lemma 3.2 rounding for Algorithm 1's scales).
struct BoundedDistanceResult {
  congest::RunStats stats;
  std::vector<Dist> dist;  ///< dist[v], capped
};
/// Reads req.source, req.cap, req.weight_of (empty = identity) and
/// req.config.
BoundedDistanceResult distributed_bounded_distance_sssp(
    const WeightedGraph& g, const RunRequest& req);

/// Algorithm 1: Bounded-Hop SSSP. Every node learns d̃^ℓ(s, ·) in
/// σ(scale)-scaled units, in scale_count · (cap+2) rounds.
struct BoundedHopResult {
  congest::RunStats stats;
  std::vector<Dist> approx;  ///< d̃^ℓ(s, v), σ units
};
/// Reads req.source, req.scale and req.config.
BoundedHopResult distributed_bounded_hop_sssp(const WeightedGraph& g,
                                              const RunRequest& req);

/// Algorithm 3: Bounded-Hop Multi-Source Shortest Paths via random
/// delays. Every node v learns d̃^ℓ(s, v) for every s in `sources`.
/// Retries internally on the algorithm's failure event (new delays),
/// summing rounds across attempts.
struct MultiSourceResult {
  congest::RunStats stats;
  std::uint32_t attempts = 1;
  /// approx[a][v] = d̃^ℓ(sources[a], v), σ units.
  std::vector<std::vector<Dist>> approx;
};
/// Reads req.sources, req.scale, req.rng (required) and req.config.
MultiSourceResult distributed_multi_source_bhs(const WeightedGraph& g,
                                               const RunRequest& req);

/// Algorithm 4: embedding the k-shortcut overlay network (G″_S, w″_S).
/// Inputs are Algorithm 3's outputs. On return, member a's row of w″ is
/// what node sources[a] knows locally in the real execution; H (the
/// union of flooded k-shortest stars) and N^k are known to every node.
struct OverlayEmbedding {
  congest::RunStats stats;
  std::vector<NodeId> sources;
  /// w1[a][c] = w′({a,c}) = d̃^ℓ, σ units (known to endpoints).
  std::vector<std::vector<Dist>> w1;
  /// nearest_k[a]: indices of a's k nearest overlay nodes (all nodes
  /// can compute this from the flood — Observation 3.12).
  std::vector<std::vector<std::uint32_t>> nearest_k;
  /// w2[a][c] = w″({a,c}), σ units (member a knows its row).
  std::vector<std::vector<Dist>> w2;
  /// max over w2 entries — disseminated to everyone (needed for the
  /// scale count of Algorithm 5); computed by a global aggregate.
  std::uint64_t max_w2 = 1;
};
/// Reads req.sources, req.params (required) and req.config;
/// `approx_rows` stays a positional argument (it is Algorithm 3's
/// output data, not run configuration).
OverlayEmbedding distributed_embed_overlay(
    const WeightedGraph& g, const std::vector<std::vector<Dist>>& approx_rows,
    const RunRequest& req);

/// Algorithm 5: SSSP on the overlay network, simulated on G. Every node
/// learns d̃^{ℓ″}_{G″,w″}(source, u) for every overlay node u, in σ·σ″
/// units.
struct OverlaySsspResult {
  congest::RunStats stats;
  std::vector<Dist> approx;  ///< indexed by overlay index, σ·σ″ units
};
/// Reads req.params (required), req.overlay_source and req.config;
/// `overlay` stays positional (Algorithm 4's output data).
OverlaySsspResult distributed_overlay_sssp(const WeightedGraph& g,
                                           const OverlayEmbedding& overlay,
                                           const RunRequest& req);

}  // namespace qc::paths
