// Distributed (CONGEST) implementations of Nanongkai's toolkit —
// Algorithms 1–5 of the paper's Appendix A.
//
// Each algorithm runs genuinely on the simulator: message-level, with
// the per-edge bandwidth cap enforced. The returned values are exact
// integers in the same fixed-point units as the centralized reference
// (reference.h); tests assert bit-exact agreement.
//
// Composition style: Algorithms 4 and 5 are *phase orchestrations* —
// sequences of engine runs (floods, aggregates, multiplexed SSSPs) whose
// round counts are summed. Phase boundaries are deterministic given
// values every node knows (fixed scale schedules; the per-round
// announcement count a that Algorithm 5 explicitly disseminates), so the
// free end-of-run detection of the engine does not hide real rounds
// beyond constants.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "congest/primitives.h"
#include "congest/simulator.h"
#include "paths/params.h"
#include "util/rng.h"

namespace qc::paths {

/// Thrown when a randomized algorithm hits its (low-probability) failure
/// event — e.g. Algorithm 3's per-window message budget overflows.
/// Wrappers catch it and retry with fresh randomness, counting the
/// wasted rounds.
class AlgorithmFailure : public std::runtime_error {
 public:
  explicit AlgorithmFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// Algorithm 2: Bounded-Distance SSSP. Every node learns
/// d_{G,f(w)}(s, ·) when it is <= cap (else kInfDist), in cap+2 rounds.
/// `weight_of(w)` transforms the stored edge weight (identity for plain
/// runs, Lemma 3.2 rounding for Algorithm 1's scales).
struct BoundedDistanceResult {
  congest::RunStats stats;
  std::vector<Dist> dist;  ///< dist[v], capped
};
BoundedDistanceResult distributed_bounded_distance_sssp(
    const WeightedGraph& g, NodeId source, Dist cap,
    const std::function<std::uint64_t(Weight)>& weight_of,
    congest::Config config = {});

/// Algorithm 1: Bounded-Hop SSSP. Every node learns d̃^ℓ(s, ·) in
/// σ(scale)-scaled units, in scale_count · (cap+2) rounds.
struct BoundedHopResult {
  congest::RunStats stats;
  std::vector<Dist> approx;  ///< d̃^ℓ(s, v), σ units
};
BoundedHopResult distributed_bounded_hop_sssp(const WeightedGraph& g,
                                              NodeId source,
                                              const HopScale& scale,
                                              congest::Config config = {});

/// Algorithm 3: Bounded-Hop Multi-Source Shortest Paths via random
/// delays. Every node v learns d̃^ℓ(s, v) for every s in `sources`.
/// Retries internally on the algorithm's failure event (new delays),
/// summing rounds across attempts.
struct MultiSourceResult {
  congest::RunStats stats;
  std::uint32_t attempts = 1;
  /// approx[a][v] = d̃^ℓ(sources[a], v), σ units.
  std::vector<std::vector<Dist>> approx;
};
MultiSourceResult distributed_multi_source_bhs(const WeightedGraph& g,
                                               const std::vector<NodeId>& sources,
                                               const HopScale& scale,
                                               Rng& rng,
                                               congest::Config config = {});

/// Algorithm 4: embedding the k-shortcut overlay network (G″_S, w″_S).
/// Inputs are Algorithm 3's outputs. On return, member a's row of w″ is
/// what node sources[a] knows locally in the real execution; H (the
/// union of flooded k-shortest stars) and N^k are known to every node.
struct OverlayEmbedding {
  congest::RunStats stats;
  std::vector<NodeId> sources;
  /// w1[a][c] = w′({a,c}) = d̃^ℓ, σ units (known to endpoints).
  std::vector<std::vector<Dist>> w1;
  /// nearest_k[a]: indices of a's k nearest overlay nodes (all nodes
  /// can compute this from the flood — Observation 3.12).
  std::vector<std::vector<std::uint32_t>> nearest_k;
  /// w2[a][c] = w″({a,c}), σ units (member a knows its row).
  std::vector<std::vector<Dist>> w2;
  /// max over w2 entries — disseminated to everyone (needed for the
  /// scale count of Algorithm 5); computed by a global aggregate.
  std::uint64_t max_w2 = 1;
};
OverlayEmbedding distributed_embed_overlay(
    const WeightedGraph& g, const std::vector<NodeId>& sources,
    const std::vector<std::vector<Dist>>& approx_rows, const Params& params,
    congest::Config config = {});

/// Algorithm 5: SSSP on the overlay network, simulated on G. Every node
/// learns d̃^{ℓ″}_{G″,w″}(source, u) for every overlay node u, in σ·σ″
/// units.
struct OverlaySsspResult {
  congest::RunStats stats;
  std::vector<Dist> approx;  ///< indexed by overlay index, σ·σ″ units
};
OverlaySsspResult distributed_overlay_sssp(const WeightedGraph& g,
                                           const OverlayEmbedding& overlay,
                                           const Params& params,
                                           std::uint32_t source_idx,
                                           congest::Config config = {});

}  // namespace qc::paths
