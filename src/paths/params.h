// Parameter selection of Eq. (1) in the paper, and the fixed-point
// scaling used to keep every approximate distance an exact integer.
//
//   ε = 1/log n,  r = n^{2/5} · D^{-1/5},  ℓ = n·log n / r,  k = √D.
//
// We take ε = 1/eps_inv with eps_inv = ⌈log₂ n⌉ (an integer), so the
// Lemma 3.2 rounded weights  w_i(e) = ⌈2ℓ·w(e)/(ε·2^i)⌉ = ⌈σ·w(e)/2^i⌉
// with σ = 2·ℓ·eps_inv are exact integers, and the approximate
// bounded-hop distance
//   d̃^ℓ(u,v) = min_i { d_{G,w_i}(u,v) · ε·2^i/(2ℓ) }
// becomes, in σ-scaled units, min_i { d_{G,w_i}(u,v) · 2^i } — again an
// exact integer. All toolkit quantities are carried in such scaled
// units; `Params` centralizes the scales so distributed and centralized
// implementations agree bit-for-bit.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/mathx.h"

namespace qc::paths {

/// Eq. (1) parameters for an n-node network with unweighted diameter D.
struct Params {
  std::uint32_t n = 0;
  std::uint64_t unweighted_diameter = 0;  ///< D_G
  std::uint32_t eps_inv = 1;  ///< 1/ε = ⌈log₂ n⌉ (≥ 1)
  std::uint64_t r = 1;        ///< skeleton sampling size target
  std::uint64_t ell = 1;      ///< hop bound ℓ, clamped to [1, n]
  std::uint64_t k = 1;        ///< shortcut degree k = ⌈√D⌉

  /// Derives all parameters from (n, D) per Eq. (1). Clamps:
  /// r into [1, n]; ℓ into [1, n] (hop distances never exceed n-1, so a
  /// larger ℓ is equivalent); k into [1, n]. `eps_inv_override` != 0
  /// replaces the default 1/ε = ⌈log₂ n⌉ (ℓ scales with it, per ℓ =
  /// n·ε⁻¹/r).
  static Params make(std::uint32_t n, std::uint64_t unweighted_diameter,
                     std::uint32_t eps_inv_override = 0);

  /// σ = 2·ℓ·eps_inv — the fixed-point scale of first-level approximate
  /// distances (Lemma 3.2 applied to G).
  std::uint64_t sigma() const { return 2 * ell * eps_inv; }

  /// Number of weight scales i ∈ [0, scales) for Lemma 3.2 on a graph
  /// with max weight W: enough that the top scale rounds every edge
  /// weight to 1.
  std::uint32_t scale_count(std::uint64_t max_weight) const;

  /// Eligibility cap L = (1 + 2/ε)·ℓ on rounded distances (Lemma 3.2).
  std::uint64_t rounded_cap() const { return (1 + 2 * eps_inv) * ell; }

  /// Overlay hop bound ℓ″ = ⌈4·|S|/k⌉ (Lemma 3.3), at least 1.
  std::uint64_t overlay_ell(std::uint64_t set_size) const {
    return std::max<std::uint64_t>(1, ceil_div(4 * set_size, k));
  }

  /// Combined fixed-point scale σ·σ″ of a skeleton built for a set of
  /// `set_size` members — what `Skeleton::total_scale()` returns — without
  /// building anything. σ″ = 2·ℓ″·eps_inv depends only on |S| (the
  /// overlay's max weight influences its *scale count*, never σ″), so the
  /// Theorem 1.1 driver can renormalize all n oracle values after an O(1)
  /// pass over set sizes instead of n skeleton constructions.
  std::uint64_t total_scale(std::uint64_t set_size) const {
    return sigma() * 2 * overlay_ell(set_size) * eps_inv;
  }

  /// ε as a double — for reporting approximation ratios only; never used
  /// in distance arithmetic.
  double epsilon() const { return 1.0 / static_cast<double>(eps_inv); }
};

/// Generic Lemma 3.2 scaling context for an arbitrary positive-integer-
/// weighted graph (used once on G and once on the overlay G″).
struct HopScale {
  std::uint64_t ell = 1;       ///< hop bound
  std::uint32_t eps_inv = 1;   ///< 1/ε
  std::uint64_t max_weight = 1;

  std::uint64_t sigma() const { return 2 * ell * eps_inv; }
  std::uint64_t rounded_cap() const { return (1 + 2 * eps_inv) * ell; }
  std::uint32_t scale_count() const {
    // Smallest count such that 2^(scales-1) >= sigma * max_weight, i.e.
    // the last scale rounds every weight to 1.
    return clog2(sigma() * max_weight) + 1;
  }
  /// w_i(e) = ⌈σ·w/2^i⌉.
  std::uint64_t rounded_weight(std::uint64_t w, std::uint32_t i) const {
    return ceil_div(sigma() * w, std::uint64_t{1} << i);
  }
};

}  // namespace qc::paths
