#include "paths/params.h"

#include <algorithm>
#include <cmath>

namespace qc::paths {

Params Params::make(std::uint32_t n, std::uint64_t unweighted_diameter,
                    std::uint32_t eps_inv_override) {
  QC_REQUIRE(n >= 2, "Params::make needs n >= 2");
  QC_REQUIRE(unweighted_diameter >= 1, "Params::make needs D >= 1");
  Params p;
  p.n = n;
  p.unweighted_diameter = unweighted_diameter;
  p.eps_inv = eps_inv_override != 0 ? eps_inv_override
                                    : std::max<std::uint32_t>(1, clog2(n));

  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(unweighted_diameter);
  // r = n^{2/5} D^{-1/5}, rounded, clamped to [1, n].
  const double r_raw = std::pow(nd, 0.4) * std::pow(dd, -0.2);
  p.r = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(r_raw)), 1, n);
  // ell = n log n / r, clamped to [1, n]: hop distances are < n, so any
  // larger bound is equivalent and only wastes rounds.
  const double ell_raw =
      nd * static_cast<double>(p.eps_inv) / static_cast<double>(p.r);
  p.ell = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(ell_raw)), 1, n);
  // k = ceil(sqrt(D)).
  p.k = std::clamp<std::uint64_t>(csqrt(unweighted_diameter), 1, n);
  return p;
}

std::uint32_t Params::scale_count(std::uint64_t max_weight) const {
  HopScale hs{ell, eps_inv, max_weight};
  return hs.scale_count();
}

}  // namespace qc::paths
