#include "paths/distributed.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "paths/reference.h"

namespace qc::paths {

namespace {

using congest::Config;
using congest::FloodItem;
using congest::Incoming;
using congest::Message;
using congest::NodeContext;
using congest::NodeProgram;
using congest::RunStats;

void accumulate(RunStats& total, const RunStats& part) {
  total.rounds += part.rounds;
  total.messages += part.messages;
  total.bits += part.bits;
}

/// Conservative global bound on any σ-scaled d̃ value (and on shortcut
/// weights derived from them): every node can compute it from n, W and
/// the scale, which the model assumes are common knowledge. Used to size
/// message fields a priori.
std::uint64_t scaled_distance_bound(const WeightedGraph& g,
                                    const HopScale& scale) {
  const std::uint64_t n = g.node_count();
  const std::uint64_t w = scale.max_weight;
  const std::uint64_t sigma = scale.sigma();
  // d̃ <= (1+ε)·d^ℓ·σ <= 2·σ·n·W; shortcut paths concatenate < n of them.
  const std::uint64_t per_edge = 2 * sigma * n * w;
  QC_CHECK(per_edge / (2 * sigma) == n * w, "scaled distance bound overflow");
  return per_edge * n;
}

// ---------------------------------------------------------------------
// Algorithm 2: Bounded-Distance SSSP ("timed release": a node announces
// its distance exactly in round d(s,v), so with positive integer
// weights every announcement is final).
// ---------------------------------------------------------------------
class BoundedDistanceProgram final : public NodeProgram {
 public:
  BoundedDistanceProgram(NodeId source, Dist cap,
                         const std::function<std::uint64_t(Weight)>& weight_of,
                         std::uint32_t dist_bits)
      : source_(source),
        cap_(cap),
        weight_of_(&weight_of),
        dist_bits_(dist_bits) {}

  void on_start(NodeContext& ctx) override {
    // Rounded weights in slot order, so arrivals index it directly via
    // ctx.neighbor_slot (senders are always neighbours).
    rounded_.reserve(ctx.neighbors().size());
    for (const HalfEdge& h : ctx.neighbors()) {
      rounded_.push_back((*weight_of_)(h.weight));
    }
    if (ctx.id() == source_) best_ = 0;
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      const Dist via =
          dist_add(in.msg.field(0), rounded_[ctx.neighbor_slot(in.from)]);
      best_ = std::min(best_, via);
    }
    if (!announced_ && best_ == round_ && best_ <= cap_) {
      announced_ = true;
      Message m;
      m.push(best_, dist_bits_);
      ctx.broadcast(m);
    }
    ++round_;
  }

  bool done() const override { return round_ >= cap_ + 2; }

  Dist final_dist() const { return best_ <= cap_ ? best_ : kInfDist; }

 private:
  NodeId source_;
  Dist cap_;
  const std::function<std::uint64_t(Weight)>* weight_of_;
  std::uint32_t dist_bits_;
  std::vector<std::uint64_t> rounded_;  ///< by neighbour slot
  Dist best_ = kInfDist;
  Dist round_ = 0;
  bool announced_ = false;
};

// ---------------------------------------------------------------------
// Algorithm 1: Bounded-Hop SSSP — one Algorithm 2 pass per weight scale,
// on a fixed synchronous schedule of (cap+2) rounds per scale.
// ---------------------------------------------------------------------
class BoundedHopProgram final : public NodeProgram {
 public:
  BoundedHopProgram(NodeId source, const HopScale& scale,
                    std::uint32_t dist_bits)
      : source_(source),
        scale_(scale),
        scales_(scale.scale_count()),
        cap_(scale.rounded_cap()),
        dist_bits_(dist_bits) {}

  void on_start(NodeContext& ctx) override {
    weights_.reserve(ctx.neighbors().size());
    for (const HalfEdge& h : ctx.neighbors()) {
      weights_.push_back(h.weight);
    }
    reset_scale(ctx.id());
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      const std::uint64_t w = scale_.rounded_weight(
          weights_[ctx.neighbor_slot(in.from)], scale_index_);
      best_ = std::min(best_, dist_add(in.msg.field(0), w));
    }
    if (!announced_ && best_ == offset_ && best_ <= cap_) {
      announced_ = true;
      Message m;
      m.push(best_, dist_bits_);
      ctx.broadcast(m);
    }
    ++offset_;
    if (offset_ == cap_ + 2) {
      finalize_scale();
      ++scale_index_;
      if (scale_index_ < scales_) reset_scale(ctx.id());
    }
  }

  bool done() const override { return scale_index_ >= scales_; }

  Dist approx() const { return dtilde_; }

 private:
  void reset_scale(NodeId me) {
    best_ = (me == source_) ? 0 : kInfDist;
    offset_ = 0;
    announced_ = false;
  }
  void finalize_scale() {
    if (best_ <= cap_) {
      const Dist shifted = best_ << scale_index_;
      QC_CHECK((shifted >> scale_index_) == best_ && shifted < kInfDist,
               "scaled distance overflow");
      dtilde_ = std::min(dtilde_, shifted);
    }
  }

  NodeId source_;
  HopScale scale_;
  std::uint32_t scales_;
  Dist cap_;
  std::uint32_t dist_bits_;
  std::vector<Weight> weights_;  ///< by neighbour slot
  std::uint32_t scale_index_ = 0;
  Dist best_ = kInfDist;
  Dist offset_ = 0;
  bool announced_ = false;
  Dist dtilde_ = kInfDist;
};

// ---------------------------------------------------------------------
// Algorithm 3: random-delay multiplexing of b Algorithm-1 executions.
//
// Logical time is divided into windows of `slot_count` physical rounds.
// Instance a starts at window delays[a] and follows Algorithm 1's fixed
// schedule (scales × (cap+2) windows). Announcements due in a window
// are queued at its slot 0 and transmitted one per slot; more than
// `slot_count` due messages is the algorithm's failure event.
// ---------------------------------------------------------------------
class MultiSourceProgram final : public NodeProgram {
 public:
  MultiSourceProgram(const std::vector<NodeId>& sources,
                     const std::vector<std::uint64_t>& delays,
                     const HopScale& scale, std::uint32_t slot_count)
      : sources_(&sources),
        delays_(&delays),
        scale_(scale),
        scales_(scale.scale_count()),
        cap_(scale.rounded_cap()),
        period_(cap_ + 2),
        slot_count_(slot_count),
        inst_bits_(bits_for(sources.size() + 1)),
        dist_bits_(bits_for(cap_ + 2)) {
    t_logical_ = scales_ * period_;
    const std::uint64_t max_delay =
        *std::max_element(delays.begin(), delays.end());
    total_windows_ = max_delay + t_logical_ + 1;
    const std::size_t b = sources.size();
    cur_.assign(b, kInfDist);
    announced_.assign(b, false);
    dtilde_.assign(b, kInfDist);
  }

  void on_start(NodeContext& ctx) override {
    weights_.reserve(ctx.neighbors().size());
    for (const HalfEdge& h : ctx.neighbors()) {
      weights_.push_back(h.weight);
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    const std::uint64_t window = local_round_ / slot_count_;
    const std::uint64_t slot = local_round_ % slot_count_;

    if (slot == 0) {
      // Per-instance schedule updates: finalize completed scales, reset
      // state at scale starts, enqueue due announcements.
      for (std::size_t a = 0; a < sources_->size(); ++a) {
        if (window < (*delays_)[a]) continue;
        const std::uint64_t tau = window - (*delays_)[a];
        if (tau > t_logical_) continue;
        if (tau > 0 && tau % period_ == 0) {
          // Scale (tau/period - 1) just ended.
          finalize_scale(a, static_cast<std::uint32_t>(tau / period_ - 1));
        }
        if (tau == t_logical_) continue;  // instance finished
        if (tau % period_ == 0) {
          cur_[a] = (ctx.id() == (*sources_)[a]) ? 0 : kInfDist;
          announced_[a] = false;
        }
      }
    }

    // Relax with this round's arrivals. An arrival for instance a in
    // window w belongs to scale (w - delay)/period — announcements are
    // never sent at a scale's last offset, so arrivals cannot leak
    // across scale boundaries (see distributed.h header comment).
    for (const Incoming& in : inbox) {
      const std::size_t a = static_cast<std::size_t>(in.msg.field(0));
      QC_CHECK(a < sources_->size(), "bad instance tag");
      QC_CHECK(window >= (*delays_)[a], "arrival before instance start");
      const std::uint64_t tau = window - (*delays_)[a];
      QC_CHECK(tau < t_logical_, "arrival after instance end");
      const Dist via =
          dist_add(in.msg.field(1),
                   scale_.rounded_weight(
                       weights_[ctx.neighbor_slot(in.from)],
                       static_cast<std::uint32_t>(tau / period_)));
      cur_[a] = std::min(cur_[a], via);
    }

    if (slot == 0) {
      // Announcement checks for this window.
      for (std::size_t a = 0; a < sources_->size(); ++a) {
        if (window < (*delays_)[a]) continue;
        const std::uint64_t tau = window - (*delays_)[a];
        if (tau >= t_logical_) continue;
        const std::uint64_t offset = tau % period_;
        if (!announced_[a] && cur_[a] == offset && cur_[a] <= cap_) {
          announced_[a] = true;
          Message m;
          m.push(a, inst_bits_).push(cur_[a], dist_bits_);
          queue_.push_back(std::move(m));
        }
      }
      if (queue_.size() > slot_count_) {
        throw AlgorithmFailure(
            "Algorithm 3: more than ceil(log n) announcements due in one "
            "window at node " +
            std::to_string(ctx.id()));
      }
    }

    if (!queue_.empty()) {
      ctx.broadcast(queue_.front());
      queue_.erase(queue_.begin());
    }
    ++local_round_;
  }

  bool done() const override {
    return local_round_ >= total_windows_ * slot_count_;
  }

  Dist approx(std::size_t a) const { return dtilde_[a]; }

 private:
  void finalize_scale(std::size_t a, std::uint32_t j) {
    if (cur_[a] <= cap_) {
      const Dist shifted = cur_[a] << j;
      QC_CHECK((shifted >> j) == cur_[a] && shifted < kInfDist,
               "scaled distance overflow");
      dtilde_[a] = std::min(dtilde_[a], shifted);
    }
  }

  const std::vector<NodeId>* sources_;
  const std::vector<std::uint64_t>* delays_;
  HopScale scale_;
  std::uint32_t scales_;
  Dist cap_;
  std::uint64_t period_;
  std::uint64_t slot_count_;
  std::uint32_t inst_bits_;
  std::uint32_t dist_bits_;
  std::uint64_t t_logical_ = 0;
  std::uint64_t total_windows_ = 0;
  std::vector<Weight> weights_;  ///< by neighbour slot
  std::vector<Dist> cur_;
  std::vector<bool> announced_;
  std::vector<Dist> dtilde_;
  std::vector<Message> queue_;
  std::uint64_t local_round_ = 0;
};

}  // namespace

BoundedDistanceResult distributed_bounded_distance_sssp(
    const WeightedGraph& g, const RunRequest& req) {
  const NodeId source = req.source;
  const Dist cap = req.cap;
  const std::function<std::uint64_t(Weight)> weight_of =
      req.weight_of ? req.weight_of
                    : [](Weight w) { return static_cast<std::uint64_t>(w); };
  const Config& config = req.config;
  QC_REQUIRE(source < g.node_count(), "source out of range");
  const std::uint32_t dist_bits = bits_for(cap + 2);
  auto run = congest::run_on_all<BoundedDistanceProgram>(
      g,
      [&](NodeId) {
        return std::make_unique<BoundedDistanceProgram>(source, cap,
                                                        weight_of, dist_bits);
      },
      config);
  BoundedDistanceResult out;
  out.stats = run.stats;
  out.dist.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.dist.push_back(run.at(v).final_dist());
  }
  return out;
}

BoundedHopResult distributed_bounded_hop_sssp(const WeightedGraph& g,
                                              const RunRequest& req) {
  const NodeId source = req.source;
  const HopScale& scale = req.scale;
  const Config& config = req.config;
  QC_REQUIRE(source < g.node_count(), "source out of range");
  const std::uint32_t dist_bits = bits_for(scale.rounded_cap() + 2);
  auto run = congest::run_on_all<BoundedHopProgram>(
      g,
      [&](NodeId) {
        return std::make_unique<BoundedHopProgram>(source, scale, dist_bits);
      },
      config);
  BoundedHopResult out;
  out.stats = run.stats;
  out.approx.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.approx.push_back(run.at(v).approx());
  }
  return out;
}

MultiSourceResult distributed_multi_source_bhs(const WeightedGraph& g,
                                               const RunRequest& req) {
  QC_REQUIRE(req.rng != nullptr,
             "Algorithm 3 needs RunRequest::rng (with_rng) for its delays");
  const std::vector<NodeId>& sources = req.sources;
  const HopScale& scale = req.scale;
  Rng& rng = *req.rng;
  const Config& config = req.config;
  QC_REQUIRE(!sources.empty(), "Algorithm 3 needs at least one source");
  const NodeId n = g.node_count();
  const std::size_t b = sources.size();
  const std::uint32_t slot_count = std::max<std::uint32_t>(1, clog2(n));

  MultiSourceResult out;
  for (std::uint32_t attempt = 1;; ++attempt) {
    // The leader samples the delays and disseminates them by pipelined
    // flooding (O(D + b) rounds), as in the paper's Algorithm 3 step 2.
    std::vector<std::uint64_t> delays(b);
    const std::uint64_t delay_range = b * slot_count + 1;
    for (auto& d : delays) d = rng.below(delay_range);

    std::vector<std::vector<FloodItem>> items(n);
    const std::uint32_t idx_bits = bits_for(b + 1);
    const std::uint32_t delay_bits = bits_for(delay_range + 1);
    for (std::size_t a = 0; a < b; ++a) {
      FloodItem item;
      item.push(a, idx_bits).push(delays[a], delay_bits);
      items[0].push_back(std::move(item));  // leader = node 0
    }
    accumulate(out.stats,
               congest::flood_items(g, std::move(items), config,
                                    congest::FloodCollect::kStatsOnly)
                   .stats);

    try {
      auto run = congest::run_on_all<MultiSourceProgram>(
          g,
          [&](NodeId) {
            return std::make_unique<MultiSourceProgram>(sources, delays,
                                                        scale, slot_count);
          },
          config);
      accumulate(out.stats, run.stats);
      out.attempts = attempt;
      out.approx.assign(b, std::vector<Dist>(n, kInfDist));
      for (NodeId v = 0; v < n; ++v) {
        for (std::size_t a = 0; a < b; ++a) {
          out.approx[a][v] = run.at(v).approx(a);
        }
      }
      return out;
    } catch (const AlgorithmFailure&) {
      // Charge the full scheduled duration of the failed attempt, then
      // retry with fresh delays (failure probability <= 1/poly(n)).
      const std::uint64_t period = scale.rounded_cap() + 2;
      const std::uint64_t t_logical = scale.scale_count() * period;
      out.stats.rounds += (b * slot_count + t_logical + 1) * slot_count;
      QC_CHECK(attempt < 64, "Algorithm 3 failed too many times");
    }
  }
}

OverlayEmbedding distributed_embed_overlay(
    const WeightedGraph& g, const std::vector<std::vector<Dist>>& approx_rows,
    const RunRequest& req) {
  QC_REQUIRE(req.params != nullptr,
             "Algorithm 4 needs RunRequest::params (with_params)");
  const std::vector<NodeId>& sources = req.sources;
  const Params& params = *req.params;
  const Config& config = req.config;
  const std::size_t b = sources.size();
  QC_REQUIRE(b >= 1, "overlay needs at least one member");
  QC_REQUIRE(approx_rows.size() == b, "one approx row per member");
  const NodeId n = g.node_count();

  OverlayEmbedding out;
  out.sources = sources;

  // w1 rows: member a reads d̃(S[c], a) from its Algorithm-3 output. d̃
  // is symmetric in exact arithmetic; symmetrize defensively.
  out.w1.assign(b, std::vector<Dist>(b, kInfDist));
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = 0; c < b; ++c) {
      if (a != c) out.w1[a][c] = approx_rows[c][sources[a]];
    }
  }
  for (std::size_t a = 0; a < b; ++a) {
    for (std::size_t c = a + 1; c < b; ++c) {
      const Dist m = std::min(out.w1[a][c], out.w1[c][a]);
      out.w1[a][c] = out.w1[c][a] = m;
    }
  }

  const std::size_t kk =
      static_cast<std::size_t>(std::min<std::uint64_t>(params.k, b - 1));

  // Step 1: each member floods its k shortest incident overlay edges.
  const HopScale base{params.ell, params.eps_inv, g.max_weight()};
  const std::uint64_t w_bound = scaled_distance_bound(g, base);
  const std::uint32_t idx_bits = bits_for(b + 1);
  const std::uint32_t w_bits = bits_for(w_bound + 1);

  std::vector<std::vector<FloodItem>> items(n);
  for (std::size_t a = 0; a < b; ++a) {
    std::vector<std::uint32_t> order;
    for (std::uint32_t c = 0; c < b; ++c) {
      if (c != a && out.w1[a][c] < kInfDist) order.push_back(c);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair(out.w1[a][x], x) <
                       std::pair(out.w1[a][y], y);
              });
    if (order.size() > kk) order.resize(kk);
    for (const std::uint32_t c : order) {
      FloodItem item;
      item.push(a, idx_bits).push(c, idx_bits).push(out.w1[a][c], w_bits);
      items[sources[a]].push_back(std::move(item));
    }
  }
  auto flood = congest::flood_items(g, std::move(items), config,
                                    congest::FloodCollect::kFirstNode);
  accumulate(out.stats, flood.stats);

  // Every node now holds the same star union H; reconstruct it from the
  // flood output of node 0 (tests assert all nodes agree).
  std::vector<std::vector<Dist>> h(b, std::vector<Dist>(b, kInfDist));
  for (const FloodItem& item : flood.items_at[0]) {
    const auto a = static_cast<std::size_t>(item.field(0));
    const auto c = static_cast<std::size_t>(item.field(1));
    const Dist w = item.field(2);
    QC_CHECK(a < b && c < b && a != c, "malformed overlay edge item");
    h[a][c] = std::min(h[a][c], w);
    h[c][a] = std::min(h[c][a], w);
  }

  // Observation 3.12: N^k and the shortcut distances are computed
  // locally from H (identically at every node).
  out.nearest_k.assign(b, {});
  out.w2 = out.w1;
  for (std::size_t a = 0; a < b; ++a) {
    const auto dh = dijkstra_matrix(h, static_cast<std::uint32_t>(a));
    std::vector<std::uint32_t> order(b);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair(dh[x], x) < std::pair(dh[y], y);
              });
    for (const std::uint32_t c : order) {
      if (c == a || dh[c] >= kInfDist) continue;
      if (out.nearest_k[a].size() == kk) break;
      out.nearest_k[a].push_back(c);
      out.w2[a][c] = std::min(out.w2[a][c], dh[c]);
      out.w2[c][a] = std::min(out.w2[c][a], dh[c]);
    }
  }

  // Disseminate max w″ (for Algorithm 5's scale count) by a global
  // aggregate; partial values are bounded by w_bound.
  std::vector<std::uint64_t> inputs(n, 0);
  for (std::size_t a = 0; a < b; ++a) {
    std::uint64_t row_max = 0;
    for (std::size_t c = 0; c < b; ++c) {
      if (c != a && out.w2[a][c] < kInfDist) {
        row_max = std::max(row_max, out.w2[a][c]);
      }
    }
    inputs[sources[a]] = std::max(inputs[sources[a]], row_max);
  }
  auto agg = congest::global_aggregate(g, 0, inputs, congest::AggregateOp::kMax,
                                       w_bits, config);
  accumulate(out.stats, agg.stats);
  out.max_w2 = std::max<std::uint64_t>(1, agg.value);
  return out;
}

OverlaySsspResult distributed_overlay_sssp(const WeightedGraph& g,
                                           const OverlayEmbedding& overlay,
                                           const RunRequest& req) {
  QC_REQUIRE(req.params != nullptr,
             "Algorithm 5 needs RunRequest::params (with_params)");
  const Params& params = *req.params;
  const std::uint32_t source_idx = req.overlay_source;
  const Config& config = req.config;
  const std::size_t b = overlay.sources.size();
  QC_REQUIRE(source_idx < b, "overlay source out of range");
  const NodeId n = g.node_count();

  const HopScale hs{params.overlay_ell(b), params.eps_inv, overlay.max_w2};
  const Dist cap = hs.rounded_cap();
  const std::uint32_t scales = hs.scale_count();
  const std::uint32_t idx_bits = bits_for(b + 1);
  const std::uint32_t d_bits = bits_for(cap + 2);

  OverlaySsspResult out;
  out.approx.assign(b, kInfDist);

  // Conceptually, cur[a] lives at node overlay.sources[a]; relaxations
  // use only a's own w″ row plus globally flooded announcements, so the
  // dataflow matches the real distributed execution exactly.
  //
  // Most of the scales·(cap+1) overlay rounds announce nothing: their
  // counting aggregate runs with all-zero inputs, and the simulator is
  // deterministic, so one such run stands for all of them. The cache is
  // bypassed under a fault plan, whose injected effects are the point of
  // running every aggregate for real.
  std::optional<congest::AggregateResult> zero_agg;
  const bool cache_zero_agg = config.faults.empty();
  std::vector<Dist> cur(b, kInfDist);
  for (std::uint32_t j = 0; j < scales; ++j) {
    std::fill(cur.begin(), cur.end(), kInfDist);
    cur[source_idx] = 0;
    std::vector<bool> announced(b, false);
    for (Dist offset = 0; offset <= cap; ++offset) {
      // Overlay round: collect due announcements.
      std::vector<std::pair<std::uint32_t, Dist>> due;
      for (std::uint32_t a = 0; a < b; ++a) {
        if (!announced[a] && cur[a] == offset) {
          announced[a] = true;
          due.emplace_back(a, cur[a]);
        }
      }
      // "Count a and make every node know a in O(D_G) rounds."
      if (due.empty() && cache_zero_agg) {
        if (!zero_agg) {
          zero_agg = congest::global_aggregate(
              g, 0, std::vector<std::uint64_t>(n, 0),
              congest::AggregateOp::kSum, idx_bits, config);
          QC_CHECK(zero_agg->value == 0, "announcement count mismatch");
        }
        accumulate(out.stats, zero_agg->stats);
        continue;
      }
      std::vector<std::uint64_t> counts(n, 0);
      for (const auto& [a, d] : due) counts[overlay.sources[a]] += 1;
      auto agg = congest::global_aggregate(
          g, 0, counts, congest::AggregateOp::kSum, idx_bits, config);
      accumulate(out.stats, agg.stats);
      QC_CHECK(agg.value == due.size(), "announcement count mismatch");
      if (due.empty()) continue;

      // Broadcast the announcements to all nodes (O(D_G + a) rounds).
      std::vector<std::vector<FloodItem>> items(n);
      for (const auto& [a, d] : due) {
        FloodItem item;
        item.push(a, idx_bits).push(d, d_bits);
        items[overlay.sources[a]].push_back(std::move(item));
      }
      accumulate(out.stats,
                 congest::flood_items(g, std::move(items), config,
                                      congest::FloodCollect::kStatsOnly)
                     .stats);

      // Every node records the announcement; overlay members relax
      // their own state with their private w″ row.
      for (const auto& [a, d] : due) {
        const Dist shifted = d << j;
        QC_CHECK((shifted >> j) == d && shifted < kInfDist,
                 "scaled distance overflow");
        out.approx[a] = std::min(out.approx[a], shifted);
        for (std::uint32_t c = 0; c < b; ++c) {
          if (c == a || overlay.w2[c][a] >= kInfDist) continue;
          const Dist via =
              dist_add(d, hs.rounded_weight(overlay.w2[c][a], j));
          cur[c] = std::min(cur[c], via);
        }
      }
    }
  }
  return out;
}

}  // namespace qc::paths
