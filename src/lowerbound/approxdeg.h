// Exact ε-approximate degree via linear programming (Lemma 4.6).
//
// deg_ε(f) is the least degree of a real polynomial p with
// |p(x) − f(x)| ≤ ε on every boolean input. For a fixed degree the
// minimax error is a linear program; we binary-scan the degree.
//
// Two backends:
//  * symmetric functions — by Minsky–Papert symmetrization the optimum
//    is attained by a univariate polynomial in |x| evaluated on the
//    Hamming levels 0..k, so the LP has k+1 points (Chebyshev basis for
//    conditioning). Scales to k in the hundreds: enough to reproduce
//    the Θ(√k) law of Lemma 4.6 quantitatively.
//  * general functions — multilinear monomial basis over all 2^k
//    inputs; exact but exponential, for k ≤ 10.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace qc::lb {

/// Outcome of a dense two-phase simplex solve of
///   min c'x  s.t.  Ax = b, x >= 0.
struct SimplexResult {
  bool feasible = false;
  bool bounded = false;
  double objective = 0;
  std::vector<double> x;
};

/// Dense two-phase simplex with Bland's rule. Small-problem workhorse —
/// exposed for testing.
SimplexResult simplex_solve(std::vector<std::vector<double>> a,
                            std::vector<double> b, std::vector<double> c);

/// Least worst-case error over the points:
///   min_c max_i | Σ_j basis[i][j]·c_j − target[i] |.
double minimax_error(const std::vector<std::vector<double>>& basis,
                     const std::vector<double>& target);

/// deg_ε of a symmetric function given by its values on Hamming levels
/// 0..k (size k+1, entries in [0,1]).
std::uint32_t approx_degree_symmetric(const std::vector<double>& levels,
                                      double eps);

/// deg_ε of an arbitrary boolean function given as a truth table over
/// `vars` variables (index bit v = variable v). vars <= 10.
std::uint32_t approx_degree(const std::vector<std::uint8_t>& table,
                            std::size_t vars, double eps);

/// Convenience: levels vector of AND_k / OR_k.
std::vector<double> and_levels(std::size_t k);
std::vector<double> or_levels(std::size_t k);

}  // namespace qc::lb
