#include "lowerbound/server.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"

namespace qc::lb {

namespace {

/// Truncated BFS flood: announce-depth wave for a fixed number of
/// rounds — a representative algorithm to drive the simulation lemma
/// (any algorithm works; the lemma is about the network, not the task).
class TruncatedBfsProgram final : public congest::NodeProgram {
 public:
  TruncatedBfsProgram(NodeId root, std::uint64_t rounds,
                      std::uint32_t depth_bits)
      : root_(root), rounds_(rounds), depth_bits_(depth_bits) {}

  void on_start(congest::NodeContext& ctx) override {
    if (ctx.id() == root_) {
      depth_ = 0;
      congest::Message m;
      m.push(0, depth_bits_);
      ctx.broadcast(m);
    }
  }

  void on_round(congest::NodeContext& ctx,
                std::span<const congest::Incoming> inbox) override {
    for (const auto& in : inbox) {
      if (depth_ == kInfDist) {
        depth_ = in.msg.field(0) + 1;
        if (round_ + 1 < rounds_) {
          congest::Message m;
          m.push(depth_, depth_bits_);
          ctx.broadcast(m);
        }
      }
    }
    ++round_;
  }

  bool done() const override { return round_ >= rounds_; }

 private:
  NodeId root_;
  std::uint64_t rounds_;
  std::uint32_t depth_bits_;
  Dist depth_ = kInfDist;
  std::uint64_t round_ = 0;
};

}  // namespace

SimulationSchedule::SimulationSchedule(const Gadget& gadget)
    : gadget_(&gadget) {}

std::uint64_t SimulationSchedule::horizon() const {
  return std::uint64_t{1} << (gadget_->params().h - 1);
}

Owner SimulationSchedule::owner(std::uint64_t r, NodeId v) const {
  const Side side = gadget_->side(v);
  if (side == Side::kAlice) return Owner::kAlice;
  if (side == Side::kBob) return Owner::kBob;
  QC_REQUIRE(r < horizon(), "schedule round beyond horizon");
  if (r == 0) return Owner::kServer;

  const auto& p = gadget_->params();
  const std::uint64_t row = std::uint64_t{1} << p.h;  // 2^h

  // Locate v inside V_S. Paths: server keeps 1-based j in
  // [1+r, 2^h - r], Alice takes the left of it, Bob the right.
  // Tree depth d: server keeps 1-based j in
  // [ceil((1+r)/2^{h-d}), ceil((2^h - r)/2^{h-d})].
  const NodeId tree_count =
      static_cast<NodeId>((std::uint64_t{1} << (p.h + 1)) - 1);
  if (v < tree_count) {
    // depth = floor(log2(v+1)), index within level.
    std::uint32_t d = 0;
    NodeId base = 0;
    while (base + (NodeId{1} << d) <= v) {
      base += NodeId{1} << d;
      ++d;
    }
    const std::uint64_t j1 = (v - base) + 1;  // 1-based index in level
    const std::uint64_t denom = std::uint64_t{1} << (p.h - d);
    const std::uint64_t lo = ceil_div(1 + r, denom);
    const std::uint64_t hi = ceil_div(row - r, denom);
    if (j1 < lo) return Owner::kAlice;
    if (j1 > hi) return Owner::kBob;
    return Owner::kServer;
  }
  // Path node: position within its path.
  const std::uint64_t offset = v - tree_count;
  const std::uint64_t j1 = offset % row + 1;  // 1-based position
  if (j1 < 1 + r) return Owner::kAlice;
  if (j1 > row - r) return Owner::kBob;
  return Owner::kServer;
}

ServerSimulationReport meter_server_simulation(
    const Gadget& gadget, const std::vector<congest::TraceEntry>& trace,
    std::uint64_t rounds) {
  const SimulationSchedule schedule(gadget);
  QC_REQUIRE(rounds + 1 < schedule.horizon(),
             "execution too long for the Lemma 4.1 schedule (T < 2^h/2)");

  ServerSimulationReport rep;
  rep.rounds = rounds;
  rep.per_round_bound = 2 * gadget.params().h;
  std::vector<std::uint64_t> charged_in_round(rounds + 2, 0);

  const NodeId tree_count =
      static_cast<NodeId>((std::uint64_t{1} << (gadget.params().h + 1)) - 1);

  for (const auto& entry : trace) {
    ++rep.total_messages;
    // A message sent during round k is consumed while owners have
    // advanced to the end-of-round-(k+1) partition.
    const Owner from_owner = schedule.owner(entry.round, entry.from);
    const Owner to_owner = schedule.owner(entry.round + 1, entry.to);
    if (to_owner == Owner::kAlice && from_owner == Owner::kBob) {
      rep.partition_sound = false;
    }
    if (to_owner == Owner::kBob && from_owner == Owner::kAlice) {
      rep.partition_sound = false;
    }
    if (to_owner == Owner::kServer && from_owner != Owner::kServer) {
      ++rep.charged_messages;
      rep.charged_bits += entry.bits;
      ++charged_in_round[entry.round];
      if (entry.to >= tree_count) rep.charged_only_tree = false;
    }
  }
  rep.max_charged_in_round = *std::max_element(charged_in_round.begin(),
                                               charged_in_round.end());
  rep.within_bound =
      rep.charged_messages <= rep.per_round_bound * (rounds + 1) &&
      rep.max_charged_in_round <= rep.per_round_bound;
  return rep;
}

ServerSimulationReport run_and_meter_bfs(const Gadget& gadget,
                                         std::uint64_t rounds, NodeId root) {
  const WeightedGraph& g = gadget.graph();
  if (root == kAnyRoot) root = gadget.root();
  QC_REQUIRE(root < g.node_count(), "root out of range");
  congest::Config cfg;
  cfg.record_trace = true;
  const std::uint32_t depth_bits = bits_for(g.node_count());

  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  programs.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(
        std::make_unique<TruncatedBfsProgram>(root, rounds, depth_bits));
  }
  congest::Simulator sim(g, cfg);
  const auto stats = sim.run(programs);
  return meter_server_simulation(gadget, sim.trace(), stats.rounds);
}

namespace {

ReductionCheck check_reduction(const GadgetParams& params,
                               const PairInput& input, bool radius,
                               bool use_full_graph) {
  ReductionCheck out;
  out.f_value = radius ? eval_f_prime(input) : eval_f(input);

  Weight alpha;
  Weight beta;
  std::uint64_t n_full;
  Dist measured;
  Dist slack = 0;  // additive +n window when measuring the full graph
  if (use_full_graph) {
    const Gadget gadget(params, input, radius);
    alpha = gadget.alpha();
    beta = gadget.beta();
    n_full = gadget.graph().node_count();
    measured = radius ? weighted_radius(gadget.graph())
                      : weighted_diameter(gadget.graph());
    slack = n_full;
  } else {
    const ContractedGadget contracted(params, input, radius);
    alpha = contracted.alpha();
    beta = contracted.beta();
    n_full = params.node_count() + (radius ? 1 : 0);
    measured = radius ? weighted_radius(contracted.graph())
                      : weighted_diameter(contracted.graph());
  }

  out.measured = measured;
  out.threshold_low = std::min(alpha + beta, 3 * alpha);
  out.threshold_high = std::max(2 * alpha, beta) + slack;
  out.gap_respected = out.f_value ? (measured <= out.threshold_high)
                                  : (measured >= out.threshold_low);

  // Distinguishability: with α=n², β=2n² a (3/2−ε)-approximation
  // (here ε = 1/4) of any true value ≤ max{2α,β}+n stays strictly
  // below min{α+β,3α} = 3n², so the two cases separate.
  const double approx_ceiling =
      (1.5 - 0.25) * static_cast<double>(std::max(2 * alpha, beta) +
                                         static_cast<Dist>(n_full));
  out.distinguishable =
      approx_ceiling <
      static_cast<double>(std::min(alpha + beta, 3 * alpha));
  return out;
}

}  // namespace

ReductionCheck check_diameter_reduction(const GadgetParams& params,
                                        const PairInput& input,
                                        bool use_full_graph) {
  return check_reduction(params, input, false, use_full_graph);
}

ReductionCheck check_radius_reduction(const GadgetParams& params,
                                      const PairInput& input,
                                      bool use_full_graph) {
  return check_reduction(params, input, true, use_full_graph);
}

double theorem42_round_bound(const GadgetParams& params,
                             std::uint32_t bandwidth) {
  const double inputs = static_cast<double>(std::uint64_t{1} << params.s) *
                        static_cast<double>(params.ell);
  return std::sqrt(inputs) /
         (static_cast<double>(params.h) * static_cast<double>(bandwidth));
}

}  // namespace qc::lb
