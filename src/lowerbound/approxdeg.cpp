#include "lowerbound/approxdeg.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qc::lb {

namespace {
constexpr double kEps = 1e-9;
constexpr double kCostTol = 1e-7;
constexpr double kPivotTol = 1e-7;

/// One simplex phase on an m×n tableau in canonical form: basis holds
/// the basic variable of each row. Dantzig pivoting with a Bland
/// fallback for anti-cycling; ratio-test ties pick the largest pivot
/// for numerical stability. `objective_bounded_below` marks phases
/// whose objective provably cannot be unbounded (phase 1): there, a
/// "no leaving row" outcome is numerical noise and treated as
/// convergence.
bool run_phase(std::vector<std::vector<double>>& t,
               std::vector<std::size_t>& basis, std::size_t m,
               std::size_t n, bool objective_bounded_below) {
  constexpr std::size_t kBlandAfter = 2000;
  for (std::size_t iter = 0; iter < 100000; ++iter) {
    // Entering column.
    std::size_t enter = n;
    if (iter < kBlandAfter) {
      double most_negative = -kCostTol;
      for (std::size_t j = 0; j < n; ++j) {
        if (t[m][j] < most_negative) {
          most_negative = t[m][j];
          enter = j;
        }
      }
    } else {  // Bland's rule
      for (std::size_t j = 0; j < n; ++j) {
        if (t[m][j] < -kCostTol) {
          enter = j;
          break;
        }
      }
    }
    if (enter == n) return true;  // optimal

    // Ratio test; among (near-)ties prefer the largest pivot element.
    std::size_t leave = m;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][enter] > kPivotTol) {
        const double ratio = t[i][n] / t[i][enter];
        if (ratio < best - kEps) {
          best = ratio;
          leave = i;
        } else if (ratio < best + kEps && leave != m &&
                   t[i][enter] > t[leave][enter]) {
          leave = i;
        }
      }
    }
    if (leave == m) {
      // No admissible pivot. For a bounded-below objective this is a
      // numerical artifact of the tolerance; accept the current point.
      return objective_bounded_below;
    }
    // Pivot.
    const double piv = t[leave][enter];
    for (double& v : t[leave]) v /= piv;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == leave) continue;
      const double factor = t[i][enter];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j <= n; ++j) {
        t[i][j] -= factor * t[leave][j];
      }
    }
    basis[leave] = enter;
  }
  throw InvariantError("simplex did not converge (cycling?)");
}

}  // namespace

SimplexResult simplex_solve(std::vector<std::vector<double>> a,
                            std::vector<double> b, std::vector<double> c) {
  const std::size_t m = a.size();
  QC_REQUIRE(b.size() == m, "b size mismatch");
  const std::size_t n = m == 0 ? c.size() : a[0].size();
  QC_REQUIRE(c.size() == n, "c size mismatch");

  // Ensure b >= 0.
  for (std::size_t i = 0; i < m; ++i) {
    QC_REQUIRE(a[i].size() == n, "ragged constraint matrix");
    if (b[i] < 0) {
      b[i] = -b[i];
      for (double& v : a[i]) v = -v;
    }
  }

  // Tableau with artificial variables: columns [x (n) | artificials (m) | rhs].
  const std::size_t cols = n + m;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols + 1, 0));
  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = a[i][j];
    t[i][n + i] = 1.0;
    t[i][cols] = b[i];
    basis[i] = n + i;
  }
  // Phase 1 objective: minimize sum of artificials.
  for (std::size_t j = 0; j < m; ++j) t[m][n + j] = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= cols; ++j) t[m][j] -= t[i][j];
  }

  SimplexResult out;
  if (!run_phase(t, basis, m, cols, /*objective_bounded_below=*/true)) {
    throw InvariantError("phase-1 LP unbounded (impossible)");
  }
  if (t[m][cols] < -1e-6) {
    out.feasible = false;
    return out;
  }
  out.feasible = true;

  // Drive any artificial variables out of the basis where possible.
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) continue;
    std::size_t enter = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (std::abs(t[i][j]) > kEps) {
        enter = j;
        break;
      }
    }
    if (enter == n) continue;  // redundant row
    const double piv = t[i][enter];
    for (double& v : t[i]) v /= piv;
    for (std::size_t r = 0; r <= m; ++r) {
      if (r == i) continue;
      const double factor = t[r][enter];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j <= cols; ++j) t[r][j] -= factor * t[i][j];
    }
    basis[i] = enter;
  }

  // Phase 2: real objective; forbid artificial columns by pricing them
  // out (set huge cost via removal: zero their columns).
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = n; j < cols; ++j) t[i][j] = 0;
  }
  for (std::size_t j = 0; j <= cols; ++j) t[m][j] = 0;
  for (std::size_t j = 0; j < n; ++j) t[m][j] = c[j];
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n && std::abs(c[basis[i]]) > 0) {
      const double factor = c[basis[i]];
      for (std::size_t j = 0; j <= cols; ++j) t[m][j] -= factor * t[i][j];
    }
  }
  if (!run_phase(t, basis, m, cols, /*objective_bounded_below=*/false)) {
    out.bounded = false;
    return out;
  }
  out.bounded = true;
  out.objective = -t[m][cols];
  out.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) out.x[basis[i]] = t[i][cols];
  }
  return out;
}

double minimax_error(const std::vector<std::vector<double>>& basis,
                     const std::vector<double>& target) {
  const std::size_t points = basis.size();
  QC_REQUIRE(points >= 1 && target.size() == points,
             "basis/target size mismatch");
  const std::size_t nb = basis[0].size();
  // Variables: c+ (nb), c- (nb), t (1), slacks (2·points).
  const std::size_t n = 2 * nb + 1 + 2 * points;
  std::vector<std::vector<double>> a(2 * points, std::vector<double>(n, 0));
  std::vector<double> b(2 * points);
  for (std::size_t i = 0; i < points; ++i) {
    QC_REQUIRE(basis[i].size() == nb, "ragged basis");
    //  Σ c_j B_ij − t + s1 = f_i
    // −Σ c_j B_ij − t + s2 = −f_i
    for (std::size_t j = 0; j < nb; ++j) {
      a[2 * i][j] = basis[i][j];
      a[2 * i][nb + j] = -basis[i][j];
      a[2 * i + 1][j] = -basis[i][j];
      a[2 * i + 1][nb + j] = basis[i][j];
    }
    a[2 * i][2 * nb] = -1.0;
    a[2 * i + 1][2 * nb] = -1.0;
    a[2 * i][2 * nb + 1 + 2 * i] = 1.0;
    a[2 * i + 1][2 * nb + 1 + 2 * i + 1] = 1.0;
    // Deterministic O(1e-10) perturbation: boolean targets make the LP
    // massively degenerate (many ties in the ratio test), which can
    // stall the simplex; the perturbation breaks ties and moves the
    // optimum by far less than the 1e-7 decision threshold.
    const double jiggle = 1e-10 * static_cast<double>((i * 31 + 7) % 101);
    b[2 * i] = target[i] + jiggle;
    b[2 * i + 1] = -target[i] + jiggle;
  }
  std::vector<double> c(n, 0.0);
  c[2 * nb] = 1.0;  // minimize t
  const auto res = simplex_solve(std::move(a), std::move(b), std::move(c));
  QC_CHECK(res.feasible && res.bounded, "minimax LP must be solvable");
  return res.objective;
}

namespace {
/// Chebyshev polynomial values T_j(z) for z in [-1, 1].
double chebyshev(std::size_t j, double z) {
  if (j == 0) return 1.0;
  double prev = 1.0;
  double cur = z;
  for (std::size_t i = 1; i < j; ++i) {
    const double next = 2 * z * cur - prev;
    prev = cur;
    cur = next;
  }
  return cur;
}
}  // namespace

std::uint32_t approx_degree_symmetric(const std::vector<double>& levels,
                                      double eps) {
  QC_REQUIRE(!levels.empty(), "levels must be non-empty");
  QC_REQUIRE(eps > 0 && eps < 0.5, "eps must be in (0, 1/2)");
  const std::size_t k = levels.size() - 1;
  for (std::uint32_t d = 0; d <= k; ++d) {
    std::vector<std::vector<double>> basis(k + 1,
                                           std::vector<double>(d + 1));
    for (std::size_t u = 0; u <= k; ++u) {
      const double z =
          k == 0 ? 0.0 : 2.0 * static_cast<double>(u) / static_cast<double>(k) - 1.0;
      for (std::uint32_t j = 0; j <= d; ++j) basis[u][j] = chebyshev(j, z);
    }
    if (minimax_error(basis, levels) <= eps + 1e-7) return d;
  }
  return static_cast<std::uint32_t>(k);  // degree k always suffices
}

std::uint32_t approx_degree(const std::vector<std::uint8_t>& table,
                            std::size_t vars, double eps) {
  QC_REQUIRE(vars >= 1 && vars <= 10, "general backend supports 1..10 vars");
  QC_REQUIRE(table.size() == (std::size_t{1} << vars), "table size mismatch");
  QC_REQUIRE(eps > 0 && eps < 0.5, "eps must be in (0, 1/2)");
  const std::size_t points = table.size();
  std::vector<double> target(points);
  for (std::size_t i = 0; i < points; ++i) target[i] = table[i] ? 1.0 : 0.0;

  // Monomial subsets grouped by degree.
  std::vector<std::size_t> subsets;
  for (std::size_t mset = 0; mset < points; ++mset) subsets.push_back(mset);
  std::sort(subsets.begin(), subsets.end(), [](std::size_t a, std::size_t b) {
    const int pa = __builtin_popcountll(a);
    const int pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });

  for (std::uint32_t d = 0; d <= vars; ++d) {
    std::vector<std::size_t> cols;
    for (const std::size_t sset : subsets) {
      if (static_cast<std::uint32_t>(__builtin_popcountll(sset)) <= d) {
        cols.push_back(sset);
      }
    }
    std::vector<std::vector<double>> basis(points,
                                           std::vector<double>(cols.size()));
    for (std::size_t x = 0; x < points; ++x) {
      for (std::size_t j = 0; j < cols.size(); ++j) {
        // Monomial Π_{v in S} x_v evaluated at x: 1 iff S ⊆ x.
        basis[x][j] = ((x & cols[j]) == cols[j]) ? 1.0 : 0.0;
      }
    }
    if (minimax_error(basis, target) <= eps + 1e-7) return d;
  }
  return static_cast<std::uint32_t>(vars);
}

std::vector<double> and_levels(std::size_t k) {
  std::vector<double> v(k + 1, 0.0);
  v[k] = 1.0;
  return v;
}

std::vector<double> or_levels(std::size_t k) {
  std::vector<double> v(k + 1, 1.0);
  v[0] = 0.0;
  return v;
}

}  // namespace qc::lb
