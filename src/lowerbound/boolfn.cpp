#include "lowerbound/boolfn.h"

#include <algorithm>

namespace qc::lb {

PairInput random_input(std::size_t rows, std::size_t cols, Rng& rng) {
  PairInput in;
  in.rows = rows;
  in.cols = cols;
  in.x.resize(rows * cols);
  in.y.resize(rows * cols);
  for (auto& b : in.x) b = rng.chance(0.5);
  for (auto& b : in.y) b = rng.chance(0.5);
  return in;
}

PairInput input_all_hit(std::size_t rows, std::size_t cols, Rng& rng) {
  PairInput in = random_input(rows, cols, rng);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t j = rng.below(cols);
    in.x[i * cols + j] = 1;
    in.y[i * cols + j] = 1;
  }
  return in;
}

PairInput input_one_row_miss(std::size_t rows, std::size_t cols,
                             std::size_t miss_row, Rng& rng) {
  QC_REQUIRE(miss_row < rows, "miss_row out of range");
  PairInput in = input_all_hit(rows, cols, rng);
  for (std::size_t j = 0; j < cols; ++j) {
    // Kill every common 1 in the miss row (zero y there).
    in.y[miss_row * cols + j] = 0;
  }
  return in;
}

bool eval_f(const PairInput& in) {
  for (std::size_t i = 0; i < in.rows; ++i) {
    bool row = false;
    for (std::size_t j = 0; j < in.cols && !row; ++j) {
      row = in.xb(i, j) && in.yb(i, j);
    }
    if (!row) return false;
  }
  return true;
}

bool eval_f_prime(const PairInput& in) {
  for (std::size_t i = 0; i < in.rows; ++i) {
    for (std::size_t j = 0; j < in.cols; ++j) {
      if (in.xb(i, j) && in.yb(i, j)) return true;
    }
  }
  return false;
}

bool eval_gdt(std::uint8_t x4, std::uint8_t y4) {
  return (x4 & y4 & 0xF) != 0;
}

bool eval_ver(std::uint8_t x, std::uint8_t y) {
  QC_REQUIRE(x < 4 && y < 4, "VER inputs must be in {0,1,2,3}");
  const std::uint8_t s = static_cast<std::uint8_t>((x + y) % 4);
  return s == 0 || s == 1;
}

std::uint8_t ver_promise_x(std::uint8_t x) {
  QC_REQUIRE(x < 4, "promise input must be in {0,1,2,3}");
  // Strings 0011, 1001, 1100, 0110 read left-to-right as bits 3..0.
  static constexpr std::uint8_t kEnc[4] = {0b0011, 0b1001, 0b1100, 0b0110};
  return kEnc[x];
}

std::uint8_t ver_promise_y(std::uint8_t y) {
  QC_REQUIRE(y < 4, "promise input must be in {0,1,2,3}");
  // Strings 0001, 0010, 0100, 1000.
  static constexpr std::uint8_t kEnc[4] = {0b0001, 0b0010, 0b0100, 0b1000};
  return kEnc[y];
}

bool Formula::eval(const std::vector<std::uint8_t>& bits) const {
  switch (kind) {
    case Kind::kVar:
      QC_REQUIRE(var < bits.size(), "formula variable out of range");
      return bits[var] != 0;
    case Kind::kNot:
      return !kids[0]->eval(bits);
    case Kind::kAnd:
      return std::all_of(kids.begin(), kids.end(),
                         [&](const auto& k) { return k->eval(bits); });
    case Kind::kOr:
      return std::any_of(kids.begin(), kids.end(),
                         [&](const auto& k) { return k->eval(bits); });
  }
  throw InvariantError("unreachable formula kind");
}

std::size_t Formula::leaf_count() const {
  if (kind == Kind::kVar) return 1;
  std::size_t total = 0;
  for (const auto& k : kids) total += k->leaf_count();
  return total;
}

namespace {
void collect_vars(const Formula& f, std::vector<std::size_t>& vars) {
  if (f.kind == Formula::Kind::kVar) {
    vars.push_back(f.var);
    return;
  }
  for (const auto& k : f.kids) collect_vars(*k, vars);
}
}  // namespace

bool Formula::is_read_once() const {
  std::vector<std::size_t> vars;
  collect_vars(*this, vars);
  std::sort(vars.begin(), vars.end());
  return std::adjacent_find(vars.begin(), vars.end()) == vars.end();
}

std::unique_ptr<Formula> Formula::make_var(std::size_t v) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kVar;
  f->var = v;
  return f;
}

std::unique_ptr<Formula> Formula::make_not(std::unique_ptr<Formula> k) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kNot;
  f->kids.push_back(std::move(k));
  return f;
}

std::unique_ptr<Formula> Formula::make_and(
    std::vector<std::unique_ptr<Formula>> kids) {
  QC_REQUIRE(!kids.empty(), "AND needs children");
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kAnd;
  f->kids = std::move(kids);
  return f;
}

std::unique_ptr<Formula> Formula::make_or(
    std::vector<std::unique_ptr<Formula>> kids) {
  QC_REQUIRE(!kids.empty(), "OR needs children");
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kOr;
  f->kids = std::move(kids);
  return f;
}

std::unique_ptr<Formula> and_of_ors(std::size_t m, std::size_t q) {
  QC_REQUIRE(m >= 1 && q >= 1, "and_of_ors needs m, q >= 1");
  std::vector<std::unique_ptr<Formula>> rows;
  rows.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::unique_ptr<Formula>> leaves;
    leaves.reserve(q);
    for (std::size_t j = 0; j < q; ++j) {
      leaves.push_back(Formula::make_var(i * q + j));
    }
    rows.push_back(Formula::make_or(std::move(leaves)));
  }
  return Formula::make_and(std::move(rows));
}

std::unique_ptr<Formula> or_of(std::size_t k) {
  QC_REQUIRE(k >= 1, "or_of needs k >= 1");
  std::vector<std::unique_ptr<Formula>> leaves;
  leaves.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    leaves.push_back(Formula::make_var(j));
  }
  return Formula::make_or(std::move(leaves));
}

namespace {
std::unique_ptr<Formula> random_read_once_range(std::size_t lo,
                                                std::size_t hi, Rng& rng) {
  const std::size_t count = hi - lo;
  if (count == 1) {
    auto leaf = Formula::make_var(lo);
    return rng.chance(0.2) ? Formula::make_not(std::move(leaf))
                           : std::move(leaf);
  }
  const std::size_t split = lo + 1 + rng.below(count - 1);
  std::vector<std::unique_ptr<Formula>> kids;
  kids.push_back(random_read_once_range(lo, split, rng));
  kids.push_back(random_read_once_range(split, hi, rng));
  return rng.chance(0.5) ? Formula::make_and(std::move(kids))
                         : Formula::make_or(std::move(kids));
}
}  // namespace

std::unique_ptr<Formula> random_read_once(std::size_t leaves, Rng& rng) {
  QC_REQUIRE(leaves >= 1, "need at least one leaf");
  return random_read_once_range(0, leaves, rng);
}

std::vector<std::uint8_t> truth_table(const Formula& f, std::size_t vars) {
  QC_REQUIRE(vars <= 20, "truth table too large");
  std::vector<std::uint8_t> table(std::size_t{1} << vars);
  std::vector<std::uint8_t> bits(vars);
  for (std::size_t m = 0; m < table.size(); ++m) {
    for (std::size_t v = 0; v < vars; ++v) bits[v] = (m >> v) & 1;
    table[m] = f.eval(bits);
  }
  return table;
}

}  // namespace qc::lb
