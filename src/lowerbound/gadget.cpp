#include "lowerbound/gadget.h"

namespace qc::lb {

GadgetParams GadgetParams::paper(std::uint32_t h) {
  QC_REQUIRE(h >= 2 && h % 2 == 0, "paper parameters need even h >= 2");
  GadgetParams p;
  p.h = h;
  p.s = 3 * h / 2;
  p.ell = std::uint32_t{1} << (p.s - h);
  // alpha/beta derived from the final node count in the constructor.
  return p;
}

namespace {
Weight derived_alpha(const GadgetParams& p) {
  if (p.alpha != 0) return p.alpha;
  const std::uint64_t n = p.node_count();
  return n * n;
}
Weight derived_beta(const GadgetParams& p) {
  if (p.beta != 0) return p.beta;
  const std::uint64_t n = p.node_count();
  return 2 * n * n;
}
}  // namespace

Gadget::Gadget(const GadgetParams& params, const PairInput& input,
               bool with_hub)
    : params_(params),
      with_hub_(with_hub),
      alpha_(derived_alpha(params)),
      beta_(derived_beta(params)) {
  QC_REQUIRE(params_.s >= 1 && params_.ell >= 1 && params_.h >= 1,
             "degenerate gadget parameters");
  QC_REQUIRE(input.rows == (std::size_t{1} << params_.s) &&
                 input.cols == params_.ell,
             "input must be 2^s x ell");
  QC_REQUIRE(alpha_ < beta_, "gadget needs alpha < beta");

  const std::uint64_t two_s = std::uint64_t{1} << params_.s;
  const std::uint64_t row = std::uint64_t{1} << params_.h;  // path length
  const std::uint32_t m = params_.paths();

  const std::uint64_t n_total = params_.node_count() + (with_hub ? 1 : 0);
  QC_REQUIRE(n_total <= (std::uint64_t{1} << 24),
             "gadget too large to materialize");
  graph_ = WeightedGraph(static_cast<NodeId>(n_total));
  side_.assign(n_total, Side::kServer);

  // Layout: [tree][paths][a_i][a_bits][a_stars][b_i][b_bits][b_stars][hub]
  tree_base_ = 0;
  path_base_ = static_cast<NodeId>((std::uint64_t{1} << (params_.h + 1)) - 1);
  a_base_ = static_cast<NodeId>(path_base_ + m * row);
  a_bit_base_ = static_cast<NodeId>(a_base_ + two_s);
  a_star_base_ = a_bit_base_ + 2 * params_.s;
  b_base_ = a_star_base_ + params_.ell;
  b_bit_base_ = static_cast<NodeId>(b_base_ + two_s);
  b_star_base_ = b_bit_base_ + 2 * params_.s;
  hub_ = b_star_base_ + params_.ell;

  for (NodeId v = a_base_; v < b_base_; ++v) side_[v] = Side::kAlice;
  for (NodeId v = b_base_; v < b_star_base_ + params_.ell; ++v) {
    side_[v] = Side::kBob;
  }
  if (with_hub) side_[hub_] = Side::kAlice;

  // --- V_S: tree ---
  for (std::uint32_t d = 1; d <= params_.h; ++d) {
    const std::uint64_t width = std::uint64_t{1} << d;
    for (std::uint64_t j = 0; j < width; ++j) {
      graph_.add_edge(tree(d, j), tree(d - 1, j / 2), 1);
    }
  }
  // --- V_S: paths, and leaf-to-path α edges ---
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j + 1 < row; ++j) {
      graph_.add_edge(path(i, j), path(i, j + 1), 1);
    }
    for (std::uint64_t j = 0; j < row; ++j) {
      graph_.add_edge(tree(params_.h, j), path(i, j), alpha_);
    }
  }

  // --- E': path endpoints to V_A / V_B (weight 1, "part of the paths").
  for (std::uint32_t j = 0; j < params_.s; ++j) {
    graph_.add_edge(a_bit(j, 0), path(2 * j, 0), 1);
    graph_.add_edge(b_bit(j, 1), path(2 * j, row - 1), 1);
    graph_.add_edge(a_bit(j, 1), path(2 * j + 1, 0), 1);
    graph_.add_edge(b_bit(j, 0), path(2 * j + 1, row - 1), 1);
  }
  for (std::uint32_t j = 0; j < params_.ell; ++j) {
    graph_.add_edge(a_star(j), path(2 * params_.s + j, 0), 1);
    graph_.add_edge(b_star(j), path(2 * params_.s + j, row - 1), 1);
  }

  // --- E_A / E_B ---
  for (std::uint64_t i = 0; i < two_s; ++i) {
    for (std::uint32_t j = 0; j < params_.s; ++j) {
      graph_.add_edge(a(i), a_bit(j, bin(i, j)), alpha_);
      graph_.add_edge(b(i), b_bit(j, bin(i, j)), alpha_);
    }
    for (std::uint32_t j = 0; j < params_.ell; ++j) {
      graph_.add_edge(a(i), a_star(j), input.xb(i, j) ? alpha_ : beta_);
      graph_.add_edge(b(i), b_star(j), input.yb(i, j) ? alpha_ : beta_);
    }
    for (std::uint64_t k = i + 1; k < two_s; ++k) {
      graph_.add_edge(a(i), a(k), alpha_);
      graph_.add_edge(b(i), b(k), alpha_);
    }
  }

  if (with_hub) {
    for (std::uint64_t i = 0; i < two_s; ++i) {
      graph_.add_edge(hub_, a(i), 2 * alpha_);
    }
  }
}

NodeId Gadget::tree(std::uint32_t depth, std::uint64_t j) const {
  QC_REQUIRE(depth <= params_.h && j < (std::uint64_t{1} << depth),
             "tree index out of range");
  return static_cast<NodeId>(tree_base_ + ((std::uint64_t{1} << depth) - 1) +
                             j);
}

NodeId Gadget::path(std::uint32_t i, std::uint64_t j) const {
  QC_REQUIRE(i < params_.paths() && j < (std::uint64_t{1} << params_.h),
             "path index out of range");
  return static_cast<NodeId>(path_base_ +
                             std::uint64_t{i} * (std::uint64_t{1} << params_.h) +
                             j);
}

NodeId Gadget::a(std::uint64_t i) const {
  QC_REQUIRE(i < (std::uint64_t{1} << params_.s), "a index out of range");
  return static_cast<NodeId>(a_base_ + i);
}

NodeId Gadget::b(std::uint64_t i) const {
  QC_REQUIRE(i < (std::uint64_t{1} << params_.s), "b index out of range");
  return static_cast<NodeId>(b_base_ + i);
}

NodeId Gadget::a_bit(std::uint32_t j, std::uint32_t bit) const {
  QC_REQUIRE(j < params_.s && bit <= 1, "a_bit index out of range");
  return a_bit_base_ + 2 * j + bit;
}

NodeId Gadget::b_bit(std::uint32_t j, std::uint32_t bit) const {
  QC_REQUIRE(j < params_.s && bit <= 1, "b_bit index out of range");
  return b_bit_base_ + 2 * j + bit;
}

NodeId Gadget::a_star(std::uint32_t j) const {
  QC_REQUIRE(j < params_.ell, "a_star index out of range");
  return a_star_base_ + j;
}

NodeId Gadget::b_star(std::uint32_t j) const {
  QC_REQUIRE(j < params_.ell, "b_star index out of range");
  return b_star_base_ + j;
}

NodeId Gadget::hub() const {
  QC_REQUIRE(with_hub_, "diameter gadget has no hub");
  return hub_;
}

Side Gadget::side(NodeId v) const {
  QC_REQUIRE(v < graph_.node_count(), "node out of range");
  return side_[v];
}

// ---------------------------------------------------------------------
// Contracted form (Figures 3/4)
// ---------------------------------------------------------------------

ContractedGadget::ContractedGadget(const GadgetParams& params,
                                   const PairInput& input, bool with_hub)
    : params_(params),
      with_hub_(with_hub),
      alpha_(derived_alpha(params)),
      beta_(derived_beta(params)) {
  const std::uint64_t two_s = std::uint64_t{1} << params_.s;
  const std::uint32_t m = params_.paths();
  QC_REQUIRE(input.rows == two_s && input.cols == params_.ell,
             "input must be 2^s x ell");

  const std::uint64_t n = 1 + m + 2 * two_s + (with_hub ? 1 : 0);
  graph_ = WeightedGraph(static_cast<NodeId>(n));

  // t—router edges.
  for (std::uint32_t i = 0; i < m; ++i) {
    graph_.add_edge(t(), router(i), alpha_);
  }
  for (std::uint64_t i = 0; i < two_s; ++i) {
    // a_i to its s bit-routers; b_i to the flipped ones.
    for (std::uint32_t j = 0; j < params_.s; ++j) {
      graph_.add_edge(a(i), router_bit(j, Gadget::bin(i, j)), alpha_);
      graph_.add_edge(b(i), router_bit(j, Gadget::bin(i, j) ^ 1), alpha_);
    }
    // star routers, weight by input bits.
    for (std::uint32_t j = 0; j < params_.ell; ++j) {
      graph_.add_edge(a(i), router_star(j), input.xb(i, j) ? alpha_ : beta_);
      graph_.add_edge(b(i), router_star(j), input.yb(i, j) ? alpha_ : beta_);
    }
    // cliques.
    for (std::uint64_t k = i + 1; k < two_s; ++k) {
      graph_.add_edge(a(i), a(k), alpha_);
      graph_.add_edge(b(i), b(k), alpha_);
    }
  }
  if (with_hub) {
    for (std::uint64_t i = 0; i < two_s; ++i) {
      graph_.add_edge(hub(), a(i), 2 * alpha_);
    }
  }
}

NodeId ContractedGadget::router(std::uint32_t i) const {
  QC_REQUIRE(i < params_.paths(), "router index out of range");
  return 1 + i;
}

NodeId ContractedGadget::a(std::uint64_t i) const {
  QC_REQUIRE(i < (std::uint64_t{1} << params_.s), "a index out of range");
  return static_cast<NodeId>(1 + params_.paths() + i);
}

NodeId ContractedGadget::b(std::uint64_t i) const {
  QC_REQUIRE(i < (std::uint64_t{1} << params_.s), "b index out of range");
  return static_cast<NodeId>(1 + params_.paths() +
                             (std::uint64_t{1} << params_.s) + i);
}

NodeId ContractedGadget::hub() const {
  QC_REQUIRE(with_hub_, "diameter form has no hub");
  return static_cast<NodeId>(graph_.node_count() - 1);
}

}  // namespace qc::lb
