// Boolean functions of Section 4: the two-party targets F and F′, the
// gadget GDT = OR₄ ∘ AND₂⁴, the promise function VER of Lemma 4.5, and
// a small read-once formula representation for Lemma 4.6.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace qc::lb {

/// Two-party input: x, y ∈ {0,1}^{rows·cols}, indexed x_{i,j} with
/// i ∈ [0, rows), j ∈ [0, cols) (the paper's i ∈ [1, 2^s], j ∈ [1, ℓ]).
struct PairInput {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint8_t> x;  ///< rows·cols bits
  std::vector<std::uint8_t> y;

  bool xb(std::size_t i, std::size_t j) const { return x[i * cols + j]; }
  bool yb(std::size_t i, std::size_t j) const { return y[i * cols + j]; }
};

/// Uniformly random input.
PairInput random_input(std::size_t rows, std::size_t cols, Rng& rng);

/// Adversarial inputs: F-true (every row has a common 1), F-false with
/// exactly one all-miss row, all-zero, all-one.
PairInput input_all_hit(std::size_t rows, std::size_t cols, Rng& rng);
PairInput input_one_row_miss(std::size_t rows, std::size_t cols,
                             std::size_t miss_row, Rng& rng);

/// F(x,y) = AND_i OR_j (x_{i,j} ∧ y_{i,j})  — the diameter target.
bool eval_f(const PairInput& in);

/// F′(x,y) = OR_{i,j} (x_{i,j} ∧ y_{i,j})  — the radius target.
bool eval_f_prime(const PairInput& in);

/// GDT(x, y) = OR₄(x ∧ y) on 4-bit blocks.
bool eval_gdt(std::uint8_t x4, std::uint8_t y4);

/// VER(x, y) = 1 iff x + y ≡ 0 or 1 (mod 4), for x, y ∈ {0,1,2,3}.
bool eval_ver(std::uint8_t x, std::uint8_t y);

/// The Lemma 4.7 promise encodings under which GDT restricted to the
/// promise equals VER: x ∈ {0011, 1001, 1100, 0110},
/// y ∈ {0001, 0010, 0100, 1000}.
std::uint8_t ver_promise_x(std::uint8_t x);
std::uint8_t ver_promise_y(std::uint8_t y);

// ---------------------------------------------------------------------
// Read-once formulas (Lemma 4.6)
// ---------------------------------------------------------------------

/// AST for monotone-with-NOT formulas; read-once when every variable
/// index appears at most once.
struct Formula {
  enum class Kind { kVar, kNot, kAnd, kOr };
  Kind kind = Kind::kVar;
  std::size_t var = 0;                       ///< kVar
  std::vector<std::unique_ptr<Formula>> kids;  ///< kNot/kAnd/kOr

  bool eval(const std::vector<std::uint8_t>& bits) const;
  std::size_t leaf_count() const;
  bool is_read_once() const;

  static std::unique_ptr<Formula> make_var(std::size_t v);
  static std::unique_ptr<Formula> make_not(std::unique_ptr<Formula> k);
  static std::unique_ptr<Formula> make_and(
      std::vector<std::unique_ptr<Formula>> kids);
  static std::unique_ptr<Formula> make_or(
      std::vector<std::unique_ptr<Formula>> kids);
};

/// AND_m ∘ OR_q^m on m·q variables — the outer function f of Lemma 4.7.
std::unique_ptr<Formula> and_of_ors(std::size_t m, std::size_t q);

/// OR_k — the outer function f′ of Lemma 4.10.
std::unique_ptr<Formula> or_of(std::size_t k);

/// Random read-once formula over exactly `leaves` variables (balanced
/// random AND/OR tree with occasional NOTs).
std::unique_ptr<Formula> random_read_once(std::size_t leaves, Rng& rng);

/// Truth table of a formula on `vars` variables (vars <= 20).
std::vector<std::uint8_t> truth_table(const Formula& f, std::size_t vars);

}  // namespace qc::lb
