#include "lowerbound/table2.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace qc::lb {

std::vector<Table2Row> audit_table2(const GadgetParams& params,
                                    const PairInput& input) {
  const ContractedGadget g(params, input, /*with_hub=*/false);
  const Weight alpha = g.alpha();
  const Weight beta = g.beta();
  const std::uint64_t two_s = std::uint64_t{1} << params.s;
  const std::uint32_t m = params.paths();

  // Exact distances from every node. Runs on the CSR view with the
  // pool-parallel APSP driver; gadget weights (alpha = n^2) exceed the
  // bucket-queue window, so each source uses the heap engine.
  const auto apsp = all_pairs_distances(g.graph().csr());

  std::vector<Table2Row> rows;
  auto add_row = [&](std::string uc, std::string vc, std::string bn,
                     Dist bound, auto&& pair_visitor) {
    Table2Row row;
    row.u_class = std::move(uc);
    row.v_class = std::move(vc);
    row.bound_name = std::move(bn);
    row.bound = bound;
    pair_visitor([&](NodeId u, NodeId v) {
      row.measured_max = std::max(row.measured_max, apsp[u][v]);
      ++row.pairs;
    });
    row.ok = row.pairs == 0 || row.measured_max <= row.bound;
    rows.push_back(std::move(row));
  };

  add_row("t", "router", "alpha", alpha, [&](auto&& visit) {
    for (std::uint32_t i = 0; i < m; ++i) visit(g.t(), g.router(i));
  });
  add_row("t", "a_i", "2*alpha", 2 * alpha, [&](auto&& visit) {
    for (std::uint64_t i = 0; i < two_s; ++i) visit(g.t(), g.a(i));
  });
  add_row("t", "b_i", "2*alpha", 2 * alpha, [&](auto&& visit) {
    for (std::uint64_t i = 0; i < two_s; ++i) visit(g.t(), g.b(i));
  });
  add_row("a_i", "a_j (j!=i)", "alpha", alpha, [&](auto&& visit) {
    for (std::uint64_t i = 0; i < two_s; ++i) {
      for (std::uint64_t j = 0; j < two_s; ++j) {
        if (i != j) visit(g.a(i), g.a(j));
      }
    }
  });
  add_row("a_i", "a_j^{bin(i,j)}", "alpha", alpha, [&](auto&& visit) {
    for (std::uint64_t i = 0; i < two_s; ++i) {
      for (std::uint32_t j = 0; j < params.s; ++j) {
        visit(g.a(i), g.router_bit(j, Gadget::bin(i, j)));
      }
    }
  });
  add_row("a_i", "a_j^{bin(i,j) xor 1}", "2*alpha", 2 * alpha,
          [&](auto&& visit) {
            for (std::uint64_t i = 0; i < two_s; ++i) {
              for (std::uint32_t j = 0; j < params.s; ++j) {
                visit(g.a(i), g.router_bit(j, Gadget::bin(i, j) ^ 1));
              }
            }
          });
  add_row("a_i", "b_j (j!=i)", "2*alpha", 2 * alpha, [&](auto&& visit) {
    for (std::uint64_t i = 0; i < two_s; ++i) {
      for (std::uint64_t j = 0; j < two_s; ++j) {
        if (i != j) visit(g.a(i), g.b(j));
      }
    }
  });
  add_row("a_i", "a_j^*", "beta", beta, [&](auto&& visit) {
    for (std::uint64_t i = 0; i < two_s; ++i) {
      for (std::uint32_t j = 0; j < params.ell; ++j) {
        visit(g.a(i), g.router_star(j));
      }
    }
  });
  add_row("b_i", "b_j (j!=i)", "alpha", alpha, [&](auto&& visit) {
    for (std::uint64_t i = 0; i < two_s; ++i) {
      for (std::uint64_t j = 0; j < two_s; ++j) {
        if (i != j) visit(g.b(i), g.b(j));
      }
    }
  });
  add_row("b_i", "a_j^{bin(i,j) xor 1}", "alpha", alpha,
          [&](auto&& visit) {
            for (std::uint64_t i = 0; i < two_s; ++i) {
              for (std::uint32_t j = 0; j < params.s; ++j) {
                visit(g.b(i), g.router_bit(j, Gadget::bin(i, j) ^ 1));
              }
            }
          });
  add_row("b_i", "a_j^{bin(i,j)}", "2*alpha", 2 * alpha,
          [&](auto&& visit) {
            for (std::uint64_t i = 0; i < two_s; ++i) {
              for (std::uint32_t j = 0; j < params.s; ++j) {
                visit(g.b(i), g.router_bit(j, Gadget::bin(i, j)));
              }
            }
          });
  add_row("b_i", "a_j^*", "beta", beta, [&](auto&& visit) {
    for (std::uint64_t i = 0; i < two_s; ++i) {
      for (std::uint32_t j = 0; j < params.ell; ++j) {
        visit(g.b(i), g.router_star(j));
      }
    }
  });
  add_row("router", "router", "2*alpha", 2 * alpha, [&](auto&& visit) {
    for (std::uint32_t i = 0; i < m; ++i) {
      for (std::uint32_t j = 0; j < m; ++j) {
        if (i != j) visit(g.router(i), g.router(j));
      }
    }
  });
  return rows;
}

}  // namespace qc::lb
