// The Server model reduction of Section 4.
//
// Lemma 4.1 (quantum simulation lemma): any T-round (T < 2^h/2) CONGEST
// algorithm on the gadget network can be simulated by Alice, Bob and a
// free server with only O(T·h·B) communication charged to Alice/Bob.
// The proof assigns each node an owner per round — the server's share
// of the paths and tree shrinks by one position per round from both
// ends — and only messages crossing from Alice/Bob-owned nodes into
// still-server-owned nodes are charged.
//
// This module implements the ownership schedule, meters real message
// traces from the simulator against it, and checks the two structural
// facts the proof rests on: (a) an Alice-owned node never needs a
// message from a Bob-owned node (and vice versa), and (b) charged
// messages only ever target tree nodes, at most 2h per round.
#pragma once

#include <cstdint>

#include "congest/simulator.h"
#include "lowerbound/gadget.h"

namespace qc::lb {

/// Who simulates a node at (the end of) a given round.
enum class Owner : std::uint8_t { kServer, kAlice, kBob };

/// The Lemma 4.1 ownership schedule for a gadget network.
class SimulationSchedule {
 public:
  explicit SimulationSchedule(const Gadget& gadget);

  /// Owner of v at the end of round r (r = 0 is the initial state:
  /// server owns all of V_S). Valid while the server region is
  /// non-empty, i.e. r < 2^{h-1}.
  Owner owner(std::uint64_t r, NodeId v) const;

  /// Largest round the schedule supports (exclusive): 2^{h-1}.
  std::uint64_t horizon() const;

 private:
  const Gadget* gadget_;
};

/// Metering result for one traced CONGEST execution.
struct ServerSimulationReport {
  std::uint64_t rounds = 0;            ///< T
  std::uint64_t total_messages = 0;    ///< all messages in the trace
  std::uint64_t charged_messages = 0;  ///< Alice/Bob -> server-owned
  std::uint64_t charged_bits = 0;
  std::uint64_t max_charged_in_round = 0;
  /// 2h per round — the bound from the Lemma 4.1 proof.
  std::uint64_t per_round_bound = 0;
  /// (a) cross-side isolation held for every message.
  bool partition_sound = true;
  /// (b) every charged message targeted a tree node.
  bool charged_only_tree = true;
  /// charged_messages <= 2h·T.
  bool within_bound = true;
};

/// Meters a recorded execution (trace from Simulator with record_trace)
/// against the schedule. Requires the execution length < 2^{h-1}.
ServerSimulationReport meter_server_simulation(
    const Gadget& gadget, const std::vector<congest::TraceEntry>& trace,
    std::uint64_t rounds);

/// Runs a truncated BFS flood (rounds-long) on the gadget with tracing
/// and meters it — the end-to-end Lemma 4.1 demonstration. The wave
/// starts at `root` (default: the tree root); rooting it at an Alice
/// node exercises the nonzero-charge case where information crosses
/// into the server region through the tree.
/// Sentinel for "use the gadget's tree root".
inline constexpr NodeId kAnyRoot = static_cast<NodeId>(-1);

ServerSimulationReport run_and_meter_bfs(const Gadget& gadget,
                                         std::uint64_t rounds,
                                         NodeId root = kAnyRoot);

// ---------------------------------------------------------------------
// Theorems 4.2 / 4.8: the reduction's gap, executably.
// ---------------------------------------------------------------------

struct ReductionCheck {
  bool f_value = false;        ///< F(x,y) (diameter) or F'(x,y) (radius)
  Dist measured = 0;           ///< D_{G',w} or R_{G',w} (or full-G value)
  Dist threshold_low = 0;      ///< min{α+β, 3α}
  Dist threshold_high = 0;     ///< max{2α, β} (+n when full graph)
  bool gap_respected = false;  ///< Lemma 4.4 / 4.9 dichotomy held
  /// A (3/2−ε)-approximation separates the two cases for α=n², β=2n².
  bool distinguishable = false;
};

/// Verifies Lemma 4.4 on an instance. `use_full_graph` computes the
/// exact diameter of the uncontracted gadget (small h only); otherwise
/// the contracted G′ is used with the Lemma 4.3 window.
ReductionCheck check_diameter_reduction(const GadgetParams& params,
                                        const PairInput& input,
                                        bool use_full_graph = false);

/// Verifies Lemma 4.9 (radius form, with the a₀ hub).
ReductionCheck check_radius_reduction(const GadgetParams& params,
                                      const PairInput& input,
                                      bool use_full_graph = false);

/// The Theorem 4.2 round lower bound Ω(√(2^s·ℓ)/(h·B)) for the given
/// gadget parameters and bandwidth.
double theorem42_round_bound(const GadgetParams& params,
                             std::uint32_t bandwidth);

}  // namespace qc::lb
