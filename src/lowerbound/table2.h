// Table 2 of the paper: per-class distance upper bounds in the
// contracted gadget G′, each with its witness-path bound. The audit
// computes the exact distances for every pair in each class and checks
// them against the table.
#pragma once

#include <string>
#include <vector>

#include "lowerbound/gadget.h"

namespace qc::lb {

/// One row of Table 2, audited.
struct Table2Row {
  std::string u_class;     ///< e.g. "t", "a_i"
  std::string v_class;     ///< e.g. "router", "b_j (j != i)"
  std::string bound_name;  ///< "alpha", "2*alpha", "beta"
  Dist bound = 0;          ///< numeric bound
  Dist measured_max = 0;   ///< max exact distance over the class
  std::size_t pairs = 0;   ///< how many pairs were audited
  bool ok = false;         ///< measured_max <= bound
};

/// Audits every row of Table 2 on a concrete contracted gadget.
/// The special pair (a_i, b_i) — whose distance encodes the input — is
/// intentionally *not* part of Table 2 and is excluded here.
std::vector<Table2Row> audit_table2(const GadgetParams& params,
                                    const PairInput& input);

}  // namespace qc::lb
