// The lower-bound graph gadgets of Section 4 (Figures 1-4).
//
// The base network (Figure 1) is a binary tree of height h whose 2^h
// leaves are stitched to m = 2s+ℓ disjoint paths of length 2^h−1;
// Alice's part V_A and Bob's part V_B hang off the left/right path
// endpoints. The diameter gadget (Figure 2) wires V_A/V_B as
// bit-indexing cliques whose red edge weights encode the inputs
// x, y ∈ {0,1}^{2^s·ℓ}; the radius gadget (Figure 4) adds one node a₀.
//
// Lemma 4.4:  F(x,y)=1  ⇒ D_{G,w} ≤ max{2α,β}+n;
//             F(x,y)=0  ⇒ D_{G,w} ≥ min{α+β,3α}.
// Lemma 4.9: the same dichotomy for the radius with F′.
//
// The builder exposes a full node inventory so the Table 2 audit and
// the simulation-lemma partition can name every node.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "lowerbound/boolfn.h"

namespace qc::lb {

/// Size/weight parameters. The paper fixes s = 3h/2, ℓ = 2^{s−h},
/// α = n², β = 2n² (Eq. 2); `paper_params(h)` builds those, and the
/// fields stay free for scaled-down experiments.
struct GadgetParams {
  std::uint32_t h = 2;    ///< tree height (even in the paper)
  std::uint32_t s = 3;    ///< 2^s a_i/b_i nodes per side
  std::uint32_t ell = 2;  ///< ℓ star nodes per side
  Weight alpha = 0;       ///< 0 = derive as n² after sizing
  Weight beta = 0;        ///< 0 = derive as 2n²

  std::uint32_t paths() const { return 2 * s + ell; }
  std::uint64_t side_size() const {
    return (std::uint64_t{1} << s) + 2 * s + ell;
  }
  /// Node count of the (diameter) gadget.
  std::uint64_t node_count() const {
    return ((std::uint64_t{1} << (h + 1)) - 1) +
           std::uint64_t{paths()} * ((std::uint64_t{1} << h)) +
           2 * side_size();
  }

  /// Eq. (2): s = 3h/2, ℓ = 2^{s−h}, α = n², β = 2n² (h must be even).
  static GadgetParams paper(std::uint32_t h);
};

/// Which sides a node belongs to — the V_S / V_A / V_B partition.
enum class Side : std::uint8_t { kServer, kAlice, kBob };

/// A built gadget with its node inventory.
class Gadget {
 public:
  /// Builds the Figure-2 diameter gadget (with_hub=false) or the
  /// Figure-4 radius gadget (with_hub=true, adds a₀). The input must
  /// have rows = 2^s, cols = ℓ.
  Gadget(const GadgetParams& params, const PairInput& input, bool with_hub);

  const WeightedGraph& graph() const { return graph_; }
  const GadgetParams& params() const { return params_; }
  bool has_hub() const { return with_hub_; }
  Weight alpha() const { return alpha_; }
  Weight beta() const { return beta_; }

  // --- node inventory (all 0-based) ---
  NodeId tree(std::uint32_t depth, std::uint64_t j) const;   ///< t_{depth+? }
  NodeId path(std::uint32_t i, std::uint64_t j) const;       ///< p_{i,j}
  NodeId a(std::uint64_t i) const;                           ///< a_i
  NodeId b(std::uint64_t i) const;                           ///< b_i
  NodeId a_bit(std::uint32_t j, std::uint32_t bit) const;    ///< a_j^bit
  NodeId b_bit(std::uint32_t j, std::uint32_t bit) const;    ///< b_j^bit
  NodeId a_star(std::uint32_t j) const;                      ///< a_j^*
  NodeId b_star(std::uint32_t j) const;                      ///< b_j^*
  NodeId hub() const;                                        ///< a₀ (radius)

  NodeId root() const { return tree(0, 0); }

  /// The V_S/V_A/V_B membership of a node.
  Side side(NodeId v) const;

  /// bin(i, j): bit j of i (0-based), as used for the a_j^{bin} wiring.
  static std::uint32_t bin(std::uint64_t i, std::uint32_t j) {
    return static_cast<std::uint32_t>((i >> j) & 1);
  }

 private:
  GadgetParams params_;
  bool with_hub_;
  Weight alpha_;
  Weight beta_;
  WeightedGraph graph_;
  std::vector<Side> side_;
  // Offsets into the dense id space.
  NodeId tree_base_ = 0;
  NodeId path_base_ = 0;
  NodeId a_base_ = 0;
  NodeId a_bit_base_ = 0;
  NodeId a_star_base_ = 0;
  NodeId b_base_ = 0;
  NodeId b_bit_base_ = 0;
  NodeId b_star_base_ = 0;
  NodeId hub_ = 0;
};

/// The contracted graph G′ (Figures 3 and 4), built directly: node t,
/// one router per path, the a_i / b_i cliques, optionally a₀. Lemma 4.3
/// relates its diameter/radius to the full gadget's.
class ContractedGadget {
 public:
  ContractedGadget(const GadgetParams& params, const PairInput& input,
                   bool with_hub);

  const WeightedGraph& graph() const { return graph_; }
  Weight alpha() const { return alpha_; }
  Weight beta() const { return beta_; }

  NodeId t() const { return 0; }
  /// Router of path i (contains a-side endpoint a_{i/2}^{i%2} for
  /// i < 2s, else a_{i-2s}^*).
  NodeId router(std::uint32_t i) const;
  /// Router carrying a_j^bit (= path 2j+bit).
  NodeId router_bit(std::uint32_t j, std::uint32_t bit) const {
    return router(2 * j + bit);
  }
  /// Router carrying a_j^* (= path 2s+j).
  NodeId router_star(std::uint32_t j) const {
    return router(2 * params_.s + j);
  }
  NodeId a(std::uint64_t i) const;
  NodeId b(std::uint64_t i) const;
  NodeId hub() const;

 private:
  GadgetParams params_;
  bool with_hub_;
  Weight alpha_;
  Weight beta_;
  WeightedGraph graph_;
};

}  // namespace qc::lb
