// The Server communication model (Section 2.3), executable.
//
// Three players — Alice, Bob, and a server — exchange messages; only
// bits *sent by Alice or Bob* count toward the complexity (the server
// talks for free). Any two-party protocol embeds by treating the server
// as a wire.
//
// Two things live here:
//
//  * `ServerTranscript` — the accounting object protocols write to;
//  * `simulate_congest_in_server_model` — the constructive content of
//    Lemma 4.1: executes a CONGEST algorithm on the gadget *as a
//    three-party protocol*, each party stepping only the node programs
//    it owns under the round-indexed ownership schedule and receiving
//    foreign messages through the transcript. The result is checked
//    bit-for-bit against the monolithic execution, and the Alice/Bob
//    bits against the O(T·h·B) budget.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "congest/simulator.h"
#include "lowerbound/gadget.h"
#include "lowerbound/server.h"

namespace qc::lb {

/// Message accounting for a Server-model protocol run.
class ServerTranscript {
 public:
  /// Records a message of `bits` bits from `from` to `to`. Messages
  /// with from == kServer are free; everything else is charged.
  void record(Owner from, Owner to, std::uint64_t bits);

  std::uint64_t charged_bits() const { return charged_bits_; }
  std::uint64_t charged_messages() const { return charged_messages_; }
  std::uint64_t free_bits() const { return free_bits_; }
  std::uint64_t total_messages() const { return total_messages_; }

 private:
  std::uint64_t charged_bits_ = 0;
  std::uint64_t charged_messages_ = 0;
  std::uint64_t free_bits_ = 0;
  std::uint64_t total_messages_ = 0;
};

/// The trivial upper-bound protocol for any F: Alice ships her whole
/// input to Bob through the server; Bob answers. Costs |x| + 1 charged
/// bits — the benchmark the Ω(√(2^s·ℓ)) lower bound is measured
/// against.
struct TrivialProtocolResult {
  bool value = false;
  std::uint64_t charged_bits = 0;
};
TrivialProtocolResult trivial_protocol_for_f(const PairInput& input,
                                             bool f_prime);

/// Result of executing a CONGEST algorithm as a Server-model protocol.
struct ServerSimulationRun {
  ServerTranscript transcript;
  std::uint64_t rounds = 0;
  /// Per-node outputs matched the monolithic execution exactly.
  bool outputs_match = true;
  /// No step ever needed a message from the *opposite* party.
  bool partition_sound = true;
  /// charged bits <= 2h·B per round (the Lemma 4.1 budget).
  bool within_budget = true;
};

/// Executes `rounds` rounds of a BFS wave (rooted at `root`) on the
/// gadget in the three-party regime of Lemma 4.1, with each party
/// independently simulating its owned nodes. Requires
/// rounds + 1 < 2^{h-1}.
ServerSimulationRun simulate_congest_in_server_model(const Gadget& gadget,
                                                     std::uint64_t rounds,
                                                     NodeId root);

}  // namespace qc::lb
