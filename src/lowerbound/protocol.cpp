#include "lowerbound/protocol.h"

#include <algorithm>
#include <array>

#include "graph/algorithms.h"

namespace qc::lb {

void ServerTranscript::record(Owner from, Owner to, std::uint64_t bits) {
  ++total_messages_;
  if (from == Owner::kServer) {
    free_bits_ += bits;
    return;
  }
  (void)to;
  charged_bits_ += bits;
  ++charged_messages_;
}

TrivialProtocolResult trivial_protocol_for_f(const PairInput& input,
                                             bool f_prime) {
  // Alice -> server -> Bob: all of x (charged once — the server relay
  // is free); Bob evaluates and announces one bit.
  TrivialProtocolResult out;
  out.charged_bits = input.x.size();  // Alice's input bits
  out.charged_bits += 1;              // Bob's answer bit
  out.value = f_prime ? eval_f_prime(input) : eval_f(input);
  return out;
}

namespace {

/// Per-party view of the BFS-wave simulation: a party stores state only
/// for nodes it currently owns.
struct World {
  std::vector<Dist> depth;       ///< kInfDist = unknown / not owned
  std::vector<std::uint8_t> owns;

  explicit World(std::size_t n) : depth(n, kInfDist), owns(n, 0) {}
};

}  // namespace

ServerSimulationRun simulate_congest_in_server_model(const Gadget& gadget,
                                                     std::uint64_t rounds,
                                                     NodeId root) {
  const WeightedGraph& g = gadget.graph();
  const NodeId n = g.node_count();
  QC_REQUIRE(root < n, "root out of range");
  const SimulationSchedule schedule(gadget);
  QC_REQUIRE(rounds + 1 < schedule.horizon(),
             "execution too long for the Lemma 4.1 schedule");

  ServerSimulationRun run;
  run.rounds = rounds;
  const std::uint32_t msg_bits = bits_for(n);  // a depth value
  const std::uint64_t bandwidth = congest::default_bandwidth(n);
  const std::uint64_t per_round_budget = 2ull * gadget.params().h * bandwidth;

  // Three worlds; index by Owner.
  std::array<World, 3> worlds{World(n), World(n), World(n)};
  auto world_of = [&](Owner o) -> World& {
    return worlds[static_cast<std::size_t>(o)];
  };

  // Round-0 state: each node's owner-at-round-0 world holds it.
  for (NodeId v = 0; v < n; ++v) {
    world_of(schedule.owner(0, v)).owns[v] = 1;
  }
  world_of(schedule.owner(0, root)).depth[root] = 0;

  // Messages in flight: (from, to, depth payload), sent during round k,
  // consumed during round k+1.
  struct Wire {
    NodeId from;
    NodeId to;
    Dist payload;
  };
  std::vector<Wire> inflight;
  // The root broadcasts in round 0.
  for (const HalfEdge& h : g.neighbors(root)) {
    inflight.push_back(Wire{root, h.to, 0});
  }

  for (std::uint64_t r = 1; r <= rounds; ++r) {
    // --- ownership handoff: server region shrank; the server sends the
    // state of newly Alice/Bob-owned nodes for free.
    for (NodeId v = 0; v < n; ++v) {
      const Owner prev = schedule.owner(r - 1, v);
      const Owner cur = schedule.owner(r, v);
      if (prev == cur) continue;
      run.partition_sound &= (prev == Owner::kServer);
      run.transcript.record(Owner::kServer, cur, msg_bits);
      World& from = world_of(prev);
      World& to = world_of(cur);
      to.owns[v] = 1;
      to.depth[v] = from.depth[v];
      from.owns[v] = 0;
    }

    // --- deliver round-(r-1) messages into the receiving party's world,
    // with Lemma 4.1 accounting.
    std::uint64_t charged_bits_this_round = 0;
    std::vector<Wire> deliveries;
    deliveries.swap(inflight);
    for (const Wire& w : deliveries) {
      const Owner sender = schedule.owner(r - 1, w.from);
      const Owner receiver = schedule.owner(r, w.to);
      if (sender != receiver) {
        if ((sender == Owner::kAlice && receiver == Owner::kBob) ||
            (sender == Owner::kBob && receiver == Owner::kAlice)) {
          run.partition_sound = false;
        }
        run.transcript.record(sender, receiver, msg_bits);
        if (sender != Owner::kServer) {
          charged_bits_this_round += msg_bits;
        }
      }
      World& world = world_of(receiver);
      QC_CHECK(world.owns[w.to], "receiver not in its owner's world");
      if (world.depth[w.to] == kInfDist) {
        world.depth[w.to] = w.payload + 1;
        if (r + 1 <= rounds) {
          for (const HalfEdge& h : g.neighbors(w.to)) {
            inflight.push_back(Wire{w.to, h.to, world.depth[w.to]});
          }
        }
      }
    }
    run.within_budget &= charged_bits_this_round <= per_round_budget;
  }

  // --- compare against the monolithic execution: a truncated BFS wave
  // learns exactly the depths <= rounds.
  const auto ref = bfs_distances(g, root);
  for (NodeId v = 0; v < n; ++v) {
    Dist simulated = kInfDist;
    for (const World& w : worlds) {
      if (w.owns[v]) simulated = w.depth[v];
    }
    const Dist expected = ref[v] <= rounds ? ref[v] : kInfDist;
    if (simulated != expected) {
      run.outputs_match = false;
    }
  }
  return run;
}

}  // namespace qc::lb
