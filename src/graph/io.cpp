#include "graph/io.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace qc {

namespace {

// The binary formats are defined little-endian; every supported target
// is. The bcsr payload is additionally defined to match the in-memory
// array layout exactly, which is what makes mmap a zero-copy load.
static_assert(std::endian::native == std::endian::little,
              "binary graph formats require a little-endian target");
static_assert(sizeof(std::size_t) == 8,
              "64-bit offsets require a 64-bit target");
static_assert(sizeof(HalfEdge) == 16 && offsetof(HalfEdge, to) == 0 &&
                  offsetof(HalfEdge, weight) == 8,
              "bcsr payload layout must match HalfEdge");

constexpr unsigned char kBGraphMagic[8] = {'b', 'g', 'r', 'a',
                                           'p', 'h', '1', '\0'};
constexpr unsigned char kBcsrMagic[8] = {'b', 'c', 's', 'r',
                                         'q', 'c', '1', '\0'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kFlagSorted = 1;
constexpr std::size_t kIoBufRecords = 4096;  // 64 KiB per buffer

void put_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::uint64_t edge_key(NodeId u, NodeId v) {
  return (std::uint64_t{u} << 32) | v;
}

/// 48-byte header shared by both binary formats: magic(8) version(4)
/// flags(4) n(8) count(8) max_weight(8) reserved(8). `count` is m for
/// bgraph, the half-edge count (2m) for bcsr.
void encode_header(unsigned char* h, const unsigned char* magic,
                   std::uint32_t flags, std::uint64_t n, std::uint64_t count,
                   Weight max_weight) {
  std::memcpy(h, magic, 8);
  put_u32(h + 8, kFormatVersion);
  put_u32(h + 12, flags);
  put_u64(h + 16, n);
  put_u64(h + 24, count);
  put_u64(h + 32, max_weight);
  put_u64(h + 40, 0);
}

std::uint64_t file_size_of(std::FILE* f, const std::string& path) {
  const long cur = std::ftell(f);
  QC_REQUIRE(cur >= 0 && std::fseek(f, 0, SEEK_END) == 0,
             path + ": seek failed");
  const long end = std::ftell(f);
  QC_REQUIRE(end >= 0 && std::fseek(f, cur, SEEK_SET) == 0,
             path + ": seek failed");
  return static_cast<std::uint64_t>(end);
}

void write_all(std::FILE* f, const void* data, std::size_t bytes,
               const std::string& path) {
  QC_REQUIRE(std::fwrite(data, 1, bytes, f) == bytes,
             path + ": write failed");
}

}  // namespace

// --- wgraph v1 (text) -------------------------------------------------

std::string to_edge_list(const WeightedGraph& g) {
  std::ostringstream os;
  os << "wgraph " << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
  return os.str();
}

WeightedGraph parse_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  bool have_header = false;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  WeightedGraph g;
  std::uint64_t edges_seen = 0;

  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      std::string magic;
      ls >> magic >> n >> m;
      QC_REQUIRE(!ls.fail() && magic == "wgraph",
                 "line " + std::to_string(line_no) +
                     ": expected 'wgraph <n> <m>' header");
      QC_REQUIRE(n <= (std::uint64_t{1} << 31), "node count too large");
      g = WeightedGraph(static_cast<NodeId>(n));
      have_header = true;
      continue;
    }
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    std::uint64_t w = 0;
    ls >> u >> v >> w;
    QC_REQUIRE(!ls.fail(),
               "line " + std::to_string(line_no) + ": expected 'u v w'");
    std::string extra;
    QC_REQUIRE(!(ls >> extra),
               "line " + std::to_string(line_no) + ": trailing tokens");
    QC_REQUIRE(u < n && v < n,
               "line " + std::to_string(line_no) + ": node id out of range");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    ++edges_seen;
  }
  QC_REQUIRE(have_header, "missing wgraph header");
  QC_REQUIRE(edges_seen == m, "edge count mismatch: header says " +
                                  std::to_string(m) + ", file has " +
                                  std::to_string(edges_seen));
  return g;
}

void save_graph(const WeightedGraph& g, const std::string& path) {
  std::ofstream out(path);
  QC_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << to_edge_list(g);
  QC_REQUIRE(out.good(), "write failed: " + path);
}

WeightedGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  QC_REQUIRE(in.good(), "cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_edge_list(buf.str());
}

// --- bgraph v1 writer -------------------------------------------------

BGraphWriter::BGraphWriter(const std::string& path, std::uint64_t n)
    : path_(path), n_(n) {
  QC_REQUIRE(n <= (std::uint64_t{1} << 32),
             path + ": node count " + std::to_string(n) +
                 " exceeds the 2^32 NodeId range");
  file_ = std::fopen(path.c_str(), "w+b");
  QC_REQUIRE(file_ != nullptr, "cannot open for writing: " + path);
  unsigned char h[kBGraphHeaderBytes];
  encode_header(h, kBGraphMagic, 0, n_, 0, 1);
  write_all(file_, h, sizeof h, path_);
  buf_.reserve(kIoBufRecords * kBGraphRecordBytes);
}

BGraphWriter::~BGraphWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BGraphWriter::add(NodeId u, NodeId v, Weight w) {
  QC_REQUIRE(!closed_, path_ + ": writer already closed");
  QC_REQUIRE(u < v, path_ + ": record " + std::to_string(m_) +
                        ": edges must be canonical (u < v), got u=" +
                        std::to_string(u) + " v=" + std::to_string(v));
  QC_REQUIRE(std::uint64_t{v} < n_,
             path_ + ": record " + std::to_string(m_) + ": node id " +
                 std::to_string(v) + " out of range (n=" +
                 std::to_string(n_) + ")");
  QC_REQUIRE(w >= 1, path_ + ": record " + std::to_string(m_) +
                         ": weights must be positive");
  const std::uint64_t key = edge_key(u, v);
  if (m_ > 0 && key <= last_key_) sorted_ = false;
  last_key_ = key;
  max_weight_ = std::max(max_weight_, w);
  unsigned char rec[kBGraphRecordBytes];
  put_u32(rec, u);
  put_u32(rec + 4, v);
  put_u64(rec + 8, w);
  buf_.insert(buf_.end(), rec, rec + sizeof rec);
  if (buf_.size() >= kIoBufRecords * kBGraphRecordBytes) flush_buffer();
  ++m_;
}

void BGraphWriter::flush_buffer() {
  if (!buf_.empty()) {
    write_all(file_, buf_.data(), buf_.size(), path_);
    buf_.clear();
  }
}

BGraphInfo BGraphWriter::close() {
  BGraphInfo info{n_, m_, max_weight_, sorted_};
  if (closed_) return info;
  flush_buffer();
  // Durability ordering: the payload must reach disk before the header
  // stops saying m = 0. A crash between the two then leaves the
  // placeholder header — which the reader rejects — instead of a
  // parseable-but-truncated file.
  QC_REQUIRE(std::fflush(file_) == 0, path_ + ": flush failed");
#if !defined(_WIN32)
  QC_REQUIRE(::fsync(::fileno(file_)) == 0, path_ + ": fsync failed");
#endif
  unsigned char h[kBGraphHeaderBytes];
  encode_header(h, kBGraphMagic, sorted_ ? kFlagSorted : 0, n_, m_,
                max_weight_);
  QC_REQUIRE(std::fseek(file_, 0, SEEK_SET) == 0, path_ + ": seek failed");
  write_all(file_, h, sizeof h, path_);
  QC_REQUIRE(std::fflush(file_) == 0, path_ + ": flush failed");
  std::fclose(file_);
  file_ = nullptr;
  closed_ = true;
  return info;
}

// --- bgraph v1 reader -------------------------------------------------

BGraphReader::BGraphReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  QC_REQUIRE(file_ != nullptr, "cannot open: " + path);
  const std::uint64_t size = file_size_of(file_, path_);
  QC_REQUIRE(size >= kBGraphHeaderBytes,
             path + ": truncated header — file is " + std::to_string(size) +
                 " bytes, a bgraph header needs " +
                 std::to_string(kBGraphHeaderBytes));
  unsigned char h[kBGraphHeaderBytes];
  QC_REQUIRE(std::fread(h, 1, sizeof h, file_) == sizeof h,
             path + ": header read failed");
  QC_REQUIRE(std::memcmp(h, kBGraphMagic, 8) == 0,
             path + ": bad magic at byte 0 (not a bgraph v1 file)");
  const std::uint32_t version = get_u32(h + 8);
  QC_REQUIRE(version == kFormatVersion,
             path + ": unsupported version " + std::to_string(version) +
                 " at byte 8 (expected " + std::to_string(kFormatVersion) +
                 ")");
  const std::uint32_t flags = get_u32(h + 12);
  QC_REQUIRE((flags & ~kFlagSorted) == 0,
             path + ": unknown flag bits at byte 12: " +
                 std::to_string(flags));
  info_.n = get_u64(h + 16);
  info_.m = get_u64(h + 24);
  info_.max_weight = get_u64(h + 32);
  info_.sorted = (flags & kFlagSorted) != 0;
  QC_REQUIRE(info_.n <= (std::uint64_t{1} << 32),
             path + ": node count " + std::to_string(info_.n) +
                 " at byte 16 exceeds the 2^32 NodeId range");
  QC_REQUIRE(info_.max_weight >= 1,
             path + ": max_weight 0 at byte 32 (weights are positive)");
  // Overflow-safe size check: reject counts the file cannot possibly
  // hold before computing header + m * record.
  const std::uint64_t payload = size - kBGraphHeaderBytes;
  QC_REQUIRE(info_.m <= payload / kBGraphRecordBytes,
             path + ": edge count " + std::to_string(info_.m) +
                 " at byte 24 overflows the file — " + std::to_string(size) +
                 " bytes holds at most " +
                 std::to_string(payload / kBGraphRecordBytes) + " records");
  QC_REQUIRE(payload == info_.m * kBGraphRecordBytes,
             path + ": size mismatch — header says m=" +
                 std::to_string(info_.m) + " (" +
                 std::to_string(kBGraphHeaderBytes +
                                info_.m * kBGraphRecordBytes) +
                 " bytes), file is " + std::to_string(size) + " bytes");
  buf_.resize(kIoBufRecords * kBGraphRecordBytes);
}

BGraphReader::~BGraphReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BGraphReader::rewind() { seek_record(0); }

void BGraphReader::seek_record(std::uint64_t index) {
  QC_REQUIRE(index <= info_.m, path_ + ": seek to record " +
                                   std::to_string(index) + " past m=" +
                                   std::to_string(info_.m));
  QC_REQUIRE(std::fseek(file_,
                        static_cast<long>(kBGraphHeaderBytes +
                                          index * kBGraphRecordBytes),
                        SEEK_SET) == 0,
             path_ + ": seek failed");
  read_ = index;
  last_key_ = 0;
  order_anchor_ = index;
  buf_pos_ = 0;
  buf_len_ = 0;
}

void BGraphReader::refill() {
  const std::uint64_t remaining = info_.m - read_;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining, kIoBufRecords) * kBGraphRecordBytes);
  const std::size_t got = std::fread(buf_.data(), 1, want, file_);
  QC_REQUIRE(got == want,
             path_ + ": short read at byte " +
                 std::to_string(kBGraphHeaderBytes +
                                read_ * kBGraphRecordBytes) +
                 " (wanted " + std::to_string(want) + " bytes, got " +
                 std::to_string(got) + ")");
  buf_pos_ = 0;
  buf_len_ = want;
}

bool BGraphReader::next(Edge& e) {
  if (read_ == info_.m) return false;
  if (buf_pos_ == buf_len_) refill();
  const unsigned char* rec = buf_.data() + buf_pos_;
  const std::uint64_t at = kBGraphHeaderBytes + read_ * kBGraphRecordBytes;
  const std::uint32_t u = get_u32(rec);
  const std::uint32_t v = get_u32(rec + 4);
  const std::uint64_t w = get_u64(rec + 8);
  QC_REQUIRE(u < v, path_ + ": record " + std::to_string(read_) +
                        " at byte " + std::to_string(at) +
                        ": not canonical (u=" + std::to_string(u) +
                        " >= v=" + std::to_string(v) + ")");
  QC_REQUIRE(std::uint64_t{v} < info_.n,
             path_ + ": record " + std::to_string(read_) + " at byte " +
                 std::to_string(at) + ": node id " + std::to_string(v) +
                 " out of range (n=" + std::to_string(info_.n) + ")");
  QC_REQUIRE(w >= 1, path_ + ": record " + std::to_string(read_) +
                         " at byte " + std::to_string(at) + ": zero weight");
  QC_REQUIRE(w <= info_.max_weight,
             path_ + ": record " + std::to_string(read_) + " at byte " +
                 std::to_string(at) + ": weight " + std::to_string(w) +
                 " exceeds the header max_weight " +
                 std::to_string(info_.max_weight));
  if (info_.sorted) {
    const std::uint64_t key = edge_key(u, v);
    QC_REQUIRE(read_ == order_anchor_ || key > last_key_,
               path_ + ": record " + std::to_string(read_) + " at byte " +
                   std::to_string(at) +
                   ": order violation under the sorted flag");
    last_key_ = key;
  }
  e = Edge{u, v, w};
  buf_pos_ += kBGraphRecordBytes;
  ++read_;
  return true;
}

// --- bgraph conversions ----------------------------------------------

BGraphInfo write_bgraph(const WeightedGraph& g, const std::string& path) {
  BGraphWriter out(path, g.node_count());
  for (const Edge& e : g.edges()) out.add(e.u, e.v, e.weight);
  return out.close();
}

WeightedGraph load_bgraph(const std::string& path) {
  BGraphReader in(path);
  QC_REQUIRE(in.info().n <= std::numeric_limits<NodeId>::max(),
             path + ": node count " + std::to_string(in.info().n) +
                 " too large for an in-memory WeightedGraph");
  std::vector<Edge> edges;
  edges.reserve(in.info().m);
  Edge e;
  while (in.next(e)) edges.push_back(e);
  return WeightedGraph::from_edges(static_cast<NodeId>(in.info().n),
                                   std::move(edges));
}

BGraphInfo convert_text_to_bgraph(const std::string& text_path,
                                  const std::string& bgraph_path) {
  std::ifstream in(text_path);
  QC_REQUIRE(in.good(), "cannot open: " + text_path);
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t edges_seen = 0;
  std::unique_ptr<BGraphWriter> out;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      std::string magic;
      ls >> magic >> n >> m;
      QC_REQUIRE(!ls.fail() && magic == "wgraph",
                 text_path + ": line " + std::to_string(line_no) +
                     ": expected 'wgraph <n> <m>' header");
      out = std::make_unique<BGraphWriter>(bgraph_path, n);
      have_header = true;
      continue;
    }
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    std::uint64_t w = 0;
    ls >> u >> v >> w;
    QC_REQUIRE(!ls.fail(), text_path + ": line " + std::to_string(line_no) +
                               ": expected 'u v w'");
    std::string extra;
    QC_REQUIRE(!(ls >> extra), text_path + ": line " +
                                   std::to_string(line_no) +
                                   ": trailing tokens");
    QC_REQUIRE(u < n && v < n, text_path + ": line " +
                                   std::to_string(line_no) +
                                   ": node id out of range");
    QC_REQUIRE(u != v, text_path + ": line " + std::to_string(line_no) +
                           ": self loop");
    if (u > v) std::swap(u, v);
    out->add(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    ++edges_seen;
  }
  QC_REQUIRE(have_header, text_path + ": missing wgraph header");
  QC_REQUIRE(edges_seen == m,
             text_path + ": edge count mismatch: header says " +
                 std::to_string(m) + ", file has " +
                 std::to_string(edges_seen));
  return out->close();
}

void convert_bgraph_to_text(const std::string& bgraph_path,
                            const std::string& text_path) {
  BGraphReader in(bgraph_path);
  std::ofstream out(text_path);
  QC_REQUIRE(out.good(), "cannot open for writing: " + text_path);
  out << "wgraph " << in.info().n << ' ' << in.info().m << '\n';
  Edge e;
  while (in.next(e)) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
  QC_REQUIRE(out.good(), "write failed: " + text_path);
}

// --- out-of-core shuffle / sort machinery ----------------------------

namespace {

/// Stateless splitmix64 finalizer: bucket assignment and per-bucket
/// seed derivation for the external shuffle (same family as
/// runtime::derive_seed — a pure function of its inputs, never of
/// scheduling).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// RAII spill directory: created on construction, removed with all its
/// contents on destruction — the cleanup path for external-sort runs
/// and shuffle buckets, including a validation failure mid-merge.
class TempDirGuard {
 public:
  explicit TempDirGuard(std::string dir) : dir_(std::move(dir)) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // stale leftovers from a crash
    std::filesystem::create_directories(dir_, ec);
    QC_REQUIRE(!ec, "cannot create spill directory: " + dir_);
  }
  ~TempDirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  TempDirGuard(const TempDirGuard&) = delete;
  TempDirGuard& operator=(const TempDirGuard&) = delete;

  std::string file(std::size_t i) const {
    return dir_ + "/run" + std::to_string(i);
  }

 private:
  std::string dir_;
};

/// Buffered writer for headerless spill files (raw 16-byte records in
/// the bgraph wire layout). No fsync — spill files never outlive the
/// operation that wrote them.
class SpillWriter {
 public:
  explicit SpillWriter(std::string path) : path_(std::move(path)) {
    file_ = std::fopen(path_.c_str(), "wb");
    QC_REQUIRE(file_ != nullptr, "cannot open for writing: " + path_);
    buf_.reserve(kIoBufRecords * kBGraphRecordBytes);
  }
  ~SpillWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  void add(const Edge& e) {
    unsigned char rec[kBGraphRecordBytes];
    put_u32(rec, e.u);
    put_u32(rec + 4, e.v);
    put_u64(rec + 8, e.weight);
    buf_.insert(buf_.end(), rec, rec + sizeof rec);
    ++records_;
    if (buf_.size() >= kIoBufRecords * kBGraphRecordBytes) flush();
  }

  std::uint64_t records() const { return records_; }

  void close() {
    if (file_ == nullptr) return;
    flush();
    QC_REQUIRE(std::fflush(file_) == 0, path_ + ": flush failed");
    std::fclose(file_);
    file_ = nullptr;
  }

 private:
  void flush() {
    if (!buf_.empty()) {
      write_all(file_, buf_.data(), buf_.size(), path_);
      buf_.clear();
    }
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
  std::vector<unsigned char> buf_;
};

/// Buffered reader over one spill file written by SpillWriter. Records
/// were validated on the way in (they came through BGraphReader), so
/// this is a plain decoder.
class SpillReader {
 public:
  SpillReader(std::string path, std::uint64_t records)
      : path_(std::move(path)), remaining_(records) {
    file_ = std::fopen(path_.c_str(), "rb");
    QC_REQUIRE(file_ != nullptr, "cannot open: " + path_);
    buf_.resize(kIoBufRecords * kBGraphRecordBytes);
  }
  ~SpillReader() {
    if (file_ != nullptr) std::fclose(file_);
  }
  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  bool next(Edge& e) {
    if (remaining_ == 0) return false;
    if (pos_ == len_) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining_, kIoBufRecords) *
          kBGraphRecordBytes);
      QC_REQUIRE(std::fread(buf_.data(), 1, want, file_) == want,
                 path_ + ": short read in spill file");
      pos_ = 0;
      len_ = want;
    }
    const unsigned char* rec = buf_.data() + pos_;
    e = Edge{get_u32(rec), get_u32(rec + 4), get_u64(rec + 8)};
    pos_ += kBGraphRecordBytes;
    --remaining_;
    return true;
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t remaining_ = 0;
  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

/// Loser tree over K sorted run cursors keyed by (u, v): popping the
/// global minimum replays only the leaf-to-root path (ceil(log2 K)
/// comparisons per record instead of K - 1). Internal nodes store the
/// loser of their subtree match; the overall winner sits outside the
/// tree. Runs that drain are treated as +inf keys and sink to losers,
/// so the merge ends when the winner itself is drained. Equal keys
/// (duplicate edges) surface on consecutive pops regardless of which
/// run holds them, which is what lets the caller keep the adjacent-
/// equality dedup check of the in-memory sort.
class LoserTree {
 public:
  explicit LoserTree(std::vector<std::unique_ptr<SpillReader>>* runs)
      : runs_(runs),
        k_(runs->size()),
        tree_(k_, kNone),
        cur_(k_),
        done_(k_, 0) {
    for (std::size_t i = 0; i < k_; ++i) {
      done_[i] = (*runs_)[i]->next(cur_[i]) ? 0 : 1;
    }
    for (std::size_t i = k_; i-- > 0;) adjust(i);
  }

  bool empty() const { return done_[winner_] != 0; }
  const Edge& value() const { return cur_[winner_]; }

  void pop() {
    done_[winner_] = (*runs_)[winner_]->next(cur_[winner_]) ? 0 : 1;
    adjust(winner_);
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// True when run a's head beats run b's (strictly smaller key). The
  /// kNone sentinel is the classic -inf placeholder the tree is built
  /// with: it wins every match, so each constructor-time adjust()
  /// deposits its real leaf at the leaf's first unclaimed node and
  /// carries the sentinel the rest of the way without disturbing
  /// matches already played. A drained run is +inf: it loses to every
  /// live one.
  bool wins(std::size_t a, std::size_t b) const {
    if (a == kNone) return true;
    if (b == kNone) return false;
    if (done_[a] != 0) return false;
    if (done_[b] != 0) return true;
    return edge_key(cur_[a].u, cur_[a].v) < edge_key(cur_[b].u, cur_[b].v);
  }

  /// Replays the match path from run s's leaf to the root, leaving the
  /// loser at each node and the subtree winner in winner_.
  void adjust(std::size_t s) {
    for (std::size_t t = (s + k_) / 2; t > 0; t /= 2) {
      if (wins(tree_[t], s)) std::swap(s, tree_[t]);
    }
    winner_ = s;
  }

  std::vector<std::unique_ptr<SpillReader>>* runs_;
  std::size_t k_;
  std::vector<std::size_t> tree_;  ///< internal nodes 1..k-1: loser index
  std::vector<Edge> cur_;          ///< head record of each run
  std::vector<unsigned char> done_;
  std::size_t winner_ = kNone;
};

std::uint64_t resolve_budget(std::uint64_t mem_budget_bytes) {
  return mem_budget_bytes == 0 ? kDefaultMemBudgetBytes : mem_budget_bytes;
}

}  // namespace

BGraphInfo shuffle_bgraph(const std::string& in_path,
                          const std::string& out_path, std::uint64_t seed,
                          std::uint64_t mem_budget_bytes) {
  const std::uint64_t budget = resolve_budget(mem_budget_bytes);
  BGraphReader in(in_path);
  Edge e;
  if (in.info().m * sizeof(Edge) <= budget) {
    // Small-input fast path: one in-memory Fisher-Yates pass —
    // unchanged semantics (and bytes) from before budgets existed.
    std::vector<Edge> edges;
    edges.reserve(in.info().m);
    while (in.next(e)) edges.push_back(e);
    Rng rng(seed);
    rng.shuffle(edges);
    BGraphWriter out(out_path, in.info().n);
    for (const Edge& edge : edges) out.add(edge.u, edge.v, edge.weight);
    return out.close();
  }
  // Out-of-core: seeded bucket scatter, then one in-memory shuffle per
  // bucket. Bucket count targets half the budget per bucket so the
  // binomial spread around the mean stays comfortably inside it.
  const std::uint64_t total = in.info().m * sizeof(Edge);
  const std::uint64_t per_bucket = std::max<std::uint64_t>(budget / 2, 1);
  const std::size_t buckets = static_cast<std::size_t>(
      std::min<std::uint64_t>((total + per_bucket - 1) / per_bucket, 4096));
  TempDirGuard spill(out_path + ".spill");
  std::vector<std::unique_ptr<SpillWriter>> scatter;
  scatter.reserve(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    scatter.push_back(std::make_unique<SpillWriter>(spill.file(b)));
  }
  std::uint64_t index = 0;
  while (in.next(e)) {
    const std::size_t b =
        static_cast<std::size_t>(mix64(seed ^ mix64(index)) % buckets);
    scatter[b]->add(e);
    ++index;
  }
  BGraphWriter out(out_path, in.info().n);
  std::vector<Edge> bucket_edges;
  for (std::size_t b = 0; b < buckets; ++b) {
    scatter[b]->close();
    const std::uint64_t records = scatter[b]->records();
    bucket_edges.clear();
    bucket_edges.reserve(static_cast<std::size_t>(records));
    SpillReader r(spill.file(b), records);
    while (r.next(e)) bucket_edges.push_back(e);
    Rng rng(mix64(seed) ^ mix64(b + 1));
    rng.shuffle(bucket_edges);
    for (const Edge& edge : bucket_edges) out.add(edge.u, edge.v, edge.weight);
  }
  return out.close();
}

BGraphInfo sort_bgraph(const std::string& in_path,
                       const std::string& out_path,
                       std::uint64_t mem_budget_bytes) {
  const std::uint64_t budget = resolve_budget(mem_budget_bytes);
  BGraphReader in(in_path);
  Edge e;
  if (in.info().m * sizeof(Edge) <= budget) {
    // Small-input fast path: the original in-memory sort, verbatim.
    // The external path below must stay byte-identical to this one.
    std::vector<Edge> edges;
    edges.reserve(in.info().m);
    while (in.next(e)) edges.push_back(e);
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return edge_key(a.u, a.v) < edge_key(b.u, b.v);
    });
    for (std::size_t i = 1; i < edges.size(); ++i) {
      QC_REQUIRE(edge_key(edges[i - 1].u, edges[i - 1].v) !=
                     edge_key(edges[i].u, edges[i].v),
                 in_path + ": duplicate edge (" + std::to_string(edges[i].u) +
                     ", " + std::to_string(edges[i].v) + ")");
    }
    BGraphWriter out(out_path, in.info().n);
    for (const Edge& edge : edges) out.add(edge.u, edge.v, edge.weight);
    return out.close();
  }
  // Out-of-core: spill sorted runs of at most one budget each, then
  // stream a loser-tree K-way merge into the output. The merged record
  // sequence is the unique ascending-key order — exactly what the
  // in-memory path writes — so the output bytes are identical.
  const std::uint64_t run_cap =
      std::max<std::uint64_t>(budget / sizeof(Edge), 1);
  TempDirGuard spill(out_path + ".spill");
  std::vector<std::uint64_t> run_records;
  std::vector<Edge> run;
  run.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(run_cap, in.info().m)));
  const auto flush_run = [&] {
    if (run.empty()) return;
    std::sort(run.begin(), run.end(), [](const Edge& a, const Edge& b) {
      return edge_key(a.u, a.v) < edge_key(b.u, b.v);
    });
    SpillWriter w(spill.file(run_records.size()));
    for (const Edge& r : run) w.add(r);
    w.close();
    run_records.push_back(run.size());
    run.clear();
  };
  while (in.next(e)) {
    run.push_back(e);
    if (run.size() >= run_cap) flush_run();
  }
  flush_run();
  run.shrink_to_fit();
  std::vector<std::unique_ptr<SpillReader>> runs;
  runs.reserve(run_records.size());
  for (std::size_t i = 0; i < run_records.size(); ++i) {
    runs.push_back(std::make_unique<SpillReader>(spill.file(i),
                                                 run_records[i]));
  }
  try {
    BGraphWriter out(out_path, in.info().n);
    LoserTree tree(&runs);
    bool have_prev = false;
    std::uint64_t prev_key = 0;
    while (!tree.empty()) {
      const Edge cur = tree.value();
      const std::uint64_t key = edge_key(cur.u, cur.v);
      QC_REQUIRE(!have_prev || key != prev_key,
                 in_path + ": duplicate edge (" + std::to_string(cur.u) +
                     ", " + std::to_string(cur.v) + ")");
      have_prev = true;
      prev_key = key;
      out.add(cur.u, cur.v, cur.weight);
      tree.pop();
    }
    return out.close();
  } catch (...) {
    // A failed merge leaves a placeholder-headered partial output
    // (unparseable by design); remove it rather than leave the
    // confusing husk. The spill guard unlinks the runs either way.
    std::error_code ec;
    std::filesystem::remove(out_path, ec);
    throw;
  }
}

BGraphSummary summarize_bgraph(const std::string& path) {
  BGraphReader in(path);
  BGraphSummary s;
  s.info = in.info();
  s.min_weight = in.info().m == 0 ? 1 : std::numeric_limits<Weight>::max();
  std::vector<std::uint32_t> degree(static_cast<std::size_t>(in.info().n), 0);
  Edge e;
  while (in.next(e)) {
    ++degree[e.u];
    ++degree[e.v];
    s.min_weight = std::min(s.min_weight, e.weight);
  }
  s.degree_hist_log2.assign(33, 0);
  for (const std::uint32_t d : degree) {
    if (d == 0) {
      ++s.isolated;
      continue;
    }
    s.max_degree = std::max<std::uint64_t>(s.max_degree, d);
    ++s.degree_hist_log2[std::bit_width(d) - 1];
  }
  while (s.degree_hist_log2.size() > 1 && s.degree_hist_log2.back() == 0) {
    s.degree_hist_log2.pop_back();
  }
  s.avg_degree = in.info().n == 0
                     ? 0.0
                     : 2.0 * double(in.info().m) / double(in.info().n);
  return s;
}

namespace {

/// Serial reference two-pass build; the sharded path below must place
/// every half-edge in exactly the slot this one does.
CsrGraph csr_from_bgraph_serial(BGraphReader& in) {
  const std::size_t n = static_cast<std::size_t>(in.info().n);
  // Pass 1: degree histogram (u32 suffices — simple-graph degrees are
  // < n <= 2^32) and the true max weight.
  std::vector<std::uint32_t> degree(n, 0);
  Weight mx = 1;
  Edge e;
  while (in.next(e)) {
    ++degree[e.u];
    ++degree[e.v];
    mx = std::max(mx, e.weight);
  }
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + degree[u];
  }
  degree.clear();
  degree.shrink_to_fit();
  std::vector<HalfEdge> halves(offsets[n]);
  // Pass 2: place both half-edges in file order — the same row order
  // CsrGraph(WeightedGraph) produces for a graph built from this edge
  // sequence. `cursor` starts as a copy of the offsets and walks each
  // row forward.
  std::vector<std::size_t> cursor(offsets);
  in.rewind();
  while (in.next(e)) {
    halves[cursor[e.u]++] = HalfEdge{e.v, e.weight};
    halves[cursor[e.v]++] = HalfEdge{e.u, e.weight};
  }
  return CsrGraph::from_parts(std::move(offsets), std::move(halves), mx);
}

}  // namespace

CsrGraph csr_from_bgraph(const std::string& path, runtime::ThreadPool* pool) {
  BGraphReader in(path);
  QC_REQUIRE(in.info().n <= std::numeric_limits<NodeId>::max(),
             path + ": node count " + std::to_string(in.info().n) +
                 " too large for an in-memory CsrGraph");
  const std::size_t n = static_cast<std::size_t>(in.info().n);
  const std::uint64_t m = in.info().m;
  // Shard count: bounded by the pool width, by a minimum of records
  // per shard (tiny files gain nothing from fan-out), and by memory —
  // each shard holds a u32 degree array plus a size_t cursor array
  // (12n bytes); capping shards at m/n keeps the cursors' total at
  // half the raw edge bytes, so the place-pass peak stays near
  // 2.5x raw and the bench's <3x gate holds at any worker count.
  std::size_t shards = 1;
  if (pool != nullptr && n > 0) {
    const std::uint64_t mem_cap = std::max<std::uint64_t>(m / n, 1);
    const std::uint64_t work_cap = std::max<std::uint64_t>(m / 32768, 1);
    shards = static_cast<std::size_t>(std::min<std::uint64_t>(
        std::min<std::uint64_t>(pool->worker_count(), 16),
        std::min(mem_cap, work_cap)));
  }
  if (shards <= 1) return csr_from_bgraph_serial(in);

  std::vector<std::uint64_t> bounds(shards + 1);
  for (std::size_t s = 0; s <= shards; ++s) bounds[s] = m * s / shards;

  // Count pass: per-shard degree arrays over contiguous record ranges,
  // each shard streaming through its own reader.
  struct ShardCount {
    std::vector<std::uint32_t> degree;
    Weight mx = 1;
    std::uint64_t first_key = 0;
    std::uint64_t last_key = 0;
  };
  std::vector<ShardCount> counts(shards);
  runtime::parallel_for(*pool, shards, [&](std::size_t s) {
    BGraphReader r(path);
    r.seek_record(bounds[s]);
    ShardCount& sc = counts[s];
    sc.degree.assign(n, 0);
    Edge e;
    for (std::uint64_t i = bounds[s]; i < bounds[s + 1]; ++i) {
      QC_REQUIRE(r.next(e), path + ": short shard read");
      ++sc.degree[e.u];
      ++sc.degree[e.v];
      sc.mx = std::max(sc.mx, e.weight);
      const std::uint64_t key = edge_key(e.u, e.v);
      if (i == bounds[s]) sc.first_key = key;
      sc.last_key = key;
    }
  });
  // The per-shard readers verified order inside their ranges; stitch
  // the seams so a sorted file gets exactly the serial path's check.
  if (in.info().sorted) {
    for (std::size_t s = 1; s < shards; ++s) {
      if (bounds[s - 1] == bounds[s] || bounds[s] == bounds[s + 1]) continue;
      QC_REQUIRE(counts[s].first_key > counts[s - 1].last_key,
                 path + ": record " + std::to_string(bounds[s]) +
                     ": order violation under the sorted flag");
    }
  }

  // Serial reduce in shard order: global offsets, then per-shard
  // cursor bases (cursor[s][u] = offsets[u] + half-edges row u receives
  // from shards before s), freeing each degree array as it is folded.
  Weight mx = 1;
  for (const ShardCount& sc : counts) mx = std::max(mx, sc.mx);
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    std::size_t d = 0;
    for (const ShardCount& sc : counts) d += sc.degree[u];
    offsets[u + 1] = offsets[u] + d;
  }
  std::vector<std::vector<std::size_t>> cursors(shards);
  std::vector<std::size_t> acc(offsets.begin(), offsets.end() - 1);
  for (std::size_t s = 0; s < shards; ++s) {
    cursors[s].assign(acc.begin(), acc.end());
    if (s + 1 < shards) {
      for (std::size_t u = 0; u < n; ++u) acc[u] += counts[s].degree[u];
    }
    counts[s].degree = std::vector<std::uint32_t>();
  }
  acc.clear();
  acc.shrink_to_fit();

  // Place pass: every record's two half-edge slots are fixed by the
  // cursor bases, so concurrent shards write disjoint indices and the
  // array is byte-identical to the serial build's.
  std::vector<HalfEdge> halves(offsets[n]);
  runtime::parallel_for(*pool, shards, [&](std::size_t s) {
    BGraphReader r(path);
    r.seek_record(bounds[s]);
    std::vector<std::size_t>& cur = cursors[s];
    Edge e;
    for (std::uint64_t i = bounds[s]; i < bounds[s + 1]; ++i) {
      QC_REQUIRE(r.next(e), path + ": short shard read");
      halves[cur[e.u]++] = HalfEdge{e.v, e.weight};
      halves[cur[e.v]++] = HalfEdge{e.u, e.weight};
    }
  });
  return CsrGraph::from_parts(std::move(offsets), std::move(halves), mx);
}

// --- bcsr v1 (packed CSR image) --------------------------------------

namespace {

constexpr std::size_t kBcsrHeaderBytes = 48;

struct BcsrLayout {
  std::uint64_t n = 0;
  std::uint64_t halves = 0;
  Weight max_weight = 1;
  std::uint64_t offsets_bytes() const { return (n + 1) * 8; }
  std::uint64_t halves_bytes() const { return halves * sizeof(HalfEdge); }
  std::uint64_t total_bytes() const {
    return kBcsrHeaderBytes + offsets_bytes() + halves_bytes();
  }
};

BcsrLayout decode_bcsr_header(const unsigned char* h, std::uint64_t size,
                              const std::string& path) {
  QC_REQUIRE(std::memcmp(h, kBcsrMagic, 8) == 0,
             path + ": bad magic at byte 0 (not a bcsr v1 file)");
  const std::uint32_t version = get_u32(h + 8);
  QC_REQUIRE(version == kFormatVersion,
             path + ": unsupported version " + std::to_string(version) +
                 " at byte 8");
  BcsrLayout lay;
  lay.n = get_u64(h + 16);
  lay.halves = get_u64(h + 24);
  lay.max_weight = get_u64(h + 32);
  QC_REQUIRE(lay.n < (std::uint64_t{1} << 32),
             path + ": node count " + std::to_string(lay.n) +
                 " at byte 16 exceeds the NodeId range");
  QC_REQUIRE(lay.max_weight >= 1,
             path + ": max_weight 0 at byte 32 (weights are positive)");
  const std::uint64_t payload = size - kBcsrHeaderBytes;
  QC_REQUIRE(lay.offsets_bytes() <= payload &&
                 lay.halves <= (payload - lay.offsets_bytes()) /
                                   sizeof(HalfEdge),
             path + ": counts at bytes 16/24 overflow the file (" +
                 std::to_string(size) + " bytes)");
  QC_REQUIRE(size == lay.total_bytes(),
             path + ": size mismatch — header implies " +
                 std::to_string(lay.total_bytes()) + " bytes, file is " +
                 std::to_string(size));
  return lay;
}

void validate_csr_offsets(std::span<const std::size_t> offsets,
                          std::uint64_t halves, const std::string& path) {
  QC_REQUIRE(offsets.front() == 0, path + ": offsets[0] != 0");
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    QC_REQUIRE(offsets[i - 1] <= offsets[i],
               path + ": offsets not monotone at index " +
                   std::to_string(i) + " (byte " +
                   std::to_string(kBcsrHeaderBytes + i * 8) + ")");
  }
  QC_REQUIRE(offsets.back() == halves,
             path + ": offsets end at " + std::to_string(offsets.back()) +
                 " but the header promises " + std::to_string(halves) +
                 " half-edges");
}

void validate_csr_halves(std::span<const HalfEdge> halves, std::uint64_t n,
                         Weight max_weight, std::uint64_t base_byte,
                         const std::string& path) {
  for (std::size_t i = 0; i < halves.size(); ++i) {
    const HalfEdge& h = halves[i];
    const std::string at =
        " at byte " + std::to_string(base_byte + i * sizeof(HalfEdge));
    QC_REQUIRE(std::uint64_t{h.to} < n, path + ": half-edge " +
                                            std::to_string(i) + at +
                                            ": target out of range");
    QC_REQUIRE(h.weight >= 1 && h.weight <= max_weight,
               path + ": half-edge " + std::to_string(i) + at +
                   ": weight outside [1, max_weight]");
  }
}

}  // namespace

void write_csr(const CsrGraph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  QC_REQUIRE(f != nullptr, "cannot open for writing: " + path);
  const auto offsets = g.offsets();
  const auto halves = g.halves();
  unsigned char h[kBcsrHeaderBytes];
  encode_header(h, kBcsrMagic, 0, g.node_count(), halves.size(),
                g.max_weight());
  write_all(f, h, sizeof h, path);
  write_all(f, offsets.data(), offsets.size_bytes(), path);
  // Half-edges are written through a scratch block with the padding
  // lane explicitly zeroed — in-memory padding bytes are indeterminate
  // and would make the file non-deterministic.
  std::vector<unsigned char> block(kIoBufRecords * sizeof(HalfEdge));
  std::size_t i = 0;
  while (i < halves.size()) {
    const std::size_t count =
        std::min(kIoBufRecords, halves.size() - i);
    std::memset(block.data(), 0, count * sizeof(HalfEdge));
    for (std::size_t j = 0; j < count; ++j) {
      unsigned char* rec = block.data() + j * sizeof(HalfEdge);
      put_u32(rec, halves[i + j].to);
      put_u64(rec + 8, halves[i + j].weight);
    }
    write_all(f, block.data(), count * sizeof(HalfEdge), path);
    i += count;
  }
  QC_REQUIRE(std::fflush(f) == 0, path + ": flush failed");
  std::fclose(f);
}

CsrGraph read_csr(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  QC_REQUIRE(f != nullptr, "cannot open: " + path);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};
  const std::uint64_t size = file_size_of(f, path);
  QC_REQUIRE(size >= kBcsrHeaderBytes,
             path + ": truncated header — file is " + std::to_string(size) +
                 " bytes, a bcsr header needs " +
                 std::to_string(kBcsrHeaderBytes));
  unsigned char h[kBcsrHeaderBytes];
  QC_REQUIRE(std::fread(h, 1, sizeof h, f) == sizeof h,
             path + ": header read failed");
  const BcsrLayout lay = decode_bcsr_header(h, size, path);
  std::vector<std::size_t> offsets(static_cast<std::size_t>(lay.n) + 1);
  QC_REQUIRE(std::fread(offsets.data(), 1, lay.offsets_bytes(), f) ==
                 lay.offsets_bytes(),
             path + ": short read in the offsets array");
  std::vector<HalfEdge> halves(static_cast<std::size_t>(lay.halves));
  QC_REQUIRE(std::fread(halves.data(), 1, lay.halves_bytes(), f) ==
                 lay.halves_bytes(),
             path + ": short read in the half-edge array");
  validate_csr_offsets(offsets, lay.halves, path);
  validate_csr_halves(halves, lay.n, lay.max_weight,
                      kBcsrHeaderBytes + lay.offsets_bytes(), path);
  return CsrGraph::from_parts(std::move(offsets), std::move(halves),
                              lay.max_weight);
}

#if defined(_WIN32)

CsrGraph map_csr(const std::string& path, bool) {
  // No mmap shim on this platform: fall back to the owning loader.
  return read_csr(path);
}

#else

CsrGraph map_csr(const std::string& path, bool validate_edges) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  QC_REQUIRE(fd >= 0, "cannot open: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw ArgumentError("cannot stat: " + path);
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (size < kBcsrHeaderBytes) {
    ::close(fd);
    throw ArgumentError(path + ": truncated header — file is " +
                        std::to_string(size) + " bytes, a bcsr header needs " +
                        std::to_string(kBcsrHeaderBytes));
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                      MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  QC_REQUIRE(base != MAP_FAILED, "mmap failed: " + path);
  std::shared_ptr<const void> keep_alive(
      base, [size](const void* p) {
        ::munmap(const_cast<void*>(p), static_cast<std::size_t>(size));
      });
  const unsigned char* bytes = static_cast<const unsigned char*>(base);
  const BcsrLayout lay = decode_bcsr_header(bytes, size, path);
  const std::span<const std::size_t> offsets(
      reinterpret_cast<const std::size_t*>(bytes + kBcsrHeaderBytes),
      static_cast<std::size_t>(lay.n) + 1);
  const std::span<const HalfEdge> halves(
      reinterpret_cast<const HalfEdge*>(bytes + kBcsrHeaderBytes +
                                        lay.offsets_bytes()),
      static_cast<std::size_t>(lay.halves));
  validate_csr_offsets(offsets, lay.halves, path);
  if (validate_edges) {
    validate_csr_halves(halves, lay.n, lay.max_weight,
                        kBcsrHeaderBytes + lay.offsets_bytes(), path);
  }
  return CsrGraph::mapped(offsets, halves, lay.max_weight,
                          std::move(keep_alive));
}

#endif

}  // namespace qc
