#include "graph/io.h"

#include <fstream>
#include <sstream>

namespace qc {

std::string to_edge_list(const WeightedGraph& g) {
  std::ostringstream os;
  os << "wgraph " << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
  return os.str();
}

WeightedGraph parse_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  bool have_header = false;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  WeightedGraph g;
  std::uint64_t edges_seen = 0;

  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      std::string magic;
      ls >> magic >> n >> m;
      QC_REQUIRE(!ls.fail() && magic == "wgraph",
                 "line " + std::to_string(line_no) +
                     ": expected 'wgraph <n> <m>' header");
      QC_REQUIRE(n <= (std::uint64_t{1} << 31), "node count too large");
      g = WeightedGraph(static_cast<NodeId>(n));
      have_header = true;
      continue;
    }
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    std::uint64_t w = 0;
    ls >> u >> v >> w;
    QC_REQUIRE(!ls.fail(),
               "line " + std::to_string(line_no) + ": expected 'u v w'");
    std::string extra;
    QC_REQUIRE(!(ls >> extra),
               "line " + std::to_string(line_no) + ": trailing tokens");
    QC_REQUIRE(u < n && v < n,
               "line " + std::to_string(line_no) + ": node id out of range");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    ++edges_seen;
  }
  QC_REQUIRE(have_header, "missing wgraph header");
  QC_REQUIRE(edges_seen == m, "edge count mismatch: header says " +
                                  std::to_string(m) + ", file has " +
                                  std::to_string(edges_seen));
  return g;
}

void save_graph(const WeightedGraph& g, const std::string& path) {
  std::ofstream out(path);
  QC_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << to_edge_list(g);
  QC_REQUIRE(out.good(), "write failed: " + path);
}

WeightedGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  QC_REQUIRE(in.good(), "cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_edge_list(buf.str());
}

}  // namespace qc
