#include "graph/algorithms.h"

#include <algorithm>
#include <queue>
#include <tuple>

namespace qc {

std::vector<Dist> bfs_distances(const WeightedGraph& g, NodeId s) {
  QC_REQUIRE(s < g.node_count(), "source out of range");
  std::vector<Dist> dist(g.node_count(), kInfDist);
  std::queue<NodeId> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const HalfEdge& h : g.neighbors(u)) {
      if (dist[h.to] == kInfDist) {
        dist[h.to] = dist[u] + 1;
        q.push(h.to);
      }
    }
  }
  return dist;
}

std::vector<Dist> dijkstra(const WeightedGraph& g, NodeId s) {
  QC_REQUIRE(s < g.node_count(), "source out of range");
  std::vector<Dist> dist(g.node_count(), kInfDist);
  using Item = std::pair<Dist, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(0, s);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& h : g.neighbors(u)) {
      const Dist nd = dist_add(d, h.weight);
      if (nd < dist[h.to]) {
        dist[h.to] = nd;
        pq.emplace(nd, h.to);
      }
    }
  }
  return dist;
}

DistHops dijkstra_with_hops(const WeightedGraph& g, NodeId s) {
  QC_REQUIRE(s < g.node_count(), "source out of range");
  DistHops out{std::vector<Dist>(g.node_count(), kInfDist),
               std::vector<Dist>(g.node_count(), kInfDist)};
  using Item = std::tuple<Dist, Dist, NodeId>;  // (weight, hops, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  out.dist[s] = 0;
  out.hops[s] = 0;
  pq.emplace(0, 0, s);
  while (!pq.empty()) {
    const auto [d, hp, u] = pq.top();
    pq.pop();
    if (d != out.dist[u] || hp != out.hops[u]) continue;
    for (const HalfEdge& h : g.neighbors(u)) {
      const Dist nd = dist_add(d, h.weight);
      const Dist nh = hp + 1;
      if (nd < out.dist[h.to] ||
          (nd == out.dist[h.to] && nh < out.hops[h.to])) {
        out.dist[h.to] = nd;
        out.hops[h.to] = nh;
        pq.emplace(nd, nh, h.to);
      }
    }
  }
  return out;
}

std::vector<Dist> bounded_hop_distances(const WeightedGraph& g, NodeId s,
                                        std::uint64_t ell) {
  QC_REQUIRE(s < g.node_count(), "source out of range");
  const NodeId n = g.node_count();
  std::vector<Dist> cur(n, kInfDist);
  cur[s] = 0;
  // Bellman-Ford: after round t, cur[v] = d^t(s, v). ell rounds suffice;
  // stop early once a round changes nothing.
  std::vector<Dist> next(n);
  for (std::uint64_t t = 0; t < ell; ++t) {
    next = cur;
    bool changed = false;
    for (NodeId u = 0; u < n; ++u) {
      if (cur[u] >= kInfDist) continue;
      for (const HalfEdge& h : g.neighbors(u)) {
        const Dist nd = dist_add(cur[u], h.weight);
        if (nd < next[h.to]) {
          next[h.to] = nd;
          changed = true;
        }
      }
    }
    cur.swap(next);
    if (!changed) break;
  }
  return cur;
}

std::vector<std::vector<Dist>> all_pairs_distances(const WeightedGraph& g) {
  std::vector<std::vector<Dist>> rows;
  rows.reserve(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    rows.push_back(dijkstra(g, s));
  }
  return rows;
}

std::vector<Dist> eccentricities(const WeightedGraph& g) {
  std::vector<Dist> ecc(g.node_count(), 0);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto dist = dijkstra(g, s);
    ecc[s] = *std::max_element(dist.begin(), dist.end());
  }
  return ecc;
}

Dist weighted_diameter(const WeightedGraph& g) {
  const auto ecc = eccentricities(g);
  return ecc.empty() ? 0 : *std::max_element(ecc.begin(), ecc.end());
}

Dist weighted_radius(const WeightedGraph& g) {
  const auto ecc = eccentricities(g);
  return ecc.empty() ? 0 : *std::min_element(ecc.begin(), ecc.end());
}

Dist unweighted_diameter(const WeightedGraph& g) {
  Dist d = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto dist = bfs_distances(g, s);
    d = std::max(d, *std::max_element(dist.begin(), dist.end()));
  }
  return d;
}

Dist hop_diameter(const WeightedGraph& g) {
  Dist h = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto dh = dijkstra_with_hops(g, s);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (dh.hops[v] < kInfDist) h = std::max(h, dh.hops[v]);
    }
  }
  return h;
}

Contraction contract_unit_edges(const WeightedGraph& g) {
  const NodeId n = g.node_count();
  // Union-find over weight-1 edges.
  std::vector<NodeId> parent(n);
  for (NodeId i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : g.edges()) {
    if (e.weight == 1) {
      const NodeId ru = find(e.u);
      const NodeId rv = find(e.v);
      if (ru != rv) parent[ru] = rv;
    }
  }
  // Dense renumbering of components.
  std::vector<NodeId> node_map(n, 0);
  NodeId next_id = 0;
  std::vector<NodeId> rep_to_id(n, n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId r = find(v);
    if (rep_to_id[r] == n) rep_to_id[r] = next_id++;
    node_map[v] = rep_to_id[r];
  }
  WeightedGraph contracted(next_id);
  for (const Edge& e : g.edges()) {
    if (e.weight == 1) continue;  // internal to a super-node
    const NodeId cu = node_map[e.u];
    const NodeId cv = node_map[e.v];
    if (cu == cv) continue;  // endpoints merged by unit edges
    if (contracted.has_edge(cu, cv)) {
      // Parallel edge: keep the lowest weight (Lemma 4.3 convention).
      if (e.weight < contracted.edge_weight(cu, cv)) {
        contracted.set_edge_weight(cu, cv, e.weight);
      }
    } else {
      contracted.add_edge(cu, cv, e.weight);
    }
  }
  return {std::move(contracted), std::move(node_map)};
}

}  // namespace qc
