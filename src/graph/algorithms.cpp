#include "graph/algorithms.h"

#include <algorithm>
#include <unordered_map>

#include "runtime/thread_pool.h"

namespace qc {

namespace {

/// Bucket-queue Dijkstra is used when every edge weight fits a small
/// circular bucket window and the worst-case empty-bucket scan (bounded
/// by n·W) stays cheap relative to the edge work.
constexpr Weight kDialMaxWeight = 128;
constexpr Dist kDialScanBound = Dist{1} << 22;

/// Below this size the multi-source drivers stay serial: per-source work
/// is too small to amortize pool handoff.
constexpr NodeId kParallelSourceThreshold = 256;

runtime::ThreadPool& shared_pool() {
  // Dedicated pool for the graph kernels. Deliberately distinct from any
  // caller-owned pool (e.g. the sweep executor's), so a kernel invoked
  // from inside a pool task blocks on *this* pool's workers instead of
  // deadlocking on its own.
  static runtime::ThreadPool pool;
  return pool;
}

/// Runs fn(s, ws) for s = 0..n-1, serially or chunked over a pool. Each
/// chunk owns a workspace; fn must write only to slots indexed by s, so
/// the combined result is byte-identical at any worker count.
template <typename Fn>
void over_sources(NodeId n, runtime::ThreadPool* pool, const Fn& fn) {
  if (pool == nullptr && n >= kParallelSourceThreshold) {
    pool = &shared_pool();
  }
  if (pool == nullptr || n < 2) {
    DijkstraWorkspace ws;
    for (NodeId s = 0; s < n; ++s) fn(s, ws);
    return;
  }
  const std::size_t chunks =
      std::min<std::size_t>(n, std::size_t{pool->worker_count()} * 4);
  runtime::parallel_for(*pool, chunks, [&](std::size_t c) {
    DijkstraWorkspace ws;
    const NodeId lo = static_cast<NodeId>(n * c / chunks);
    const NodeId hi = static_cast<NodeId>(n * (c + 1) / chunks);
    for (NodeId s = lo; s < hi; ++s) fn(s, ws);
  });
}

}  // namespace

// --- DijkstraWorkspace -----------------------------------------------

void DijkstraWorkspace::prepare(NodeId n) {
  if (dist_.size() != n) {
    dist_.assign(n, kInfDist);
    hops_.assign(n, kInfDist);
    touched_.clear();
  }
}

void DijkstraWorkspace::reset_touched() {
  for (const NodeId v : touched_) {
    dist_[v] = kInfDist;
    hops_[v] = kInfDist;
  }
  touched_.clear();
}

bool DijkstraWorkspace::use_buckets(const CsrGraph& g) const {
  return g.max_weight() <= kDialMaxWeight &&
         static_cast<Dist>(g.node_count()) * g.max_weight() <=
             kDialScanBound;
}

void DijkstraWorkspace::bfs(const CsrGraph& g, NodeId s,
                            std::vector<Dist>& out) {
  QC_REQUIRE(s < g.node_count(), "source out of range");
  prepare(g.node_count());
  dist_[s] = 0;
  touched_.push_back(s);  // touched_ doubles as the FIFO frontier
  for (std::size_t head = 0; head < touched_.size(); ++head) {
    const NodeId u = touched_[head];
    const Dist du = dist_[u];
    for (const HalfEdge& h : g.neighbors(u)) {
      if (dist_[h.to] == kInfDist) {
        dist_[h.to] = du + 1;
        touched_.push_back(h.to);
      }
    }
  }
  out.assign(dist_.begin(), dist_.end());
  reset_touched();
}

void DijkstraWorkspace::dijkstra_buckets(const CsrGraph& g, NodeId s,
                                         Dist cap) {
  const std::size_t nb = static_cast<std::size_t>(g.max_weight()) + 1;
  if (buckets_.size() < nb) buckets_.resize(nb);
  dist_[s] = 0;
  touched_.push_back(s);
  buckets_[0].push_back(s);
  std::size_t pending = 1;
  // Monotone sweep: when bucket d is processed, every entry in it was
  // inserted for distance exactly d (relaxations only reach d+1..d+W,
  // and W < nb), so the circular window never mixes distances.
  // Relaxations past `cap` are never enqueued, so the sweep drains on
  // its own once the cap ball is settled (labels beyond it stay
  // kInfDist, which honours the > cap contract).
  for (Dist d = 0; pending > 0; ++d) {
    auto& bucket = buckets_[d % nb];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId u = bucket[i];
      if (dist_[u] != d) continue;  // superseded by a later improvement
      for (const HalfEdge& h : g.neighbors(u)) {
        const Dist nd = d + h.weight;
        if (nd < dist_[h.to] && nd <= cap) {
          if (dist_[h.to] == kInfDist) touched_.push_back(h.to);
          dist_[h.to] = nd;
          buckets_[nd % nb].push_back(h.to);
          ++pending;
        }
      }
    }
    pending -= bucket.size();
    bucket.clear();
  }
}

void DijkstraWorkspace::dijkstra_heap(const CsrGraph& g, NodeId s,
                                      Dist cap) {
  heap_.clear();
  dist_[s] = 0;
  touched_.push_back(s);
  heap_.emplace_back(0, s);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const auto [d, u] = heap_.back();
    heap_.pop_back();
    if (d != dist_[u]) continue;
    for (const HalfEdge& h : g.neighbors(u)) {
      const Dist nd = dist_add(d, h.weight);
      if (nd < dist_[h.to] && nd <= cap) {
        if (dist_[h.to] == kInfDist) touched_.push_back(h.to);
        dist_[h.to] = nd;
        heap_.emplace_back(nd, h.to);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
    }
  }
}

void DijkstraWorkspace::dijkstra(const CsrGraph& g, NodeId s,
                                 std::vector<Dist>& out, Dist cap) {
  QC_REQUIRE(s < g.node_count(), "source out of range");
  prepare(g.node_count());
  if (use_buckets(g)) {
    dijkstra_buckets(g, s, cap);
  } else {
    dijkstra_heap(g, s, cap);
  }
  out.assign(dist_.begin(), dist_.end());
  reset_touched();
}

void DijkstraWorkspace::with_hops_buckets(const CsrGraph& g, NodeId s) {
  const std::size_t nb = static_cast<std::size_t>(g.max_weight()) + 1;
  if (buckets_h_.size() < nb) buckets_h_.resize(nb);
  dist_[s] = 0;
  hops_[s] = 0;
  touched_.push_back(s);
  buckets_h_[0].emplace_back(s, 0);
  std::size_t pending = 1;
  // Same monotone-window argument as dijkstra_buckets. Hop improvements
  // at equal distance d come from predecessors at distance < d, so every
  // (d, hops) entry exists before bucket d is processed; the entry whose
  // hops match the (final) label is the one processed.
  for (Dist d = 0; pending > 0; ++d) {
    auto& bucket = buckets_h_[d % nb];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const auto [u, hp] = bucket[i];
      if (dist_[u] != d || hops_[u] != hp) continue;
      for (const HalfEdge& h : g.neighbors(u)) {
        const Dist nd = d + h.weight;
        const Dist nh = hp + 1;
        if (nd < dist_[h.to] ||
            (nd == dist_[h.to] && nh < hops_[h.to])) {
          if (dist_[h.to] == kInfDist) touched_.push_back(h.to);
          dist_[h.to] = nd;
          hops_[h.to] = nh;
          buckets_h_[nd % nb].emplace_back(h.to, nh);
          ++pending;
        }
      }
    }
    pending -= bucket.size();
    bucket.clear();
  }
}

void DijkstraWorkspace::with_hops_heap(const CsrGraph& g, NodeId s) {
  heap3_.clear();
  dist_[s] = 0;
  hops_[s] = 0;
  touched_.push_back(s);
  heap3_.emplace_back(0, 0, s);
  while (!heap3_.empty()) {
    std::pop_heap(heap3_.begin(), heap3_.end(), std::greater<>{});
    const auto [d, hp, u] = heap3_.back();
    heap3_.pop_back();
    if (d != dist_[u] || hp != hops_[u]) continue;
    for (const HalfEdge& h : g.neighbors(u)) {
      const Dist nd = dist_add(d, h.weight);
      const Dist nh = hp + 1;
      if (nd < dist_[h.to] ||
          (nd == dist_[h.to] && nh < hops_[h.to])) {
        if (dist_[h.to] == kInfDist) touched_.push_back(h.to);
        dist_[h.to] = nd;
        hops_[h.to] = nh;
        heap3_.emplace_back(nd, nh, h.to);
        std::push_heap(heap3_.begin(), heap3_.end(), std::greater<>{});
      }
    }
  }
}

void DijkstraWorkspace::dijkstra_with_hops(const CsrGraph& g, NodeId s,
                                           std::vector<Dist>& dist_out,
                                           std::vector<Dist>& hops_out) {
  QC_REQUIRE(s < g.node_count(), "source out of range");
  prepare(g.node_count());
  if (use_buckets(g)) {
    with_hops_buckets(g, s);
  } else {
    with_hops_heap(g, s);
  }
  dist_out.assign(dist_.begin(), dist_.end());
  hops_out.assign(hops_.begin(), hops_.end());
  reset_touched();
}

void DijkstraWorkspace::bounded_hop(const CsrGraph& g, NodeId s,
                                    std::uint64_t ell,
                                    std::vector<Dist>& out) {
  QC_REQUIRE(s < g.node_count(), "source out of range");
  const NodeId n = g.node_count();
  bf_cur_.assign(n, kInfDist);
  bf_cur_[s] = 0;
  // Bellman-Ford: after round t, cur[v] = d^t(s, v). ell rounds suffice;
  // stop early once a round changes nothing.
  for (std::uint64_t t = 0; t < ell; ++t) {
    bf_next_ = bf_cur_;
    bool changed = false;
    for (NodeId u = 0; u < n; ++u) {
      if (bf_cur_[u] >= kInfDist) continue;
      for (const HalfEdge& h : g.neighbors(u)) {
        const Dist nd = dist_add(bf_cur_[u], h.weight);
        if (nd < bf_next_[h.to]) {
          bf_next_[h.to] = nd;
          changed = true;
        }
      }
    }
    bf_cur_.swap(bf_next_);
    if (!changed) break;
  }
  out = bf_cur_;
}

// --- single-source conveniences --------------------------------------

std::vector<Dist> bfs_distances(const CsrGraph& g, NodeId s) {
  DijkstraWorkspace ws;
  std::vector<Dist> out;
  ws.bfs(g, s, out);
  return out;
}

std::vector<Dist> bfs_distances(const WeightedGraph& g, NodeId s) {
  return bfs_distances(g.csr(), s);
}

std::vector<Dist> dijkstra(const CsrGraph& g, NodeId s) {
  DijkstraWorkspace ws;
  std::vector<Dist> out;
  ws.dijkstra(g, s, out);
  return out;
}

std::vector<Dist> dijkstra(const WeightedGraph& g, NodeId s) {
  return dijkstra(g.csr(), s);
}

DistHops dijkstra_with_hops(const CsrGraph& g, NodeId s) {
  DijkstraWorkspace ws;
  DistHops out;
  ws.dijkstra_with_hops(g, s, out.dist, out.hops);
  return out;
}

DistHops dijkstra_with_hops(const WeightedGraph& g, NodeId s) {
  return dijkstra_with_hops(g.csr(), s);
}

std::vector<Dist> bounded_hop_distances(const CsrGraph& g, NodeId s,
                                        std::uint64_t ell) {
  DijkstraWorkspace ws;
  std::vector<Dist> out;
  ws.bounded_hop(g, s, ell, out);
  return out;
}

std::vector<Dist> bounded_hop_distances(const WeightedGraph& g, NodeId s,
                                        std::uint64_t ell) {
  return bounded_hop_distances(g.csr(), s, ell);
}

// --- multi-source drivers --------------------------------------------

std::vector<std::vector<Dist>> all_pairs_distances(
    const CsrGraph& g, runtime::ThreadPool* pool) {
  std::vector<std::vector<Dist>> rows(g.node_count());
  over_sources(g.node_count(), pool, [&](NodeId s, DijkstraWorkspace& ws) {
    ws.dijkstra(g, s, rows[s]);
  });
  return rows;
}

std::vector<std::vector<Dist>> all_pairs_distances(const WeightedGraph& g) {
  return all_pairs_distances(g.csr());
}

std::vector<Dist> eccentricities(const CsrGraph& g,
                                 runtime::ThreadPool* pool) {
  std::vector<Dist> ecc(g.node_count(), 0);
  over_sources(g.node_count(), pool, [&](NodeId s, DijkstraWorkspace& ws) {
    thread_local std::vector<Dist> row;
    ws.dijkstra(g, s, row);
    ecc[s] = *std::max_element(row.begin(), row.end());
  });
  return ecc;
}

std::vector<Dist> eccentricities(const WeightedGraph& g) {
  return eccentricities(g.csr());
}

std::vector<Dist> eccentricities(const CsrGraph& g,
                                 std::span<const NodeId> sources,
                                 runtime::ThreadPool* pool) {
  for (const NodeId s : sources) {
    QC_REQUIRE(s < g.node_count(), "source id out of range");
  }
  std::vector<Dist> ecc(sources.size(), 0);
  over_sources(static_cast<NodeId>(sources.size()), pool,
               [&](NodeId i, DijkstraWorkspace& ws) {
                 thread_local std::vector<Dist> row;
                 ws.dijkstra(g, sources[i], row);
                 ecc[i] = *std::max_element(row.begin(), row.end());
               });
  return ecc;
}

std::vector<Dist> unweighted_eccentricities(const CsrGraph& g,
                                            runtime::ThreadPool* pool) {
  std::vector<Dist> ecc(g.node_count(), 0);
  over_sources(g.node_count(), pool, [&](NodeId s, DijkstraWorkspace& ws) {
    thread_local std::vector<Dist> row;
    ws.bfs(g, s, row);
    ecc[s] = *std::max_element(row.begin(), row.end());
  });
  return ecc;
}

std::vector<Dist> unweighted_eccentricities(const CsrGraph& g,
                                            std::span<const NodeId> sources,
                                            runtime::ThreadPool* pool) {
  for (const NodeId s : sources) {
    QC_REQUIRE(s < g.node_count(), "source id out of range");
  }
  std::vector<Dist> ecc(sources.size(), 0);
  over_sources(static_cast<NodeId>(sources.size()), pool,
               [&](NodeId i, DijkstraWorkspace& ws) {
                 thread_local std::vector<Dist> row;
                 ws.bfs(g, sources[i], row);
                 ecc[i] = *std::max_element(row.begin(), row.end());
               });
  return ecc;
}

std::vector<Dist> unweighted_eccentricities(const WeightedGraph& g) {
  return unweighted_eccentricities(g.csr());
}

Dist weighted_diameter(const WeightedGraph& g) {
  const auto ecc = eccentricities(g);
  return ecc.empty() ? 0 : *std::max_element(ecc.begin(), ecc.end());
}

Dist weighted_radius(const WeightedGraph& g) {
  const auto ecc = eccentricities(g);
  return ecc.empty() ? 0 : *std::min_element(ecc.begin(), ecc.end());
}

Dist unweighted_diameter(const CsrGraph& g, runtime::ThreadPool* pool) {
  const auto ecc = unweighted_eccentricities(g, pool);
  return ecc.empty() ? 0 : *std::max_element(ecc.begin(), ecc.end());
}

Dist unweighted_diameter(const WeightedGraph& g) {
  return unweighted_diameter(g.csr());
}

Dist hop_diameter(const CsrGraph& g, runtime::ThreadPool* pool) {
  const NodeId n = g.node_count();
  std::vector<Dist> per_source(n, 0);
  over_sources(n, pool, [&](NodeId s, DijkstraWorkspace& ws) {
    thread_local std::vector<Dist> dist;
    thread_local std::vector<Dist> hops;
    ws.dijkstra_with_hops(g, s, dist, hops);
    Dist h = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (hops[v] < kInfDist) h = std::max(h, hops[v]);
    }
    per_source[s] = h;
  });
  Dist h = 0;
  for (const Dist v : per_source) h = std::max(h, v);
  return h;
}

Dist hop_diameter(const WeightedGraph& g) { return hop_diameter(g.csr()); }

// --- contraction ------------------------------------------------------

Contraction contract_unit_edges(const WeightedGraph& g) {
  const NodeId n = g.node_count();
  // Union-find over weight-1 edges.
  std::vector<NodeId> parent(n);
  for (NodeId i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : g.edges()) {
    if (e.weight == 1) {
      const NodeId ru = find(e.u);
      const NodeId rv = find(e.v);
      if (ru != rv) parent[ru] = rv;
    }
  }
  // Dense renumbering of components.
  std::vector<NodeId> node_map(n, 0);
  NodeId next_id = 0;
  std::vector<NodeId> rep_to_id(n, n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId r = find(v);
    if (rep_to_id[r] == n) rep_to_id[r] = next_id++;
    node_map[v] = rep_to_id[r];
  }
  // Fold parallel edges to their min weight via one hash lookup per edge
  // (first-seen order, so the contracted edge list is deterministic and
  // matches what repeated add_edge/set_edge_weight used to produce).
  std::vector<Edge> folded;
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(g.edge_count());
  for (const Edge& e : g.edges()) {
    if (e.weight == 1) continue;  // internal to a super-node
    const NodeId cu = node_map[e.u];
    const NodeId cv = node_map[e.v];
    if (cu == cv) continue;  // endpoints merged by unit edges
    const NodeId a = std::min(cu, cv);
    const NodeId b = std::max(cu, cv);
    const std::uint64_t key = (std::uint64_t{a} << 32) | b;
    const auto [it, inserted] = index.try_emplace(key, folded.size());
    if (inserted) {
      folded.push_back({a, b, e.weight});
    } else if (e.weight < folded[it->second].weight) {
      // Parallel edge: keep the lowest weight (Lemma 4.3 convention).
      folded[it->second].weight = e.weight;
    }
  }
  return {WeightedGraph::from_edges(next_id, std::move(folded)),
          std::move(node_map)};
}

}  // namespace qc
