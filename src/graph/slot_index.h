// O(1) directed-edge slot lookup over a CSR adjacency.
//
// Several engines need to answer "which slot of u's adjacency row is
// neighbour v?" on every message: the CONGEST simulator meters bandwidth
// per (edge, direction) and must locate the slot for every send, and the
// qubit-level network meters per-edge qubit budgets the same way. The
// naive answer is an O(degree) row scan — which turns a broadcast into
// O(deg²) and a high-degree hub into a hot spot. `EdgeSlotIndex` packs
// all 2m directed edges into one open-addressing hash table keyed by
// (from, to), built once in O(n + m), answering lookups in O(1) with no
// per-query allocation.
//
// `edge_index(from, slot)` additionally maps a directed edge to a dense
// index in [0, 2m), so per-directed-edge accounting (bandwidth bits,
// qubits in flight) can live in one flat array instead of a
// vector-of-vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"

namespace qc {

class EdgeSlotIndex {
 public:
  /// Returned by slot() when (from, to) is not a directed edge.
  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

  EdgeSlotIndex() = default;

  /// Builds the index for g's adjacency. O(n + m).
  explicit EdgeSlotIndex(const CsrGraph& g);

  /// Slot of `to` within `from`'s adjacency row (the i such that
  /// neighbors(from)[i].to == to), or kNoSlot if {from, to} is not an
  /// edge. `from` must be < node_count(); any `to` is allowed.
  std::uint32_t slot(NodeId from, NodeId to) const {
    const std::uint64_t key = make_key(from, to);
    std::size_t i = hash_key(key) & mask_;
    for (;;) {
      const Entry& e = table_[i];
      if (e.key == key) return e.slot;
      if (e.key == kEmptyKey) return kNoSlot;
      i = (i + 1) & mask_;
    }
  }

  /// Dense index of directed edge (from, slot-of-from's-row) in
  /// [0, directed_edge_count()) — offsets follow CSR row order.
  std::size_t edge_index(NodeId from, std::uint32_t slot) const {
    return offsets_[from] + slot;
  }

  /// 2m: one entry per (edge, direction).
  std::size_t directed_edge_count() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  /// Incremental repair after an update batch changed the adjacency
  /// rows in `dirty` (sorted unique node ids): the rows' previous
  /// neighbor targets (`old_targets[i]` for dirty[i]) are erased via
  /// backward-shift deletion (no tombstones, probe chains stay intact),
  /// the current rows of `g` are re-inserted, and the dense edge_index
  /// offsets rebuild in one O(n) pass. Falls back to a full rebuild
  /// when the grown edge count would push the load factor past 1/2.
  /// Lookup results are identical to a freshly built index.
  void repair_rows(const CsrGraph& g, std::span<const NodeId> dirty,
                   std::span<const std::vector<NodeId>> old_targets);

 private:
  void erase_key(std::uint64_t key);
  struct Entry {
    std::uint64_t key = kEmptyKey;
    std::uint32_t slot = 0;
  };

  // NodeId is 32-bit and kEmptyKey packs an impossible from (=2^32-1
  // would need n = 2^32 nodes, beyond NodeId's dense-range contract).
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  static std::uint64_t make_key(NodeId from, NodeId to) {
    return (std::uint64_t{from} << 32) | std::uint64_t{to};
  }

  // splitmix64 finalizer: full-avalanche, cheap, public domain.
  static std::uint64_t hash_key(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::vector<Entry> table_;          ///< power-of-two, load factor <= 1/2
  std::vector<std::size_t> offsets_;  ///< size n+1; row from = [off, off+deg)
  std::size_t mask_ = 0;
};

}  // namespace qc
