// Graph families used by tests and benchmarks.
//
// The headline bound Õ(min{n^{9/10} D^{3/10}, n}) depends on the
// *unweighted* diameter D of the communication graph, so the generators
// are chosen to span D regimes:
//   * path / cycle:            D = Θ(n)
//   * grid:                    D = Θ(√n)
//   * balanced tree, ER:       D = Θ(log n)
//   * star, complete:          D = O(1)
//   * path_of_cliques:         tunable D with dense local structure.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "graph/io.h"
#include "util/rng.h"

namespace qc::gen {

/// Path 0-1-...-(n-1). Requires n >= 1.
WeightedGraph path(NodeId n);

/// Cycle on n >= 3 nodes.
WeightedGraph cycle(NodeId n);

/// Star with center 0 and n-1 leaves. Requires n >= 2.
WeightedGraph star(NodeId n);

/// Complete graph K_n. Requires n >= 2.
WeightedGraph complete(NodeId n);

/// Complete binary tree with n nodes (heap layout). Requires n >= 1.
WeightedGraph balanced_binary_tree(NodeId n);

/// rows x cols grid graph.
WeightedGraph grid(NodeId rows, NodeId cols);

/// Erdős–Rényi G(n, p) made connected by adding a random spanning-path
/// repair over the components. Deterministic given `rng` state.
WeightedGraph erdos_renyi_connected(NodeId n, double p, Rng& rng);

/// `cliques` cliques of size `clique_size` strung along a path — gives
/// unweighted diameter ≈ cliques+1 with dense neighbourhoods.
WeightedGraph path_of_cliques(NodeId cliques, NodeId clique_size);

/// Returns a copy of g with each weight drawn uniformly from [1, max_w].
WeightedGraph randomize_weights(const WeightedGraph& g, Weight max_w,
                                Rng& rng);

/// Uniform random labelled tree (Prüfer-style attachment): node i > 0
/// attaches to a uniform node < i. D = Θ(log n) in expectation.
WeightedGraph random_tree(NodeId n, Rng& rng);

/// Two cliques of size k joined by a path of `bridge` nodes — the
/// classic "barbell": D ≈ bridge + 2 with dense ends.
WeightedGraph barbell(NodeId clique, NodeId bridge);

/// d-dimensional hypercube (n = 2^dims nodes, D = dims).
WeightedGraph hypercube(std::uint32_t dims);

/// Approximately d-regular random graph (configuration-style matching
/// with self-loop/duplicate repair, then connectivity repair). Low
/// diameter, expander-like.
WeightedGraph random_regular(NodeId n, std::uint32_t degree, Rng& rng);

/// Builds a named family instance at (approximately) n nodes with
/// weights drawn uniformly from [1, max_w]. Families: "ER", "grid",
/// "cliques", "path", "cycle", "star", "tree", "regular", "hypercube",
/// "complete". Note grid/cliques/hypercube round n to their natural
/// sizes (side², 4·⌊n/4⌋, 2^⌊log n⌋). This is the registry the sweep
/// executor and the CLI share; unknown names throw ArgumentError.
WeightedGraph from_family(const std::string& family, NodeId n, Weight max_w,
                          Rng& rng);

/// A weighted graph with a *planted* weighted diameter: random base
/// weights in [1, max_w], plus one far pair (u, v) whose only
/// connecting routes are re-weighted so that d_w(u,v) ≈ target. Useful
/// for controlling D_w independently of the topology. Returns the graph
/// (the planted pair is nodes 0 and n-1).
WeightedGraph planted_heavy_pair(NodeId n, Weight max_w, Weight boost,
                                 Rng& rng);

// --- streaming dataset generators (graph/io.h bgraph v1) --------------
//
// The in-memory families above top out around n ~ 10^4: `complete`-style
// O(n^2) loops, per-edge duplicate scans in add_edge, and one adjacency
// vector per node all stop scaling long before the million-node regime
// the dataset layer targets. These generators instead stream canonical
// edge records straight into a `BGraphWriter` — the only O(n)/O(m) RAM
// is a union-find parent array (4 bytes/node), a flat open-addressed
// dedup set (~16 bytes/edge for RMAT and Chung–Lu; ER needs none), and
// one IO buffer — so the emitted file, not the process, bounds the
// graph size. All three are seed-deterministic: the same arguments
// produce byte-identical files. Connectivity is repaired by appending
// a binary tree of edges over the per-component minimum nodes (a
// repair edge joins two components, so it can never duplicate a
// sampled edge; the tree shape keeps the repair's diameter
// contribution logarithmic even when a sparse draw leaves many
// singleton components).

/// R-MAT (Chakrabarti–Zhan–Faloutsos) recursive-quadrant sampler:
/// n = 2^scale nodes, `target_edges` distinct canonical edges, weights
/// uniform in [1, max_w]. Quadrant probabilities (a, b, c, 1-a-b-c)
/// default to the classic skewed 0.57/0.19/0.19/0.05, which yields the
/// heavy-tailed degree distribution the work-imbalance benches need.
/// Self loops and duplicates are re-drawn; throws ArgumentError if the
/// edge budget is unreachable (target close to the n(n-1)/2 ceiling).
BGraphInfo rmat_bgraph(const std::string& path, std::uint32_t scale,
                       std::uint64_t target_edges, Weight max_w,
                       std::uint64_t seed, double a = 0.57, double b = 0.19,
                       double c = 0.19);

/// Chung–Lu power-law graph: endpoints drawn independently with
/// P(v) ∝ (v+1)^(-1/(exponent-1)) (so expected degrees follow a
/// power law with the given exponent, 2 < exponent <= 4), dedup'd to
/// `target_edges` distinct edges, weights uniform in [1, max_w].
BGraphInfo chung_lu_bgraph(const std::string& path, NodeId n,
                           std::uint64_t target_edges, double exponent,
                           Weight max_w, std::uint64_t seed);

/// Erdős–Rényi G(n, p) via geometric skip sampling over the linear
/// pair index space: O(pn^2) work and O(n) memory with no dedup table
/// at all (every pair is considered exactly once), so it streams
/// graphs of any size. Weights uniform in [1, max_w].
BGraphInfo erdos_renyi_bgraph(const std::string& path, NodeId n, double p,
                              Weight max_w, std::uint64_t seed);

/// Road-like seeded 2D grid: rows x cols lattice (node r·cols + c) with
/// the axis edges always present, each down-right diagonal shortcut
/// included independently with probability `diagonal_p`, and every
/// weight jittered uniformly in [1, max_w]. D = Θ(rows + cols) with
/// planar-ish local structure — the missing D regime between the
/// heavy-tailed samplers above and the in-memory `grid` (which tops
/// out around n ~ 10^4). Connected by construction (no repair pass,
/// no union-find), O(1) state beyond the IO buffer, and the emission
/// order is strictly increasing (u, v), so the writer records the
/// sorted flag — the file feeds `csr_from_bgraph` with no sort pass.
BGraphInfo grid_bgraph(const std::string& path, NodeId rows, NodeId cols,
                       double diagonal_p, Weight max_w, std::uint64_t seed);

}  // namespace qc::gen
