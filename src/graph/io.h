// Plain-text serialization of weighted graphs.
//
// Format ("wgraph v1"), line oriented:
//   wgraph <n> <m>
//   <u> <v> <w>        (m edge lines, 0-based ids, positive weights)
//   # comments and blank lines are ignored
// Round-trips exactly; the parser validates ids, weights, duplicate
// edges, and the declared counts.
#pragma once

#include <string>

#include "graph/graph.h"

namespace qc {

/// Serializes g to the wgraph v1 text format.
std::string to_edge_list(const WeightedGraph& g);

/// Parses the wgraph v1 format; throws ArgumentError on any malformed
/// content (wrong counts, bad ids, zero weights, duplicates).
WeightedGraph parse_edge_list(const std::string& text);

/// Convenience file wrappers (throw ArgumentError on IO failure).
void save_graph(const WeightedGraph& g, const std::string& path);
WeightedGraph load_graph(const std::string& path);

}  // namespace qc
