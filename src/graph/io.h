// Serialization of weighted graphs: text, binary edge lists, packed CSR.
//
// Three on-disk formats (docs/datasets.md has the full byte-level spec):
//
//  * "wgraph v1" — line-oriented text, unchanged since the seed:
//        wgraph <n> <m>
//        <u> <v> <w>        (m edge lines, 0-based ids, positive weights)
//        # comments and blank lines are ignored
//    Round-trips exactly; the parser validates ids, weights, duplicate
//    edges, and the declared counts. Convenient for goldens and hand
//    edits, hopeless past ~10^5 edges (parsing dominates).
//
//  * "bgraph v1" — binary edge list: a 48-byte little-endian header
//    (magic "bgraph1\0", version, flags, n, m, max_weight) followed by
//    m fixed 16-byte records (u32 u, u32 v, u64 w) with u < v < n and
//    w >= 1. Streamable in both directions: `BGraphReader` /
//    `BGraphWriter` never hold more than one IO buffer, so generators
//    can emit files larger than RAM and the CSR loader below builds
//    directly from the stream. Every malformed input is rejected with
//    the absolute byte offset of the offending header field or record.
//
//  * "bcsr v1" — packed CSR image (offsets + half-edge arrays) whose
//    payload layout matches the in-memory `CsrGraph` arrays exactly, so
//    `map_csr` can memory-map it read-only: a 10^6-node / 10^7-edge
//    graph "loads" in milliseconds and the pages are shared between
//    every process mapping the same file.
//
// The streaming entry points deliberately avoid materializing a
// `std::vector<Edge>` of the whole graph more than once (shuffle/sort
// need one in-memory copy; convert/summarize/CSR-build need none).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"

namespace qc {

namespace runtime {
class ThreadPool;  // runtime/thread_pool.h
}

// --- wgraph v1 (text) -------------------------------------------------

/// Serializes g to the wgraph v1 text format.
std::string to_edge_list(const WeightedGraph& g);

/// Parses the wgraph v1 format; throws ArgumentError on any malformed
/// content (wrong counts, bad ids, zero weights, duplicates).
WeightedGraph parse_edge_list(const std::string& text);

/// Convenience file wrappers (throw ArgumentError on IO failure).
void save_graph(const WeightedGraph& g, const std::string& path);
WeightedGraph load_graph(const std::string& path);

// --- bgraph v1 (binary edge list) ------------------------------------

/// Parsed bgraph header. `sorted` mirrors header flag bit 0: the
/// records are in strictly increasing (u, v) order (which also implies
/// duplicate-freedom — the writer tracks it, `sort_bgraph` guarantees
/// it, and the reader re-verifies it record by record).
struct BGraphInfo {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  Weight max_weight = 1;
  bool sorted = false;
};

inline constexpr std::size_t kBGraphHeaderBytes = 48;
inline constexpr std::size_t kBGraphRecordBytes = 16;

/// Streaming bgraph writer. The header is written up front with
/// placeholder counts and patched on `close()` (so m and max_weight
/// need not be known in advance — the generator suite streams into
/// one of these). Records are validated (u < v < n, w >= 1) and
/// buffered; sortedness is detected on the fly and recorded in the
/// header flags. A writer that is destroyed without `close()` leaves a
/// file whose header still says m = 0 while trailing bytes exist —
/// exactly the inconsistency `BGraphReader` rejects, so crashed writes
/// can never be mistaken for valid datasets.
class BGraphWriter {
 public:
  /// Opens `path` for writing and emits the placeholder header.
  /// Throws ArgumentError if the file cannot be created.
  BGraphWriter(const std::string& path, std::uint64_t n);
  ~BGraphWriter();
  BGraphWriter(const BGraphWriter&) = delete;
  BGraphWriter& operator=(const BGraphWriter&) = delete;

  /// Appends one canonical edge record. Throws ArgumentError unless
  /// u < v < n and w >= 1.
  void add(NodeId u, NodeId v, Weight w);

  std::uint64_t node_count() const { return n_; }
  std::uint64_t edges_written() const { return m_; }

  /// Flushes, patches the header (m, max_weight, sorted flag), and
  /// closes the file. Idempotent; returns the final header.
  BGraphInfo close();

 private:
  void flush_buffer();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t n_ = 0;
  std::uint64_t m_ = 0;
  Weight max_weight_ = 1;
  bool sorted_ = true;
  bool closed_ = false;
  std::uint64_t last_key_ = 0;  ///< (u << 32) | v of the previous record
  std::vector<unsigned char> buf_;
};

/// Streaming bgraph reader. Validates the header and the total file
/// size on open (so truncated files and overflowing edge counts are
/// rejected before any record is handed out), then validates each
/// record as it is produced. All errors are ArgumentError carrying the
/// absolute byte offset of the problem.
class BGraphReader {
 public:
  explicit BGraphReader(const std::string& path);
  ~BGraphReader();
  BGraphReader(const BGraphReader&) = delete;
  BGraphReader& operator=(const BGraphReader&) = delete;

  const BGraphInfo& info() const { return info_; }

  /// Produces the next record in file order; returns false once all m
  /// records have been consumed. Throws ArgumentError on malformed
  /// records (u >= v, v >= n, w = 0, order violation under the sorted
  /// flag) or short reads, naming the byte offset.
  bool next(Edge& e);

  /// Rewinds to the first record (the two-pass CSR build below reads
  /// the stream twice).
  void rewind();

  /// Positions the stream at record `index` (0 <= index <= m), so
  /// sharded consumers can read contiguous record ranges in parallel,
  /// each through its own reader. The sorted-order check restarts at
  /// the seek target: the first record produced after a mid-file seek
  /// is not compared against its (unseen) predecessor — callers that
  /// shard a sorted file re-check the shard-boundary order themselves
  /// (csr_from_bgraph does).
  void seek_record(std::uint64_t index);

  std::uint64_t records_read() const { return read_; }

 private:
  void refill();

  std::string path_;
  std::FILE* file_ = nullptr;
  BGraphInfo info_;
  std::uint64_t read_ = 0;     ///< records consumed so far
  std::uint64_t last_key_ = 0; ///< order check when info_.sorted
  std::uint64_t order_anchor_ = 0;  ///< first record after the last seek
  std::vector<unsigned char> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
};

/// Writes g's canonical edge list as bgraph v1. Returns the header.
BGraphInfo write_bgraph(const WeightedGraph& g, const std::string& path);

/// Loads a bgraph file into a WeightedGraph via the streaming reader:
/// one pass counts degrees (adjacency rows are reserved exactly), one
/// pass places — no intermediate adjacency-list churn. Duplicate edges
/// are only detected when the sorted flag is set (adjacent equality);
/// run `sort_bgraph` first for untrusted inputs. Throws ArgumentError
/// when n exceeds the NodeId range.
WeightedGraph load_bgraph(const std::string& path);

/// Streams a wgraph v1 text file into a bgraph v1 file without ever
/// materializing the graph (edges are canonicalized u < v on the fly).
/// Duplicate detection is deferred to `sort_bgraph`, exactly like
/// load_bgraph. Returns the written header.
BGraphInfo convert_text_to_bgraph(const std::string& text_path,
                                  const std::string& bgraph_path);

/// Streams a bgraph v1 file out as wgraph v1 text.
void convert_bgraph_to_text(const std::string& bgraph_path,
                            const std::string& text_path);

/// Default in-memory budget for the out-of-core shuffle/sort paths
/// below: 256 MiB of record storage (the CLI's `--mem-budget` knob).
inline constexpr std::uint64_t kDefaultMemBudgetBytes =
    std::uint64_t{256} << 20;

/// Rewrites a bgraph file with its records in a seed-deterministic
/// random order. Inputs whose record vector fits `mem_budget_bytes`
/// (0 = kDefaultMemBudgetBytes) are shuffled in memory (one
/// Fisher-Yates pass); larger inputs run out of core as a seeded
/// bucket scatter — each record is dealt to one of B temp bucket
/// files by a hash of (seed, record index), then each bucket is
/// shuffled in memory with its own derived seed and appended — so
/// peak memory stays bounded by the budget regardless of edge count.
/// Either path is a pure function of (input bytes, seed, budget);
/// the two paths produce different (but individually deterministic)
/// permutations. Temp buckets live in `out_path + ".spill/"` and are
/// always removed, including on error paths.
BGraphInfo shuffle_bgraph(const std::string& in_path,
                          const std::string& out_path, std::uint64_t seed,
                          std::uint64_t mem_budget_bytes = 0);

/// Rewrites a bgraph file with its records sorted by (u, v), setting
/// the sorted header flag. Throws ArgumentError on duplicate edges —
/// this is the designated full-dedup validation pass for inputs of
/// unknown provenance. Inputs whose record vector fits
/// `mem_budget_bytes` (0 = kDefaultMemBudgetBytes) sort in memory;
/// larger inputs spill sorted runs of at most one budget each to
/// `out_path + ".spill/"` and stream a loser-tree K-way merge into
/// the output, rejecting adjacent-equal keys during the merge — the
/// same dedup semantics, and **byte-identical output** to the
/// in-memory path (both emit the unique sorted record sequence
/// through BGraphWriter). Spill runs are unlinked on every exit path,
/// including a validation failure mid-merge; a failed merge also
/// removes the partially written output.
BGraphInfo sort_bgraph(const std::string& in_path,
                       const std::string& out_path,
                       std::uint64_t mem_budget_bytes = 0);

/// One streaming pass of dataset statistics. `degree_hist_log2[b]`
/// counts nodes whose degree d satisfies 2^b <= d < 2^(b+1)
/// (`isolated` counts d = 0 separately).
struct BGraphSummary {
  BGraphInfo info;
  Weight min_weight = 1;
  std::uint64_t max_degree = 0;
  double avg_degree = 0.0;
  std::uint64_t isolated = 0;
  std::vector<std::uint64_t> degree_hist_log2;
};

BGraphSummary summarize_bgraph(const std::string& path);

/// Builds a CsrGraph straight from the binary stream in two passes
/// (count, place): peak memory is the finished CSR plus one degree
/// array and one IO buffer — no intermediate adjacency lists, no edge
/// vector. This is the million-node ingest path; bench_datasets records
/// its peak-RSS-to-raw-edge-bytes ratio.
///
/// With a pool, both passes shard over contiguous record ranges (each
/// shard reads through its own BGraphReader): the count pass fills
/// per-shard degree arrays reduced serially in shard order, the place
/// pass writes each shard's half-edges at cursor bases precomputed
/// from the per-shard degrees — every half-edge lands in exactly the
/// slot the serial build gives it, so the result is **byte-identical
/// at any worker count**. The shard count is additionally capped so
/// the per-shard arrays stay within half the raw edge bytes,
/// preserving the bench-gated peak-RSS < 3x bound.
CsrGraph csr_from_bgraph(const std::string& path,
                         runtime::ThreadPool* pool = nullptr);

// --- bcsr v1 (packed CSR image) --------------------------------------

/// Writes g's CSR arrays as a bcsr v1 file (deterministic bytes:
/// padding lanes are zeroed). Mappable with `map_csr`.
void write_csr(const CsrGraph& g, const std::string& path);

/// Loads a bcsr v1 file by copying its arrays into an owned CsrGraph.
CsrGraph read_csr(const std::string& path);

/// Memory-maps a bcsr v1 file read-only and wraps it as a CsrGraph
/// view: no copy, demand paging, pages shared across every process
/// mapping the file. The offsets array is always validated
/// (monotonicity + final count); `validate_edges` additionally scans
/// every half-edge for `to < n` / weight >= 1 — the safe default, one
/// sequential pass. Pass false for trusted caches to keep the mapping
/// fully lazy. The returned graph is read-only in the mapped sense:
/// `assign_reweighted` detaches to owned storage automatically.
CsrGraph map_csr(const std::string& path, bool validate_edges = true);

}  // namespace qc
