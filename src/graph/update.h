// First-class edge mutations for WeightedGraph.
//
// The paper's setting is static, but the service layer (ROADMAP
// "Dynamic graphs") keeps N resident graphs warm — CSR, slot index,
// eccentricity tables, toolkit rows — and a mutation used to nuke all
// of it wholesale. `GraphUpdate` batches insert/remove/reweight ops
// behind one validated entry point, `WeightedGraph::apply`, which
// patches the derived caches in place (graph/csr.h's overlay,
// EdgeSlotIndex::repair_rows, the connectivity tri-state) instead of
// discarding them. The legacy mutators (add_edge, remove_edge,
// set_edge_weight) are one-op sugar over the same path, so apply() is
// the single sanctioned mutation surface.
//
// Batch semantics are the *net* effect: ops validate sequentially
// against the simulated intermediate state (so "insert then reweight"
// is legal and "insert twice" is a parallel-edge error), but the graph
// only ever assumes the final state — inserting and removing the same
// edge in one batch cancels. Validation runs to completion before the
// first mutation; an ArgumentError leaves the graph and every cache
// untouched, like from_edges.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qc {

enum class EdgeOpKind : std::uint8_t { kInsert, kRemove, kReweight };

/// One edge mutation. Endpoints are unordered ({u, v} names the same
/// edge as {v, u}); weight is ignored by kRemove.
struct EdgeOp {
  EdgeOpKind kind = EdgeOpKind::kInsert;
  NodeId u = 0;
  NodeId v = 0;
  Weight weight = 1;

  static EdgeOp insert(NodeId u, NodeId v, Weight w = 1) {
    return {EdgeOpKind::kInsert, u, v, w};
  }
  static EdgeOp remove(NodeId u, NodeId v) {
    return {EdgeOpKind::kRemove, u, v, 1};
  }
  static EdgeOp reweight(NodeId u, NodeId v, Weight w) {
    return {EdgeOpKind::kReweight, u, v, w};
  }

  friend bool operator==(const EdgeOp&, const EdgeOp&) = default;
};

/// An ordered batch of edge ops for WeightedGraph::apply. Fluent
/// builder: `GraphUpdate{}.insert(0, 1, 5).remove(2, 3)`.
class GraphUpdate {
 public:
  GraphUpdate() = default;

  GraphUpdate& insert(NodeId u, NodeId v, Weight w = 1) {
    ops_.push_back(EdgeOp::insert(u, v, w));
    return *this;
  }
  GraphUpdate& remove(NodeId u, NodeId v) {
    ops_.push_back(EdgeOp::remove(u, v));
    return *this;
  }
  GraphUpdate& reweight(NodeId u, NodeId v, Weight w) {
    ops_.push_back(EdgeOp::reweight(u, v, w));
    return *this;
  }
  GraphUpdate& push(EdgeOp op) {
    ops_.push_back(op);
    return *this;
  }

  const std::vector<EdgeOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void clear() { ops_.clear(); }

  /// Sorted unique node ids touched by any op — the conservative
  /// invalidation frontier the cache layers key off (paths/reference.h
  /// `invalidate_rows`, the service's eccentricity delta repair).
  std::vector<NodeId> endpoints() const;

 private:
  std::vector<EdgeOp> ops_;
};

}  // namespace qc
