// Weighted undirected graph type used by every layer of the library.
//
// Matches the paper's setting: G = (V, E) undirected, weights w : E -> N+
// (positive integers). Node ids are dense `[0, n)`. The communication
// network and the problem graph are the same object (CONGEST model), so
// this type carries both the topology (used by the simulator) and the
// weights (used by the distance problems).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/mathx.h"

namespace qc {

using NodeId = std::uint32_t;
using Weight = std::uint64_t;

/// One incident edge as seen from a node.
struct HalfEdge {
  NodeId to;
  Weight weight;

  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
};

/// One full edge (u < v canonical order once finalized).
struct Edge {
  NodeId u;
  NodeId v;
  Weight weight;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Undirected weighted graph with dense node ids.
///
/// Invariants (checked in debug paths / on demand via `validate()`):
///  * no self loops, no parallel edges;
///  * every weight >= 1.
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(NodeId n) : adjacency_(n) {}

  NodeId node_count() const {
    return static_cast<NodeId>(adjacency_.size());
  }
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds an undirected edge {u, v} with weight w >= 1.
  /// Throws ArgumentError on self loops, out-of-range ids, zero weight,
  /// or duplicate edges.
  void add_edge(NodeId u, NodeId v, Weight w = 1);

  /// True if {u, v} is an edge.
  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge {u, v}; throws if absent.
  Weight edge_weight(NodeId u, NodeId v) const;

  /// Replaces the weight of an existing edge.
  void set_edge_weight(NodeId u, NodeId v, Weight w);

  std::span<const HalfEdge> neighbors(NodeId u) const {
    QC_REQUIRE(u < node_count(), "node id out of range");
    return adjacency_[u];
  }

  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Max edge weight W (1 if the graph has no edges).
  Weight max_weight() const;

  /// Same topology with all weights replaced by 1 (the w* of Section 2.1).
  WeightedGraph unweighted_copy() const;

  /// Applies f to every weight: used for the w_i roundings of Lemma 3.2.
  template <typename Fn>
  WeightedGraph reweighted(Fn&& f) const {
    WeightedGraph g(node_count());
    for (const Edge& e : edges_) {
      g.add_edge(e.u, e.v, f(e.weight));
    }
    return g;
  }

  /// True when every pair of nodes is connected (n <= 1 counts as
  /// connected).
  bool is_connected() const;

  /// Throws InvariantError if internal structures are inconsistent.
  void validate() const;

  /// Human-readable one-line summary ("n=32 m=64 W=9").
  std::string summary() const;

 private:
  std::vector<std::vector<HalfEdge>> adjacency_;
  std::vector<Edge> edges_;
};

/// Graphviz DOT rendering (undirected). Weight-1 edges are drawn plain;
/// heavier edges are labelled. Used by the figure benches.
std::string to_dot(const WeightedGraph& g, const std::string& name = "G");

}  // namespace qc
