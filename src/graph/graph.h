// Weighted undirected graph type used by every layer of the library.
//
// Matches the paper's setting: G = (V, E) undirected, weights w : E -> N+
// (positive integers). Node ids are dense `[0, n)`. The communication
// network and the problem graph are the same object (CONGEST model), so
// this type carries both the topology (used by the simulator) and the
// weights (used by the distance problems).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/mathx.h"

namespace qc {

class CsrGraph;       // graph/csr.h
class EdgeSlotIndex;  // graph/slot_index.h
class GraphUpdate;    // graph/update.h

using NodeId = std::uint32_t;
using Weight = std::uint64_t;

/// What a mutation did to the graph, as far as the derived caches are
/// concerned. Replaces the bare `bool topology_changed` the cache
/// invalidation used to take: call sites name the mutation and the
/// connectivity dirty-bit rules live in one switch.
enum class MutationKind : std::uint8_t {
  kReweight,    ///< weight change only; topology untouched
  kEdgeInsert,  ///< an edge appeared
  kEdgeRemove,  ///< an edge disappeared
};

/// How WeightedGraph::apply maintains the derived caches.
enum class UpdatePolicy : std::uint8_t {
  /// Patch the cached CSR / slot index in place and keep any
  /// connectivity verdict the batch provably preserves (the default).
  kIncremental,
  /// Discard every derived cache; the next access rebuilds from
  /// scratch. Exists as the baseline the dynamic bench compares
  /// against, and as the escape hatch if a patched cache is suspect.
  kRebuild,
};

/// What WeightedGraph::apply did. Counts are *net* effects (an edge
/// inserted and removed in the same batch cancels); the flags report
/// which cache-maintenance path ran.
struct UpdateStats {
  std::size_t inserted = 0;
  std::size_t removed = 0;
  std::size_t reweighted = 0;
  bool topology_changed = false;
  /// The cached CSR was patched in place (vs absent or discarded).
  bool csr_patched = false;
  /// The patch overlay crossed the budget and was folded flat.
  bool csr_compacted = false;
  /// The cached slot index was repaired in place.
  bool slot_index_repaired = false;
  /// A known connectivity verdict survived the batch.
  bool connectivity_kept = false;
  /// The graph was serving reads from a memory-mapped bcsr view and
  /// this update performed the copy-on-write detach into owned storage
  /// (set by the service layer's GraphContext, at most once per
  /// mapped graph — see docs/service.md).
  bool mapped_detached = false;
};

/// One incident edge as seen from a node.
struct HalfEdge {
  NodeId to;
  Weight weight;

  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
};

/// One full edge (u < v canonical order once finalized).
struct Edge {
  NodeId u;
  NodeId v;
  Weight weight;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Undirected weighted graph with dense node ids.
///
/// Invariants (checked in debug paths / on demand via `validate()`):
///  * no self loops, no parallel edges;
///  * every weight >= 1.
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(NodeId n) : adjacency_(n) {}

  // Copies/moves transfer only the graph data; the lazily-built CSR cache
  // travels with moves (sole owner) but is rebuilt on demand for copies.
  WeightedGraph(const WeightedGraph& o)
      : adjacency_(o.adjacency_), edges_(o.edges_) {}
  WeightedGraph& operator=(const WeightedGraph& o) {
    if (this != &o) {
      adjacency_ = o.adjacency_;
      edges_ = o.edges_;
      std::lock_guard<std::mutex> lock(csr_mutex_);
      csr_cache_.reset();
      slot_index_cache_.reset();
      // Arbitrary replacement data: the old verdict says nothing.
      connected_cache_ = ConnCache::kUnknown;
    }
    return *this;
  }
  WeightedGraph(WeightedGraph&& o) noexcept
      : adjacency_(std::move(o.adjacency_)),
        edges_(std::move(o.edges_)),
        csr_cache_(std::move(o.csr_cache_)),
        slot_index_cache_(std::move(o.slot_index_cache_)),
        connected_cache_(o.connected_cache_),
        csr_patch_budget_(o.csr_patch_budget_) {}
  WeightedGraph& operator=(WeightedGraph&& o) noexcept {
    adjacency_ = std::move(o.adjacency_);
    edges_ = std::move(o.edges_);
    csr_cache_ = std::move(o.csr_cache_);
    slot_index_cache_ = std::move(o.slot_index_cache_);
    connected_cache_ = o.connected_cache_;
    csr_patch_budget_ = o.csr_patch_budget_;
    return *this;
  }

  /// Builds a graph directly from a canonical edge list: every edge must
  /// have u < v < n, weight >= 1, and the list must be duplicate-free
  /// (the caller's responsibility — unlike add_edge there is no O(deg)
  /// duplicate scan, which is what makes this O(n + m)). Adjacency rows
  /// come out in edge-list order, exactly as repeated add_edge would
  /// produce them.
  static WeightedGraph from_edges(NodeId n, std::vector<Edge> edges);

  NodeId node_count() const {
    return static_cast<NodeId>(adjacency_.size());
  }
  std::size_t edge_count() const { return edges_.size(); }

  /// Applies a batch of edge mutations (graph/update.h). The whole
  /// batch is validated against the graph's invariants *before* any
  /// mutation — an ArgumentError leaves the graph (and its caches)
  /// untouched, like from_edges. Semantics are the batch's net effect:
  /// inserting and removing the same edge in one batch cancels.
  ///
  /// Under the default kIncremental policy the cached CSR is patched
  /// per touched node (compacted once the overlay crosses
  /// `csr_patch_budget()`), the slot index is repaired row-by-row, and
  /// a cached connectivity verdict survives whenever the batch provably
  /// preserves it — removals keep "connected" when every removed edge's
  /// endpoints still share a common neighbor afterwards (the 2-hop
  /// replacement path certificate).
  UpdateStats apply(const GraphUpdate& update,
                    UpdatePolicy policy = UpdatePolicy::kIncremental);

  /// Adds an undirected edge {u, v} with weight w >= 1.
  /// Throws ArgumentError on self loops, out-of-range ids, zero weight,
  /// or duplicate edges. Sugar for a one-op apply().
  void add_edge(NodeId u, NodeId v, Weight w = 1);

  /// Removes the edge {u, v}. Throws ArgumentError on out-of-range ids,
  /// self loops, or a missing edge ("remove_edge: no such edge"). Sugar
  /// for a one-op apply().
  void remove_edge(NodeId u, NodeId v);

  /// True if {u, v} is an edge.
  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge {u, v}; throws if absent.
  Weight edge_weight(NodeId u, NodeId v) const;

  /// Replaces the weight of an existing edge. Sugar for a one-op
  /// apply().
  void set_edge_weight(NodeId u, NodeId v, Weight w);

  /// Half-edge budget for the cached CSR's patch overlay: once an
  /// incremental apply() leaves more overlay half-edges resident than
  /// this, the overlay is folded into flat arrays. 0 (the default)
  /// means auto: max(64, half_edges/8). Purely a speed/space knob —
  /// results are identical at any value.
  void set_csr_patch_budget(std::size_t half_edges) {
    csr_patch_budget_ = half_edges;
  }
  std::size_t csr_patch_budget() const;

  std::span<const HalfEdge> neighbors(NodeId u) const {
    QC_REQUIRE(u < node_count(), "node id out of range");
    return adjacency_[u];
  }

  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Max edge weight W (1 if the graph has no edges).
  Weight max_weight() const;

  /// Same topology with all weights replaced by 1 (the w* of Section 2.1).
  WeightedGraph unweighted_copy() const;

  /// Applies f to every weight: used for the w_i roundings of Lemma 3.2.
  /// Builds the copy directly (this graph's invariants already guarantee
  /// canonical, duplicate-free edges) with adjacency rows and the edge
  /// vector reserved up front, so no per-edge duplicate scan and no row
  /// reallocation churn. f must return weights >= 1.
  template <typename Fn>
  WeightedGraph reweighted(Fn&& f) const {
    WeightedGraph g(node_count());
    g.edges_.reserve(edges_.size());
    for (NodeId u = 0; u < node_count(); ++u) {
      g.adjacency_[u].reserve(adjacency_[u].size());
    }
    for (const Edge& e : edges_) {
      const Weight w = f(e.weight);
      QC_REQUIRE(w >= 1, "weights must be positive integers");
      g.adjacency_[e.u].push_back({e.v, w});
      g.adjacency_[e.v].push_back({e.u, w});
      g.edges_.push_back({e.u, e.v, w});
    }
    return g;
  }

  /// Flat CSR view of this graph, built lazily on first use and cached;
  /// mutations keep it current (incremental applies patch it in place,
  /// everything else discards it). The reference stays valid until the
  /// next mutation. Thread-safe to call concurrently; building happens
  /// once.
  const CsrGraph& csr() const;

  /// O(1) (from, to) -> adjacency-slot lookup over csr(), built lazily
  /// and cached with the same lifetime/invalidation rules as csr(). The
  /// CONGEST simulator and the qubit network route every message/qubit
  /// through it.
  const EdgeSlotIndex& slot_index() const;

  /// True when every pair of nodes is connected (n <= 1 counts as
  /// connected). The BFS runs once; the answer is cached (the CONGEST
  /// primitives call this on every aggregate/flood, thousands of times
  /// per run). Unlike csr(), the verdict survives mutations that cannot
  /// change it: reweights never touch topology, inserts keep
  /// "connected", removals keep "disconnected" — and an incremental
  /// apply() additionally keeps "connected" across removals whose
  /// endpoints retain a common neighbor. Every other combination
  /// downgrades the cache to dirty.
  bool is_connected() const;

  /// True when is_connected() would be answered from the cached verdict
  /// without re-running the BFS. Diagnostic hook for the dirty-bit
  /// invalidation tests and the service warm-state report.
  bool connectivity_cached() const {
    std::lock_guard<std::mutex> lock(csr_mutex_);
    return connected_cache_ != ConnCache::kUnknown;
  }

  /// Throws InvariantError if internal structures are inconsistent.
  void validate() const;

  /// Human-readable one-line summary ("n=32 m=64 W=9").
  std::string summary() const;

 private:
  /// Cached is_connected() verdict. A tri-state rather than the CSR
  /// caches' build-or-null because mutations *downgrade* it selectively
  /// (see invalidate_csr) instead of always discarding it.
  enum class ConnCache : std::uint8_t { kUnknown, kConnected, kDisconnected };

  /// Discards the derived caches after a mutation. The CSR view and
  /// slot index embed weights and slot layout, so they always go (the
  /// incremental apply() path patches them instead of calling this).
  /// The connectivity verdict is a tri-state that only downgrades when
  /// the mutation could actually flip it: reweights never can; an
  /// insert can only bridge components (a cached "disconnected" goes
  /// dirty); a removal can only cut them (a cached "connected" goes
  /// dirty — apply() may still preserve it via the replacement-path
  /// certificate before invoking this).
  void invalidate_csr(MutationKind kind) {
    std::lock_guard<std::mutex> lock(csr_mutex_);
    csr_cache_.reset();
    slot_index_cache_.reset();
    downgrade_connectivity_locked(kind);
  }

  /// The connectivity tri-state rules alone (caller holds csr_mutex_).
  void downgrade_connectivity_locked(MutationKind kind) {
    if (kind == MutationKind::kEdgeInsert &&
        connected_cache_ == ConnCache::kDisconnected) {
      connected_cache_ = ConnCache::kUnknown;
    }
    if (kind == MutationKind::kEdgeRemove &&
        connected_cache_ == ConnCache::kConnected) {
      connected_cache_ = ConnCache::kUnknown;
    }
  }

  std::vector<std::vector<HalfEdge>> adjacency_;
  std::vector<Edge> edges_;
  mutable std::mutex csr_mutex_;
  mutable std::shared_ptr<CsrGraph> csr_cache_;
  mutable std::shared_ptr<EdgeSlotIndex> slot_index_cache_;
  mutable ConnCache connected_cache_ = ConnCache::kUnknown;
  std::size_t csr_patch_budget_ = 0;
};

/// Graphviz DOT rendering (undirected). Weight-1 edges are drawn plain;
/// heavier edges are labelled. Used by the figure benches.
std::string to_dot(const WeightedGraph& g, const std::string& name = "G");

}  // namespace qc
