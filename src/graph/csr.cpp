#include "graph/csr.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

namespace qc {

CsrGraph::CsrGraph(const WeightedGraph& g) {
  const NodeId n = g.node_count();
  own_offsets_.assign(std::size_t{n} + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    own_offsets_[std::size_t{u} + 1] = own_offsets_[u] + g.degree(u);
  }
  own_halves_.resize(own_offsets_[n]);
  Weight mx = 1;
  for (NodeId u = 0; u < n; ++u) {
    std::size_t pos = own_offsets_[u];
    for (const HalfEdge& h : g.neighbors(u)) {
      own_halves_[pos++] = h;
      mx = std::max(mx, h.weight);
    }
  }
  max_weight_ = mx;
  rebind_views();
}

CsrGraph CsrGraph::from_parts(std::vector<std::size_t> offsets,
                              std::vector<HalfEdge> halves,
                              Weight max_weight) {
  QC_REQUIRE(!offsets.empty() && offsets.front() == 0,
             "offsets must start with 0");
  QC_REQUIRE(offsets.back() == halves.size(),
             "offsets must end at the half-edge count");
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    QC_REQUIRE(offsets[i - 1] <= offsets[i], "offsets must be monotone");
  }
  QC_REQUIRE(max_weight >= 1, "max_weight must be >= 1");
  CsrGraph g;
  g.own_offsets_ = std::move(offsets);
  g.own_halves_ = std::move(halves);
  g.max_weight_ = max_weight;
  g.rebind_views();
  return g;
}

CsrGraph CsrGraph::mapped(std::span<const std::size_t> offsets,
                          std::span<const HalfEdge> halves, Weight max_weight,
                          std::shared_ptr<const void> keep_alive) {
  QC_REQUIRE(!offsets.empty() && offsets.front() == 0,
             "offsets must start with 0");
  QC_REQUIRE(offsets.back() == halves.size(),
             "offsets must end at the half-edge count");
  QC_REQUIRE(max_weight >= 1, "max_weight must be >= 1");
  QC_REQUIRE(keep_alive != nullptr, "mapped view needs a keep-alive handle");
  CsrGraph g;
  g.own_offsets_.clear();
  g.own_halves_.clear();
  g.mapping_ = std::move(keep_alive);
  g.offsets_ = offsets;
  g.halves_ = halves;
  g.max_weight_ = max_weight;
  return g;
}

void CsrGraph::detach() {
  own_offsets_.assign(offsets_.begin(), offsets_.end());
  own_halves_.assign(halves_.begin(), halves_.end());
  mapping_.reset();
  rebind_views();
}

std::vector<HalfEdge>& CsrGraph::overlay_row(NodeId u) {
  if (!patch_) {
    patch_ = std::make_unique<Patch>();
    patch_->slot.assign(node_count(), -1);
  }
  std::int32_t s = patch_->slot[u];
  if (s < 0) {
    s = static_cast<std::int32_t>(patch_->rows.size());
    patch_->rows.emplace_back(halves_.begin() + offsets_[u],
                              halves_.begin() + offsets_[u + 1]);
    patch_->slot[u] = s;
    patch_->resident += patch_->rows.back().size();
  }
  return patch_->rows[static_cast<std::size_t>(s)];
}

void CsrGraph::patch_row(NodeId u, std::span<const HalfEdge> row) {
  QC_REQUIRE(u < node_count(), "node id out of range");
  std::vector<HalfEdge>& dst = overlay_row(u);
  const auto old_size = static_cast<std::int64_t>(dst.size());
  const auto new_size = static_cast<std::int64_t>(row.size());
  dst.assign(row.begin(), row.end());
  patch_->resident =
      static_cast<std::size_t>(static_cast<std::int64_t>(patch_->resident) +
                               new_size - old_size);
  // half_delta tracks current-vs-base, and `old` here may itself have
  // been an overlay row already off the base size — so account for the
  // step, not the base difference.
  patch_->half_delta += new_size - old_size;
}

void CsrGraph::patch_weight(NodeId u, NodeId to, Weight w) {
  QC_REQUIRE(u < node_count(), "node id out of range");
  HalfEdge* entry = nullptr;
  if (patch_ && patch_->slot[u] >= 0) {
    for (HalfEdge& h : patch_->rows[static_cast<std::size_t>(patch_->slot[u])]) {
      if (h.to == to) entry = &h;
    }
  } else if (mapping_ != nullptr) {
    for (HalfEdge& h : overlay_row(u)) {
      if (h.to == to) entry = &h;
    }
  } else {
    for (std::size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
      if (own_halves_[i].to == to) entry = &own_halves_[i];
    }
  }
  QC_REQUIRE(entry != nullptr, "patch_weight: no such directed edge");
  entry->weight = w;
}

void CsrGraph::compact() {
  if (!patch_) return;
  const NodeId n = node_count();
  std::vector<std::size_t> offs(std::size_t{n} + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offs[std::size_t{u} + 1] = offs[u] + neighbors(u).size();
  }
  std::vector<HalfEdge> flat(offs[n]);
  Weight mx = 1;
  for (NodeId u = 0; u < n; ++u) {
    std::size_t pos = offs[u];
    for (const HalfEdge& h : neighbors(u)) {
      flat[pos++] = h;
      mx = std::max(mx, h.weight);
    }
  }
  own_offsets_ = std::move(offs);
  own_halves_ = std::move(flat);
  mapping_.reset();
  patch_.reset();
  max_weight_ = mx;
  rebind_views();
}

void CsrGraph::recompute_max_weight() {
  Weight mx = 1;
  const NodeId n = node_count();
  for (NodeId u = 0; u < n; ++u) {
    for (const HalfEdge& h : neighbors(u)) mx = std::max(mx, h.weight);
  }
  max_weight_ = mx;
}

void CsrGraph::materialize_from(const CsrGraph& o) {
  // Build into scratch first: `this == &o` is the caller's problem, but
  // aliasing o's arrays mid-copy is not.
  const NodeId n = o.node_count();
  std::vector<std::size_t> offs(std::size_t{n} + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offs[std::size_t{u} + 1] = offs[u] + o.neighbors(u).size();
  }
  std::vector<HalfEdge> flat(offs[n]);
  for (NodeId u = 0; u < n; ++u) {
    std::size_t pos = offs[u];
    for (const HalfEdge& h : o.neighbors(u)) flat[pos++] = h;
  }
  own_offsets_ = std::move(offs);
  own_halves_ = std::move(flat);
  mapping_.reset();
  patch_.reset();
  max_weight_ = o.max_weight_;
  rebind_views();
}

std::vector<NodeId> CsrGraph::balanced_node_shards(unsigned shards) const {
  if (patch_ != nullptr) {
    // Patched views have no flat offsets to binary-search; one O(n)
    // prefix walk gives the same deterministic boundaries.
    return balanced_node_shards_patched(shards);
  }
  const NodeId n = node_count();
  const NodeId k = static_cast<NodeId>(
      std::max<unsigned>(1, std::min<unsigned>(shards, std::max<NodeId>(n, 1))));
  std::vector<NodeId> bounds;
  bounds.reserve(std::size_t{k} + 1);
  bounds.push_back(0);
  // mass(v) = deg(v) + 1, so the cumulative mass of [0, v) is
  // offsets_[v] + v; the total is 2m + n.
  const std::uint64_t total = static_cast<std::uint64_t>(offsets_[n]) + n;
  for (NodeId s = 1; s < k; ++s) {
    // Overflow-free floor(total*s/k): total = q*k + r with r, s < k.
    const std::uint64_t target = (total / k) * s + (total % k) * s / k;
    // Smallest v with cumulative mass >= target; clamped so every shard
    // keeps at least one node.
    NodeId lo = bounds.back() + 1;
    NodeId hi = n - (k - s);
    while (lo < hi) {
      const NodeId mid = lo + (hi - lo) / 2;
      if (static_cast<std::uint64_t>(offsets_[mid]) + mid >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bounds.push_back(lo);
  }
  bounds.push_back(n);
  return bounds;
}

std::vector<NodeId> CsrGraph::balanced_node_shards_patched(
    unsigned shards) const {
  const NodeId n = node_count();
  const NodeId k = static_cast<NodeId>(
      std::max<unsigned>(1, std::min<unsigned>(shards, std::max<NodeId>(n, 1))));
  // cum[v] = cumulative mass of [0, v) under mass(v) = deg(v) + 1 —
  // exactly what offsets_[v] + v is for a flat view, so the boundaries
  // match what a compacted copy would produce.
  std::vector<std::uint64_t> cum(std::size_t{n} + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    cum[std::size_t{u} + 1] = cum[u] + neighbors(u).size() + 1;
  }
  std::vector<NodeId> bounds;
  bounds.reserve(std::size_t{k} + 1);
  bounds.push_back(0);
  const std::uint64_t total = cum[n];
  for (NodeId s = 1; s < k; ++s) {
    const std::uint64_t target = (total / k) * s + (total % k) * s / k;
    NodeId lo = bounds.back() + 1;
    NodeId hi = n - (k - s);
    while (lo < hi) {
      const NodeId mid = lo + (hi - lo) / 2;
      if (cum[mid] >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bounds.push_back(lo);
  }
  bounds.push_back(n);
  return bounds;
}

const CsrGraph& WeightedGraph::csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!csr_cache_) {
    csr_cache_ = std::make_shared<CsrGraph>(*this);
  }
  return *csr_cache_;
}

}  // namespace qc
