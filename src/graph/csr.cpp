#include "graph/csr.h"

#include <algorithm>
#include <memory>
#include <mutex>

namespace qc {

CsrGraph::CsrGraph(const WeightedGraph& g) {
  const NodeId n = g.node_count();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + g.degree(u);
  }
  halves_.resize(offsets_[n]);
  Weight mx = 1;
  for (NodeId u = 0; u < n; ++u) {
    std::size_t pos = offsets_[u];
    for (const HalfEdge& h : g.neighbors(u)) {
      halves_[pos++] = h;
      mx = std::max(mx, h.weight);
    }
  }
  max_weight_ = mx;
}

std::vector<NodeId> CsrGraph::balanced_node_shards(unsigned shards) const {
  const NodeId n = node_count();
  const NodeId k = static_cast<NodeId>(
      std::max<unsigned>(1, std::min<unsigned>(shards, std::max<NodeId>(n, 1))));
  std::vector<NodeId> bounds;
  bounds.reserve(k + 1);
  bounds.push_back(0);
  // mass(v) = deg(v) + 1, so the cumulative mass of [0, v) is
  // offsets_[v] + v; the total is 2m + n.
  const std::uint64_t total = static_cast<std::uint64_t>(offsets_[n]) + n;
  for (NodeId s = 1; s < k; ++s) {
    // Overflow-free floor(total*s/k): total = q*k + r with r, s < k.
    const std::uint64_t target = (total / k) * s + (total % k) * s / k;
    // Smallest v with cumulative mass >= target; clamped so every shard
    // keeps at least one node.
    NodeId lo = bounds.back() + 1;
    NodeId hi = n - (k - s);
    while (lo < hi) {
      const NodeId mid = lo + (hi - lo) / 2;
      if (static_cast<std::uint64_t>(offsets_[mid]) + mid >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bounds.push_back(lo);
  }
  bounds.push_back(n);
  return bounds;
}

const CsrGraph& WeightedGraph::csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!csr_cache_) {
    csr_cache_ = std::make_shared<const CsrGraph>(*this);
  }
  return *csr_cache_;
}

}  // namespace qc
