#include "graph/csr.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

namespace qc {

CsrGraph::CsrGraph(const WeightedGraph& g) {
  const NodeId n = g.node_count();
  own_offsets_.assign(std::size_t{n} + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    own_offsets_[std::size_t{u} + 1] = own_offsets_[u] + g.degree(u);
  }
  own_halves_.resize(own_offsets_[n]);
  Weight mx = 1;
  for (NodeId u = 0; u < n; ++u) {
    std::size_t pos = own_offsets_[u];
    for (const HalfEdge& h : g.neighbors(u)) {
      own_halves_[pos++] = h;
      mx = std::max(mx, h.weight);
    }
  }
  max_weight_ = mx;
  rebind_views();
}

CsrGraph CsrGraph::from_parts(std::vector<std::size_t> offsets,
                              std::vector<HalfEdge> halves,
                              Weight max_weight) {
  QC_REQUIRE(!offsets.empty() && offsets.front() == 0,
             "offsets must start with 0");
  QC_REQUIRE(offsets.back() == halves.size(),
             "offsets must end at the half-edge count");
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    QC_REQUIRE(offsets[i - 1] <= offsets[i], "offsets must be monotone");
  }
  QC_REQUIRE(max_weight >= 1, "max_weight must be >= 1");
  CsrGraph g;
  g.own_offsets_ = std::move(offsets);
  g.own_halves_ = std::move(halves);
  g.max_weight_ = max_weight;
  g.rebind_views();
  return g;
}

CsrGraph CsrGraph::mapped(std::span<const std::size_t> offsets,
                          std::span<const HalfEdge> halves, Weight max_weight,
                          std::shared_ptr<const void> keep_alive) {
  QC_REQUIRE(!offsets.empty() && offsets.front() == 0,
             "offsets must start with 0");
  QC_REQUIRE(offsets.back() == halves.size(),
             "offsets must end at the half-edge count");
  QC_REQUIRE(max_weight >= 1, "max_weight must be >= 1");
  QC_REQUIRE(keep_alive != nullptr, "mapped view needs a keep-alive handle");
  CsrGraph g;
  g.own_offsets_.clear();
  g.own_halves_.clear();
  g.mapping_ = std::move(keep_alive);
  g.offsets_ = offsets;
  g.halves_ = halves;
  g.max_weight_ = max_weight;
  return g;
}

void CsrGraph::detach() {
  own_offsets_.assign(offsets_.begin(), offsets_.end());
  own_halves_.assign(halves_.begin(), halves_.end());
  mapping_.reset();
  rebind_views();
}

std::vector<NodeId> CsrGraph::balanced_node_shards(unsigned shards) const {
  const NodeId n = node_count();
  const NodeId k = static_cast<NodeId>(
      std::max<unsigned>(1, std::min<unsigned>(shards, std::max<NodeId>(n, 1))));
  std::vector<NodeId> bounds;
  bounds.reserve(std::size_t{k} + 1);
  bounds.push_back(0);
  // mass(v) = deg(v) + 1, so the cumulative mass of [0, v) is
  // offsets_[v] + v; the total is 2m + n.
  const std::uint64_t total = static_cast<std::uint64_t>(offsets_[n]) + n;
  for (NodeId s = 1; s < k; ++s) {
    // Overflow-free floor(total*s/k): total = q*k + r with r, s < k.
    const std::uint64_t target = (total / k) * s + (total % k) * s / k;
    // Smallest v with cumulative mass >= target; clamped so every shard
    // keeps at least one node.
    NodeId lo = bounds.back() + 1;
    NodeId hi = n - (k - s);
    while (lo < hi) {
      const NodeId mid = lo + (hi - lo) / 2;
      if (static_cast<std::uint64_t>(offsets_[mid]) + mid >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bounds.push_back(lo);
  }
  bounds.push_back(n);
  return bounds;
}

const CsrGraph& WeightedGraph::csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!csr_cache_) {
    csr_cache_ = std::make_shared<const CsrGraph>(*this);
  }
  return *csr_cache_;
}

}  // namespace qc
