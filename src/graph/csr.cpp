#include "graph/csr.h"

#include <memory>
#include <mutex>

namespace qc {

CsrGraph::CsrGraph(const WeightedGraph& g) {
  const NodeId n = g.node_count();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + g.degree(u);
  }
  halves_.resize(offsets_[n]);
  Weight mx = 1;
  for (NodeId u = 0; u < n; ++u) {
    std::size_t pos = offsets_[u];
    for (const HalfEdge& h : g.neighbors(u)) {
      halves_[pos++] = h;
      mx = std::max(mx, h.weight);
    }
  }
  max_weight_ = mx;
}

const CsrGraph& WeightedGraph::csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!csr_cache_) {
    csr_cache_ = std::make_shared<const CsrGraph>(*this);
  }
  return *csr_cache_;
}

}  // namespace qc
