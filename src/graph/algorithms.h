// Centralized reference algorithms on weighted graphs.
//
// Every distributed algorithm in the library has a centralized reference
// twin here; tests assert bit-exact agreement between the two. These are
// also the "ground truth" oracles used to check approximation ratios, and
// the amplitude bookkeeping backend of the quantum search (DESIGN.md, S1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/mathx.h"

namespace qc {

/// Hop distances (unweighted BFS) from s. Unreachable -> kInfDist.
std::vector<Dist> bfs_distances(const WeightedGraph& g, NodeId s);

/// Weighted single-source distances (Dijkstra). Unreachable -> kInfDist.
std::vector<Dist> dijkstra(const WeightedGraph& g, NodeId s);

/// Weighted distances plus, for each node, the minimum number of edges
/// over all *shortest* (by weight) paths from s — the hop distance
/// h_{G,w}(s, v) of Section 3.1 (lexicographic Dijkstra).
struct DistHops {
  std::vector<Dist> dist;
  std::vector<Dist> hops;
};
DistHops dijkstra_with_hops(const WeightedGraph& g, NodeId s);

/// ℓ-hop-bounded distances d^ℓ_{G,w}(s, ·): least length over paths with
/// at most ℓ edges (Bellman–Ford truncated to ℓ relaxation rounds).
std::vector<Dist> bounded_hop_distances(const WeightedGraph& g, NodeId s,
                                        std::uint64_t ell);

/// All-pairs weighted distances (row per source).
std::vector<std::vector<Dist>> all_pairs_distances(const WeightedGraph& g);

/// Weighted eccentricity of every node; kInfDist on disconnected graphs.
std::vector<Dist> eccentricities(const WeightedGraph& g);

/// Weighted diameter D_{G,w} = max eccentricity.
Dist weighted_diameter(const WeightedGraph& g);

/// Weighted radius R_{G,w} = min eccentricity.
Dist weighted_radius(const WeightedGraph& g);

/// Unweighted diameter D_G (topology only) — the paper's parameter D.
Dist unweighted_diameter(const WeightedGraph& g);

/// Hop diameter H_{G,w}: max over pairs of h_{G,w}(u, v).
Dist hop_diameter(const WeightedGraph& g);

/// Result of contracting all weight-1 edges (Lemma 4.3).
struct Contraction {
  WeightedGraph graph;          ///< G' (parallel edges keep min weight).
  std::vector<NodeId> node_map; ///< original node -> contracted node.
};

/// Contracts every weight-1 edge; merged super-nodes keep, for each pair,
/// only the cheapest connecting edge, per Lemma 4.3's convention.
Contraction contract_unit_edges(const WeightedGraph& g);

}  // namespace qc
