// Centralized reference algorithms on weighted graphs.
//
// Every distributed algorithm in the library has a centralized reference
// twin here; tests assert bit-exact agreement between the two. These are
// also the "ground truth" oracles used to check approximation ratios, and
// the amplitude bookkeeping backend of the quantum search (DESIGN.md, S1).
//
// All distance kernels run on the flat CSR adjacency (graph/csr.h); the
// `WeightedGraph` overloads are thin shims over its cached `csr()` view.
// Multi-source quantities (eccentricities, APSP, the diameter family)
// fan their per-source runs out over a `runtime::ThreadPool` with an
// index-ordered reduction, so results are byte-identical at any worker
// count (tests/test_runtime.cpp asserts 1 vs 2 vs 8 workers).
#pragma once

#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "util/mathx.h"

namespace qc {

namespace runtime {
class ThreadPool;  // runtime/thread_pool.h
}

/// Reusable scratch state for the single-source kernels. One workspace
/// serves any number of consecutive runs on graphs of any size with zero
/// allocations after warm-up: label arrays are kept all-kInfDist between
/// runs via a touched-node list (no O(n) re-initialization), and heap /
/// bucket / queue storage keeps its capacity. Not thread-safe — use one
/// workspace per thread (the multi-source drivers below do).
///
/// Weighted runs pick between two exact Dijkstra engines: a Dial-style
/// circular bucket queue (O(m + maxdist), no comparisons) when the max
/// edge weight is small enough that the bucket scan is cheap, and a
/// binary heap with lazy deletion otherwise (gadget graphs with
/// alpha = n^2 weights land here). Both produce identical labels.
class DijkstraWorkspace {
 public:
  /// Hop distances (unweighted BFS) from s. `out` is resized to n.
  void bfs(const CsrGraph& g, NodeId s, std::vector<Dist>& out);

  /// Weighted single-source distances from s. `out` is resized to n.
  ///
  /// `cap` bounds the useful distance range: labels <= cap are exact;
  /// any label > cap (including kInfDist) only certifies that the true
  /// distance exceeds cap. Relaxations past the cap are pruned, so a
  /// tight cap settles only the ball it can reach — the Lemma 3.2 scale
  /// schedule discards everything above its eligibility cap anyway, and
  /// at fine scales that ball is tiny. The default cap disables pruning
  /// and yields the classic full-graph labels.
  void dijkstra(const CsrGraph& g, NodeId s, std::vector<Dist>& out,
                Dist cap = kInfDist);

  /// Lexicographic (weight, hops) Dijkstra from s; see dijkstra_with_hops.
  void dijkstra_with_hops(const CsrGraph& g, NodeId s,
                          std::vector<Dist>& dist_out,
                          std::vector<Dist>& hops_out);

  /// ℓ-hop-bounded distances (truncated Bellman–Ford). Resizes `out`.
  void bounded_hop(const CsrGraph& g, NodeId s, std::uint64_t ell,
                   std::vector<Dist>& out);

 private:
  void prepare(NodeId n);
  void reset_touched();
  bool use_buckets(const CsrGraph& g) const;
  void dijkstra_buckets(const CsrGraph& g, NodeId s, Dist cap);
  void dijkstra_heap(const CsrGraph& g, NodeId s, Dist cap);
  void with_hops_buckets(const CsrGraph& g, NodeId s);
  void with_hops_heap(const CsrGraph& g, NodeId s);

  // Label arrays: all-kInfDist outside a run (touched-list invariant).
  std::vector<Dist> dist_;
  std::vector<Dist> hops_;
  /// Nodes whose labels were set this run, in discovery order (doubles
  /// as the BFS queue).
  std::vector<NodeId> touched_;
  std::vector<std::pair<Dist, NodeId>> heap_;
  std::vector<std::tuple<Dist, Dist, NodeId>> heap3_;
  std::vector<std::vector<NodeId>> buckets_;
  std::vector<std::vector<std::pair<NodeId, Dist>>> buckets_h_;
  std::vector<Dist> bf_cur_;
  std::vector<Dist> bf_next_;
};

/// Hop distances (unweighted BFS) from s. Unreachable -> kInfDist.
std::vector<Dist> bfs_distances(const WeightedGraph& g, NodeId s);
std::vector<Dist> bfs_distances(const CsrGraph& g, NodeId s);

/// Weighted single-source distances (Dijkstra). Unreachable -> kInfDist.
std::vector<Dist> dijkstra(const WeightedGraph& g, NodeId s);
std::vector<Dist> dijkstra(const CsrGraph& g, NodeId s);

/// Weighted distances plus, for each node, the minimum number of edges
/// over all *shortest* (by weight) paths from s — the hop distance
/// h_{G,w}(s, v) of Section 3.1 (lexicographic Dijkstra).
struct DistHops {
  std::vector<Dist> dist;
  std::vector<Dist> hops;
};
DistHops dijkstra_with_hops(const WeightedGraph& g, NodeId s);
DistHops dijkstra_with_hops(const CsrGraph& g, NodeId s);

/// ℓ-hop-bounded distances d^ℓ_{G,w}(s, ·): least length over paths with
/// at most ℓ edges (Bellman–Ford truncated to ℓ relaxation rounds).
std::vector<Dist> bounded_hop_distances(const WeightedGraph& g, NodeId s,
                                        std::uint64_t ell);
std::vector<Dist> bounded_hop_distances(const CsrGraph& g, NodeId s,
                                        std::uint64_t ell);

// Multi-source kernels. The CSR overloads take an optional pool: pass
// one to control the worker count explicitly; pass nullptr to let the
// kernel use the process-wide shared pool for large graphs and run
// serially for small ones. Either way the per-source results land in
// index-ordered slots, so outputs never depend on scheduling.

/// All-pairs weighted distances (row per source).
std::vector<std::vector<Dist>> all_pairs_distances(const WeightedGraph& g);
std::vector<std::vector<Dist>> all_pairs_distances(
    const CsrGraph& g, runtime::ThreadPool* pool = nullptr);

/// Weighted eccentricity of every node; kInfDist on disconnected graphs.
std::vector<Dist> eccentricities(const WeightedGraph& g);
std::vector<Dist> eccentricities(const CsrGraph& g,
                                 runtime::ThreadPool* pool = nullptr);

/// Weighted eccentricities of a chosen source subset: out[i] is the
/// eccentricity of sources[i]. The full-graph overload above is n
/// Dijkstras — infeasible at the dataset layer's n = 10^5..10^6 scale —
/// while k sampled sources give the diameter/radius *lower/upper
/// envelope* the large-n benches track in O(k (m + n log n)). Same
/// index-ordered pool fan-out as every multi-source kernel: results are
/// byte-identical at any worker count. Duplicate sources are allowed;
/// ids must be < node_count().
std::vector<Dist> eccentricities(const CsrGraph& g,
                                 std::span<const NodeId> sources,
                                 runtime::ThreadPool* pool = nullptr);

/// Unweighted (hop) eccentricity of every node — the BFS twin of
/// `eccentricities`, used by the unweighted baselines.
std::vector<Dist> unweighted_eccentricities(const WeightedGraph& g);
std::vector<Dist> unweighted_eccentricities(
    const CsrGraph& g, runtime::ThreadPool* pool = nullptr);

/// Hop eccentricities of a chosen source subset — the BFS twin of the
/// subset overload above, with the same contract. The service layer's
/// incremental update path repairs only the table rows an edge batch
/// invalidated through this.
std::vector<Dist> unweighted_eccentricities(const CsrGraph& g,
                                            std::span<const NodeId> sources,
                                            runtime::ThreadPool* pool = nullptr);

/// Weighted diameter D_{G,w} = max eccentricity.
Dist weighted_diameter(const WeightedGraph& g);

/// Weighted radius R_{G,w} = min eccentricity.
Dist weighted_radius(const WeightedGraph& g);

/// Unweighted diameter D_G (topology only) — the paper's parameter D.
Dist unweighted_diameter(const WeightedGraph& g);
Dist unweighted_diameter(const CsrGraph& g,
                         runtime::ThreadPool* pool = nullptr);

/// Hop diameter H_{G,w}: max over pairs of h_{G,w}(u, v).
Dist hop_diameter(const WeightedGraph& g);
Dist hop_diameter(const CsrGraph& g, runtime::ThreadPool* pool = nullptr);

/// Result of contracting all weight-1 edges (Lemma 4.3).
struct Contraction {
  WeightedGraph graph;          ///< G' (parallel edges keep min weight).
  std::vector<NodeId> node_map; ///< original node -> contracted node.
};

/// Contracts every weight-1 edge; merged super-nodes keep, for each pair,
/// only the cheapest connecting edge, per Lemma 4.3's convention.
Contraction contract_unit_edges(const WeightedGraph& g);

}  // namespace qc
