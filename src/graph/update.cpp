#include "graph/update.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "graph/csr.h"
#include "graph/slot_index.h"

namespace qc {

namespace {

std::uint64_t edge_key(NodeId u, NodeId v) {
  return (std::uint64_t{std::min(u, v)} << 32) | std::uint64_t{std::max(u, v)};
}

/// Simulated per-edge state during validation, then the source of the
/// batch's net effect.
struct TouchedEdge {
  bool initially_present = false;
  bool present = false;
  Weight initial_weight = 0;
  Weight weight = 0;
};

enum class NetKind : std::uint8_t { kInsert, kRemove, kReweight };

struct NetChange {
  NetKind kind;
  NodeId u, v;  // canonical u < v
  Weight weight;      // final weight (kRemove: unused)
  Weight old_weight;  // previous weight (kInsert: unused)
};

/// True when a and b share a neighbor in the current adjacency — the
/// 2-hop replacement-path certificate: if every removed edge {a, b}
/// has one, each removal leaves its endpoints connected, so applying
/// the removals one at a time (each against a graph that is still
/// connected by induction) keeps the whole graph connected.
bool have_common_neighbor(const std::vector<std::vector<HalfEdge>>& adj,
                          NodeId a, NodeId b) {
  const auto& ra = adj[a];
  const auto& rb = adj[b];
  const auto& small = ra.size() <= rb.size() ? ra : rb;
  const auto& large = ra.size() <= rb.size() ? rb : ra;
  if (small.size() * large.size() <= 64) {
    for (const HalfEdge& x : small) {
      for (const HalfEdge& y : large) {
        if (x.to == y.to) return true;
      }
    }
    return false;
  }
  std::unordered_set<NodeId> seen;
  seen.reserve(small.size() * 2);
  for (const HalfEdge& x : small) seen.insert(x.to);
  for (const HalfEdge& y : large) {
    if (seen.count(y.to) != 0) return true;
  }
  return false;
}

void erase_half(std::vector<HalfEdge>& row, NodeId to) {
  const auto it =
      std::find_if(row.begin(), row.end(),
                   [to](const HalfEdge& h) { return h.to == to; });
  row.erase(it);  // validated present
}

void set_half_weight(std::vector<HalfEdge>& row, NodeId to, Weight w) {
  for (HalfEdge& h : row) {
    if (h.to == to) h.weight = w;
  }
}

}  // namespace

std::vector<NodeId> GraphUpdate::endpoints() const {
  std::vector<NodeId> out;
  out.reserve(ops_.size() * 2);
  for (const EdgeOp& op : ops_) {
    out.push_back(op.u);
    out.push_back(op.v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

UpdateStats WeightedGraph::apply(const GraphUpdate& update,
                                 UpdatePolicy policy) {
  UpdateStats stats;
  const auto& ops = update.ops();
  if (ops.empty()) return stats;
  const NodeId n = node_count();

  // ---- Phase 1: validate the whole batch against a simulated edge
  // state. Checks (and their messages) run in the historical
  // add_edge / set_edge_weight order, sequentially per op, so a batch
  // fails exactly where the equivalent op sequence would — but nothing
  // has mutated yet when it does.
  std::unordered_map<std::uint64_t, TouchedEdge> touched;
  touched.reserve(ops.size() * 2);
  for (const EdgeOp& op : ops) {
    QC_REQUIRE(op.u < n && op.v < n, "node id out of range");
    QC_REQUIRE(op.u != op.v, "self loops are not allowed");
    auto [it, fresh] = touched.try_emplace(edge_key(op.u, op.v));
    TouchedEdge& e = it->second;
    if (fresh) {
      e.initially_present = has_edge(op.u, op.v);
      e.present = e.initially_present;
      if (e.present) {
        e.initial_weight = edge_weight(op.u, op.v);
        e.weight = e.initial_weight;
      }
    }
    switch (op.kind) {
      case EdgeOpKind::kInsert:
        QC_REQUIRE(op.weight >= 1, "weights must be positive integers");
        QC_REQUIRE(!e.present, "parallel edges are not allowed");
        e.present = true;
        e.weight = op.weight;
        break;
      case EdgeOpKind::kRemove:
        if (!e.present) throw ArgumentError("remove_edge: no such edge");
        e.present = false;
        break;
      case EdgeOpKind::kReweight:
        QC_REQUIRE(op.weight >= 1, "weights must be positive integers");
        if (!e.present) throw ArgumentError("set_edge_weight: no such edge");
        e.weight = op.weight;
        break;
    }
  }

  // ---- Phase 2: reduce to net changes, in first-touch op order (the
  // order inserts append to rows, so it must be deterministic).
  std::vector<NetChange> net;
  net.reserve(touched.size());
  {
    std::unordered_set<std::uint64_t> emitted;
    emitted.reserve(touched.size());
    for (const EdgeOp& op : ops) {
      const std::uint64_t key = edge_key(op.u, op.v);
      if (!emitted.insert(key).second) continue;
      const TouchedEdge& e = touched.find(key)->second;
      const NodeId a = std::min(op.u, op.v);
      const NodeId b = std::max(op.u, op.v);
      if (e.initially_present && !e.present) {
        net.push_back({NetKind::kRemove, a, b, 0, e.initial_weight});
      } else if (!e.initially_present && e.present) {
        net.push_back({NetKind::kInsert, a, b, e.weight, 0});
      } else if (e.initially_present && e.weight != e.initial_weight) {
        net.push_back({NetKind::kReweight, a, b, e.weight, e.initial_weight});
      }
    }
  }
  if (net.empty()) return stats;

  bool any_insert = false;
  bool any_remove = false;
  std::vector<NodeId> dirty;  // endpoints of structural (topology) changes
  for (const NetChange& c : net) {
    switch (c.kind) {
      case NetKind::kInsert:
        ++stats.inserted;
        any_insert = true;
        break;
      case NetKind::kRemove:
        ++stats.removed;
        any_remove = true;
        break;
      case NetKind::kReweight:
        ++stats.reweighted;
        break;
    }
    if (c.kind != NetKind::kReweight) {
      dirty.push_back(c.u);
      dirty.push_back(c.v);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  stats.topology_changed = any_insert || any_remove;

  // Snapshot the caches and the pre-batch connectivity verdict. The
  // cache pointers are private to this graph (accessors return
  // references), so patching *csr in place cannot be observed by a
  // stale holder.
  std::shared_ptr<CsrGraph> csr;
  std::shared_ptr<EdgeSlotIndex> slot;
  ConnCache verdict;
  {
    std::lock_guard<std::mutex> lock(csr_mutex_);
    verdict = connected_cache_;
    if (policy == UpdatePolicy::kIncremental) {
      csr = csr_cache_;
      slot = slot_index_cache_;
    }
  }

  // Old neighbor targets of the structurally dirty rows, captured
  // before the adjacency mutates: the slot-index repair needs them to
  // erase the stale keys.
  std::vector<std::vector<NodeId>> old_targets;
  if (slot && stats.topology_changed) {
    old_targets.reserve(dirty.size());
    for (const NodeId u : dirty) {
      std::vector<NodeId> targets;
      targets.reserve(adjacency_[u].size());
      for (const HalfEdge& h : adjacency_[u]) targets.push_back(h.to);
      old_targets.push_back(std::move(targets));
    }
  }

  // ---- Phase 3: mutate the adjacency rows and the canonical edge
  // list. Rows keep their relative order under removal and append
  // inserts, exactly mirroring the edge list's compact-then-append —
  // so from_edges(n, edges()) reproduces the adjacency verbatim and a
  // freshly built CSR matches the patched one byte for byte.
  for (const NetChange& c : net) {
    switch (c.kind) {
      case NetKind::kInsert:
        adjacency_[c.u].push_back({c.v, c.weight});
        adjacency_[c.v].push_back({c.u, c.weight});
        break;
      case NetKind::kRemove:
        erase_half(adjacency_[c.u], c.v);
        erase_half(adjacency_[c.v], c.u);
        break;
      case NetKind::kReweight:
        set_half_weight(adjacency_[c.u], c.v, c.weight);
        set_half_weight(adjacency_[c.v], c.u, c.weight);
        break;
    }
  }
  {
    std::unordered_map<std::uint64_t, const NetChange*> by_key;
    by_key.reserve(net.size());
    for (const NetChange& c : net) by_key.emplace(edge_key(c.u, c.v), &c);
    if (any_remove || stats.reweighted != 0) {
      std::size_t out = 0;
      for (std::size_t i = 0; i < edges_.size(); ++i) {
        Edge e = edges_[i];
        const auto it = by_key.find(edge_key(e.u, e.v));
        if (it != by_key.end()) {
          if (it->second->kind == NetKind::kRemove) continue;
          if (it->second->kind == NetKind::kReweight) {
            e.weight = it->second->weight;
          }
        }
        edges_[out++] = e;
      }
      edges_.resize(out);
    }
    for (const NetChange& c : net) {
      if (c.kind == NetKind::kInsert) edges_.push_back({c.u, c.v, c.weight});
    }
  }

  // ---- Phase 4: connectivity tri-state. Reweights never flip it;
  // inserts can only bridge ("disconnected" downgrades); removals can
  // only cut — but a cached "connected" survives when every removed
  // edge's endpoints share a common neighbor in the *final* graph (the
  // replacement-path certificate above).
  ConnCache final_verdict = verdict;
  if (verdict == ConnCache::kDisconnected && any_insert) {
    final_verdict = ConnCache::kUnknown;
  }
  if (verdict == ConnCache::kConnected && any_remove) {
    for (const NetChange& c : net) {
      if (c.kind != NetKind::kRemove) continue;
      if (!have_common_neighbor(adjacency_, c.u, c.v)) {
        final_verdict = ConnCache::kUnknown;
        break;
      }
    }
  }
  stats.connectivity_kept =
      verdict != ConnCache::kUnknown && final_verdict == verdict;

  // ---- Phase 5: derived-cache maintenance.
  if (csr) {
    // Weight bookkeeping first: raises apply directly; a removed or
    // lowered previous maximum forces one exact rescan (after the
    // rows are patched).
    Weight raised = 0;
    bool max_lowered = false;
    for (const NetChange& c : net) {
      if (c.kind != NetKind::kRemove) raised = std::max(raised, c.weight);
      if (c.kind != NetKind::kInsert && c.old_weight == csr->max_weight() &&
          (c.kind == NetKind::kRemove || c.weight < c.old_weight)) {
        max_lowered = true;
      }
    }
    for (const NodeId u : dirty) csr->patch_row(u, adjacency_[u]);
    for (const NetChange& c : net) {
      if (c.kind != NetKind::kReweight) continue;
      csr->patch_weight(c.u, c.v, c.weight);
      csr->patch_weight(c.v, c.u, c.weight);
    }
    csr->note_weight(raised);
    if (max_lowered) csr->recompute_max_weight();
    stats.csr_patched = true;

    if (slot && stats.topology_changed) {
      slot->repair_rows(*csr, dirty, old_targets);
      stats.slot_index_repaired = true;
    }

    if (csr->patched_half_edges() > csr_patch_budget()) {
      csr->compact();
      stats.csr_compacted = true;
    }

    std::lock_guard<std::mutex> lock(csr_mutex_);
    connected_cache_ = final_verdict;
  } else {
    std::lock_guard<std::mutex> lock(csr_mutex_);
    csr_cache_.reset();
    slot_index_cache_.reset();
    connected_cache_ = final_verdict;
  }
  return stats;
}

}  // namespace qc
