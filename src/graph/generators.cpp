#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

namespace qc::gen {

WeightedGraph path(NodeId n) {
  QC_REQUIRE(n >= 1, "path needs n >= 1");
  WeightedGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

WeightedGraph cycle(NodeId n) {
  QC_REQUIRE(n >= 3, "cycle needs n >= 3");
  WeightedGraph g = path(n);
  g.add_edge(n - 1, 0);
  return g;
}

WeightedGraph star(NodeId n) {
  QC_REQUIRE(n >= 2, "star needs n >= 2");
  WeightedGraph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

WeightedGraph complete(NodeId n) {
  QC_REQUIRE(n >= 2, "complete graph needs n >= 2");
  WeightedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

WeightedGraph balanced_binary_tree(NodeId n) {
  QC_REQUIRE(n >= 1, "tree needs n >= 1");
  WeightedGraph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(i, (i - 1) / 2);
  return g;
}

WeightedGraph grid(NodeId rows, NodeId cols) {
  QC_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  WeightedGraph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

WeightedGraph erdos_renyi_connected(NodeId n, double p, Rng& rng) {
  QC_REQUIRE(n >= 2, "ER graph needs n >= 2");
  WeightedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  // Connectivity repair: find components, link them along a random
  // permutation of representatives.
  std::vector<NodeId> comp(n, n);
  std::vector<NodeId> reps;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != n) continue;
    reps.push_back(s);
    std::queue<NodeId> q;
    q.push(s);
    comp[s] = s;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const HalfEdge& h : g.neighbors(u)) {
        if (comp[h.to] == n) {
          comp[h.to] = s;
          q.push(h.to);
        }
      }
    }
  }
  rng.shuffle(reps);
  for (std::size_t i = 1; i < reps.size(); ++i) {
    g.add_edge(reps[i - 1], reps[i]);
  }
  return g;
}

WeightedGraph path_of_cliques(NodeId cliques, NodeId clique_size) {
  QC_REQUIRE(cliques >= 1 && clique_size >= 2,
             "path_of_cliques needs cliques >= 1, clique_size >= 2");
  WeightedGraph g(cliques * clique_size);
  for (NodeId c = 0; c < cliques; ++c) {
    const NodeId base = c * clique_size;
    for (NodeId u = 0; u < clique_size; ++u) {
      for (NodeId v = u + 1; v < clique_size; ++v) {
        g.add_edge(base + u, base + v);
      }
    }
    if (c + 1 < cliques) {
      g.add_edge(base + clique_size - 1, base + clique_size);
    }
  }
  return g;
}

WeightedGraph randomize_weights(const WeightedGraph& g, Weight max_w,
                                Rng& rng) {
  QC_REQUIRE(max_w >= 1, "max_w must be >= 1");
  return g.reweighted(
      [&](Weight) { return Weight{1} + rng.below(max_w); });
}

WeightedGraph random_tree(NodeId n, Rng& rng) {
  QC_REQUIRE(n >= 1, "random_tree needs n >= 1");
  WeightedGraph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.below(v)));
  }
  return g;
}

WeightedGraph barbell(NodeId clique, NodeId bridge) {
  QC_REQUIRE(clique >= 2, "barbell needs clique size >= 2");
  WeightedGraph g(2 * clique + bridge);
  auto make_clique = [&](NodeId base) {
    for (NodeId u = 0; u < clique; ++u) {
      for (NodeId v = u + 1; v < clique; ++v) {
        g.add_edge(base + u, base + v);
      }
    }
  };
  make_clique(0);
  make_clique(clique + bridge);
  NodeId prev = clique - 1;  // a node of the left clique
  for (NodeId i = 0; i < bridge; ++i) {
    g.add_edge(prev, clique + i);
    prev = clique + i;
  }
  g.add_edge(prev, clique + bridge);  // into the right clique
  return g;
}

WeightedGraph hypercube(std::uint32_t dims) {
  QC_REQUIRE(dims >= 1 && dims <= 20, "hypercube needs 1..20 dims");
  const NodeId n = NodeId{1} << dims;
  WeightedGraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t b = 0; b < dims; ++b) {
      const NodeId u = v ^ (NodeId{1} << b);
      if (v < u) g.add_edge(v, u);
    }
  }
  return g;
}

WeightedGraph random_regular(NodeId n, std::uint32_t degree, Rng& rng) {
  QC_REQUIRE(n >= 2 && degree >= 1 && degree < n,
             "random_regular needs 1 <= degree < n >= 2");
  WeightedGraph g(n);
  // Configuration-style: shuffle stubs, match pairs, drop loops and
  // duplicates (leaves the graph approximately regular).
  std::vector<NodeId> stubs;
  stubs.reserve(std::size_t{n} * degree);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < degree; ++i) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i];
    const NodeId v = stubs[i + 1];
    if (u != v && !g.has_edge(u, v)) g.add_edge(u, v);
  }
  // Connectivity repair.
  std::vector<NodeId> comp(n, n);
  std::vector<NodeId> reps;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != n) continue;
    reps.push_back(s);
    std::queue<NodeId> q;
    q.push(s);
    comp[s] = s;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const HalfEdge& h : g.neighbors(u)) {
        if (comp[h.to] == n) {
          comp[h.to] = s;
          q.push(h.to);
        }
      }
    }
  }
  for (std::size_t i = 1; i < reps.size(); ++i) {
    g.add_edge(reps[i - 1], reps[i]);
  }
  return g;
}

WeightedGraph from_family(const std::string& family, NodeId n, Weight max_w,
                          Rng& rng) {
  QC_REQUIRE(n >= 1, "family instance needs n >= 1");
  QC_REQUIRE(max_w >= 1, "max_w must be >= 1");
  WeightedGraph g;
  if (family == "ER") {
    g = erdos_renyi_connected(
        n, 3.0 * std::log2(double(std::max<NodeId>(n, 2))) / double(n), rng);
  } else if (family == "grid") {
    const auto side = std::max<NodeId>(
        1, static_cast<NodeId>(std::sqrt(double(n))));
    g = grid(side, side);
  } else if (family == "cliques") {
    g = path_of_cliques(std::max<NodeId>(1, n / 4), 4);
  } else if (family == "path") {
    g = path(n);
  } else if (family == "cycle") {
    g = cycle(std::max<NodeId>(3, n));
  } else if (family == "star") {
    g = star(std::max<NodeId>(2, n));
  } else if (family == "tree") {
    g = random_tree(n, rng);
  } else if (family == "regular") {
    g = random_regular(std::max<NodeId>(5, n), 4, rng);
  } else if (family == "hypercube") {
    g = hypercube(std::max<std::uint32_t>(1, ilog2(std::max<NodeId>(n, 2))));
  } else if (family == "complete") {
    g = complete(std::max<NodeId>(2, n));
  } else {
    throw ArgumentError("unknown graph family: " + family);
  }
  return randomize_weights(g, max_w, rng);
}

// --- streaming dataset generators ------------------------------------

namespace {

/// Flat open-addressed set of packed (u << 32 | v) edge keys, used by
/// the dedup'ing streaming generators. Keys are mixed through a
/// splitmix64 finalizer; load factor stays under 1/2 (the constructors
/// size for the whole edge budget up front, growth is a safety net).
/// ~16 bytes per expected edge — the dominant RAM cost of RMAT and
/// Chung–Lu generation, and still ~100x smaller than the graph it
/// replaces holding in memory.
class EdgeKeySet {
 public:
  explicit EdgeKeySet(std::uint64_t expected) {
    std::size_t cap = 64;
    while (cap < expected * 2 && cap < (std::size_t{1} << 40)) cap <<= 1;
    slots_.assign(cap, 0);
  }

  /// Inserts key; returns false if it was already present.
  bool insert(std::uint64_t key) {
    if ((count_ + 1) * 2 > slots_.size()) grow();
    const std::uint64_t stored = key + 1;  // 0 marks an empty slot
    std::size_t i = mix(key) & (slots_.size() - 1);
    while (slots_[i] != 0) {
      if (slots_[i] == stored) return false;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = stored;
    ++count_;
    return true;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void grow() {
    std::vector<std::uint64_t> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, 0);
    for (const std::uint64_t stored : old) {
      if (stored == 0) continue;
      std::size_t i = mix(stored - 1) & (slots_.size() - 1);
      while (slots_[i] != 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = stored;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t count_ = 0;
};

/// Union-find with path halving; 4 bytes per node. Tracks component
/// count so the repair pass knows when to stop early.
class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n), components_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId find(NodeId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[b] = a;
    --components_;
  }

  NodeId components() const { return components_; }

 private:
  std::vector<NodeId> parent_;
  NodeId components_;
};

/// Appends repair edges over the per-component minimum nodes (iterating
/// v ascending, the first node whose root is unseen is its component's
/// minimum — so representatives come out sorted and every repair edge
/// is canonical). Representatives are linked as a complete binary tree
/// (rep i to rep (i-1)/2) rather than a path: a sparse RMAT draw can
/// leave tens of thousands of singleton components, and a path repair
/// would hand the "low-diameter power-law graph" a diameter equal to
/// the component count — the tree keeps the repair's diameter
/// contribution at O(log #components) and adds at most 3 to any
/// degree. A repair edge joins two components, so it can never
/// duplicate a sampled edge.
void repair_connectivity(BGraphWriter& out, UnionFind& uf, NodeId n,
                         Weight max_w, Rng& rng) {
  if (n == 0 || uf.components() <= 1) return;
  std::vector<NodeId> reps;
  std::vector<bool> seen_root(n, false);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId root = uf.find(v);
    if (seen_root[root]) continue;
    seen_root[root] = true;
    reps.push_back(v);
    if (reps.size() == uf.components()) break;
  }
  for (std::size_t i = 1; i < reps.size(); ++i) {
    out.add(reps[(i - 1) / 2], reps[i], Weight{1} + rng.below(max_w));
    uf.unite(reps[(i - 1) / 2], reps[i]);
  }
}

std::uint64_t max_edges_of(std::uint64_t n) {
  return n < 2 ? 0 : n * (n - 1) / 2;
}

}  // namespace

BGraphInfo rmat_bgraph(const std::string& path, std::uint32_t scale,
                       std::uint64_t target_edges, Weight max_w,
                       std::uint64_t seed, double a, double b, double c) {
  QC_REQUIRE(scale >= 1 && scale <= 31, "rmat needs 1 <= scale <= 31");
  QC_REQUIRE(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
             "rmat quadrant probabilities need a > 0, a+b+c < 1");
  QC_REQUIRE(max_w >= 1, "max_w must be >= 1");
  const NodeId n = NodeId{1} << scale;
  QC_REQUIRE(target_edges <= max_edges_of(n) / 2,
             "rmat edge budget too dense (want <= n(n-1)/4 so the "
             "rejection sampler terminates)");
  Rng rng(seed);
  BGraphWriter out(path, n);
  EdgeKeySet seen(target_edges);
  UnionFind uf(n);
  // Rejection sampling against the dedup set: the budget cap above
  // keeps the acceptance rate >= 1/2 even if every draw landed in the
  // same quadrant cell, but a hard attempt ceiling guards pathological
  // parameter corners anyway.
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 64 * target_edges + 1024;
  while (out.edges_written() < target_edges) {
    QC_REQUIRE(++attempts <= max_attempts,
               "rmat rejection sampler exceeded its attempt budget — "
               "parameters concentrate mass on too few cells");
    NodeId u = 0;
    NodeId v = 0;
    for (std::uint32_t level = 0; level < scale; ++level) {
      const double r = rng.uniform();
      const std::uint32_t ubit = r >= a + b ? 1 : 0;
      const std::uint32_t vbit = (r >= a && r < a + b) || r >= a + b + c;
      u |= ubit << level;
      v |= vbit << level;
    }
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert((std::uint64_t{u} << 32) | v)) continue;
    out.add(u, v, Weight{1} + rng.below(max_w));
    uf.unite(u, v);
  }
  repair_connectivity(out, uf, n, max_w, rng);
  return out.close();
}

BGraphInfo chung_lu_bgraph(const std::string& path, NodeId n,
                           std::uint64_t target_edges, double exponent,
                           Weight max_w, std::uint64_t seed) {
  QC_REQUIRE(n >= 2, "chung_lu needs n >= 2");
  QC_REQUIRE(exponent > 2.0 && exponent <= 4.0,
             "chung_lu needs 2 < exponent <= 4");
  QC_REQUIRE(max_w >= 1, "max_w must be >= 1");
  QC_REQUIRE(target_edges <= max_edges_of(n) / 2,
             "chung_lu edge budget too dense (want <= n(n-1)/4)");
  // Cumulative endpoint table: P(v) ∝ (v+1)^(-alpha) with
  // alpha = 1/(exponent-1) — the standard Chung–Lu weighting whose
  // expected degrees follow the requested power law.
  const double alpha = 1.0 / (exponent - 1.0);
  std::vector<double> cum(n);
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    total += std::pow(double(v) + 1.0, -alpha);
    cum[v] = total;
  }
  Rng rng(seed);
  const auto draw = [&]() -> NodeId {
    const double x = rng.uniform() * total;
    return static_cast<NodeId>(
        std::lower_bound(cum.begin(), cum.end(), x) - cum.begin());
  };
  BGraphWriter out(path, n);
  EdgeKeySet seen(target_edges);
  UnionFind uf(n);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 256 * target_edges + 1024;
  while (out.edges_written() < target_edges) {
    QC_REQUIRE(++attempts <= max_attempts,
               "chung_lu rejection sampler exceeded its attempt budget — "
               "the weight distribution concentrates on too few nodes");
    NodeId u = draw();
    NodeId v = draw();
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert((std::uint64_t{u} << 32) | v)) continue;
    out.add(u, v, Weight{1} + rng.below(max_w));
    uf.unite(u, v);
  }
  repair_connectivity(out, uf, n, max_w, rng);
  return out.close();
}

BGraphInfo erdos_renyi_bgraph(const std::string& path, NodeId n, double p,
                              Weight max_w, std::uint64_t seed) {
  QC_REQUIRE(n >= 2, "erdos_renyi needs n >= 2");
  QC_REQUIRE(p >= 0.0 && p <= 1.0, "p must be in [0, 1]");
  QC_REQUIRE(max_w >= 1, "max_w must be >= 1");
  Rng rng(seed);
  BGraphWriter out(path, n);
  UnionFind uf(n);
  if (p > 0.0) {
    // Geometric skip sampling: instead of n(n-1)/2 Bernoulli trials,
    // jump straight to the next success with
    // skip = floor(log(1-U) / log(1-p)) and decode the linear pair
    // index into (u, v) by walking rows forward — O(1) amortized per
    // emitted edge plus O(n) row advances total.
    const std::uint64_t total_pairs = max_edges_of(n);
    const double log1mp = std::log1p(-p);  // -inf when p == 1
    std::uint64_t idx = 0;
    std::uint64_t row_base = 0;          // linear index of (u, u+1)
    NodeId u = 0;
    std::uint64_t row_len = n - 1;       // pairs in row u
    while (true) {
      if (p < 1.0) {
        const double skip =
            std::floor(std::log1p(-rng.uniform()) / log1mp);
        if (skip >= double(total_pairs)) break;
        idx += static_cast<std::uint64_t>(skip);
      }
      if (idx >= total_pairs) break;
      while (idx >= row_base + row_len) {
        row_base += row_len;
        --row_len;
        ++u;
      }
      const NodeId v = static_cast<NodeId>(u + 1 + (idx - row_base));
      out.add(u, v, Weight{1} + rng.below(max_w));
      uf.unite(u, v);
      ++idx;
    }
  }
  repair_connectivity(out, uf, n, max_w, rng);
  return out.close();
}

BGraphInfo grid_bgraph(const std::string& path, NodeId rows, NodeId cols,
                       double diagonal_p, Weight max_w, std::uint64_t seed) {
  QC_REQUIRE(rows >= 1 && cols >= 1, "grid needs rows, cols >= 1");
  const std::uint64_t n = std::uint64_t{rows} * cols;
  QC_REQUIRE(n >= 2, "grid needs at least 2 nodes");
  QC_REQUIRE(n <= std::numeric_limits<NodeId>::max(),
             "grid exceeds the NodeId range");
  QC_REQUIRE(diagonal_p >= 0.0 && diagonal_p <= 1.0,
             "diagonal probability must be in [0, 1]");
  QC_REQUIRE(max_w >= 1, "max_w must be >= 1");
  Rng rng(seed);
  BGraphWriter out(path, n);
  // One pass in node-id order. For a fixed u the three candidate
  // neighbors u+1 < u+cols < u+cols+1 come out ascending, so the whole
  // stream is sorted and the writer flags it — no sort pass needed
  // before CSR ingest. The rng consumption order (right, down, diag
  // gate, diag weight) is part of the format: same arguments, same
  // bytes.
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      const NodeId u = r * cols + c;
      if (c + 1 < cols) out.add(u, u + 1, Weight{1} + rng.below(max_w));
      if (r + 1 < rows) out.add(u, u + cols, Weight{1} + rng.below(max_w));
      if (r + 1 < rows && c + 1 < cols && rng.uniform() < diagonal_p) {
        out.add(u, u + cols + 1, Weight{1} + rng.below(max_w));
      }
    }
  }
  return out.close();
}

WeightedGraph planted_heavy_pair(NodeId n, Weight max_w, Weight boost,
                                 Rng& rng) {
  QC_REQUIRE(n >= 4, "planted_heavy_pair needs n >= 4");
  QC_REQUIRE(boost >= 1, "boost must be >= 1");
  auto g = erdos_renyi_connected(n, 0.1, rng);
  g = randomize_weights(g, max_w, rng);
  // Inflate every edge incident to node n-1 so reaching it is costly:
  // d_w(0, n-1) grows by ~boost while the rest of the metric is mostly
  // untouched.
  const NodeId far = n - 1;
  for (const HalfEdge& h : g.neighbors(far)) {
    g.set_edge_weight(far, h.to, h.weight + boost);
  }
  return g;
}

}  // namespace qc::gen
