#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace qc::gen {

WeightedGraph path(NodeId n) {
  QC_REQUIRE(n >= 1, "path needs n >= 1");
  WeightedGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

WeightedGraph cycle(NodeId n) {
  QC_REQUIRE(n >= 3, "cycle needs n >= 3");
  WeightedGraph g = path(n);
  g.add_edge(n - 1, 0);
  return g;
}

WeightedGraph star(NodeId n) {
  QC_REQUIRE(n >= 2, "star needs n >= 2");
  WeightedGraph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

WeightedGraph complete(NodeId n) {
  QC_REQUIRE(n >= 2, "complete graph needs n >= 2");
  WeightedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

WeightedGraph balanced_binary_tree(NodeId n) {
  QC_REQUIRE(n >= 1, "tree needs n >= 1");
  WeightedGraph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(i, (i - 1) / 2);
  return g;
}

WeightedGraph grid(NodeId rows, NodeId cols) {
  QC_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  WeightedGraph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

WeightedGraph erdos_renyi_connected(NodeId n, double p, Rng& rng) {
  QC_REQUIRE(n >= 2, "ER graph needs n >= 2");
  WeightedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  // Connectivity repair: find components, link them along a random
  // permutation of representatives.
  std::vector<NodeId> comp(n, n);
  std::vector<NodeId> reps;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != n) continue;
    reps.push_back(s);
    std::queue<NodeId> q;
    q.push(s);
    comp[s] = s;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const HalfEdge& h : g.neighbors(u)) {
        if (comp[h.to] == n) {
          comp[h.to] = s;
          q.push(h.to);
        }
      }
    }
  }
  rng.shuffle(reps);
  for (std::size_t i = 1; i < reps.size(); ++i) {
    g.add_edge(reps[i - 1], reps[i]);
  }
  return g;
}

WeightedGraph path_of_cliques(NodeId cliques, NodeId clique_size) {
  QC_REQUIRE(cliques >= 1 && clique_size >= 2,
             "path_of_cliques needs cliques >= 1, clique_size >= 2");
  WeightedGraph g(cliques * clique_size);
  for (NodeId c = 0; c < cliques; ++c) {
    const NodeId base = c * clique_size;
    for (NodeId u = 0; u < clique_size; ++u) {
      for (NodeId v = u + 1; v < clique_size; ++v) {
        g.add_edge(base + u, base + v);
      }
    }
    if (c + 1 < cliques) {
      g.add_edge(base + clique_size - 1, base + clique_size);
    }
  }
  return g;
}

WeightedGraph randomize_weights(const WeightedGraph& g, Weight max_w,
                                Rng& rng) {
  QC_REQUIRE(max_w >= 1, "max_w must be >= 1");
  return g.reweighted(
      [&](Weight) { return Weight{1} + rng.below(max_w); });
}

WeightedGraph random_tree(NodeId n, Rng& rng) {
  QC_REQUIRE(n >= 1, "random_tree needs n >= 1");
  WeightedGraph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.below(v)));
  }
  return g;
}

WeightedGraph barbell(NodeId clique, NodeId bridge) {
  QC_REQUIRE(clique >= 2, "barbell needs clique size >= 2");
  WeightedGraph g(2 * clique + bridge);
  auto make_clique = [&](NodeId base) {
    for (NodeId u = 0; u < clique; ++u) {
      for (NodeId v = u + 1; v < clique; ++v) {
        g.add_edge(base + u, base + v);
      }
    }
  };
  make_clique(0);
  make_clique(clique + bridge);
  NodeId prev = clique - 1;  // a node of the left clique
  for (NodeId i = 0; i < bridge; ++i) {
    g.add_edge(prev, clique + i);
    prev = clique + i;
  }
  g.add_edge(prev, clique + bridge);  // into the right clique
  return g;
}

WeightedGraph hypercube(std::uint32_t dims) {
  QC_REQUIRE(dims >= 1 && dims <= 20, "hypercube needs 1..20 dims");
  const NodeId n = NodeId{1} << dims;
  WeightedGraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t b = 0; b < dims; ++b) {
      const NodeId u = v ^ (NodeId{1} << b);
      if (v < u) g.add_edge(v, u);
    }
  }
  return g;
}

WeightedGraph random_regular(NodeId n, std::uint32_t degree, Rng& rng) {
  QC_REQUIRE(n >= 2 && degree >= 1 && degree < n,
             "random_regular needs 1 <= degree < n >= 2");
  WeightedGraph g(n);
  // Configuration-style: shuffle stubs, match pairs, drop loops and
  // duplicates (leaves the graph approximately regular).
  std::vector<NodeId> stubs;
  stubs.reserve(std::size_t{n} * degree);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < degree; ++i) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i];
    const NodeId v = stubs[i + 1];
    if (u != v && !g.has_edge(u, v)) g.add_edge(u, v);
  }
  // Connectivity repair.
  std::vector<NodeId> comp(n, n);
  std::vector<NodeId> reps;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != n) continue;
    reps.push_back(s);
    std::queue<NodeId> q;
    q.push(s);
    comp[s] = s;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const HalfEdge& h : g.neighbors(u)) {
        if (comp[h.to] == n) {
          comp[h.to] = s;
          q.push(h.to);
        }
      }
    }
  }
  for (std::size_t i = 1; i < reps.size(); ++i) {
    g.add_edge(reps[i - 1], reps[i]);
  }
  return g;
}

WeightedGraph from_family(const std::string& family, NodeId n, Weight max_w,
                          Rng& rng) {
  QC_REQUIRE(n >= 1, "family instance needs n >= 1");
  QC_REQUIRE(max_w >= 1, "max_w must be >= 1");
  WeightedGraph g;
  if (family == "ER") {
    g = erdos_renyi_connected(
        n, 3.0 * std::log2(double(std::max<NodeId>(n, 2))) / double(n), rng);
  } else if (family == "grid") {
    const auto side = std::max<NodeId>(
        1, static_cast<NodeId>(std::sqrt(double(n))));
    g = grid(side, side);
  } else if (family == "cliques") {
    g = path_of_cliques(std::max<NodeId>(1, n / 4), 4);
  } else if (family == "path") {
    g = path(n);
  } else if (family == "cycle") {
    g = cycle(std::max<NodeId>(3, n));
  } else if (family == "star") {
    g = star(std::max<NodeId>(2, n));
  } else if (family == "tree") {
    g = random_tree(n, rng);
  } else if (family == "regular") {
    g = random_regular(std::max<NodeId>(5, n), 4, rng);
  } else if (family == "hypercube") {
    g = hypercube(std::max<std::uint32_t>(1, ilog2(std::max<NodeId>(n, 2))));
  } else if (family == "complete") {
    g = complete(std::max<NodeId>(2, n));
  } else {
    throw ArgumentError("unknown graph family: " + family);
  }
  return randomize_weights(g, max_w, rng);
}

WeightedGraph planted_heavy_pair(NodeId n, Weight max_w, Weight boost,
                                 Rng& rng) {
  QC_REQUIRE(n >= 4, "planted_heavy_pair needs n >= 4");
  QC_REQUIRE(boost >= 1, "boost must be >= 1");
  auto g = erdos_renyi_connected(n, 0.1, rng);
  g = randomize_weights(g, max_w, rng);
  // Inflate every edge incident to node n-1 so reaching it is costly:
  // d_w(0, n-1) grows by ~boost while the rest of the metric is mostly
  // untouched.
  const NodeId far = n - 1;
  for (const HalfEdge& h : g.neighbors(far)) {
    g.set_edge_weight(far, h.to, h.weight + boost);
  }
  return g;
}

}  // namespace qc::gen
