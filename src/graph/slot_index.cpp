#include "graph/slot_index.h"

namespace qc {

EdgeSlotIndex::EdgeSlotIndex(const CsrGraph& g) {
  const NodeId n = g.node_count();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t halves = 0;
  for (NodeId u = 0; u < n; ++u) {
    halves += g.degree(u);
    offsets_[u + 1] = halves;
  }

  // Size the table to keep the load factor at or below 1/2, so probe
  // chains stay short and every probe loop hits an empty slot.
  std::size_t cap = 1;
  while (cap < 2 * halves + 1) cap <<= 1;
  table_.assign(cap, Entry{});
  mask_ = cap - 1;

  for (NodeId u = 0; u < n; ++u) {
    const auto row = g.neighbors(u);
    for (std::uint32_t s = 0; s < row.size(); ++s) {
      const std::uint64_t key = make_key(u, row[s].to);
      std::size_t i = hash_key(key) & mask_;
      while (table_[i].key != kEmptyKey) i = (i + 1) & mask_;
      table_[i] = Entry{key, s};
    }
  }
}

const EdgeSlotIndex& WeightedGraph::slot_index() const {
  // Build (or fetch) the CSR view first: csr() takes csr_mutex_, so the
  // lock below must not be held yet.
  const CsrGraph& c = csr();
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!slot_index_cache_) {
    slot_index_cache_ = std::make_shared<const EdgeSlotIndex>(c);
  }
  return *slot_index_cache_;
}

}  // namespace qc
