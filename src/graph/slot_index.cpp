#include "graph/slot_index.h"

namespace qc {

EdgeSlotIndex::EdgeSlotIndex(const CsrGraph& g) {
  const NodeId n = g.node_count();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t halves = 0;
  for (NodeId u = 0; u < n; ++u) {
    halves += g.degree(u);
    offsets_[u + 1] = halves;
  }

  // Size the table to keep the load factor at or below 1/2, so probe
  // chains stay short and every probe loop hits an empty slot.
  std::size_t cap = 1;
  while (cap < 2 * halves + 1) cap <<= 1;
  table_.assign(cap, Entry{});
  mask_ = cap - 1;

  for (NodeId u = 0; u < n; ++u) {
    const auto row = g.neighbors(u);
    for (std::uint32_t s = 0; s < row.size(); ++s) {
      const std::uint64_t key = make_key(u, row[s].to);
      std::size_t i = hash_key(key) & mask_;
      while (table_[i].key != kEmptyKey) i = (i + 1) & mask_;
      table_[i] = Entry{key, s};
    }
  }
}

void EdgeSlotIndex::erase_key(std::uint64_t key) {
  std::size_t i = hash_key(key) & mask_;
  while (table_[i].key != key) {
    if (table_[i].key == kEmptyKey) return;  // not present
    i = (i + 1) & mask_;
  }
  // Backward-shift deletion: walk the probe chain after the hole and
  // pull back every entry whose home slot lies at or before the hole,
  // so lookups never need tombstones.
  std::size_t hole = i;
  std::size_t j = i;
  for (;;) {
    table_[hole].key = kEmptyKey;
    for (;;) {
      j = (j + 1) & mask_;
      if (table_[j].key == kEmptyKey) return;
      const std::size_t home = hash_key(table_[j].key) & mask_;
      // Movable iff home is not in the cyclic interval (hole, j].
      const bool movable = hole <= j ? (home <= hole || home > j)
                                     : (home <= hole && home > j);
      if (movable) break;
    }
    table_[hole] = table_[j];
    hole = j;
  }
}

void EdgeSlotIndex::repair_rows(const CsrGraph& g,
                                std::span<const NodeId> dirty,
                                std::span<const std::vector<NodeId>> old_targets) {
  QC_REQUIRE(dirty.size() == old_targets.size(),
             "repair_rows: dirty/old_targets size mismatch");
  const NodeId n = g.node_count();
  QC_REQUIRE(offsets_.size() == std::size_t{n} + 1,
             "repair_rows: index was built for a different node count");
  std::size_t halves = 0;
  for (NodeId u = 0; u < n; ++u) halves += g.degree(u);
  if (table_.size() < 2 * halves + 1) {
    *this = EdgeSlotIndex(g);
    return;
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    for (const NodeId to : old_targets[i]) {
      erase_key(make_key(dirty[i], to));
    }
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const auto row = g.neighbors(dirty[i]);
    for (std::uint32_t s = 0; s < row.size(); ++s) {
      const std::uint64_t key = make_key(dirty[i], row[s].to);
      std::size_t j = hash_key(key) & mask_;
      while (table_[j].key != kEmptyKey) j = (j + 1) & mask_;
      table_[j] = Entry{key, s};
    }
  }
  offsets_[0] = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + g.degree(u);
  }
}

const EdgeSlotIndex& WeightedGraph::slot_index() const {
  // Build (or fetch) the CSR view first: csr() takes csr_mutex_, so the
  // lock below must not be held yet.
  const CsrGraph& c = csr();
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!slot_index_cache_) {
    slot_index_cache_ = std::make_shared<EdgeSlotIndex>(c);
  }
  return *slot_index_cache_;
}

}  // namespace qc
