// Flat compressed-sparse-row adjacency for the shortest-path kernels.
//
// `WeightedGraph` stores one heap-allocated `std::vector<HalfEdge>` per
// node, which is convenient for incremental construction but costs one
// pointer indirection (and usually a cache miss) per visited node. The
// distance kernels in algorithms.h sweep the whole adjacency once per
// source, so every multi-source quantity (eccentricities, APSP, the
// Lemma 3.2 scale loop) pays that miss n times per node. `CsrGraph`
// packs the same half-edges into a single contiguous array indexed by an
// offset table: one allocation, sequential scans, and a topology that
// can be shared across weight transforms (the per-scale reweightings of
// Lemma 3.2 rewrite only the weights, never the structure).
//
// Neighbor order is identical to the source `WeightedGraph`'s rows, so
// any tie-broken traversal (lexicographic Dijkstra, BFS queue order)
// visits nodes in exactly the same order on either representation.
//
// Storage comes in two flavors behind one read interface: *owned*
// (the usual vectors, built from a WeightedGraph or adopted from the
// streaming bgraph loader) and *mapped* (read-only spans over a
// memory-mapped bcsr file, kept alive by a shared handle — see
// graph/io.h `map_csr`). All accessors read through spans, so the
// kernels never know the difference; the one mutating operation,
// `assign_reweighted`, detaches a mapped view into owned storage
// first. Offsets are `std::size_t` (64-bit on every supported target)
// and the edge axis never passes through `NodeId`, so graphs with
// hundreds of millions of half-edges are representable.
//
// On top of either flavor sits an optional *patch overlay*
// (WeightedGraph::apply's incremental path): a per-node slot map plus
// replacement rows for the nodes an update batch touched. neighbors()
// serves overlay rows first and base rows otherwise, so the kernels
// see the updated graph without a flat rebuild; compact() folds the
// overlay into flat owned arrays once it outgrows its budget. The raw
// offsets()/halves() accessors refuse to serve while an overlay is
// live — they expose exactly the flat layout, which a patched view by
// definition does not have.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/error.h"

namespace qc {

class CsrGraph {
 public:
  CsrGraph() : own_offsets_(1, 0) { rebind_views(); }

  /// Packs g's adjacency. O(n + m); weights are copied as-is.
  explicit CsrGraph(const WeightedGraph& g);

  // Copies duplicate mapped views cheaply (they share the mapping) and
  // owned storage deeply; in both cases the spans must rebind to the
  // destination's own arrays, which the defaulted members would get
  // wrong. Moves steal the vectors (heap buffers survive a vector
  // move, so the spans stay valid) and neuter the source's views.
  CsrGraph(const CsrGraph& o) { assign_from(o); }
  CsrGraph& operator=(const CsrGraph& o) {
    if (this != &o) assign_from(o);
    return *this;
  }
  CsrGraph(CsrGraph&& o) noexcept
      : own_offsets_(std::move(o.own_offsets_)),
        own_halves_(std::move(o.own_halves_)),
        mapping_(std::move(o.mapping_)),
        offsets_(o.offsets_),
        halves_(o.halves_),
        patch_(std::move(o.patch_)),
        max_weight_(o.max_weight_) {
    o.own_offsets_.assign(1, 0);
    o.rebind_views();
  }
  CsrGraph& operator=(CsrGraph&& o) noexcept {
    if (this != &o) {
      own_offsets_ = std::move(o.own_offsets_);
      own_halves_ = std::move(o.own_halves_);
      mapping_ = std::move(o.mapping_);
      offsets_ = o.offsets_;
      halves_ = o.halves_;
      patch_ = std::move(o.patch_);
      max_weight_ = o.max_weight_;
      o.own_offsets_.assign(1, 0);
      o.own_halves_.clear();
      o.rebind_views();
    }
    return *this;
  }

  /// Adopts prebuilt arrays: `offsets` must be a monotone prefix array
  /// of size n+1 whose last entry equals halves.size(). The streaming
  /// two-pass loader (graph/io.h `csr_from_bgraph`) and the bcsr file
  /// reader build through this. O(1) beyond the validation scan.
  static CsrGraph from_parts(std::vector<std::size_t> offsets,
                             std::vector<HalfEdge> halves, Weight max_weight);

  /// Wraps externally owned, read-only arrays (the memory-mapped bcsr
  /// payload); `keep_alive` holds the mapping for the lifetime of this
  /// graph and all its copies. The caller (map_csr) is responsible for
  /// having validated the arrays.
  static CsrGraph mapped(std::span<const std::size_t> offsets,
                         std::span<const HalfEdge> halves, Weight max_weight,
                         std::shared_ptr<const void> keep_alive);

  /// True when the storage is a read-only mapped view (no copy was
  /// made; pages are shared with every other mapper of the file).
  bool is_mapped() const { return mapping_ != nullptr; }

  /// Identity of the underlying mapping (nullptr when owned): two
  /// graphs reporting the same address serve reads from the same
  /// mapped pages — the service layer uses this to prove N resident
  /// graphs of one bcsr file share a single mapping.
  const void* mapping_address() const { return mapping_.get(); }

  /// Number of live views holding the mapping open (0 when owned).
  long mapping_use_count() const { return mapping_.use_count(); }

  NodeId node_count() const {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (half-edge count / 2).
  std::size_t edge_count() const {
    const auto base = static_cast<std::int64_t>(halves_.size());
    return static_cast<std::size_t>(base + (patch_ ? patch_->half_delta : 0)) /
           2;
  }

  std::span<const HalfEdge> neighbors(NodeId u) const {
    QC_REQUIRE(u < node_count(), "node id out of range");
    if (patch_ != nullptr) {
      const std::int32_t s = patch_->slot[u];
      if (s >= 0) return patch_->rows[static_cast<std::size_t>(s)];
    }
    return {halves_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  // --- patch overlay (WeightedGraph::apply's incremental path) ---

  /// True while a patch overlay is live (some rows served from it).
  bool is_patched() const { return patch_ != nullptr; }

  /// Overlay half-edges currently resident (the quantity the patch
  /// budget bounds); 0 when unpatched.
  std::size_t patched_half_edges() const {
    return patch_ ? patch_->resident : 0;
  }

  /// Replaces node u's row through the overlay. The caller passes the
  /// *final* row (WeightedGraph::apply hands over the post-batch
  /// adjacency row verbatim), so repeated patches of one node cost one
  /// overlay slot. Does not touch max_weight — the caller reconciles it
  /// batch-wide via note_weight / recompute_max_weight.
  void patch_row(NodeId u, std::span<const HalfEdge> row);

  /// Rewrites the weight of the (u -> to) entry in place: through the
  /// overlay row when one exists, directly in owned storage otherwise
  /// (a mapped base gets an overlay copy first — the mapping is never
  /// written). The entry must exist.
  void patch_weight(NodeId u, NodeId to, Weight w);

  /// Folds a live overlay into flat owned arrays (and drops any
  /// mapping); recomputes max_weight exactly. No-op when unpatched.
  void compact();

  /// Raises max_weight to at least w (an insert/reweight introduced w).
  void note_weight(Weight w) { max_weight_ = std::max(max_weight_, w); }

  /// Exact max-weight rescan over neighbors(); needed after a batch
  /// that may have removed or lowered the previous maximum.
  void recompute_max_weight();

  /// The raw arrays (diagnostics, serialization). Row u is
  /// halves()[offsets()[u] .. offsets()[u+1]). Unavailable while a
  /// patch overlay is live — the flat layout these expose would be
  /// stale; compact() first.
  std::span<const std::size_t> offsets() const {
    QC_REQUIRE(patch_ == nullptr,
               "raw CSR arrays are stale while patched — compact() first");
    return offsets_;
  }
  std::span<const HalfEdge> halves() const {
    QC_REQUIRE(patch_ == nullptr,
               "raw CSR arrays are stale while patched — compact() first");
    return halves_;
  }

  /// Max edge weight W (1 if the graph has no edges).
  Weight max_weight() const { return max_weight_; }

  /// Partitions the node range into `shards` contiguous, degree-balanced
  /// ranges: returns k+1 boundaries (k = min(shards, n), k >= 1) with
  /// shard s covering nodes [b[s], b[s+1]). Balance mass is deg(v) + 1
  /// (the +1 keeps long runs of isolated nodes from piling into one
  /// shard), cut by a prefix-sum walk over the degree histogram — the
  /// offsets array is exactly that prefix sum, so each boundary is one
  /// binary search. Deterministic in the topology alone. The CONGEST
  /// simulator's shard-parallel mailbox delivery keys its receiver
  /// ownership off these ranges (docs/perf.md).
  std::vector<NodeId> balanced_node_shards(unsigned shards) const;

  /// Rebuilds *this as `base` with every weight replaced by f(weight).
  /// The topology arrays are reused across calls (vector assignment keeps
  /// capacity), so a caller looping over the Lemma 3.2 scales pays zero
  /// allocations after the first scale. `f` must return weights >= 1.
  /// `this == &base` is allowed; `f` then receives the *current* (already
  /// transformed) weights, so per-scale callers should keep a pristine
  /// base and a separate scratch. A mapped or patched base (or mapped /
  /// patched *this on the self path) is materialized into flat owned
  /// storage first — the mapping itself is never written, and the
  /// overlay rows are folded in so the copied weights are current.
  template <typename Fn>
  void assign_reweighted(const CsrGraph& base, Fn&& f) {
    if (this != &base) {
      if (base.patch_ != nullptr) {
        materialize_from(base);
      } else {
        own_offsets_.assign(base.offsets_.begin(), base.offsets_.end());
        own_halves_.assign(base.halves_.begin(), base.halves_.end());
        mapping_.reset();
        rebind_views();
      }
    } else if (patch_ != nullptr) {
      compact();
    } else if (mapping_ != nullptr) {
      detach();
    }
    Weight mx = 1;
    for (HalfEdge& h : own_halves_) {
      h.weight = f(h.weight);
      QC_CHECK(h.weight >= 1, "reweight produced a zero weight");
      mx = std::max(mx, h.weight);
    }
    max_weight_ = mx;
  }

 private:
  struct Patch {
    /// slot[u] >= 0: u's row lives at rows[slot[u]]; -1: base row.
    std::vector<std::int32_t> slot;
    std::vector<std::vector<HalfEdge>> rows;
    /// Overlay half-edges resident (sum of rows[i].size()).
    std::size_t resident = 0;
    /// Current half-edge count minus the base arrays' (for edge_count).
    std::int64_t half_delta = 0;
  };

  void rebind_views() {
    offsets_ = own_offsets_;
    halves_ = own_halves_;
  }

  /// Copies a mapped view into owned storage and drops the mapping.
  void detach();

  /// Rebuilds owned flat arrays from o.neighbors() (follows o's patch
  /// overlay); leaves *this unpatched.
  void materialize_from(const CsrGraph& o);

  /// O(n) prefix-walk variant for patched views; same boundaries as the
  /// flat binary search would produce after compact().
  std::vector<NodeId> balanced_node_shards_patched(unsigned shards) const;

  /// Returns u's overlay row, creating it (as a copy of the current
  /// row) on first touch.
  std::vector<HalfEdge>& overlay_row(NodeId u);

  void assign_from(const CsrGraph& o) {
    if (o.mapping_ != nullptr) {
      own_offsets_.clear();
      own_halves_.clear();
      mapping_ = o.mapping_;
      offsets_ = o.offsets_;
      halves_ = o.halves_;
    } else {
      own_offsets_.assign(o.offsets_.begin(), o.offsets_.end());
      own_halves_.assign(o.halves_.begin(), o.halves_.end());
      mapping_.reset();
      rebind_views();
    }
    patch_ = o.patch_ ? std::make_unique<Patch>(*o.patch_) : nullptr;
    max_weight_ = o.max_weight_;
  }

  std::vector<std::size_t> own_offsets_;  ///< owned mode: size n+1
  std::vector<HalfEdge> own_halves_;      ///< owned mode: 2m half-edges
  std::shared_ptr<const void> mapping_;   ///< mapped mode: keep-alive
  std::span<const std::size_t> offsets_;  ///< active view (either mode)
  std::span<const HalfEdge> halves_;      ///< active view (either mode)
  std::unique_ptr<Patch> patch_;          ///< live update overlay (or null)
  Weight max_weight_ = 1;
};

}  // namespace qc
