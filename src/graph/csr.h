// Flat compressed-sparse-row adjacency for the shortest-path kernels.
//
// `WeightedGraph` stores one heap-allocated `std::vector<HalfEdge>` per
// node, which is convenient for incremental construction but costs one
// pointer indirection (and usually a cache miss) per visited node. The
// distance kernels in algorithms.h sweep the whole adjacency once per
// source, so every multi-source quantity (eccentricities, APSP, the
// Lemma 3.2 scale loop) pays that miss n times per node. `CsrGraph`
// packs the same half-edges into a single contiguous array indexed by an
// offset table: one allocation, sequential scans, and a topology that
// can be shared across weight transforms (the per-scale reweightings of
// Lemma 3.2 rewrite only the weights, never the structure).
//
// Neighbor order is identical to the source `WeightedGraph`'s rows, so
// any tie-broken traversal (lexicographic Dijkstra, BFS queue order)
// visits nodes in exactly the same order on either representation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/error.h"

namespace qc {

class CsrGraph {
 public:
  CsrGraph() : offsets_(1, 0) {}

  /// Packs g's adjacency. O(n + m); weights are copied as-is.
  explicit CsrGraph(const WeightedGraph& g);

  NodeId node_count() const {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (half-edge count / 2).
  std::size_t edge_count() const { return halves_.size() / 2; }

  std::span<const HalfEdge> neighbors(NodeId u) const {
    QC_REQUIRE(u < node_count(), "node id out of range");
    return {halves_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  /// Max edge weight W (1 if the graph has no edges).
  Weight max_weight() const { return max_weight_; }

  /// Partitions the node range into `shards` contiguous, degree-balanced
  /// ranges: returns k+1 boundaries (k = min(shards, n), k >= 1) with
  /// shard s covering nodes [b[s], b[s+1]). Balance mass is deg(v) + 1
  /// (the +1 keeps long runs of isolated nodes from piling into one
  /// shard), cut by a prefix-sum walk over the degree histogram — the
  /// offsets array is exactly that prefix sum, so each boundary is one
  /// binary search. Deterministic in the topology alone. The CONGEST
  /// simulator's shard-parallel mailbox delivery keys its receiver
  /// ownership off these ranges (docs/perf.md).
  std::vector<NodeId> balanced_node_shards(unsigned shards) const;

  /// Rebuilds *this as `base` with every weight replaced by f(weight).
  /// The topology arrays are reused across calls (vector assignment keeps
  /// capacity), so a caller looping over the Lemma 3.2 scales pays zero
  /// allocations after the first scale. `f` must return weights >= 1.
  /// `this == &base` is allowed; `f` then receives the *current* (already
  /// transformed) weights, so per-scale callers should keep a pristine
  /// base and a separate scratch.
  template <typename Fn>
  void assign_reweighted(const CsrGraph& base, Fn&& f) {
    if (this != &base) {
      offsets_ = base.offsets_;
      halves_ = base.halves_;
    }
    Weight mx = 1;
    for (HalfEdge& h : halves_) {
      h.weight = f(h.weight);
      QC_CHECK(h.weight >= 1, "reweight produced a zero weight");
      mx = std::max(mx, h.weight);
    }
    max_weight_ = mx;
  }

 private:
  std::vector<std::size_t> offsets_;  ///< size n+1; row u = [off[u], off[u+1])
  std::vector<HalfEdge> halves_;      ///< 2m half-edges, row-major
  Weight max_weight_ = 1;
};

}  // namespace qc
