#include "graph/graph.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "graph/update.h"

namespace qc {

// add_edge / remove_edge / set_edge_weight are sugar for one-op
// batches: apply() is the single sanctioned mutation surface, so the
// validation messages, cache patching, and connectivity rules live in
// exactly one place (graph/update.cpp).

void WeightedGraph::add_edge(NodeId u, NodeId v, Weight w) {
  apply(GraphUpdate{}.insert(u, v, w));
}

void WeightedGraph::remove_edge(NodeId u, NodeId v) {
  apply(GraphUpdate{}.remove(u, v));
}

WeightedGraph WeightedGraph::from_edges(NodeId n, std::vector<Edge> edges) {
  WeightedGraph g(n);
  std::vector<std::size_t> deg(n, 0);
  for (const Edge& e : edges) {
    QC_REQUIRE(e.u < e.v && e.v < n, "from_edges: edge not canonical");
    QC_REQUIRE(e.weight >= 1, "weights must be positive integers");
    ++deg[e.u];
    ++deg[e.v];
  }
  for (NodeId u = 0; u < n; ++u) g.adjacency_[u].reserve(deg[u]);
  for (const Edge& e : edges) {
    g.adjacency_[e.u].push_back({e.v, e.weight});
    g.adjacency_[e.v].push_back({e.u, e.weight});
  }
  g.edges_ = std::move(edges);
  return g;
}

bool WeightedGraph::has_edge(NodeId u, NodeId v) const {
  QC_REQUIRE(u < node_count() && v < node_count(), "node id out of range");
  const auto& adj = adjacency_[u];
  return std::any_of(adj.begin(), adj.end(),
                     [v](const HalfEdge& h) { return h.to == v; });
}

Weight WeightedGraph::edge_weight(NodeId u, NodeId v) const {
  QC_REQUIRE(u < node_count() && v < node_count(), "node id out of range");
  for (const HalfEdge& h : adjacency_[u]) {
    if (h.to == v) return h.weight;
  }
  throw ArgumentError("edge_weight: no such edge");
}

void WeightedGraph::set_edge_weight(NodeId u, NodeId v, Weight w) {
  QC_REQUIRE(w >= 1, "weights must be positive integers");
  apply(GraphUpdate{}.reweight(u, v, w));
}

std::size_t WeightedGraph::csr_patch_budget() const {
  if (csr_patch_budget_ != 0) return csr_patch_budget_;
  // Auto: an eighth of the half-edge count (= m/4), floored so tiny
  // graphs still amortize a few batches before compacting.
  return std::max<std::size_t>(64, edges_.size() / 4);
}

Weight WeightedGraph::max_weight() const {
  Weight w = 1;
  for (const Edge& e : edges_) w = std::max(w, e.weight);
  return w;
}

WeightedGraph WeightedGraph::unweighted_copy() const {
  return reweighted([](Weight) { return Weight{1}; });
}

bool WeightedGraph::is_connected() const {
  const NodeId n = node_count();
  if (n <= 1) return true;
  {
    std::lock_guard<std::mutex> lock(csr_mutex_);
    if (connected_cache_ != ConnCache::kUnknown) {
      return connected_cache_ == ConnCache::kConnected;
    }
  }
  std::vector<bool> seen(n, false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  NodeId reached = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const HalfEdge& h : adjacency_[u]) {
      if (!seen[h.to]) {
        seen[h.to] = true;
        ++reached;
        q.push(h.to);
      }
    }
  }
  const bool connected = reached == n;
  {
    std::lock_guard<std::mutex> lock(csr_mutex_);
    if (connected_cache_ == ConnCache::kUnknown) {
      connected_cache_ =
          connected ? ConnCache::kConnected : ConnCache::kDisconnected;
    }
  }
  return connected;
}

void WeightedGraph::validate() const {
  std::size_t half_edges = 0;
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const HalfEdge& h : adjacency_[u]) {
      QC_CHECK(h.to < node_count(), "adjacency points out of range");
      QC_CHECK(h.to != u, "self loop in adjacency");
      QC_CHECK(h.weight >= 1, "non-positive weight");
      QC_CHECK(edge_weight(h.to, u) == h.weight,
               "asymmetric weight in adjacency");
      ++half_edges;
    }
  }
  QC_CHECK(half_edges == 2 * edges_.size(),
           "adjacency/edge-list size mismatch");
  for (const Edge& e : edges_) {
    QC_CHECK(e.u < e.v, "edge list not canonical");
    QC_CHECK(edge_weight(e.u, e.v) == e.weight,
             "edge list weight disagrees with adjacency");
  }
}

std::string WeightedGraph::summary() const {
  std::ostringstream os;
  os << "n=" << node_count() << " m=" << edge_count()
     << " W=" << max_weight();
  return os.str();
}

std::string to_dot(const WeightedGraph& g, const std::string& name) {
  std::ostringstream os;
  os << "graph " << name << " {\n";
  for (const Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v;
    if (e.weight != 1) os << " [label=" << e.weight << "]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace qc
