// The paper's main contribution (Theorem 1.1): a quantum CONGEST
// algorithm (1+o(1))-approximating the weighted diameter and radius in
// Õ(min{n^{9/10}·D^{3/10}, n}) rounds.
//
// Structure (Section 3 of the paper):
//  * sample n vertex sets S_1..S_n, each node joining independently with
//    probability r/n (Eq. 1 parameters);
//  * inner procedure (Lemma 3.5): for one set S_i, maximize the
//    approximate eccentricity ẽ over s ∈ S_i with the distributed
//    quantum optimization framework — Initialization_i = Algorithms 3+4,
//    Setup_i = Algorithm 5, Evaluation_i = local combine + convergecast;
//  * outer search (proof of Theorem 1.1): maximize f(i) = max_s ẽ(s)
//    over the n sets (minimize, for the radius).
//
// Execution model (DESIGN.md S1): the search bookkeeping uses the
// centralized reference values (bit-identical to the distributed
// implementations — asserted by tests and revalidated per run), while
// the CONGEST costs T₀/T_setup/T_eval are *measured* on real distributed
// executions for the set the search measures. Charged rounds follow
// Lemma 3.1 exactly.
#pragma once

#include <cstdint>

#include "congest/simulator.h"
#include "graph/graph.h"
#include "paths/params.h"
#include "util/rng.h"

namespace qc::core {

struct Theorem11Options {
  std::uint64_t seed = 1;
  /// Per-search failure target δ (both nesting levels).
  double delta = 0.05;
  /// Re-run the full distributed pipeline on the measured set and check
  /// its values against the bookkeeping backend (slower; on by default).
  bool validate_distributed = true;
  /// Override 1/ε (0 = paper default ⌈log₂ n⌉). Larger values tighten
  /// the (1+ε)² guarantee and lengthen every toolkit schedule.
  std::uint32_t eps_inv = 0;
  /// Override the skeleton size target r (0 = Eq. (1)'s
  /// n^{2/5}·D^{-1/5}). Used by the ablation bench to show the paper's
  /// choice balances Initialization (∝ n/r per Algorithm 1's ℓ) against
  /// the searches (outer √(n/r), inner √r).
  std::uint64_t r_override = 0;
};

/// Measured CONGEST costs of the Lemma 3.5 procedures on the chosen set.
struct MeasuredSetCosts {
  std::uint64_t t0_rounds = 0;      ///< Initialization_i (Algs 3+4 + set flood)
  std::uint64_t t_setup_rounds = 0; ///< Setup_i (collect + broadcast + Alg 5)
  std::uint64_t t_eval_rounds = 0;  ///< Evaluation_i (convergecast)
};

struct Theorem11Result {
  bool radius = false;          ///< which problem this solved
  // --- answer ---
  Dist estimate_scaled = 0;     ///< f(i*) in σ·σ″ fixed-point units
  std::uint64_t total_scale = 1;
  double estimate = 0;          ///< estimate_scaled / total_scale
  Dist exact = 0;               ///< true D_{G,w} or R_{G,w} (oracle)
  double ratio = 0;             ///< estimate / exact
  double epsilon = 0;           ///< ε = 1/⌈log n⌉ used
  bool within_bound = false;    ///< exact <= estimate <= (1+ε)²·exact
  // --- cost ---
  std::uint64_t rounds = 0;       ///< total charged CONGEST rounds
  std::uint64_t t0_outer = 0;     ///< D-estimation preamble (measured)
  std::uint64_t t1_outer = 0;     ///< outer Setup: leader broadcast (measured)
  std::uint64_t t2_outer = 0;     ///< outer Evaluation: Lemma 3.5 budget
  std::uint64_t outer_calls = 0;  ///< outer oracle calls (adaptive)
  std::uint64_t inner_budget_calls = 0;  ///< inner Lemma 3.1 budget
  MeasuredSetCosts measured;
  // --- diagnostics ---
  paths::Params params;
  std::uint64_t d_hat = 1;        ///< leader's unweighted-ecc estimate of D
  std::size_t chosen_set = 0;     ///< the i* the search measured
  std::size_t chosen_set_size = 0;
  /// The node achieving f(i*): an approximate center (radius) or a
  /// node of near-maximum eccentricity (diameter).
  NodeId witness = 0;
  std::uint64_t good_sets = 0;    ///< |{i : f(i) at least/at most target}|
  bool distributed_value_matches = true;  ///< validation outcome
};

/// Runs the Theorem 1.1 algorithm for the weighted diameter.
Theorem11Result quantum_weighted_diameter(const WeightedGraph& g,
                                          const Theorem11Options& opt = {});

/// Runs the Theorem 1.1 algorithm for the weighted radius.
Theorem11Result quantum_weighted_radius(const WeightedGraph& g,
                                        const Theorem11Options& opt = {});

}  // namespace qc::core
