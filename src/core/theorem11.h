// The paper's main contribution (Theorem 1.1): a quantum CONGEST
// algorithm (1+o(1))-approximating the weighted diameter and radius in
// Õ(min{n^{9/10}·D^{3/10}, n}) rounds.
//
// Structure (Section 3 of the paper):
//  * sample n vertex sets S_1..S_n, each node joining independently with
//    probability r/n (Eq. 1 parameters);
//  * inner procedure (Lemma 3.5): for one set S_i, maximize the
//    approximate eccentricity ẽ over s ∈ S_i with the distributed
//    quantum optimization framework — Initialization_i = Algorithms 3+4,
//    Setup_i = Algorithm 5, Evaluation_i = local combine + convergecast;
//  * outer search (proof of Theorem 1.1): maximize f(i) = max_s ẽ(s)
//    over the n sets (minimize, for the radius).
//
// Execution model (DESIGN.md S1): the search bookkeeping uses the
// centralized reference values (bit-identical to the distributed
// implementations — asserted by tests and revalidated per run), while
// the CONGEST costs T₀/T_setup/T_eval are *measured* on real distributed
// executions for the set the search measures. Charged rounds follow
// Lemma 3.1 exactly.
//
// Oracle evaluation strategy (docs/perf.md, "Theorem 1.1 driver fast
// path"): f(i) can be served eagerly (all n skeletons built up front,
// the historical behaviour) or lazily (a memoized value callback backed
// by the trimmed `ToolkitCache::evaluate_set`, with only the measured
// set ever materialized as a full `Skeleton`), serially or batched onto
// the qc_pool work-stealing pool. All four modes produce a semantically
// identical `Theorem11Result` for the same options (asserted by
// tests/test_theorem11.cpp) — only the run-report diagnostics in
// `Theorem11Result::oracle` and `Theorem11Result::phase_seconds` differ.
#pragma once

#include <cstdint>

#include "congest/simulator.h"
#include "graph/graph.h"
#include "paths/params.h"
#include "util/rng.h"

namespace qc::runtime {
class MetricsRegistry;  // runtime/metrics.h
}

namespace qc::paths {
class ToolkitCache;  // paths/reference.h
}

namespace qc::core {

/// How the outer search obtains f(i) (see the file comment). The
/// numeric result is identical in every mode; they differ only in what
/// gets built and where the work runs.
enum class OracleMode : std::uint8_t {
  kEagerSerial,  ///< all n skeletons, one thread (historical behaviour)
  /// All n skeletons, built on the pool. Diagnostic-only: it exists so
  /// the mode ablation (bench_theorem11_ablation) can separate what
  /// laziness buys from what the pool buys. It still materializes
  /// Θ(n) skeletons — Θ(n·|S|·b) memory that kLazyPooled never
  /// allocates — so real runs should never select it.
  kEagerPooled,
  kLazySerial,   ///< memoized on-demand evaluation, one thread
  kLazyPooled,   ///< batched pooled value pass + memoized oracle (default)
};

struct Theorem11Options {
  std::uint64_t seed = 1;
  /// Per-search failure target δ (both nesting levels).
  double delta = 0.05;
  /// Re-run the full distributed pipeline on the measured set and check
  /// its values against the bookkeeping backend (slower; on by default).
  bool validate_distributed = true;
  /// Override 1/ε (0 = paper default ⌈log₂ n⌉). Larger values tighten
  /// the (1+ε)² guarantee and lengthen every toolkit schedule.
  std::uint32_t eps_inv = 0;
  /// Override the skeleton size target r (0 = Eq. (1)'s
  /// n^{2/5}·D^{-1/5}). Used by the ablation bench to show the paper's
  /// choice balances Initialization (∝ n/r per Algorithm 1's ℓ) against
  /// the searches (outer √(n/r), inner √r).
  std::uint64_t r_override = 0;
  /// Oracle evaluation strategy; never changes the answer.
  OracleMode oracle_mode = OracleMode::kLazyPooled;
  /// Worker count for the pooled modes (0 = hardware concurrency).
  /// Results are byte-identical at any worker count.
  unsigned oracle_workers = 0;
  /// Run the all-sets ground-truth census: the exact oracle answer, the
  /// approximation ratio / sandwich check, and the Lemma 3.4 good-set
  /// count. Off by default — the default run pays only for the search
  /// itself; see Theorem11Result for which fields the census populates.
  bool census = false;
  /// Optional run-report sink (borrowed). When set, the driver records
  /// "theorem11.*" counters and per-phase timings into it.
  runtime::MetricsRegistry* metrics = nullptr;
  /// Optional resident toolkit cache (borrowed; must outlive the call).
  /// When set, the driver reads/extends its shared first-level rows
  /// instead of constructing a cache per run, so repeated runs on the
  /// same graph — the service::QueryEngine's serving pattern — pay for
  /// each row once. The cache must have been built on this same
  /// `WeightedGraph` object with exactly `derive_params(g, opt)` (throws
  /// ArgumentError otherwise — a silently rebuilt cache would hide the
  /// perf bug the caller is paying to avoid). Never changes the answer:
  /// rows are a pure function of (graph, params).
  paths::ToolkitCache* toolkit = nullptr;
};

/// Measured CONGEST costs of the Lemma 3.5 procedures on the chosen set.
struct MeasuredSetCosts {
  std::uint64_t t0_rounds = 0;      ///< Initialization_i (Algs 3+4 + set flood)
  std::uint64_t t_setup_rounds = 0; ///< Setup_i (collect + broadcast + Alg 5)
  std::uint64_t t_eval_rounds = 0;  ///< Evaluation_i (convergecast)
};

/// Run-report diagnostics of the oracle backend. Excluded from
/// `semantically_equal` — these describe *how* the run executed, and
/// legitimately differ across oracle modes.
struct OracleStats {
  bool lazy = false;    ///< an on-demand memoized oracle served the search
  bool pooled = false;  ///< batch work ran on the qc_pool pool
  /// Full `paths::Skeleton` constructions (lazy modes build exactly one:
  /// the measured set; eager modes build one per non-empty sampled set).
  std::uint64_t skeletons_built = 0;
  /// Value-callback invocations (lazy modes; cache misses).
  std::uint64_t value_evaluations = 0;
  /// Memoized oracle queries served without re-evaluation. The exact
  /// amplitude simulation touches every index at least once per Grover
  /// step, so laziness pays through memoization and the trimmed
  /// per-evaluation cost — not through untouched indices.
  std::uint64_t memo_hits = 0;
  std::uint64_t sets_nonempty = 0;
};

/// Wall-clock seconds per driver phase (reporting only; excluded from
/// `semantically_equal`).
struct PhaseSeconds {
  double sample = 0;   ///< preamble + set sampling + scale-only pass
  double oracle = 0;   ///< skeleton builds / batched value passes
  double search = 0;   ///< outer quantum search
  double measure = 0;  ///< distributed Lemma 3.5 measurement
  double census = 0;   ///< exact oracle + good-set census (if enabled)
  double total = 0;
};

struct Theorem11Result {
  bool radius = false;          ///< which problem this solved
  // --- answer ---
  Dist estimate_scaled = 0;     ///< f(i*) in σ·σ″ fixed-point units
  std::uint64_t total_scale = 1;
  double estimate = 0;          ///< estimate_scaled / total_scale
  // --- ground-truth census (populated only when opt.census) ---
  Dist exact = 0;               ///< true D_{G,w} or R_{G,w} (oracle)
  double ratio = 0;             ///< estimate / exact
  bool within_bound = false;    ///< exact <= estimate <= (1+ε)²·exact
  std::uint64_t good_sets = 0;  ///< |{i : f(i) at least/at most target}|
  // --- quality parameters ---
  double epsilon = 0;           ///< ε = 1/⌈log n⌉ used
  // --- cost ---
  std::uint64_t rounds = 0;       ///< total charged CONGEST rounds
  std::uint64_t t0_outer = 0;     ///< D-estimation preamble (measured)
  std::uint64_t t1_outer = 0;     ///< outer Setup: leader broadcast (measured)
  std::uint64_t t2_outer = 0;     ///< outer Evaluation: Lemma 3.5 budget
  std::uint64_t outer_calls = 0;  ///< outer oracle calls (adaptive)
  std::uint64_t inner_budget_calls = 0;  ///< inner Lemma 3.1 budget
  MeasuredSetCosts measured;
  // --- diagnostics ---
  paths::Params params;
  std::uint64_t d_hat = 1;        ///< leader's unweighted-ecc estimate of D
  std::size_t chosen_set = 0;     ///< the i* the search measured
  std::size_t chosen_set_size = 0;
  /// The node achieving f(i*): an approximate center (radius) or a
  /// node of near-maximum eccentricity (diameter). Ties go to the
  /// lowest member index, matching the search convention (see
  /// theorem11.cpp's set_arg_from_eccs).
  NodeId witness = 0;
  bool distributed_value_matches = true;  ///< validation outcome
  // --- run-report only (excluded from semantically_equal) ---
  OracleStats oracle;
  PhaseSeconds phase_seconds;
};

/// True when two results agree on every semantically meaningful field —
/// everything except the run-report diagnostics (`oracle`,
/// `phase_seconds`), which describe execution rather than the answer.
/// This is the equality the oracle-mode / worker-count invariance tests
/// and benches assert.
bool semantically_equal(const Theorem11Result& a, const Theorem11Result& b);

/// The unweighted-diameter estimate d̂ the driver's preamble derives — the
/// leader's (node 0) hop eccentricity, clamped to >= 1 — computed
/// centrally, without charging CONGEST rounds. Requires a connected
/// graph with n >= 2 (as the driver itself does).
std::uint64_t leader_diameter_estimate(const WeightedGraph& g);

/// The exact `paths::Params` a `quantum_weighted_diameter/radius` run
/// with these options will use (Eq. (1) at d̂ = leader_diameter_estimate,
/// with `opt.eps_inv` / `opt.r_override` applied). A resident
/// `paths::ToolkitCache` handed to `Theorem11Options::toolkit` must be
/// constructed with exactly these parameters.
paths::Params derive_params(const WeightedGraph& g,
                            const Theorem11Options& opt = {});

/// Runs the Theorem 1.1 algorithm for the weighted diameter.
Theorem11Result quantum_weighted_diameter(const WeightedGraph& g,
                                          const Theorem11Options& opt = {});

/// Runs the Theorem 1.1 algorithm for the weighted radius.
Theorem11Result quantum_weighted_radius(const WeightedGraph& g,
                                        const Theorem11Options& opt = {});

}  // namespace qc::core
