// Additional approximation baselines of Table 1, implemented genuinely:
//
//  * distributed weighted SSSP (timed-release Bellman–Ford, the
//    O(weighted-depth) folklore algorithm) and the 2-approximation of
//    the weighted diameter/radius it yields (any node's eccentricity
//    2-approximates the diameter; Chechik–Mukhtar [8] reach the same
//    approximation in Õ(√n·D^{1/4}+D) rounds — cost-modeled, S3);
//
//  * pipelined multi-source BFS with random delays (Õ(|S| + D) rounds,
//    the unweighted engine behind [15]/[3]) and the classic
//    3/2-approximation of the unweighted diameter built on it:
//    sample |S| ≈ √n·log n sources, find the node w farthest from S,
//    answer max{ecc(s) : s ∈ S ∪ {w}} — always ≤ D and ≥ ⌊2D/3⌋ w.h.p.
#pragma once

#include <cstdint>

#include "congest/simulator.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace qc::core {

/// Distributed exact weighted SSSP by timed release: node v announces
/// its distance in round d(s,v), so positive integer weights make every
/// announcement final. Takes ecc_w(s) + 2 rounds (<= n·W + 2).
struct WeightedSsspResult {
  congest::RunStats stats;
  std::vector<Dist> dist;
};
WeightedSsspResult distributed_weighted_sssp(const WeightedGraph& g,
                                             NodeId source,
                                             congest::Config config = {});

/// Distributed exact weighted APSP: timed-release SSSP waves from every
/// node, staggered by a DFS token over a BFS tree (the weighted
/// analogue of the unweighted pipelined APSP; weighted wave fronts may
/// collide, so announcements queue and drain within the CONGEST budget
/// — correctness is unaffected, and the measured rounds come out near
/// 3n + ecc_w for moderate weights). This is the classical exact
/// weighted diameter/radius baseline of Table 1 (Bernstein–Nanongkai
/// [6] reach Õ(n) regardless of W; substitution S3 in DESIGN.md).
struct WeightedApspResult {
  congest::RunStats stats;
  /// dist[v][s] = d_w(s, v) as learned by node v.
  std::vector<std::vector<Dist>> dist;
};
WeightedApspResult distributed_weighted_apsp(const WeightedGraph& g,
                                             congest::Config config = {});

/// Classical exact weighted diameter/radius: weighted APSP + local
/// eccentricities + one aggregate.
struct ClassicalWeightedResult {
  congest::RunStats stats;
  Dist value = 0;
};
ClassicalWeightedResult classical_weighted_diameter(
    const WeightedGraph& g, congest::Config config = {});
ClassicalWeightedResult classical_weighted_radius(
    const WeightedGraph& g, congest::Config config = {});

/// 2-approximation of the weighted diameter (and exact upper bound on
/// twice the radius): one SSSP from the leader + a convergecast.
/// Returns ecc(leader) <= D_w <= 2·ecc(leader).
struct TwoApproxResult {
  congest::RunStats stats;
  Dist ecc_leader = 0;   ///< R_w <= ecc <= D_w
  Dist upper_bound = 0;  ///< 2·ecc >= D_w
};
TwoApproxResult two_approx_weighted_diameter(const WeightedGraph& g,
                                             congest::Config config = {});

/// Pipelined multi-source BFS: every node learns its hop distance to
/// every source, in Õ(|S| + D) rounds (random start delays; window
/// stretching like Algorithm 3; retries on the low-probability
/// congestion event).
struct MultiBfsResult {
  congest::RunStats stats;
  std::uint32_t attempts = 1;
  /// dist[a][v] = hop distance from sources[a] to v.
  std::vector<std::vector<Dist>> dist;
};
MultiBfsResult distributed_multi_source_bfs(const WeightedGraph& g,
                                            const std::vector<NodeId>& sources,
                                            Rng& rng,
                                            congest::Config config = {});

/// The 3/2-approximation of the unweighted diameter ([15]/[3]-style):
/// returns an estimate in [floor(2D/3), D] with probability
/// >= 1 - 1/poly(n), in Õ(√n + D) rounds.
struct ThreeHalvesResult {
  congest::RunStats stats;
  Dist estimate = 0;
  Dist exact = 0;            ///< oracle, for reporting
  std::size_t sample_size = 0;
  NodeId far_node = 0;       ///< the w farthest from the sample
};
ThreeHalvesResult three_halves_unweighted_diameter(const WeightedGraph& g,
                                                   std::uint64_t seed = 1,
                                                   congest::Config config = {});

}  // namespace qc::core
